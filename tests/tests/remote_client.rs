//! The clerk across the simulated network (§2, §5): RPC sends, one-way
//! sends, and resynchronization after communication failures.

use rrq_core::api::QmApi;
use rrq_core::clerk::{Clerk, ClerkConfig, SendMode};
use rrq_core::client::{ClientRuntime, ResyncAction};
use rrq_core::device::Display;
use rrq_core::remote::{QmRpcServer, RemoteQm};
use rrq_core::server::spawn_pool;
use rrq_net::NetworkBus;
use rrq_qm::repository::Repository;
use rrq_tests::echo_handler;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

static ENDPOINT_SEQ: AtomicU64 = AtomicU64::new(0);

fn setup(
    bus: &NetworkBus,
    send_mode: SendMode,
) -> (
    Arc<Repository>,
    rrq_net::rpc::ServerGuard,
    impl Fn() -> Clerk + '_,
) {
    let repo = Arc::new(Repository::create("remote-node").unwrap());
    repo.create_queue_defaults("req").unwrap();
    repo.create_queue_defaults("reply.rc").unwrap();
    let guard = QmRpcServer::spawn(bus, "qm", Arc::clone(&repo));
    let make_clerk = move || {
        // Each incarnation gets a fresh client endpoint (old one died).
        let n = ENDPOINT_SEQ.fetch_add(1, Ordering::Relaxed);
        let remote = RemoteQm::new(bus, &format!("client-ep-{n}"), "qm");
        let mut cfg = ClerkConfig::new("rc", "req");
        cfg.reply_queue = "reply.rc".into();
        cfg.send_mode = send_mode;
        cfg.receive_block = Duration::from_secs(5);
        Clerk::new(Arc::new(remote), cfg)
    };
    (repo, guard, make_clerk)
}

#[test]
fn full_roundtrip_over_the_network() {
    let bus = NetworkBus::new(11);
    let (repo, _guard, make_clerk) = setup(&bus, SendMode::Acked);
    let (_servers, handles, stop) = spawn_pool(&repo, "req", 1, echo_handler()).unwrap();

    let mut display = Display::new();
    let mut runtime = ClientRuntime::new(make_clerk());
    assert_eq!(runtime.resume(&mut display).unwrap(), ResyncAction::Fresh);
    for i in 0..3 {
        let (rid, reply) = runtime
            .submit("echo", format!("m{i}").into_bytes(), &mut display)
            .unwrap();
        assert_eq!(reply.rid, rid);
        assert_eq!(reply.body, format!("m{i}").into_bytes());
    }
    assert_eq!(display.shown().len(), 3);
    runtime.disconnect().unwrap();

    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
}

/// §2's core failure story: a ONE-WAY send is lost in a partition. The
/// client's Receive times out; at reconnect, the registration tags show the
/// request never reached the system, so the client can safely resend —
/// without any risk of duplicate execution.
#[test]
fn lost_one_way_send_is_detected_and_resent() {
    let bus = NetworkBus::new(13);
    let (repo, _guard, make_clerk) = setup(&bus, SendMode::OneWay);
    let (_servers, handles, stop) = spawn_pool(&repo, "req", 1, echo_handler()).unwrap();

    // First incarnation: request 1 completes; request 2's send is lost.
    {
        let clerk = make_clerk();
        clerk.connect().unwrap();
        clerk
            .send("echo", b"first".to_vec(), rrq_core::rid::Rid::new("rc", 1))
            .unwrap();
        let r1 = clerk.receive(b"").unwrap();
        assert_eq!(r1.body, b"first");

        // Partition, then fire the one-way send into the void.
        bus.faults().set_default_drop(1.0);
        clerk
            .send("echo", b"lost".to_vec(), rrq_core::rid::Rid::new("rc", 2))
            .unwrap(); // returns Ok: one-way, no acknowledgement
                       // The Receive would time out here; the client process dies instead.
    }
    bus.faults().set_default_drop(0.0);

    // Second incarnation: connect-time resync.
    let clerk2 = make_clerk();
    let info = clerk2.connect().unwrap();
    // The system never saw request 2: its last recorded Send is rid 1, which
    // matches the last reply — so the client knows it must resend rid 2.
    assert_eq!(info.s_rid, Some(rrq_core::rid::Rid::new("rc", 1)));
    assert_eq!(info.r_rid, Some(rrq_core::rid::Rid::new("rc", 1)));
    clerk2
        .send("echo", b"resent".to_vec(), rrq_core::rid::Rid::new("rc", 2))
        .unwrap();
    let r2 = clerk2.receive(b"").unwrap();
    assert_eq!(r2.rid, rrq_core::rid::Rid::new("rc", 2));
    assert_eq!(r2.body, b"resent");

    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
}

/// An ACKED send that got through, followed by a client crash: resync finds
/// the outstanding request and receives its reply — no resend, no
/// duplicate.
#[test]
fn acked_send_then_crash_resyncs_without_resend() {
    let bus = NetworkBus::new(17);
    let (repo, _guard, make_clerk) = setup(&bus, SendMode::Acked);
    let (_servers, handles, stop) = spawn_pool(&repo, "req", 1, echo_handler()).unwrap();

    {
        let clerk = make_clerk();
        clerk.connect().unwrap();
        clerk
            .send(
                "echo",
                b"survives".to_vec(),
                rrq_core::rid::Rid::new("rc", 1),
            )
            .unwrap();
        // Client dies before Receive.
    }
    let mut display = Display::new();
    let mut runtime = ClientRuntime::new(make_clerk());
    let action = runtime.resume(&mut display).unwrap();
    match action {
        ResyncAction::ReceivedOutstanding { rid, reply } => {
            assert_eq!(rid, rrq_core::rid::Rid::new("rc", 1));
            assert_eq!(reply.body, b"survives");
        }
        other => panic!("expected ReceivedOutstanding, got {other:?}"),
    }
    assert_eq!(
        runtime.next_serial(),
        2,
        "serial advanced past recovered rid"
    );

    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
}

/// The §1 availability story: the QM endpoint dies while a request is in
/// flight. The client's calls time out; when the endpoint comes back, a new
/// client incarnation resynchronizes and picks up the reply — the request
/// was never lost because it was stably queued before the outage.
#[test]
fn qm_endpoint_outage_then_recovery() {
    let bus = NetworkBus::new(31);
    let (repo, guard, make_clerk) = setup(&bus, SendMode::Acked);
    let (_servers, handles, stop) = spawn_pool(&repo, "req", 1, echo_handler()).unwrap();

    // Send is acknowledged: stably stored server-side.
    {
        let clerk = make_clerk();
        clerk.connect().unwrap();
        clerk
            .send(
                "echo",
                b"queued before outage".to_vec(),
                rrq_core::rid::Rid::new("rc", 1),
            )
            .unwrap();
    }

    // The QM endpoint process dies.
    guard.shutdown();
    {
        let clerk = make_clerk();
        // All operations now time out — the client cannot even connect.
        let r = clerk.connect();
        assert!(matches!(
            r,
            Err(rrq_core::error::CoreError::Net(rrq_net::NetError::Timeout))
                | Err(rrq_core::error::CoreError::Net(
                    rrq_net::NetError::UnknownEndpoint(_)
                ))
        ));
    }

    // The node restarts its RPC front end (same repository = same disks).
    let _guard2 = QmRpcServer::spawn(&bus, "qm", Arc::clone(&repo));
    let mut display = Display::new();
    let mut runtime = ClientRuntime::new(make_clerk());
    match runtime.resume(&mut display).unwrap() {
        ResyncAction::ReceivedOutstanding { rid, reply } => {
            assert_eq!(rid, rrq_core::rid::Rid::new("rc", 1));
            assert_eq!(reply.body, b"queued before outage");
        }
        other => panic!("expected ReceivedOutstanding, got {other:?}"),
    }

    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
}

/// Message accounting for the §5 Send-mode claim: the one-way mode uses one
/// message per send, the acked mode two (call + ack).
#[test]
fn one_way_send_saves_messages() {
    let bus = NetworkBus::new(19);
    let repo = Arc::new(Repository::create("counting").unwrap());
    repo.create_queue_defaults("req").unwrap();
    let _guard = QmRpcServer::spawn(&bus, "qm", Arc::clone(&repo));

    let acked = RemoteQm::new(&bus, "acked-ep", "qm");
    acked.register("req", "a", false).unwrap();
    for _ in 0..5 {
        acked.enqueue("req", "a", b"x", Default::default()).unwrap();
    }
    let (calls, one_ways) = acked.message_counts();
    assert_eq!((calls, one_ways), (6, 0)); // register + 5 acked enqueues

    let oneway = RemoteQm::new(&bus, "oneway-ep", "qm");
    oneway.register("req", "b", false).unwrap();
    for _ in 0..5 {
        oneway
            .enqueue_unacked("req", "b", b"x", Default::default())
            .unwrap();
    }
    let (calls2, one_ways2) = oneway.message_counts();
    assert_eq!((calls2, one_ways2), (1, 5));
}
