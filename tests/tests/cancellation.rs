//! Request cancellation (§7): in-flight kill, cancel-while-executing, too
//! late to cancel, and saga compensation for multi-transaction requests.

use rrq_core::api::{LocalQm, QmApi};
use rrq_core::pipeline::{Pipeline, Serializability, StageFn, StageResult};
use rrq_core::request::Request;
use rrq_core::rid::Rid;
use rrq_core::saga::SagaLog;
use rrq_core::server::HandlerError;
use rrq_qm::ops::EnqueueOptions;
use rrq_storage::codec::Encode;
use rrq_tests::{echo_handler, local_clerk, repo_with_queues};
use rrq_workload::bank::{self, Transfer};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn cancel_before_processing_removes_request() {
    let repo = repo_with_queues("cancel1", "c1");
    // No server running: the request sits in the queue.
    let clerk = local_clerk(&repo, "c1");
    clerk.connect().unwrap();
    clerk
        .send("echo", b"never".to_vec(), Rid::new("c1", 1))
        .unwrap();
    assert_eq!(repo.qm().depth("req").unwrap(), 1);
    assert!(clerk.cancel_last_request().unwrap());
    assert_eq!(repo.qm().depth("req").unwrap(), 0);

    // A server coming up later finds nothing.
    let (_servers, handles, stop) =
        rrq_core::server::spawn_pool(&repo, "req", 1, echo_handler()).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(repo.qm().depth("reply.c1").unwrap(), 0, "no reply produced");
}

#[test]
fn cancel_while_executing_aborts_server_transaction() {
    let repo = repo_with_queues("cancel2", "c1");
    // A slow handler so we can cancel mid-execution.
    let gate = Arc::new(AtomicBool::new(false));
    let gate2 = Arc::clone(&gate);
    let handler: rrq_core::server::Handler = Arc::new(move |_ctx, _req| {
        // Signal we started, then dawdle.
        gate2.store(true, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(300));
        Ok(rrq_core::server::HandlerOutcome::Reply(
            b"too late?".to_vec(),
        ))
    });
    let (_servers, handles, stop) = rrq_core::server::spawn_pool(&repo, "req", 1, handler).unwrap();

    let clerk = local_clerk(&repo, "c1");
    clerk.connect().unwrap();
    clerk
        .send("slow", b"x".to_vec(), Rid::new("c1", 1))
        .unwrap();
    // Wait until the server has dequeued it.
    while !gate.load(Ordering::Relaxed) {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(clerk.cancel_last_request().unwrap(), "kill accepted");

    // The server's commit must fail; the element is deleted (not retried)
    // and no reply is ever delivered.
    std::thread::sleep(Duration::from_millis(500));
    assert_eq!(repo.qm().depth("req").unwrap(), 0);
    assert_eq!(repo.qm().depth("reply.c1").unwrap(), 0);
    // The effect (the reply enqueue) was rolled back with the transaction.

    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn cancel_after_processing_is_too_late() {
    let repo = repo_with_queues("cancel3", "c1");
    let (_servers, handles, stop) =
        rrq_core::server::spawn_pool(&repo, "req", 1, echo_handler()).unwrap();
    let clerk = local_clerk(&repo, "c1");
    clerk.connect().unwrap();
    clerk
        .send("echo", b"done".to_vec(), Rid::new("c1", 1))
        .unwrap();
    let reply = clerk.receive(b"").unwrap();
    assert_eq!(reply.body, b"done");
    assert!(
        !clerk.cancel_last_request().unwrap(),
        "§7: cancellation fails once processing committed"
    );
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
}

/// §7's saga path: a 3-stage transfer is cancelled after stage 0 (the debit)
/// committed. The compensation restores the debited money.
#[test]
fn late_cancel_compensates_committed_stages() {
    let repo = Arc::new(rrq_qm::repository::Repository::create("cancel-saga").unwrap());
    for q in ["xfer0", "xfer1", "xfer2", "comp", "reply.c1"] {
        repo.create_queue_defaults(q).unwrap();
    }
    bank::seed_accounts(&repo, 2, 1_000).unwrap();
    let saga = Arc::new(SagaLog::new(Arc::clone(repo.store())));

    // A pipeline whose stage 0 records its compensation and whose stage 1
    // parks forever (so we can cancel between stages deterministically).
    let saga2 = Arc::clone(&saga);
    let stage_fn: StageFn = Arc::new(move |ctx, req, i| {
        let t = Transfer::decode(&req.body).map_err(|e| HandlerError::Reject(e.to_string()))?;
        match i {
            0 => {
                // Debit + record compensation in the same transaction.
                let txn = ctx.txn.id().raw();
                let key = format!("bank/acct/{:08}", t.from).into_bytes();
                let bal = ctx
                    .repo
                    .store()
                    .get(Some(txn), &key)
                    .map_err(|e| HandlerError::Abort(e.to_string()))?
                    .map(|raw| i64::from_le_bytes(raw.try_into().unwrap_or([0; 8])))
                    .unwrap_or(0);
                ctx.repo
                    .store()
                    .put(txn, &key, &(bal - t.amount).to_le_bytes())
                    .map_err(|e| HandlerError::Abort(e.to_string()))?;
                saga2
                    .record(txn, &req.rid, 0, "undo-debit", &req.body)
                    .map_err(|e| HandlerError::Abort(e.to_string()))?;
                Ok(StageResult::Next(b"debited".to_vec()))
            }
            _ => {
                // Never reached in this test (we cancel first); if reached,
                // park the request by aborting forever.
                Err(HandlerError::Abort("parked".into()))
            }
        }
    });
    let pipeline = Pipeline {
        queues: vec!["xfer0".into(), "xfer1".into()],
        stage_fn,
        mode: Serializability::None,
    };
    let servers = pipeline.build_servers(&repo).unwrap();
    // Only run stage 0's server, so the request stops after the debit.
    let stop = Arc::new(AtomicBool::new(false));
    let h = servers[0].spawn(Arc::clone(&stop));

    let api = LocalQm::new(Arc::clone(&repo));
    api.register("xfer0", "c1", false).unwrap();
    let rid = Rid::new("c1", 1);
    let t = Transfer {
        from: 0,
        to: 1,
        amount: 400,
    };
    let req = Request::new(rid.clone(), "reply.c1", "transfer", t.encode());
    api.enqueue(
        "xfer0",
        "c1",
        &req.encode_to_vec(),
        EnqueueOptions::default(),
    )
    .unwrap();

    // Wait for stage 0 to commit (debit visible, request parked in xfer1).
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while bank::balance(&repo, 0).unwrap() != 600 {
        assert!(std::time::Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(bank::total_money(&repo, 2).unwrap(), 1_600, "mid-request");

    // Cancel: kill the in-flight element for stage 1, then compensate.
    let parked = repo.qm().query("xfer1", &rrq_qm::Predicate::True).unwrap();
    assert_eq!(parked.len(), 1);
    assert!(repo.qm().kill_element(parked[0].eid).unwrap());
    let n = saga.compensate(&repo, &rid, "comp", "reply.c1").unwrap();
    assert_eq!(n, 1);

    // Run the compensation server.
    let comp = bank::compensation_server(&repo, "comp").unwrap();
    let ch = comp.spawn(Arc::clone(&stop));
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while bank::balance(&repo, 0).unwrap() != 1_000 {
        assert!(
            std::time::Instant::now() < deadline,
            "compensation never ran"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(bank::total_money(&repo, 2).unwrap(), 2_000, "restored");
    assert!(saga.steps(&rid).unwrap().is_empty(), "saga log cleared");

    stop.store(true, Ordering::Relaxed);
    h.join().unwrap();
    ch.join().unwrap();
}
