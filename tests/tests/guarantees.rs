//! End-to-end verification of the §3 Client Model guarantees under client
//! crash schedules: Request-Reply Matching, Exactly-Once Request-Processing,
//! At-Least-Once Reply-Processing.

use rrq_core::device::{Display, TicketPrinter};
use rrq_core::rid::Rid;
use rrq_core::server::spawn_pool;
use rrq_sim::driver::{ClientCrashDriver, CrashPoint};
use rrq_sim::oracle::EffectLedger;
use rrq_sim::schedule::CrashSchedule;
use rrq_tests::{echo_handler, local_clerk, repo_with_queues};
use std::sync::atomic::Ordering;

const N: u64 = 12;

fn expected_rids(client: &str) -> Vec<Rid> {
    (1..=N).map(|s| Rid::new(client, s)).collect()
}

/// Run the crash driver against an instrumented echo server pool and return
/// (driver report, exactly-once violations, duplicate prints?).
fn run_scenario(
    name: &str,
    schedule: CrashSchedule,
    use_printer: bool,
) -> (rrq_sim::DriverReport, Vec<String>, bool) {
    let client = "c1";
    let repo = repo_with_queues(name, client);
    let handler = EffectLedger::instrument(echo_handler());
    let (_servers, handles, stop) = spawn_pool(&repo, "req", 2, handler).unwrap();

    let driver = ClientCrashDriver::new(|| local_clerk(&repo, client), "echo");
    let body = |serial: u64| format!("payload-{serial}").into_bytes();

    let (report, duplicate_prints) = if use_printer {
        let mut printer = TicketPrinter::new();
        let report = driver
            .run(N, |s| schedule.get(s), body, &mut printer)
            .unwrap();
        (report, printer.has_duplicate_prints())
    } else {
        let mut display = Display::new();
        let report = driver
            .run(N, |s| schedule.get(s), body, &mut display)
            .unwrap();
        (report, false)
    };

    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    let violations = EffectLedger::violations(&repo, &expected_rids(client)).unwrap();
    (report, violations, duplicate_prints)
}

#[test]
fn no_crashes_baseline() {
    let (report, violations, _) = run_scenario("g-none", CrashSchedule::none(), true);
    assert_eq!(report.completed, N);
    assert_eq!(report.incarnations, 1);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn crash_after_every_send() {
    let (report, violations, dups) = run_scenario(
        "g-send",
        CrashSchedule::every(N, CrashPoint::AfterSend),
        true,
    );
    assert_eq!(report.completed, N);
    assert_eq!(report.resync_received, N, "every reply picked up at resync");
    assert!(
        violations.is_empty(),
        "exactly-once violated: {violations:?}"
    );
    assert!(!dups, "testable device must prevent duplicate prints");
}

#[test]
fn crash_after_every_receive_reprocesses() {
    let (report, violations, dups) = run_scenario(
        "g-recv",
        CrashSchedule::every(N, CrashPoint::AfterReceive),
        true,
    );
    assert_eq!(report.completed, N);
    assert_eq!(
        report.resync_reprocessed, N,
        "each reply reprocessed via Rereceive"
    );
    assert!(violations.is_empty(), "{violations:?}");
    // AfterReceive crashes happen BEFORE processing, so even the printer
    // never prints twice.
    assert!(!dups);
}

#[test]
fn crash_after_every_process_detects_already_processed() {
    let (report, violations, dups) = run_scenario(
        "g-proc",
        CrashSchedule::every(N, CrashPoint::AfterProcess),
        true,
    );
    assert_eq!(report.completed, N);
    assert_eq!(
        report.resync_already_processed, N,
        "testable device proves the reply was processed"
    );
    assert!(violations.is_empty(), "{violations:?}");
    assert!(
        !dups,
        "exactly-once reply processing with a testable device"
    );
}

#[test]
fn random_crash_schedule_preserves_all_guarantees() {
    for seed in [1u64, 7, 42] {
        let (report, violations, dups) = run_scenario(
            &format!("g-rand{seed}"),
            CrashSchedule::random(N, 0.5, seed),
            true,
        );
        assert_eq!(report.completed, N, "seed {seed}");
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        assert!(!dups, "seed {seed}");
    }
}

#[test]
fn display_without_ckpt_still_at_least_once() {
    // With an idempotent display, at-least-once is the guarantee; the
    // display's duplicate detection absorbs repeats.
    let (report, violations, _) = run_scenario("g-disp", CrashSchedule::random(N, 0.4, 99), false);
    assert_eq!(report.completed, N);
    assert!(violations.is_empty(), "{violations:?}");
}
