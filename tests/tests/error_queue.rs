//! The §5 termination guarantee end-to-end: a request whose handler always
//! aborts cannot cyclically restart the server forever — the error queue
//! catches it, and the reaper turns it into the §3 "we will not attempt this
//! any more" Failed reply, so the client's Receive completes.

use rrq_core::request::ReplyStatus;
use rrq_core::rid::Rid;
use rrq_core::server::{Handler, HandlerError, Server, ServerConfig};
use rrq_qm::meta::QueueMeta;
use rrq_qm::repository::Repository;
use rrq_tests::local_clerk;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

#[test]
fn poisoned_request_gets_failed_reply_via_error_queue() {
    let repo = Arc::new(Repository::create("errq").unwrap());
    let mut meta = QueueMeta::with_defaults("req");
    meta.retry_limit = 3;
    repo.qm().create_queue(meta).unwrap();
    repo.create_queue_defaults("reply.c1").unwrap();

    let attempts = Arc::new(AtomicU32::new(0));
    let attempts2 = Arc::clone(&attempts);
    let handler: Handler = Arc::new(move |_ctx, _req| {
        attempts2.fetch_add(1, Ordering::Relaxed);
        Err(HandlerError::Abort("always fails".into()))
    });
    let server = Server::new(Arc::clone(&repo), ServerConfig::new("s", "req"), handler).unwrap();
    let reaper = Server::failed_reply_reaper(Arc::clone(&repo), "reaper", "req.errors").unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let h1 = server.spawn(Arc::clone(&stop));
    let h2 = reaper.spawn(Arc::clone(&stop));

    let clerk = local_clerk(&repo, "c1");
    clerk.connect().unwrap();
    clerk
        .send("doomed", b"x".to_vec(), Rid::new("c1", 1))
        .unwrap();
    let reply = clerk.receive(b"").unwrap();
    assert_eq!(reply.rid, Rid::new("c1", 1), "request-reply matching holds");
    assert_eq!(reply.status, ReplyStatus::Failed);
    let msg = String::from_utf8_lossy(&reply.body).to_string();
    assert!(
        msg.contains("gave up") || msg.contains("exhausted"),
        "{msg}"
    );

    // Exactly retry_limit attempts, then it stopped — no cyclic restart.
    assert_eq!(attempts.load(Ordering::Relaxed), 3);
    assert_eq!(repo.qm().depth("req").unwrap(), 0);
    assert_eq!(repo.qm().depth("req.errors").unwrap(), 0, "reaped");

    stop.store(true, Ordering::Relaxed);
    h1.join().unwrap();
    h2.join().unwrap();
}

#[test]
fn healthy_requests_unaffected_by_poison_neighbours() {
    let repo = Arc::new(Repository::create("errq2").unwrap());
    let mut meta = QueueMeta::with_defaults("req");
    meta.retry_limit = 2;
    repo.qm().create_queue(meta).unwrap();
    repo.create_queue_defaults("reply.c1").unwrap();

    let handler: Handler = Arc::new(|_ctx, req| {
        if req.body == b"poison" {
            Err(HandlerError::Abort("bad".into()))
        } else {
            Ok(rrq_core::server::HandlerOutcome::Reply(req.body.clone()))
        }
    });
    let server = Server::new(Arc::clone(&repo), ServerConfig::new("s", "req"), handler).unwrap();
    let reaper = Server::failed_reply_reaper(Arc::clone(&repo), "reaper", "req.errors").unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let h1 = server.spawn(Arc::clone(&stop));
    let h2 = reaper.spawn(Arc::clone(&stop));

    let clerk = local_clerk(&repo, "c1");
    clerk.connect().unwrap();
    // poison, then good — the poison must not wedge the queue.
    clerk
        .send("op", b"poison".to_vec(), Rid::new("c1", 1))
        .unwrap();
    let r1 = clerk.receive(b"").unwrap();
    assert_eq!(r1.status, ReplyStatus::Failed);
    clerk
        .send("op", b"good".to_vec(), Rid::new("c1", 2))
        .unwrap();
    let r2 = clerk.receive(b"").unwrap();
    assert_eq!(r2.status, ReplyStatus::Ok);
    assert_eq!(r2.body, b"good");

    stop.store(true, Ordering::Relaxed);
    h1.join().unwrap();
    h2.join().unwrap();
}
