//! Property-based verification: for ANY crash schedule over the Fig 1
//! states, the three §3 guarantees hold with a testable device.

use proptest::prelude::*;
use rrq_core::device::TicketPrinter;
use rrq_core::rid::Rid;
use rrq_core::server::spawn_pool;
use rrq_sim::driver::{ClientCrashDriver, CrashPoint};
use rrq_sim::oracle::EffectLedger;
use rrq_tests::{echo_handler, local_clerk, repo_with_queues};
use std::collections::HashMap;
use std::sync::atomic::Ordering;

fn crash_point_strategy() -> impl Strategy<Value = Option<CrashPoint>> {
    prop_oneof![
        3 => Just(None),
        1 => Just(Some(CrashPoint::AfterSend)),
        1 => Just(Some(CrashPoint::AfterReceive)),
        1 => Just(Some(CrashPoint::AfterProcess)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))] // each case spins up real threads; keep it tight

    #[test]
    fn any_crash_schedule_preserves_guarantees(
        points in proptest::collection::vec(crash_point_strategy(), 1..7),
    ) {
        let n = points.len() as u64;
        let schedule: HashMap<u64, CrashPoint> = points
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|p| (i as u64 + 1, p)))
            .collect();

        let client = "pc";
        let repo = repo_with_queues(&format!("prop-{n}-{}", schedule.len()), client);
        let handler = EffectLedger::instrument(echo_handler());
        let (_servers, handles, stop) = spawn_pool(&repo, "req", 2, handler).unwrap();

        let driver = ClientCrashDriver::new(|| local_clerk(&repo, client), "echo");
        let mut printer = TicketPrinter::new();
        let report = driver
            .run(
                n,
                |s| schedule.get(&s).copied(),
                |s| s.to_le_bytes().to_vec(),
                &mut printer,
            )
            .unwrap();

        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }

        // At-least-once reply processing: every request completed.
        prop_assert_eq!(report.completed, n);
        // Exactly-once request processing.
        let expected: Vec<Rid> = (1..=n).map(|s| Rid::new(client, s)).collect();
        let violations = EffectLedger::violations(&repo, &expected).unwrap();
        prop_assert!(violations.is_empty(), "{:?}", violations);
        // Exactly-once reply processing with the testable device.
        prop_assert!(!printer.has_duplicate_prints());
        // Every ticket printed corresponds to a real request, in order.
        prop_assert_eq!(printer.printed().len() as u64, n);
    }
}
