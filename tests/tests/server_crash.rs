//! Server-side failures (§5): requests survive node crashes, each is
//! processed exactly once, and multi-transaction pipelines resume
//! mid-request after recovery (§6).

use rrq_core::api::{LocalQm, QmApi};
use rrq_core::pipeline::Serializability;
use rrq_core::request::{Reply, Request};
use rrq_core::rid::Rid;
use rrq_core::server::Handler;
use rrq_qm::ops::{DequeueOptions, EnqueueOptions};
use rrq_sim::node::{ServerFactory, ServerNodeSim};
use rrq_sim::oracle::EffectLedger;
use rrq_storage::codec::{Decode, Encode};
use rrq_workload::bank::{self, Transfer};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pump requests into a node that crashes repeatedly; every request must be
/// processed exactly once and every reply delivered.
#[test]
fn exactly_once_across_repeated_node_crashes() {
    let handler_factory: Arc<dyn Fn() -> Handler + Send + Sync> = Arc::new(|| {
        EffectLedger::instrument(Arc::new(|_ctx, req: &Request| {
            Ok(rrq_core::server::HandlerOutcome::Reply(
                format!("ok {}", req.rid).into_bytes(),
            ))
        }))
    });
    let mut node = ServerNodeSim::new(
        "crashy",
        "req",
        2,
        vec!["req".into(), "reply.c".into()],
        handler_factory,
    );
    node.start().unwrap();

    const N: u64 = 20;
    let mut received = 0u64;
    let mut sent = 0u64;
    let mut expected = Vec::new();
    while received < N {
        // (Re)create the client's view of the node.
        let api = LocalQm::new(node.repo());
        api.register("req", "c", false).unwrap();
        api.register("reply.c", "c", false).unwrap();
        // Send a few, crash the node, collect replies after restart.
        for _ in 0..4 {
            if sent < N {
                sent += 1;
                let rid = Rid::new("c", sent);
                expected.push(rid.clone());
                let req = Request::new(rid, "reply.c", "op", vec![]);
                api.enqueue("req", "c", &req.encode_to_vec(), EnqueueOptions::default())
                    .unwrap();
            }
        }
        // Let the servers make some progress, then pull the plug.
        std::thread::sleep(Duration::from_millis(30));
        node.crash();
        node.start().unwrap();
        let api = LocalQm::new(node.repo());
        // Drain all replies currently available (more may come later).
        while let Ok(elem) = api.dequeue(
            "reply.c",
            "c",
            DequeueOptions {
                block: Some(Duration::from_millis(400)),
                ..Default::default()
            },
        ) {
            let reply = Reply::decode_all(&elem.payload).unwrap();
            assert!(expected.contains(&reply.rid), "unknown reply {}", reply.rid);
            received += 1;
            if received == N {
                break;
            }
        }
        assert!(
            node.crash_count() < 40,
            "test runaway: {received}/{N} after {} crashes",
            node.crash_count()
        );
    }

    let violations = EffectLedger::violations(&node.repo(), &expected).unwrap();
    assert!(violations.is_empty(), "{violations:?}");
    assert!(node.crash_count() >= 4, "crashes actually happened");
}

/// The §6 funds-transfer pipeline: crash the node between stages; the
/// request resumes from its last committed stage and money is conserved.
#[test]
fn pipeline_resumes_after_crash_and_conserves_money() {
    let factory: ServerFactory = Arc::new(|repo| {
        let pipeline = bank::transfer_pipeline(["xfer0", "xfer1", "xfer2"], Serializability::None);
        pipeline.build_servers(repo)
    });
    let mut node = ServerNodeSim::with_factory(
        "bank-node",
        vec![
            "xfer0".into(),
            "xfer1".into(),
            "xfer2".into(),
            "reply.c".into(),
        ],
        factory,
    );
    node.start().unwrap();
    bank::seed_accounts(&node.repo(), 4, 10_000).unwrap();

    const TRANSFERS: u64 = 8;
    let api = LocalQm::new(node.repo());
    api.register("xfer0", "c", false).unwrap();
    for i in 0..TRANSFERS {
        let t = Transfer {
            from: (i % 4) as u32,
            to: ((i + 1) % 4) as u32,
            amount: 100,
        };
        let req = Request::new(Rid::new("c", i + 1), "reply.c", "transfer", t.encode());
        api.enqueue(
            "xfer0",
            "c",
            &req.encode_to_vec(),
            EnqueueOptions::default(),
        )
        .unwrap();
    }

    // Crash the node a few times while the pipeline grinds through.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut received = 0u64;
    while received < TRANSFERS {
        assert!(Instant::now() < deadline, "only {received}/{TRANSFERS}");
        std::thread::sleep(Duration::from_millis(40));
        node.crash();
        node.start().unwrap();
        let api = LocalQm::new(node.repo());
        api.register("reply.c", "c", false).unwrap();
        while received < TRANSFERS {
            match api.dequeue(
                "reply.c",
                "c",
                DequeueOptions {
                    block: Some(Duration::from_millis(500)),
                    ..Default::default()
                },
            ) {
                Ok(_) => received += 1,
                Err(_) => break,
            }
        }
    }

    let repo = node.repo();
    assert_eq!(
        bank::total_money(&repo, 4).unwrap(),
        40_000,
        "conservation across crashes"
    );
    assert_eq!(
        bank::clearing_count(&repo).unwrap(),
        TRANSFERS as usize,
        "each transfer cleared exactly once"
    );
    // No request left anywhere in the pipeline.
    for q in ["xfer0", "xfer1", "xfer2"] {
        assert_eq!(repo.qm().depth(q).unwrap(), 0, "{q} drained");
    }
}
