//! Interactive requests (§8): the pseudo-conversational mapping and the
//! single-transaction conversation with logged, replayable intermediate I/O.

use rrq_core::api::LocalQm;
use rrq_core::conversation::{spawn_conversation_endpoint, Conversation, IoLog, RpcConversation};
use rrq_core::interactive::InteractiveClient;
use rrq_core::request::{ReplyStatus, Request};
use rrq_core::rid::Rid;
use rrq_core::server::{Handler, HandlerError, HandlerOutcome, Server, ServerConfig};
use rrq_net::rpc::RpcClient;
use rrq_net::NetworkBus;
use rrq_qm::repository::Repository;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

/// A 3-round pseudo-conversational booking: ask for a date, then a seat
/// class, then confirm.
#[test]
fn pseudo_conversational_three_rounds() {
    let repo = Arc::new(Repository::create("pconv").unwrap());
    for q in ["conv0", "conv1", "conv2", "reply.c"] {
        repo.create_queue_defaults(q).unwrap();
    }
    // Stage handlers on three queues; state accumulates the answers.
    let make_handler = |stage: usize| -> Handler {
        Arc::new(move |_ctx, req: &Request| match stage {
            0 => Ok(HandlerOutcome::IntermediateReply {
                body: b"Which date?".to_vec(),
                next_queue: "conv1".into(),
                state: b"start".to_vec(),
            }),
            1 => {
                let mut state = req.state.clone();
                state.extend_from_slice(b"|date=");
                state.extend_from_slice(&req.body);
                Ok(HandlerOutcome::IntermediateReply {
                    body: b"Which class?".to_vec(),
                    next_queue: "conv2".into(),
                    state,
                })
            }
            _ => {
                let mut state = req.state.clone();
                state.extend_from_slice(b"|class=");
                state.extend_from_slice(&req.body);
                state.extend_from_slice(b"|booked");
                Ok(HandlerOutcome::Reply(state))
            }
        })
    };
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for (i, q) in ["conv0", "conv1", "conv2"].iter().enumerate() {
        let s = Server::new(
            Arc::clone(&repo),
            ServerConfig::new(format!("conv-s{i}"), *q),
            make_handler(i),
        )
        .unwrap();
        handles.push(s.spawn(Arc::clone(&stop)));
    }

    let api = Arc::new(LocalQm::new(Arc::clone(&repo)));
    let client = InteractiveClient::new(api, "c", "reply.c");
    let mut answers = vec![b"tuesday".to_vec(), b"economy".to_vec()].into_iter();
    let outcome = client
        .run(
            "conv0",
            Rid::new("c", 1),
            "book",
            b"trip".to_vec(),
            |_prompt| answers.next().expect("script exhausted"),
        )
        .unwrap();
    assert_eq!(outcome.rounds, 2);
    assert_eq!(
        outcome.prompts,
        vec![b"Which date?".to_vec(), b"Which class?".to_vec()]
    );
    assert_eq!(outcome.reply.status, ReplyStatus::Ok);
    assert_eq!(
        outcome.reply.body,
        b"start|date=tuesday|class=economy|booked".to_vec()
    );

    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
}

/// §8.3: the single-transaction conversation. The server transaction aborts
/// after collecting two inputs; on retry, both inputs replay from the
/// client's I/O log — the user is not asked again.
#[test]
fn single_txn_conversation_replays_logged_io_after_abort() {
    let bus = NetworkBus::new(23);
    let repo = Arc::new(Repository::create("sconv").unwrap());
    repo.create_queue_defaults("req").unwrap();
    repo.create_queue_defaults("reply.c").unwrap();

    // Client side: conversation endpoint with scripted user + log.
    let log = Arc::new(IoLog::new());
    let asked = Arc::new(AtomicU32::new(0));
    let asked2 = Arc::clone(&asked);
    let user: rrq_core::conversation::UserFn = Arc::new(move |prompt| {
        asked2.fetch_add(1, Ordering::Relaxed);
        let mut v = b"user:".to_vec();
        v.extend_from_slice(prompt);
        v
    });
    let _conv_guard =
        spawn_conversation_endpoint(&bus, "c-conv", Arc::clone(&log), Arc::clone(&user));

    // Server side: a conversational handler that aborts its first attempt
    // AFTER two solicitations (losing the transaction, not the I/O).
    let attempts = Arc::new(AtomicU32::new(0));
    let attempts2 = Arc::clone(&attempts);
    let bus2 = bus.clone();
    let handler: Handler = Arc::new(move |_ctx, req: &Request| {
        let n = attempts2.fetch_add(1, Ordering::Relaxed);
        let rpc = RpcClient::new(&bus2, &format!("conv-srv-{}-{n}", req.rid.serial));
        let mut conv = RpcConversation::new(rpc, "c-conv", req.rid.to_attr());
        let a = conv.solicit(b"first?")?;
        let b = conv.solicit(b"second?")?;
        if n == 0 {
            return Err(HandlerError::Abort("injected abort after I/O".into()));
        }
        let mut out = a;
        out.push(b'+');
        out.extend_from_slice(&b);
        Ok(HandlerOutcome::Reply(out))
    });
    let server = Server::new(
        Arc::clone(&repo),
        ServerConfig::new("conv-server", "req"),
        handler,
    )
    .unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let h = server.spawn(Arc::clone(&stop));

    // Drive one request through.
    let clerk = rrq_tests::local_clerk(&repo, "c");
    clerk.connect().unwrap();
    clerk.send("converse", vec![], Rid::new("c", 1)).unwrap();
    let reply = clerk.receive(b"").unwrap();
    assert_eq!(reply.body, b"user:first?+user:second?".to_vec());

    // The user answered each prompt exactly once; the retry replayed.
    assert_eq!(asked.load(Ordering::Relaxed), 2, "no re-solicitation");
    let stats = log.stats();
    assert_eq!(stats.fresh, 2);
    assert_eq!(stats.replayed, 2);
    assert_eq!(stats.divergences, 0);
    assert_eq!(
        attempts.load(Ordering::Relaxed),
        2,
        "one abort, one success"
    );

    stop.store(true, Ordering::Relaxed);
    h.join().unwrap();
}

/// §8.3's divergence rule: when the retry's output differs, the remaining
/// logged input is discarded and the user is asked fresh.
#[test]
fn divergent_replay_discards_stale_input() {
    let bus = NetworkBus::new(29);
    let repo = Arc::new(Repository::create("sconv2").unwrap());
    repo.create_queue_defaults("req").unwrap();
    repo.create_queue_defaults("reply.c").unwrap();

    let log = Arc::new(IoLog::new());
    let asked = Arc::new(AtomicU32::new(0));
    let asked2 = Arc::clone(&asked);
    let user: rrq_core::conversation::UserFn = Arc::new(move |prompt| {
        asked2.fetch_add(1, Ordering::Relaxed);
        prompt.to_vec()
    });
    let _conv_guard =
        spawn_conversation_endpoint(&bus, "c-conv2", Arc::clone(&log), Arc::clone(&user));

    let attempts = Arc::new(AtomicU32::new(0));
    let attempts2 = Arc::clone(&attempts);
    let bus2 = bus.clone();
    let handler: Handler = Arc::new(move |_ctx, req: &Request| {
        let n = attempts2.fetch_add(1, Ordering::Relaxed);
        let rpc = RpcClient::new(&bus2, &format!("conv2-srv-{}-{n}", req.rid.serial));
        let mut conv = RpcConversation::new(rpc, "c-conv2", req.rid.to_attr());
        let _a = conv.solicit(b"same-first")?;
        // Second prompt differs between incarnations.
        let prompt: &[u8] = if n == 0 { b"old-second" } else { b"NEW-second" };
        let b = conv.solicit(prompt)?;
        if n == 0 {
            return Err(HandlerError::Abort("abort".into()));
        }
        Ok(HandlerOutcome::Reply(b))
    });
    let server = Server::new(
        Arc::clone(&repo),
        ServerConfig::new("conv2-server", "req"),
        handler,
    )
    .unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let h = server.spawn(Arc::clone(&stop));

    let clerk = rrq_tests::local_clerk(&repo, "c");
    clerk.connect().unwrap();
    clerk.send("converse", vec![], Rid::new("c", 1)).unwrap();
    let reply = clerk.receive(b"").unwrap();
    assert_eq!(reply.body, b"NEW-second".to_vec());

    let stats = log.stats();
    assert_eq!(stats.replayed, 1, "only the matching first round replayed");
    assert_eq!(stats.divergences, 1);
    assert_eq!(stats.fresh, 3, "2 initial + 1 fresh for the new prompt");
    assert_eq!(asked.load(Ordering::Relaxed), 3);

    stop.store(true, Ordering::Relaxed);
    h.join().unwrap();
}
