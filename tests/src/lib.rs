//! Shared fixtures for the cross-crate integration tests.

use rrq_core::api::LocalQm;
use rrq_core::clerk::{Clerk, ClerkConfig, SendMode};
use rrq_core::server::{Handler, HandlerOutcome};
use rrq_qm::repository::Repository;
use std::sync::Arc;
use std::time::Duration;

/// A repository with the standard request/reply queues for `client_id`.
pub fn repo_with_queues(name: &str, client_id: &str) -> Arc<Repository> {
    let repo = Arc::new(Repository::create(name).unwrap());
    repo.create_queue_defaults("req").unwrap();
    repo.create_queue_defaults(&format!("reply.{client_id}"))
        .unwrap();
    repo
}

/// A clerk over a local QM with a short receive window for tests.
pub fn local_clerk(repo: &Arc<Repository>, client_id: &str) -> Clerk {
    let api = Arc::new(LocalQm::new(Arc::clone(repo)));
    let mut cfg = ClerkConfig::new(client_id, "req");
    cfg.receive_block = Duration::from_secs(10);
    cfg.send_mode = SendMode::Acked;
    Clerk::new(api, cfg)
}

/// An echo handler: replies with the request body.
pub fn echo_handler() -> Handler {
    Arc::new(|_ctx, req| Ok(HandlerOutcome::Reply(req.body.clone())))
}
