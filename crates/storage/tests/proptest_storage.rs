//! Property-based tests for the storage substrate.
//!
//! The central invariant, from the paper's §2 failure argument: after *any*
//! crash, the recovered store contains exactly the effects of committed
//! transactions — never a partial transaction, never a lost committed one.

use proptest::prelude::*;
use rrq_storage::disk::{CrashStyle, SimDisk};
use rrq_storage::kv::{KvOptions, KvStore};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A scripted action against the store.
#[derive(Debug, Clone)]
enum Action {
    Put { txn: u8, key: u8, val: u16 },
    Delete { txn: u8, key: u8 },
    Commit { txn: u8 },
    Abort { txn: u8 },
    Checkpoint,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        4 => (0u8..4, 0u8..16, any::<u16>())
            .prop_map(|(txn, key, val)| Action::Put { txn, key, val }),
        2 => (0u8..4, 0u8..16).prop_map(|(txn, key)| Action::Delete { txn, key }),
        3 => (0u8..4).prop_map(|txn| Action::Commit { txn }),
        2 => (0u8..4).prop_map(|txn| Action::Abort { txn }),
        1 => Just(Action::Checkpoint),
    ]
}

/// Run the script against both the real store and a reference model that
/// applies writes only at commit. Then crash at an arbitrary point in the
/// suffix and check the recovered store equals the model at the last
/// committed point.
fn run_script(actions: Vec<Action>, crash_after: usize) {
    let wal = SimDisk::new();
    let ckpt = SimDisk::new();
    let (store, _) = KvStore::open(
        Arc::new(wal.clone()),
        Arc::new(ckpt.clone()),
        KvOptions::default(),
    )
    .unwrap();

    // Reference model: committed state and per-txn pending buffers.
    let mut committed: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    // key -> Some(value) for puts, None for deletes, in program order.
    type PendingWrites = Vec<(Vec<u8>, Option<Vec<u8>>)>;
    let mut pending: BTreeMap<u8, PendingWrites> = BTreeMap::new();
    let mut open: BTreeMap<u8, u64> = BTreeMap::new();
    let mut next_token = 1u64;

    // State of the model as of the crash point.
    let mut model_at_crash: Option<BTreeMap<Vec<u8>, Vec<u8>>> = None;

    for (i, act) in actions.iter().enumerate() {
        if i == crash_after {
            model_at_crash = Some(committed.clone());
            wal.crash(CrashStyle::DropVolatile);
            break;
        }
        match act {
            Action::Put { txn, key, val } => {
                let token = *open.entry(*txn).or_insert_with(|| {
                    let t = next_token;
                    next_token += 1;
                    store.begin(t).unwrap();
                    t
                });
                let k = vec![*key];
                let v = val.to_le_bytes().to_vec();
                store.put(token, &k, &v).unwrap();
                pending.entry(*txn).or_default().push((k, Some(v)));
            }
            Action::Delete { txn, key } => {
                let token = *open.entry(*txn).or_insert_with(|| {
                    let t = next_token;
                    next_token += 1;
                    store.begin(t).unwrap();
                    t
                });
                let k = vec![*key];
                store.delete(token, &k).unwrap();
                pending.entry(*txn).or_default().push((k, None));
            }
            Action::Commit { txn } => {
                if let Some(token) = open.remove(txn) {
                    store.commit(token).unwrap();
                    for (k, v) in pending.remove(txn).unwrap_or_default() {
                        match v {
                            Some(v) => {
                                committed.insert(k, v);
                            }
                            None => {
                                committed.remove(&k);
                            }
                        }
                    }
                }
            }
            Action::Abort { txn } => {
                if let Some(token) = open.remove(txn) {
                    store.abort(token).unwrap();
                    pending.remove(txn);
                }
            }
            Action::Checkpoint => {
                store.checkpoint().unwrap();
            }
        }
    }

    let expected = model_at_crash.unwrap_or(committed);

    // Recover and compare full contents.
    let (recovered, _) = KvStore::open(
        Arc::new(wal.clone()),
        Arc::new(ckpt.clone()),
        KvOptions::default(),
    )
    .unwrap();
    let got: BTreeMap<Vec<u8>, Vec<u8>> = recovered
        .scan_prefix(None, b"")
        .unwrap()
        .into_iter()
        .collect();
    assert_eq!(got, expected, "recovered state diverges from model");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Crash anywhere in a random script: recovery equals the reference model.
    #[test]
    fn recovery_matches_reference_model(
        actions in proptest::collection::vec(action_strategy(), 1..60),
        crash_frac in 0.0f64..1.0,
    ) {
        let crash_after = ((actions.len() as f64) * crash_frac) as usize;
        run_script(actions, crash_after);
    }

    /// Without a crash the final committed view also matches the model
    /// (crash point beyond the script length disables crashing).
    #[test]
    fn committed_view_matches_reference_model(
        actions in proptest::collection::vec(action_strategy(), 1..60),
    ) {
        let n = actions.len();
        run_script(actions, n + 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The WAL never yields a record it wasn't given, regardless of torn tail
    /// position.
    #[test]
    fn wal_scan_returns_prefix_of_appends(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..20),
        sync_every in 1usize..5,
        torn_keep in 0usize..64,
    ) {
        use rrq_storage::wal::{RecordKind, Wal};
        let disk = SimDisk::new();
        let wal = Wal::new(Arc::new(disk.clone()));
        let mut synced = 0usize;
        for (i, p) in payloads.iter().enumerate() {
            wal.append(i as u64, RecordKind::Custom(0x80), p).unwrap();
            if (i + 1) % sync_every == 0 {
                wal.sync().unwrap();
                synced = i + 1;
            }
        }
        disk.crash(CrashStyle::Torn { keep: torn_keep });
        let (recs, _) = wal.scan(0).unwrap();
        // Valid records must be a prefix of what was appended, at least
        // covering everything synced.
        assert!(recs.len() >= synced.min(payloads.len()));
        for (i, r) in recs.iter().enumerate() {
            if i < payloads.len() {
                // A torn tail may corrupt at most records after the synced
                // prefix; any record the scan *accepts* must be byte-correct.
                assert_eq!(r.txn, i as u64);
                assert_eq!(&r.payload, &payloads[i]);
            }
        }
    }
}
