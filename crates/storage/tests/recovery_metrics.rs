//! Recovery-side metrics match ground truth across every crash shape: redo
//! record counts, torn-tail truncations, in-doubt transactions, and (through
//! the queue manager, via the dev-only dependency) index rebuild size and
//! the depth gauge after a restart.

use rrq_obs::Session;
use rrq_storage::disk::{CrashStyle, Disk, SimDisk, TornWriteMode};
use rrq_storage::kv::{KvOptions, KvStore};
use rrq_storage::recovery::RecoveryReport;
use std::sync::Arc;

fn reopen(wal: &SimDisk, ckpt: &SimDisk) -> (Arc<KvStore>, RecoveryReport) {
    KvStore::open(
        Arc::new(wal.clone()),
        Arc::new(ckpt.clone()),
        KvOptions::default(),
    )
    .unwrap()
}

/// Two synced commits, an unsynced garbage tail, then a torn crash: every
/// mode must report exactly one truncation and replay exactly the two
/// committed records.
#[test]
fn recovery_counters_match_ground_truth_for_every_torn_mode() {
    for mode in TornWriteMode::ALL {
        let session = Session::start();
        let wal = SimDisk::new();
        let ckpt = SimDisk::new();
        let (store, _) = reopen(&wal, &ckpt);
        for txn in 1..=2u64 {
            store.begin(txn).unwrap();
            store
                .put(txn, format!("k{txn}").as_bytes(), b"durable")
                .unwrap();
            store.commit(txn).unwrap();
        }
        // A frame fragment that never reached a sync.
        wal.append(b"half-written frame bytes").unwrap();
        assert!(wal.volatile_len() > 0, "{mode:?}");
        wal.crash_torn(mode);
        ckpt.crash(CrashStyle::DropVolatile);
        drop(store);

        let before = session.snapshot();
        let (store2, report) = reopen(&wal, &ckpt);
        let delta = session.snapshot().diff(&before);

        assert_eq!(delta.counter("storage.recovery.runs"), 1, "{mode:?}");
        assert_eq!(report.replayed, 2, "{mode:?}");
        assert_eq!(
            delta.counter("storage.recovery.redo_records"),
            2,
            "{mode:?}: one redo per committed put"
        );
        assert_eq!(
            delta.counter("storage.recovery.torn_tail_truncations"),
            1,
            "{mode:?}: the torn tail must be cut exactly once"
        );
        assert_eq!(delta.counter("storage.recovery.in_doubt"), 0, "{mode:?}");
        assert_eq!(store2.get(None, b"k1").unwrap().unwrap(), b"durable");
    }
}

/// A clean crash (volatile bytes dropped, no torn frame) replays the same
/// work with zero truncations.
#[test]
fn clean_crash_recovery_reports_no_truncation() {
    let session = Session::start();
    let wal = SimDisk::new();
    let ckpt = SimDisk::new();
    let (store, _) = reopen(&wal, &ckpt);
    for txn in 1..=3u64 {
        store.begin(txn).unwrap();
        store.put(txn, format!("k{txn}").as_bytes(), b"v").unwrap();
        store.commit(txn).unwrap();
    }
    wal.crash(CrashStyle::DropVolatile);
    ckpt.crash(CrashStyle::DropVolatile);
    drop(store);

    let before = session.snapshot();
    let (_store2, report) = reopen(&wal, &ckpt);
    let delta = session.snapshot().diff(&before);
    assert_eq!(report.replayed, 3);
    assert_eq!(delta.counter("storage.recovery.runs"), 1);
    assert_eq!(delta.counter("storage.recovery.redo_records"), 3);
    assert_eq!(delta.counter("storage.recovery.torn_tail_truncations"), 0);
    assert_eq!(delta.counter("storage.recovery.in_doubt"), 0);
}

/// A prepared-but-undecided transaction surfaces in the in-doubt counter
/// and not in the redo count.
#[test]
fn prepared_transaction_counts_as_in_doubt_not_redo() {
    let session = Session::start();
    let wal = SimDisk::new();
    let ckpt = SimDisk::new();
    let (store, _) = reopen(&wal, &ckpt);
    store.begin(7).unwrap();
    store.put(7, b"x", b"1").unwrap();
    store.prepare(7).unwrap();
    wal.crash(CrashStyle::DropVolatile);
    ckpt.crash(CrashStyle::DropVolatile);
    drop(store);

    let before = session.snapshot();
    let (_store2, report) = reopen(&wal, &ckpt);
    let delta = session.snapshot().diff(&before);
    assert_eq!(report.in_doubt, vec![7]);
    assert_eq!(delta.counter("storage.recovery.in_doubt"), 1);
    assert_eq!(delta.counter("storage.recovery.redo_records"), 0);
    assert_eq!(delta.counter("storage.recovery.torn_tail_truncations"), 0);
}

/// Queue-manager recovery: the rebuild scan's element counter and the depth
/// gauge both land exactly on the number of surviving elements, for a clean
/// crash and for every torn-write mode.
#[test]
fn index_rebuild_metrics_match_survivors_for_every_crash_shape() {
    use rrq_qm::ops::EnqueueOptions;
    use rrq_qm::repository::{RepoDisks, Repository};

    let shapes = [
        None,
        Some(TornWriteMode::Midway),
        Some(TornWriteMode::FullLengthCorrupt),
        Some(TornWriteMode::HeaderOnly),
    ];
    for torn in shapes {
        let session = Session::start();
        let disks = RepoDisks::new();
        let (repo, _) = Repository::open("recovery-metrics", disks.clone()).unwrap();
        repo.create_queue_defaults("q").unwrap();
        let (h, _) = repo.qm().register("q", "c", false).unwrap();
        for i in 0..5u8 {
            repo.autocommit(|t| {
                repo.qm()
                    .enqueue(t.id().raw(), &h, &[i], EnqueueOptions::default())
            })
            .unwrap();
        }
        let (total, gauge) = repo.qm().depth_accounting();
        assert_eq!((total, gauge), (5, 5), "{torn:?}: pre-crash accounting");

        disks.crash_with(torn);
        drop(repo); // retires the old incarnation's gauge contribution

        let before = session.snapshot();
        let (repo2, _) = Repository::open("recovery-metrics", disks.clone()).unwrap();
        let delta = session.snapshot().diff(&before);
        assert_eq!(
            delta.counter("qm.recovery.index_rebuild"),
            5,
            "{torn:?}: rebuild scan re-inserts every durable element"
        );
        let (total, gauge) = repo2.qm().depth_accounting();
        assert_eq!(total, 5, "{torn:?}: all five elements survive");
        assert_eq!(gauge, 5, "{torn:?}: gauge re-arms to exactly the survivors");
    }
}
