//! Regression tests: every [`TornWriteMode`] leaves a tail that the WAL's
//! frame validation rejects on recovery, so a committed-but-unsynced
//! transaction cleanly vanishes instead of corrupting the store.
//!
//! Each test writes one durable (synced) transaction, one volatile
//! (unsynced) transaction, tears the volatile tail with one mode, and then
//! runs the real recovery path: `Wal::scan` must stop at the tear and
//! `recovery::replay` must redo only the durable transaction.

use rrq_storage::disk::{Disk, SimDisk, TornWriteMode};
use rrq_storage::kv::{KvOptions, KvStore, WriteOp};
use rrq_storage::recovery::replay;
use rrq_storage::wal::{RecordKind, Wal};
use std::sync::Arc;

fn put_payload(key: &[u8], value: &[u8]) -> Vec<u8> {
    WriteOp::Put {
        key: key.to_vec(),
        value: value.to_vec(),
    }
    .encode_payload()
}

/// Durable txn 1, volatile txn 2, then a torn crash with `mode`.
fn torn_log(mode: TornWriteMode) -> (SimDisk, Wal) {
    let disk = SimDisk::new();
    let wal = Wal::new(Arc::new(disk.clone()));
    wal.append(1, RecordKind::KvPut, &put_payload(b"k", b"durable"))
        .unwrap();
    wal.append(1, RecordKind::Commit, &[]).unwrap();
    wal.sync().unwrap();
    wal.append(2, RecordKind::KvPut, &put_payload(b"k", b"torn"))
        .unwrap();
    wal.append(2, RecordKind::Commit, &[]).unwrap();
    assert!(disk.volatile_len() > 0, "txn 2 must be unsynced");
    disk.crash_torn(mode);
    (disk, wal)
}

/// The shared oracle: recovery redoes exactly the durable transaction.
fn assert_only_durable_survives(wal: &Wal, mode: TornWriteMode) {
    let out = replay(wal).unwrap();
    assert_eq!(out.committed_txns, 1, "{mode:?}");
    assert_eq!(out.redo.len(), 1, "{mode:?}");
    match &out.redo[0] {
        WriteOp::Put { value, .. } => assert_eq!(value, b"durable", "{mode:?}"),
        other => panic!("{mode:?}: unexpected redo {other:?}"),
    }
    assert!(out.in_doubt.is_empty(), "{mode:?}");
}

#[test]
fn midway_tear_is_rejected_on_recovery() {
    let (disk, wal) = torn_log(TornWriteMode::Midway);
    // Part of the torn frame physically reached the platter...
    assert!(disk.durable_len() > 0);
    // ...but the scan must stop before it.
    let (records, valid_end) = wal.scan(0).unwrap();
    assert!(valid_end < wal.len(), "the torn half-frame is dead bytes");
    assert_eq!(records.len(), 2, "only txn 1's two records are valid");
    assert!(records.iter().all(|r| r.txn == 1));
    assert_only_durable_survives(&wal, TornWriteMode::Midway);
}

#[test]
fn full_length_corrupt_tear_is_caught_by_crc() {
    let (disk, wal) = torn_log(TornWriteMode::FullLengthCorrupt);
    let len_before = wal.len();
    // Every byte survived, with the very last one corrupted — so txn 2's
    // *interior* KvPut frame is intact and passes the scan, and only the CRC
    // over the final (commit) frame's body can reject that record.
    assert_eq!(disk.durable_len(), len_before);
    let (records, _) = wal.scan(0).unwrap();
    assert_eq!(records.len(), 3, "txn 2's put frame survives the scan");
    assert_eq!(records[2].txn, 2);
    // Without a durable commit, replay must still discard txn 2.
    assert_only_durable_survives(&wal, TornWriteMode::FullLengthCorrupt);
}

#[test]
fn header_only_tear_is_rejected_as_truncated() {
    let (_disk, wal) = torn_log(TornWriteMode::HeaderOnly);
    let (records, valid_end) = wal.scan(0).unwrap();
    // At most 6 bytes of the torn frame survive — less than a frame header,
    // so the scan treats the tail as truncated.
    assert!(wal.len() - valid_end <= 6);
    assert_eq!(records.len(), 2, "only txn 1's two records are valid");
    assert!(records.iter().all(|r| r.txn == 1));
    assert_only_durable_survives(&wal, TornWriteMode::HeaderOnly);
}

/// End-to-end through `KvStore`: a torn crash, a reopened store, *new
/// committed work*, and a second (clean) crash. The reopen must discard the
/// torn tail before appending, or the second recovery loses the new work.
#[test]
fn kvstore_discards_torn_tail_so_later_commits_survive() {
    for mode in TornWriteMode::ALL {
        let wal_disk = SimDisk::new();
        let ckpt_disk = SimDisk::new();
        let open = || {
            KvStore::open(
                Arc::new(wal_disk.clone()),
                Arc::new(ckpt_disk.clone()),
                KvOptions::default(),
            )
            .unwrap()
        };

        // Incarnation 1: one durable commit, one unsynced commit, torn crash.
        let (store, _) = open();
        store.begin(1).unwrap();
        store.put(1, b"k", b"durable").unwrap();
        store.commit(1).unwrap();
        let synced_len = wal_disk.durable_len();
        // Append an unsynced record directly (commit() would sync it).
        wal_disk.append(b"half-written frame bytes").unwrap();
        assert!(wal_disk.volatile_len() > 0, "{mode:?}");
        wal_disk.crash_torn(mode);
        drop(store);
        if mode == TornWriteMode::HeaderOnly {
            assert!(wal_disk.durable_len() <= synced_len + 6);
        }

        // Incarnation 2: recover, then commit fresh work.
        let (store, report) = open();
        assert_eq!(store.get(None, b"k").unwrap().unwrap(), b"durable");
        assert_eq!(report.committed_txns, 1, "{mode:?}");
        store.begin(2).unwrap();
        store.put(2, b"k2", b"after-tear").unwrap();
        store.commit(2).unwrap();
        drop(store);
        wal_disk.crash(rrq_storage::disk::CrashStyle::DropVolatile);

        // Incarnation 3: both commits must be visible.
        let (store, report) = open();
        assert_eq!(report.committed_txns, 2, "{mode:?}: new commit lost");
        assert_eq!(store.get(None, b"k").unwrap().unwrap(), b"durable");
        assert_eq!(store.get(None, b"k2").unwrap().unwrap(), b"after-tear");
    }
}

#[test]
fn every_mode_keeps_the_log_appendable_after_recovery() {
    // A restarted store appends fresh records after the torn tail was
    // discarded; they must scan back cleanly from the recovered prefix.
    for mode in TornWriteMode::ALL {
        let (_disk, wal) = torn_log(mode);
        let (_, valid_end) = wal.scan(0).unwrap();
        // Recovery truncates to the valid prefix before writing again
        // (modelled here by reset to the valid bytes, as KvStore::open does
        // with its checkpoint swap).
        let valid = wal.disk().read(0, valid_end as usize).unwrap();
        wal.disk().reset(valid).unwrap();
        wal.append(3, RecordKind::KvPut, &put_payload(b"k2", b"post"))
            .unwrap();
        wal.append(3, RecordKind::Commit, &[]).unwrap();
        wal.sync().unwrap();
        let out = replay(&wal).unwrap();
        assert_eq!(out.committed_txns, 2, "{mode:?}");
        assert_eq!(out.redo.len(), 2, "{mode:?}");
    }
}
