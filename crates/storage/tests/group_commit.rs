//! Crash-safety regression tests for group commit.
//!
//! The dangerous window group commit introduces: a follower's commit record
//! is made durable by the *leader's* sync, and the crash may land after that
//! sync but before the follower ever observes it (the "ack"). The write-ahead
//! rule still holds — the record is on the platter — so recovery must replay
//! the follower's transaction even though its thread never finished commit().
//! Symmetrically, an abort whose record is still volatile must never come
//! back as committed.

use rrq_storage::disk::{CrashStyle, Disk, SimDisk, TornWriteMode};
use rrq_storage::group_commit::GroupCommit;
use rrq_storage::kv::{KvOptions, KvStore};
use rrq_storage::recovery::replay;
use rrq_storage::wal::{RecordKind, Wal};
use std::sync::Arc;
use std::time::Duration;

fn grouped_opts(window_ms: u64) -> KvOptions {
    KvOptions {
        sync_on_commit: true,
        group_commit: true,
        group_commit_window: Duration::from_millis(window_ms),
    }
}

fn reopen(wal: &SimDisk, ckpt: &SimDisk) -> (Arc<KvStore>, rrq_storage::recovery::RecoveryReport) {
    KvStore::open(
        Arc::new(wal.clone()),
        Arc::new(ckpt.clone()),
        KvOptions::default(),
    )
    .unwrap()
}

/// The exact window from the issue, driven deterministically at the WAL
/// level: the leader's sync covers a follower's commit record, the crash
/// hits before the follower acks, and recovery must still replay both.
#[test]
fn crash_between_group_sync_and_follower_ack_loses_nothing() {
    let disk = SimDisk::new();
    let wal = Wal::new(Arc::new(disk.clone()));
    let gc = GroupCommit::new(Duration::ZERO);

    // Two committers reach their commit point; both records are appended.
    let put = |txn: u64, key: &[u8]| {
        let op = rrq_storage::kv::WriteOp::Put {
            key: key.to_vec(),
            value: b"v".to_vec(),
        };
        wal.append(txn, RecordKind::KvPut, &op.encode_payload())
            .unwrap();
    };
    put(1, b"leader");
    wal.append(1, RecordKind::Commit, &[]).unwrap();
    let leader_target = wal.len();
    put(2, b"follower");
    wal.append(2, RecordKind::Commit, &[]).unwrap();
    let follower_target = wal.len();

    // The leader's group sync covers the follower's record too.
    gc.sync_through(&wal, leader_target).unwrap();
    assert_eq!(disk.stats().syncs, 1);

    // CRASH: the follower never got to call sync_through (no ack).
    disk.crash(CrashStyle::DropVolatile);

    let out = replay(&wal).unwrap();
    assert_eq!(out.committed_txns, 2, "follower's commit was in the group");
    assert_eq!(out.redo.len(), 2);

    // After recovery the follower's target is durable without any new sync.
    gc.on_truncate(); // watermark conservative after restart
    gc.sync_through(&wal, follower_target).unwrap();
}

/// A storm of concurrent committers over a dallying coordinator: after every
/// thread's commit() returns and the machine crashes, every transaction is
/// recovered — and the disk saw fewer syncs than commits (groups formed).
#[test]
fn concurrent_commit_storm_survives_crash() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 5;
    let wal = SimDisk::new();
    let ckpt = SimDisk::new();
    let (store, _) = KvStore::open(
        Arc::new(wal.clone()),
        Arc::new(ckpt.clone()),
        grouped_opts(1),
    )
    .unwrap();

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    let txn = t * 1000 + i + 1;
                    store.begin(txn).unwrap();
                    store
                        .put(txn, format!("k/{t}/{i}").as_bytes(), b"v")
                        .unwrap();
                    store.commit(txn).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let commits = THREADS * PER_THREAD;
    let gstats = store.group_commit_stats();
    assert!(
        gstats.groups < gstats.requests || gstats.requests < commits,
        "batching must be visible: {gstats:?} over {commits} commits"
    );

    wal.crash(CrashStyle::DropVolatile);
    let (store2, report) = reopen(&wal, &ckpt);
    assert_eq!(report.committed_txns as u64, commits);
    for t in 0..THREADS {
        for i in 0..PER_THREAD {
            assert_eq!(
                store2
                    .get(None, format!("k/{t}/{i}").as_bytes())
                    .unwrap()
                    .as_deref(),
                Some(b"v".as_slice()),
                "commit k/{t}/{i} returned Ok before the crash — must survive"
            );
        }
    }
}

/// An aborted transaction whose `Abort` record was still volatile at crash
/// time must not be resurrected: its redo records are in the log (prepare
/// forced them) but recovery must keep it in-doubt / aborted, never
/// committed — even though committed neighbors in the same group replay.
#[test]
fn aborted_txn_is_not_resurrected_by_a_group_neighbor() {
    let wal = SimDisk::new();
    let ckpt = SimDisk::new();
    let (store, _) = KvStore::open(
        Arc::new(wal.clone()),
        Arc::new(ckpt.clone()),
        grouped_opts(0),
    )
    .unwrap();

    // Txn 7 prepares (its writes are forced to the log), then aborts; the
    // abort record stays volatile.
    store.begin(7).unwrap();
    store.put(7, b"ghost", b"boo").unwrap();
    store.prepare(7).unwrap();
    store.abort(7).unwrap();

    // A neighbor commits through the coordinator; its sync makes everything
    // before it durable — including txn 7's volatile abort record, and that
    // is fine: abort is what recovery should conclude anyway.
    store.begin(8).unwrap();
    store.put(8, b"alive", b"yes").unwrap();
    store.commit(8).unwrap();

    // Torn crash: the volatile tail (nothing, or a partial frame) is garbage.
    wal.crash_torn(TornWriteMode::Midway);
    let (store2, report) = reopen(&wal, &ckpt);
    assert_eq!(store2.get(None, b"alive").unwrap(), Some(b"yes".to_vec()));
    assert_eq!(store2.get(None, b"ghost").unwrap(), None, "not resurrected");
    // Whether the abort record survived decides in-doubt vs. resolved; both
    // end in abort, never commit.
    if report.in_doubt.contains(&7) {
        store2.abort(7).unwrap();
    }
    assert_eq!(store2.get(None, b"ghost").unwrap(), None);
}

/// The volatile abort record alone (no neighbor sync) also cannot resurrect:
/// crash drops it, the prepared txn surfaces as in-doubt, coordinator aborts.
#[test]
fn prepared_then_aborted_txn_stays_dead_across_crash() {
    let wal = SimDisk::new();
    let ckpt = SimDisk::new();
    let (store, _) = KvStore::open(
        Arc::new(wal.clone()),
        Arc::new(ckpt.clone()),
        grouped_opts(0),
    )
    .unwrap();
    store.begin(9).unwrap();
    store.put(9, b"zombie", b"no").unwrap();
    store.prepare(9).unwrap();
    store.abort(9).unwrap(); // record appended, never synced

    wal.crash(CrashStyle::DropVolatile);
    let (store2, report) = reopen(&wal, &ckpt);
    assert_eq!(report.in_doubt, vec![9], "abort record was lost: in-doubt");
    assert_eq!(store2.get(None, b"zombie").unwrap(), None);
    store2.abort(9).unwrap();
    assert_eq!(store2.get(None, b"zombie").unwrap(), None);

    wal.crash(CrashStyle::DropVolatile);
    let (store3, _) = reopen(&wal, &ckpt);
    assert_eq!(store3.get(None, b"zombie").unwrap(), None);
}
