//! Recovery equivalence: `wal_partitions = 1` vs `wal_partitions = N`.
//!
//! The partitioned WAL is an *implementation* change; the paper's §2
//! recoverability contract is partition-count-blind. This battery pins that
//! down as a property: for any random workload of overlapping transactions
//! (commits, aborts, prepares left in doubt, open stragglers, interleaved
//! checkpoints) and any crash — clean or with torn tails on a random subset
//! of logs — a store recovered from N partitioned logs is indistinguishable
//! from one recovered from the monolithic log: same key-value contents, same
//! in-doubt set, and the same contents again after resolving the in-doubt
//! transactions and after a post-recovery checkpoint + second crash.
//!
//! Why torn tails cannot break equivalence (and the one rule the generator
//! must respect): every record that *matters* after a crash — data + commit
//! records of committed transactions, data + prepare records of in-doubt
//! ones — was forced before the operation returned, and a tear only reaches
//! unsynced bytes. The single class of unforced record with recovery-side
//! meaning is the abort record of a *prepared* transaction; whether a tear
//! preserves it depends on byte layout, which the partition count changes.
//! So the generator never aborts a prepared transaction before the crash —
//! mirroring the coordinator, which resolves in-doubt transactions after
//! recovery (presumed abort), not before a crash it cannot foresee.

use proptest::prelude::*;
use rrq_storage::disk::{CrashStyle, Disk, SimDisk, TornWriteMode};
use rrq_storage::kv::{KvOptions, KvStore, MAX_WAL_PARTITIONS};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One transaction in the scripted workload.
#[derive(Debug, Clone)]
struct TxnSpec {
    /// (key, Some(value) = put | None = delete), small keyspace so
    /// transactions overlap and span partitions.
    ops: Vec<(u8, Option<u16>)>,
    fate: Fate,
    /// Run a checkpoint after this transaction's fate is applied.
    checkpoint_after: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fate {
    Commit,
    Abort,
    /// Prepare and leave in doubt until after the crash.
    Prepare,
    /// Leave open and unlogged at crash time.
    Open,
}

fn fate_strategy() -> impl Strategy<Value = Fate> {
    prop_oneof![
        5 => Just(Fate::Commit),
        2 => Just(Fate::Abort),
        2 => Just(Fate::Prepare),
        1 => Just(Fate::Open),
    ]
}

fn op_strategy() -> impl Strategy<Value = (u8, Option<u16>)> {
    prop_oneof![
        3 => (0u8..24, any::<u16>()).prop_map(|(k, v)| (k, Some(v))),
        1 => (0u8..24).prop_map(|k| (k, None)),
    ]
}

fn txn_strategy() -> impl Strategy<Value = TxnSpec> {
    (
        proptest::collection::vec(op_strategy(), 1..6),
        fate_strategy(),
        0u8..5,
    )
        .prop_map(|(ops, fate, ckpt_pick)| TxnSpec {
            ops,
            fate,
            checkpoint_after: ckpt_pick == 0,
        })
}

#[derive(Debug, Clone)]
struct Scenario {
    txns: Vec<TxnSpec>,
    partitions: usize,
    torn: Option<TornWriteMode>,
    /// Log-subset mask for the tear, applied modulo the partition count.
    torn_mask: u8,
}

fn torn_strategy() -> impl Strategy<Value = Option<TornWriteMode>> {
    prop_oneof![
        2 => Just(None),
        1 => Just(Some(TornWriteMode::Midway)),
        1 => Just(Some(TornWriteMode::FullLengthCorrupt)),
        1 => Just(Some(TornWriteMode::HeaderOnly)),
    ]
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        proptest::collection::vec(txn_strategy(), 1..14),
        2usize..MAX_WAL_PARTITIONS + 1,
        torn_strategy(),
        any::<u8>(),
    )
        .prop_map(|(txns, partitions, torn, torn_mask)| Scenario {
            txns,
            partitions,
            torn,
            torn_mask,
        })
}

/// One store under test: its devices plus the live handle.
struct Instance {
    wals: Vec<SimDisk>,
    ckpt: SimDisk,
    store: Arc<KvStore>,
    in_doubt: Vec<u64>,
}

impl Instance {
    fn fresh(partitions: usize) -> Instance {
        let wals: Vec<SimDisk> = (0..partitions).map(|_| SimDisk::new()).collect();
        let ckpt = SimDisk::new();
        let store = Self::open(&wals, &ckpt).0;
        Instance {
            wals,
            ckpt,
            store,
            in_doubt: Vec::new(),
        }
    }

    fn open(
        wals: &[SimDisk],
        ckpt: &SimDisk,
    ) -> (Arc<KvStore>, rrq_storage::recovery::RecoveryReport) {
        KvStore::open_partitioned(
            wals.iter()
                .map(|d| Arc::new(d.clone()) as Arc<dyn Disk>)
                .collect(),
            Arc::new(ckpt.clone()),
            KvOptions::default(),
        )
        .unwrap()
    }

    /// Crash every device and reopen. Logs whose mask bit is set tear per
    /// `torn`; the rest (and the checkpoint device) lose volatile bytes.
    fn crash_and_recover(&mut self, torn: Option<TornWriteMode>, mask: u8) {
        for (i, d) in self.wals.iter().enumerate() {
            match torn {
                Some(mode) if mask == 0 || mask & (1 << (i % 8)) != 0 => d.crash_torn(mode),
                _ => d.crash(CrashStyle::DropVolatile),
            }
        }
        self.ckpt.crash(CrashStyle::DropVolatile);
        let (store, report) = Self::open(&self.wals, &self.ckpt);
        self.store = store;
        let mut in_doubt = report.in_doubt;
        in_doubt.sort_unstable();
        self.in_doubt = in_doubt;
    }

    fn dump(&self) -> BTreeMap<Vec<u8>, Vec<u8>> {
        self.store
            .scan_prefix(None, b"")
            .unwrap()
            .into_iter()
            .collect()
    }
}

/// Drive the same scripted workload into both instances, in lockstep.
fn run_workload(txns: &[TxnSpec], a: &Instance, b: &Instance) {
    for (i, spec) in txns.iter().enumerate() {
        let token = i as u64 + 1;
        for inst in [a, b] {
            inst.store.begin(token).unwrap();
            for (key, val) in &spec.ops {
                let k = vec![*key];
                match val {
                    Some(v) => inst.store.put(token, &k, &v.to_le_bytes()).unwrap(),
                    None => inst.store.delete(token, &k).unwrap(),
                }
            }
            match spec.fate {
                Fate::Commit => inst.store.commit(token).unwrap(),
                Fate::Abort => inst.store.abort(token).unwrap(),
                Fate::Prepare => inst.store.prepare(token).unwrap(),
                Fate::Open => {}
            }
        }
        if spec.checkpoint_after {
            // Both sides must agree on whether a checkpoint is even legal
            // (prepared transactions pending block it identically).
            let ra = a.store.checkpoint();
            let rb = b.store.checkpoint();
            assert_eq!(ra.is_ok(), rb.is_ok(), "checkpoint legality diverged");
        }
    }
}

/// The property: equal contents and in-doubt sets after the crash, after
/// resolution, and after a checkpoint + second crash.
fn check_equivalence(scenario: &Scenario) {
    let mut mono = Instance::fresh(1);
    let mut part = Instance::fresh(scenario.partitions);
    run_workload(&scenario.txns, &mono, &part);

    mono.crash_and_recover(scenario.torn, 0);
    part.crash_and_recover(scenario.torn, scenario.torn_mask);
    assert_eq!(
        mono.in_doubt, part.in_doubt,
        "in-doubt sets diverged after crash"
    );
    assert_eq!(
        mono.dump(),
        part.dump(),
        "recovered contents diverged (partitions={}, torn={:?}, mask={:#x})",
        scenario.partitions,
        scenario.torn,
        scenario.torn_mask
    );

    // Resolve the in-doubt transactions the same way on both sides.
    for token in mono.in_doubt.clone() {
        if token % 2 == 0 {
            mono.store.commit(token).unwrap();
            part.store.commit(token).unwrap();
        } else {
            mono.store.abort(token).unwrap();
            part.store.abort(token).unwrap();
        }
    }
    assert_eq!(mono.dump(), part.dump(), "diverged after resolution");

    // The recovered stores keep working identically: checkpoint, one more
    // committed transaction, clean crash, recover.
    mono.store.checkpoint().unwrap();
    part.store.checkpoint().unwrap();
    for inst in [&mono, &part] {
        let t = 10_000;
        inst.store.begin(t).unwrap();
        inst.store.put(t, b"post", b"crash").unwrap();
        inst.store.commit(t).unwrap();
    }
    mono.crash_and_recover(None, 0);
    part.crash_and_recover(None, 0);
    assert_eq!(mono.in_doubt, part.in_doubt);
    assert_eq!(mono.dump(), part.dump(), "diverged after second crash");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn partitioned_recovery_equals_monolithic(scenario in scenario_strategy()) {
        check_equivalence(&scenario);
    }
}

/// Pinned regressions: the corners the strategy weights lightly.
#[test]
fn equivalence_corners() {
    // Every partition count, tear on exactly one log, prepare in flight.
    for partitions in 2..=MAX_WAL_PARTITIONS {
        for (m, mode) in TornWriteMode::ALL.into_iter().enumerate() {
            check_equivalence(&Scenario {
                txns: vec![
                    TxnSpec {
                        ops: (0..6).map(|k| (k, Some(u16::from(k) + 100))).collect(),
                        fate: Fate::Commit,
                        checkpoint_after: true,
                    },
                    TxnSpec {
                        ops: vec![(1, None), (7, Some(7))],
                        fate: Fate::Prepare,
                        checkpoint_after: false,
                    },
                    TxnSpec {
                        ops: vec![(2, Some(9)), (8, Some(8))],
                        fate: Fate::Open,
                        checkpoint_after: false,
                    },
                ],
                partitions,
                torn: Some(mode),
                torn_mask: 1 << (m % partitions.min(8)),
            });
        }
    }
}
