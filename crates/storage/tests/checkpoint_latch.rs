//! Regression tests for the checkpoint latch scope: the append latch covers
//! only the log truncate + checkpoint-marker append, and the device force
//! plus the group-commit watermark reset run after it drops (the latch is a
//! no-block lock class, enforced by `rrq-analyze`). Pinned contracts: the
//! checkpoint is durable the moment `checkpoint()` returns, and checkpoints
//! racing a storm of committers neither deadlock nor lose a committed write.

use rrq_storage::disk::{CrashStyle, SimDisk};
use rrq_storage::kv::{KvOptions, KvStore};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn open(wal: &SimDisk, ckpt: &SimDisk) -> (Arc<KvStore>, rrq_storage::recovery::RecoveryReport) {
    KvStore::open(
        Arc::new(wal.clone()),
        Arc::new(ckpt.clone()),
        KvOptions::default(),
    )
    .unwrap()
}

/// The sync happens outside the latch now, but still strictly before
/// `checkpoint()` returns: a crash right after the call must recover the
/// whole state from the checkpoint with nothing left to replay.
#[test]
fn checkpoint_durable_when_it_returns() {
    let wal = SimDisk::new();
    let ckpt = SimDisk::new();
    let (store, _) = open(&wal, &ckpt);
    for i in 0..10u32 {
        let t = 1 + u64::from(i);
        store.begin(t).unwrap();
        store.put(t, format!("k{i}").as_bytes(), b"v").unwrap();
        store.commit(t).unwrap();
    }
    store.checkpoint().unwrap();

    wal.crash(CrashStyle::DropVolatile);
    let (store2, report) = open(&wal, &ckpt);
    assert_eq!(report.replayed, 0, "state came from the checkpoint");
    for i in 0..10u32 {
        assert_eq!(
            store2.get(None, format!("k{i}").as_bytes()).unwrap(),
            Some(b"v".to_vec())
        );
    }
}

/// Commits and checkpoints interleaving freely: every commit that returned
/// `Ok` before the crash must survive, no matter how many truncations ran
/// concurrently — and nothing deadlocks between the checkpoint gate, the
/// append latch, and the group-commit coordinator.
#[test]
fn committers_racing_checkpoints_lose_nothing() {
    const WRITERS: u64 = 4;
    const PER_WRITER: u64 = 30;
    let wal = SimDisk::new();
    let ckpt = SimDisk::new();
    let (store, _) = open(&wal, &ckpt);

    let stop = Arc::new(AtomicBool::new(false));
    let ckpt_thread = {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut ran = 0u32;
            while !stop.load(Ordering::SeqCst) {
                store.checkpoint().unwrap();
                ran += 1;
            }
            ran
        })
    };
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                for i in 0..PER_WRITER {
                    let t = w * 1000 + i + 1;
                    store.begin(t).unwrap();
                    store.put(t, format!("k/{w}/{i}").as_bytes(), b"v").unwrap();
                    store.commit(t).unwrap();
                }
            })
        })
        .collect();
    for h in writers {
        h.join().unwrap();
    }
    stop.store(true, Ordering::SeqCst);
    let ran = ckpt_thread.join().unwrap();
    assert!(ran > 0, "checkpointer never ran");

    wal.crash(CrashStyle::DropVolatile);
    let (store2, _) = open(&wal, &ckpt);
    for w in 0..WRITERS {
        for i in 0..PER_WRITER {
            assert_eq!(
                store2
                    .get(None, format!("k/{w}/{i}").as_bytes())
                    .unwrap()
                    .as_deref(),
                Some(b"v".as_slice()),
                "k/{w}/{i} committed before the crash — must survive"
            );
        }
    }
}
