//! Directed crash-window tests for the partitioned WAL.
//!
//! The partitioned commit protocol has two windows a random sweep is
//! unlikely to land in precisely:
//!
//! 1. **Between the sibling-log forces and the home-log commit record.** A
//!    multi-partition transaction forces its data records on every sibling
//!    log *before* the commit record is appended to the home log. A crash in
//!    that window leaves durable data records with no outcome — recovery
//!    must treat the transaction as if it never happened, on every log.
//!
//! 2. **Mid-incremental-checkpoint.** A crash while a delta segment is being
//!    forced leaves a torn segment past the valid chain. Recovery must fall
//!    back to the previous complete chain plus the still-untruncated logs,
//!    and drop the stale tail so the next delta lands cleanly.
//!
//! Each test here constructs one window deterministically (device failure
//! injection for 1, hand-torn checkpoint tails for 2) instead of hoping a
//! schedule finds it.

use rrq_storage::disk::{CrashStyle, Disk, SimDisk, TornWriteMode};
use rrq_storage::kv::{partition_for_key, KvOptions, KvStore};
use std::collections::BTreeMap;
use std::sync::Arc;

const PARTITIONS: usize = 4;

fn open4(
    wals: &[SimDisk],
    ckpt: &SimDisk,
) -> (Arc<KvStore>, rrq_storage::recovery::RecoveryReport) {
    KvStore::open_partitioned(
        wals.iter()
            .map(|d| Arc::new(d.clone()) as Arc<dyn Disk>)
            .collect(),
        Arc::new(ckpt.clone()),
        KvOptions::default(),
    )
    .unwrap()
}

/// Two single-byte keys living on different partitions, lowest-partition key
/// first (so the first key's log is the transaction's home log).
fn cross_partition_keys() -> (Vec<u8>, Vec<u8>) {
    let mut best: Option<(usize, Vec<u8>)> = None;
    for b in 0u8..=255 {
        let key = vec![b];
        let p = partition_for_key(&key, PARTITIONS);
        match &best {
            None => best = Some((p, key)),
            Some((bp, bk)) if p != *bp => {
                let (a, b) = if p < *bp {
                    ((p, key), (*bp, bk.clone()))
                } else {
                    ((*bp, bk.clone()), (p, key))
                };
                assert!(a.0 < b.0);
                return (a.1, b.1);
            }
            _ => {}
        }
    }
    panic!("all byte keys hash to one partition");
}

fn dump(store: &KvStore) -> BTreeMap<Vec<u8>, Vec<u8>> {
    store.scan_prefix(None, b"").unwrap().into_iter().collect()
}

/// Window 1, home side: the sibling log's data records are durable but the
/// home log's commit record never made it (device failed at the commit
/// point). After a crash, no fragment of the transaction may surface.
#[test]
fn durable_sibling_data_without_commit_record_recovers_to_nothing() {
    let wals: Vec<SimDisk> = (0..PARTITIONS).map(|_| SimDisk::new()).collect();
    let ckpt = SimDisk::new();
    let (store, _) = open4(&wals, &ckpt);
    let (home_key, sib_key) = cross_partition_keys();
    let home = partition_for_key(&home_key, PARTITIONS);

    // Durable history unrelated to the doomed transaction.
    store.begin(1).unwrap();
    store.put(1, b"base", b"kept").unwrap();
    store.commit(1).unwrap();

    // The multi-partition transaction: sibling forces succeed, then the home
    // device dies before the commit record can be appended.
    store.begin(2).unwrap();
    store.put(2, &home_key, b"h").unwrap();
    store.put(2, &sib_key, b"s").unwrap();
    wals[home].fail();
    assert!(store.commit(2).is_err(), "home log was dead at commit");
    let sib = partition_for_key(&sib_key, PARTITIONS);
    assert!(
        wals[sib].durable_len() > 0,
        "window not constructed: sibling data should be durable"
    );
    wals[home].repair();

    for d in &wals {
        d.crash(CrashStyle::DropVolatile);
    }
    ckpt.crash(CrashStyle::DropVolatile);
    let (recovered, report) = open4(&wals, &ckpt);
    assert_eq!(report.in_doubt, Vec::<u64>::new());
    let got = dump(&recovered);
    assert_eq!(
        got,
        BTreeMap::from([(b"base".to_vec(), b"kept".to_vec())]),
        "orphaned sibling data must not replay"
    );
}

/// Window 1, sibling side: the *sibling* device dies first, so not even its
/// data records become durable. Same obligation, opposite failure order.
#[test]
fn failed_sibling_force_aborts_commit_without_partial_state() {
    let wals: Vec<SimDisk> = (0..PARTITIONS).map(|_| SimDisk::new()).collect();
    let ckpt = SimDisk::new();
    let (store, _) = open4(&wals, &ckpt);
    let (home_key, sib_key) = cross_partition_keys();
    let sib = partition_for_key(&sib_key, PARTITIONS);

    store.begin(1).unwrap();
    store.put(1, &home_key, b"h").unwrap();
    store.put(1, &sib_key, b"s").unwrap();
    wals[sib].fail();
    assert!(store.commit(1).is_err(), "sibling force must surface");
    wals[sib].repair();

    for d in &wals {
        d.crash(CrashStyle::DropVolatile);
    }
    let (recovered, _) = open4(&wals, &ckpt);
    assert_eq!(dump(&recovered), BTreeMap::new());
}

/// Commit returned: every partition's data is recoverable, even when the
/// crash tears the unsynced tail of every log. The tears can only eat bytes
/// the commit protocol never vouched for.
#[test]
fn committed_multi_partition_txn_survives_torn_tails_on_every_log() {
    for mode in TornWriteMode::ALL {
        let wals: Vec<SimDisk> = (0..PARTITIONS).map(|_| SimDisk::new()).collect();
        let ckpt = SimDisk::new();
        let (store, _) = open4(&wals, &ckpt);
        let (home_key, sib_key) = cross_partition_keys();

        store.begin(1).unwrap();
        store.put(1, &home_key, b"h").unwrap();
        store.put(1, &sib_key, b"s").unwrap();
        store.commit(1).unwrap();
        // Unresolved noise for the tear to land on: an open transaction's
        // records may be half-written on any log at crash time.
        store.begin(2).unwrap();
        store.put(2, &home_key, b"noise").unwrap();
        store.put(2, &sib_key, b"noise").unwrap();

        for d in &wals {
            d.crash_torn(mode);
        }
        let (recovered, _) = open4(&wals, &ckpt);
        assert_eq!(
            dump(&recovered),
            BTreeMap::from([(home_key.clone(), b"h".to_vec()), (sib_key, b"s".to_vec())]),
            "mode {:?}",
            mode
        );
    }
}

/// A prepared multi-partition transaction whose home log is torn at the
/// crash comes back in-doubt (the prepare record was forced; the tear can
/// only reach later, volatile bytes), and resolving it commits the original
/// incarnation's records.
#[test]
fn prepared_txn_with_home_log_tear_resurfaces_in_doubt_and_commits() {
    let wals: Vec<SimDisk> = (0..PARTITIONS).map(|_| SimDisk::new()).collect();
    let ckpt = SimDisk::new();
    let (store, _) = open4(&wals, &ckpt);
    let (home_key, sib_key) = cross_partition_keys();
    let home = partition_for_key(&home_key, PARTITIONS);

    store.begin(7).unwrap();
    store.put(7, &home_key, b"h").unwrap();
    store.put(7, &sib_key, b"s").unwrap();
    store.prepare(7).unwrap();

    // Tear only the home log; the rest crash clean.
    for (i, d) in wals.iter().enumerate() {
        if i == home {
            d.crash_torn(TornWriteMode::Midway);
        } else {
            d.crash(CrashStyle::DropVolatile);
        }
    }
    let (recovered, report) = open4(&wals, &ckpt);
    assert_eq!(report.in_doubt, vec![7]);
    assert_eq!(dump(&recovered), BTreeMap::new(), "in-doubt is not visible");

    recovered.commit(7).unwrap();
    let want = BTreeMap::from([(home_key, b"h".to_vec()), (sib_key, b"s".to_vec())]);
    assert_eq!(dump(&recovered), want);

    // The post-recovery commit record is durable: a second clean crash keeps
    // the transaction committed.
    for d in &wals {
        d.crash(CrashStyle::DropVolatile);
    }
    let (again, report) = open4(&wals, &ckpt);
    assert_eq!(report.in_doubt, Vec::<u64>::new());
    assert_eq!(dump(&again), want);
}

/// Window 2: a crash mid-delta leaves a torn segment past the valid chain.
/// Recovery falls back to the previous chain + logs, drops the stale tail,
/// and the next checkpoint appends cleanly where the tail used to be.
#[test]
fn torn_delta_segment_is_dropped_and_chain_resumes() {
    let wals: Vec<SimDisk> = (0..PARTITIONS).map(|_| SimDisk::new()).collect();
    let ckpt = SimDisk::new();
    let (store, _) = open4(&wals, &ckpt);

    store.begin(1).unwrap();
    store.put(1, b"k1", b"v1").unwrap();
    store.commit(1).unwrap();
    store.checkpoint().unwrap(); // base segment
    store.begin(2).unwrap();
    store.put(2, b"k2", b"v2").unwrap();
    store.commit(2).unwrap();
    store.checkpoint().unwrap(); // delta segment
    store.begin(3).unwrap();
    store.put(3, b"k3", b"v3").unwrap();
    store.commit(3).unwrap(); // in the logs only

    // Simulate a crash halfway through forcing the next delta: a segment
    // header with a partial body lands on the platter, then everything
    // stops. (`frame` layout: magic u32 + kind u8 + len u64 + body + crc.)
    let valid_end = ckpt.durable_len();
    let mut partial = Vec::new();
    partial.extend_from_slice(&0xC4EC_B007u32.to_le_bytes());
    partial.push(1); // KIND_DELTA
    partial.extend_from_slice(&1_000u64.to_le_bytes()); // body len it never got
    partial.extend_from_slice(b"partial-body");
    ckpt.append(&partial).unwrap();
    ckpt.crash_torn(TornWriteMode::Midway);
    assert!(
        ckpt.durable_len() > valid_end,
        "window not constructed: stale bytes should sit past the chain"
    );
    for d in &wals {
        d.crash(CrashStyle::DropVolatile);
    }

    let want = BTreeMap::from([
        (b"k1".to_vec(), b"v1".to_vec()),
        (b"k2".to_vec(), b"v2".to_vec()),
        (b"k3".to_vec(), b"v3".to_vec()),
    ]);
    let (recovered, _) = open4(&wals, &ckpt);
    assert_eq!(dump(&recovered), want, "previous chain + logs win");
    assert_eq!(
        ckpt.len(),
        valid_end,
        "stale tail dropped so the next delta lands at the chain end"
    );

    // The chain keeps growing from the valid prefix.
    recovered.checkpoint().unwrap();
    assert!(
        recovered.wal_len() < 256,
        "logs truncated down to their checkpoint markers"
    );
    for d in &wals {
        d.crash(CrashStyle::DropVolatile);
    }
    ckpt.crash(CrashStyle::DropVolatile);
    let (again, _) = open4(&wals, &ckpt);
    assert_eq!(dump(&again), want);
}

/// Checkpoints racing live commits across all partitions: whatever interleaving
/// happens, a final crash recovers exactly the committed writes.
#[test]
fn checkpoints_racing_partitioned_commits_recover_exactly() {
    let wals: Vec<SimDisk> = (0..PARTITIONS).map(|_| SimDisk::new()).collect();
    let ckpt = SimDisk::new();
    let (store, _) = open4(&wals, &ckpt);

    const WRITERS: u64 = 4;
    const COMMITS: u64 = 40;
    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let store = Arc::clone(&store);
            s.spawn(move || {
                for i in 0..COMMITS {
                    let token = w * COMMITS + i + 1;
                    store.begin(token).unwrap();
                    // Mix single- and cross-partition transactions.
                    store
                        .put(
                            token,
                            format!("w{w}-k{}", i % 8).as_bytes(),
                            &i.to_le_bytes(),
                        )
                        .unwrap();
                    if i % 3 == 0 {
                        store
                            .put(
                                token,
                                format!("shared-{}", i % 4).as_bytes(),
                                &token.to_le_bytes(),
                            )
                            .unwrap();
                    }
                    store.commit(token).unwrap();
                }
            });
        }
        let store = Arc::clone(&store);
        s.spawn(move || {
            for _ in 0..10 {
                store.checkpoint().unwrap();
                std::thread::yield_now();
            }
        });
    });

    let live = dump(&store);
    for d in &wals {
        d.crash(CrashStyle::DropVolatile);
    }
    ckpt.crash(CrashStyle::DropVolatile);
    let (recovered, _) = open4(&wals, &ckpt);
    assert_eq!(dump(&recovered), live, "recovery equals the live tree");
    for w in 0..WRITERS {
        for k in 0..8u64 {
            assert!(
                recovered
                    .get(None, format!("w{w}-k{k}").as_bytes())
                    .unwrap()
                    .is_some(),
                "writer {w} key {k} lost"
            );
        }
    }
}

fn open4_with(
    wals: &[SimDisk],
    ckpt: &SimDisk,
    opts: KvOptions,
) -> (Arc<KvStore>, rrq_storage::recovery::RecoveryReport) {
    KvStore::open_partitioned(
        wals.iter()
            .map(|d| Arc::new(d.clone()) as Arc<dyn Disk>)
            .collect(),
        Arc::new(ckpt.clone()),
        opts,
    )
    .unwrap()
}

/// A short key on partition `part` that differs from `exclude`.
fn key_on_partition(part: usize, exclude: &[u8]) -> Vec<u8> {
    for a in 0u8..=255 {
        for b in 0u8..2 {
            let key = vec![a, b];
            if key != exclude && partition_for_key(&key, PARTITIONS) == part {
                return key;
            }
        }
    }
    panic!("no two-byte key lands on partition {part}");
}

/// The review's high-severity window: checkpoint truncates logs one at a
/// time, and a crash in between can erase a newer transaction's commit
/// record (home log already truncated) while an *older* committed
/// transaction's data + commit records for the same key survive in a
/// not-yet-truncated sibling log. The covered-epoch watermark stamped into
/// the checkpoint segment must stop replay from regressing the key to the
/// older value.
#[test]
fn partial_log_truncation_cannot_regress_checkpointed_state() {
    let wals: Vec<SimDisk> = (0..PARTITIONS).map(|_| SimDisk::new()).collect();
    let ckpt = SimDisk::new();
    let (store, _) = open4(&wals, &ckpt);
    let (lo_key, hi_key) = cross_partition_keys();
    let hi = partition_for_key(&hi_key, PARTITIONS);

    // Older transaction: homed on the hi log (its only key lives there).
    store.begin(1).unwrap();
    store.put(1, &hi_key, b"old").unwrap();
    store.commit(1).unwrap();

    // Newer transaction: homed on the lo log, rewrites the same hi key.
    // Its commit record lives in the lo log; only a data record for
    // `hi_key` sits in the hi log.
    store.begin(2).unwrap();
    store.put(2, &lo_key, b"x").unwrap();
    store.put(2, &hi_key, b"new").unwrap();
    store.commit(2).unwrap();

    // Checkpoint, then put the hi log's pre-checkpoint image back: that is
    // exactly the state a crash leaves when the lo log's truncation became
    // durable but the hi log's never happened.
    let saved = wals[hi].read(0, wals[hi].durable_len() as usize).unwrap();
    store.checkpoint().unwrap();
    wals[hi].reset(saved).unwrap();

    for d in &wals {
        d.crash(CrashStyle::DropVolatile);
    }
    ckpt.crash(CrashStyle::DropVolatile);
    let (recovered, report) = open4(&wals, &ckpt);
    assert_eq!(report.in_doubt, Vec::<u64>::new());
    assert_eq!(
        recovered.get(None, &hi_key).unwrap(),
        Some(b"new".to_vec()),
        "surviving pre-checkpoint commit record must not regress the key"
    );
    assert_eq!(recovered.get(None, &lo_key).unwrap(), Some(b"x".to_vec()));
}

/// Same window, prepared flavour: a covered commit's prepare record
/// survives in the untruncated home log. The watermark skips the commit's
/// redo, but the transaction must still count as *resolved* — it may not
/// resurface in-doubt (a coordinator would then re-commit an epoch the
/// checkpoint already folded in).
#[test]
fn covered_prepared_commit_does_not_resurface_in_doubt() {
    let wals: Vec<SimDisk> = (0..PARTITIONS).map(|_| SimDisk::new()).collect();
    let ckpt = SimDisk::new();
    let (store, _) = open4(&wals, &ckpt);
    let (lo_key, hi_key) = cross_partition_keys();
    let lo = partition_for_key(&lo_key, PARTITIONS);

    store.begin(5).unwrap();
    store.put(5, &lo_key, b"L").unwrap();
    store.put(5, &hi_key, b"H").unwrap();
    store.prepare(5).unwrap();
    store.commit(5).unwrap();

    // Crash window: the home (lo) log keeps its data + prepare + commit
    // records while every sibling was truncated by the checkpoint.
    let saved = wals[lo].read(0, wals[lo].durable_len() as usize).unwrap();
    store.checkpoint().unwrap();
    wals[lo].reset(saved).unwrap();

    for d in &wals {
        d.crash(CrashStyle::DropVolatile);
    }
    ckpt.crash(CrashStyle::DropVolatile);
    let (recovered, report) = open4(&wals, &ckpt);
    assert_eq!(
        report.in_doubt,
        Vec::<u64>::new(),
        "covered prepare+commit is resolved, not in-doubt"
    );
    assert_eq!(recovered.get(None, &lo_key).unwrap(), Some(b"L".to_vec()));
    assert_eq!(recovered.get(None, &hi_key).unwrap(), Some(b"H".to_vec()));
}

/// After recovering from a fully-truncated state the epoch counter must
/// resume *above* the chain's watermark. If it restarted at zero, the next
/// commit would be stamped with a covered epoch and a later recovery would
/// skip it as already-checkpointed — silently dropping an acknowledged
/// write.
#[test]
fn epochs_resume_above_the_watermark_after_recovery() {
    let wals: Vec<SimDisk> = (0..PARTITIONS).map(|_| SimDisk::new()).collect();
    let ckpt = SimDisk::new();
    let (store, _) = open4(&wals, &ckpt);

    store.begin(1).unwrap();
    store.put(1, b"k", b"first").unwrap();
    store.commit(1).unwrap();
    store.checkpoint().unwrap();

    for d in &wals {
        d.crash(CrashStyle::DropVolatile);
    }
    ckpt.crash(CrashStyle::DropVolatile);
    let (store, _) = open4(&wals, &ckpt);

    store.begin(2).unwrap();
    store.put(2, b"k", b"second").unwrap();
    store.commit(2).unwrap();

    for d in &wals {
        d.crash(CrashStyle::DropVolatile);
    }
    ckpt.crash(CrashStyle::DropVolatile);
    let (recovered, _) = open4(&wals, &ckpt);
    assert_eq!(
        recovered.get(None, b"k").unwrap(),
        Some(b"second".to_vec()),
        "post-recovery commit was treated as covered by the old watermark"
    );
}

/// The review's medium finding: with `sync_on_commit` off, a
/// multi-partition commit's record can still become durable *incidentally*
/// (another transaction's prepare forces the same home log). Sibling data
/// must therefore be forced unconditionally at commit — a durable commit
/// record with volatile sibling data would replay a partial transaction.
#[test]
fn incidentally_durable_commit_record_implies_durable_sibling_data() {
    let wals: Vec<SimDisk> = (0..PARTITIONS).map(|_| SimDisk::new()).collect();
    let ckpt = SimDisk::new();
    let opts = KvOptions {
        sync_on_commit: false,
        ..KvOptions::default()
    };
    let (store, _) = open4_with(&wals, &ckpt, opts);
    let (lo_key, hi_key) = cross_partition_keys();
    let lo = partition_for_key(&lo_key, PARTITIONS);

    // Volatile-mode multi-partition commit: the home (lo) log's commit
    // record is not forced, but the hi log's data record must be.
    store.begin(1).unwrap();
    store.put(1, &lo_key, b"L").unwrap();
    store.put(1, &hi_key, b"H").unwrap();
    store.commit(1).unwrap();

    // An unrelated transaction homed on the same lo log prepares: prepare
    // always forces, which incidentally makes txn 1's commit record
    // durable (a log force covers its whole volatile prefix).
    let other = key_on_partition(lo, &lo_key);
    store.begin(2).unwrap();
    store.put(2, &other, b"O").unwrap();
    store.prepare(2).unwrap();

    for d in &wals {
        d.crash(CrashStyle::DropVolatile);
    }
    ckpt.crash(CrashStyle::DropVolatile);
    let (recovered, report) = open4(&wals, &ckpt);
    assert_eq!(report.in_doubt, vec![2], "the prepare must survive");
    assert_eq!(
        recovered.get(None, &lo_key).unwrap(),
        Some(b"L".to_vec()),
        "home data precedes the durable commit record in the same log"
    );
    assert_eq!(
        recovered.get(None, &hi_key).unwrap(),
        Some(b"H".to_vec()),
        "durable commit record implies durable sibling data"
    );
}
