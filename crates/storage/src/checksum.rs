//! CRC-32 (IEEE 802.3 polynomial) implemented in-crate so the log format has
//! no external dependencies.
//!
//! The WAL frames every record with a CRC over its header and payload; a
//! mismatch at the log tail marks the torn write left by a crash, which is
//! where recovery stops replaying (see [`crate::wal`]).

/// The reflected IEEE polynomial used by zip, Ethernet, etc.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        t
    })
}

/// Streaming CRC-32 state.
///
/// ```
/// use rrq_storage::checksum::Crc32;
/// let mut c = Crc32::new();
/// c.update(b"123456789");
/// assert_eq!(c.finish(), 0xCBF4_3926); // the standard check value
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Create a fresh CRC accumulator.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed bytes into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        let mut s = self.state;
        for &b in data {
            s = t[((s ^ b as u32) & 0xFF) as usize] ^ (s >> 8);
        }
        self.state = s;
    }

    /// Finalize and return the checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot convenience over [`Crc32`].
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data = b"hello recoverable queues";
        let mut c = Crc32::new();
        c.update(&data[..5]);
        c.update(&data[5..]);
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn sensitive_to_single_bit_flip() {
        let mut data = vec![0u8; 64];
        let base = crc32(&data);
        for byte in 0..64 {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), base, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
