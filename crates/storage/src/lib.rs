//! # rrq-storage
//!
//! The storage substrate for the recoverable-request system: a simulated
//! stable-storage device with crash semantics, a checksummed write-ahead log,
//! and a recoverable main-memory key-value store.
//!
//! The paper ("Implementing Recoverable Requests Using Queues", Bernstein,
//! Hsu & Mann, SIGMOD 1990) observes in §10 that a queue manager "is a type
//! of database system" whose data is mostly short-lived, so "queues can be
//! managed as a main memory database" — but "there is still the need to log
//! updates". This crate implements exactly that design point:
//!
//! * [`disk`] — the [`disk::Disk`] trait plus [`disk::SimDisk`], an in-memory
//!   stable store whose unsynced writes are lost on [`disk::SimDisk::crash`],
//!   giving deterministic, fast crash testing.
//! * [`wal`] — an append-only write-ahead log with CRC-32-framed records and
//!   scan-until-corruption recovery.
//! * [`kv`] — a transactional main-memory B-tree keyed store that buffers
//!   uncommitted writes per transaction, forces log records at commit, and
//!   rebuilds itself from checkpoint + log on restart.
//! * [`group_commit`] — the leader/follower coordinator that batches
//!   concurrent commit-point log forces into one device sync per group.
//! * [`checkpoint`] / [`recovery`] — snapshotting and the redo pass.
//! * [`codec`] / [`checksum`] — the self-contained binary record format.
//!
//! Everything is deterministic by default: no background threads, and the
//! only wall-clock timing is opt-in (a non-zero group-commit dally window,
//! or the benchmark-only [`disk::LatencyDisk`] sync cost).

pub mod checkpoint;
pub mod checksum;
pub mod codec;
pub mod disk;
pub mod error;
pub mod group_commit;
pub mod kv;
pub mod recovery;
pub mod wal;

pub use checkpoint::{load_chain, CheckpointChain};
pub use disk::{Disk, LatencyDisk, MemDisk, SimDisk};
pub use error::{StorageError, StorageResult};
pub use group_commit::{GroupCommit, GroupCommitStats};
pub use kv::{partition_for_key, KvStore, KvTxn, WriteOp, MAX_WAL_PARTITIONS};
pub use recovery::{replay_partitioned, PartitionedOutcome, RecoveryReport};
pub use wal::{LogRecord, RecordKind, Wal};
