//! Simulated stable-storage devices.
//!
//! The paper's protocols hinge on one physical fact: data survives a failure
//! only if it reached *stable storage* before the crash (§2, §4.1 "a queue is
//! a stable memory area"). [`SimDisk`] models exactly that boundary: appends
//! land in a volatile buffer, [`Disk::sync`] moves the buffer to the durable
//! region, and [`SimDisk::crash`] throws the volatile region away — optionally
//! leaving a *torn* (partially written, corrupted) tail so that recovery code
//! must prove it tolerates half-written records.
//!
//! Keeping the device in memory makes a crash+recovery cycle take
//! microseconds, so tests can run thousands of deterministic crash schedules.

use crate::error::{StorageError, StorageResult};
use parking_lot::Mutex;
use std::sync::Arc;

/// Byte-level counters a device keeps for benchmarking.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Number of `append` calls.
    pub appends: u64,
    /// Total bytes appended.
    pub bytes_appended: u64,
    /// Number of `sync` calls (each models a forced I/O).
    pub syncs: u64,
    /// Number of `read` calls.
    pub reads: u64,
    /// Number of crashes injected.
    pub crashes: u64,
}

/// An append-only stable-storage device.
///
/// The log and checkpoint stores are both built on this narrow interface so
/// that the crash-simulating [`SimDisk`] and the plain [`MemDisk`] are
/// interchangeable.
pub trait Disk: Send + Sync {
    /// Append bytes, returning the offset at which they begin.
    ///
    /// The bytes are *not* durable until [`Disk::sync`] returns.
    fn append(&self, data: &[u8]) -> StorageResult<u64>;

    /// Read `len` bytes starting at `offset`.
    fn read(&self, offset: u64, len: usize) -> StorageResult<Vec<u8>>;

    /// Total length (durable + volatile).
    fn len(&self) -> u64;

    /// True when the device holds no bytes at all.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Force all volatile bytes to stable storage.
    fn sync(&self) -> StorageResult<()>;

    /// Atomically replace the entire contents (used for checkpoint swap and
    /// log truncation). The new contents are immediately durable, modelling
    /// a write-temp-then-rename sequence.
    fn reset(&self, contents: Vec<u8>) -> StorageResult<()>;

    /// Snapshot of the device's I/O counters.
    fn stats(&self) -> DiskStats;
}

#[derive(Debug, Default)]
struct MemInner {
    data: Vec<u8>,
    stats: DiskStats,
}

/// A trivially durable in-memory device: every append is immediately stable.
///
/// Useful for benchmarks that want storage cost without crash modelling.
#[derive(Debug, Clone, Default)]
pub struct MemDisk {
    inner: Arc<Mutex<MemInner>>,
}

impl MemDisk {
    /// Create an empty device.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Disk for MemDisk {
    fn append(&self, data: &[u8]) -> StorageResult<u64> {
        let mut g = self.inner.lock();
        let off = g.data.len() as u64;
        g.data.extend_from_slice(data);
        g.stats.appends += 1;
        g.stats.bytes_appended += data.len() as u64;
        Ok(off)
    }

    fn read(&self, offset: u64, len: usize) -> StorageResult<Vec<u8>> {
        let mut g = self.inner.lock();
        g.stats.reads += 1;
        let size = g.data.len() as u64;
        let end = offset
            .checked_add(len as u64)
            .filter(|&e| e <= size)
            .ok_or(StorageError::OutOfBounds { offset, len, size })?;
        Ok(g.data[offset as usize..end as usize].to_vec())
    }

    fn len(&self) -> u64 {
        self.inner.lock().data.len() as u64
    }

    fn sync(&self) -> StorageResult<()> {
        self.inner.lock().stats.syncs += 1;
        Ok(())
    }

    fn reset(&self, contents: Vec<u8>) -> StorageResult<()> {
        let mut g = self.inner.lock();
        g.data = contents;
        Ok(())
    }

    fn stats(&self) -> DiskStats {
        self.inner.lock().stats
    }
}

/// How a crash treats the volatile (unsynced) tail of the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashStyle {
    /// All unsynced bytes vanish — a clean power cut between I/Os.
    DropVolatile,
    /// The first `keep` unsynced bytes survive and the final surviving byte
    /// is bit-flipped — a torn write in the middle of a sector.
    Torn {
        /// Number of volatile bytes that (partially) reached the platter.
        keep: usize,
    },
}

/// Named torn-write shapes for crash injection.
///
/// [`CrashStyle::Torn`] wants an absolute byte count, which only makes sense
/// when the caller knows the device's exact volatile length. A
/// `TornWriteMode` instead names *how* the unsynced tail is torn and lets
/// [`SimDisk::crash_torn`] compute the count from whatever happens to be
/// unsynced at crash time — which is what a fault script needs. Each variant
/// must be caught by the WAL's frame validation (magic / length / CRC) on
/// recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TornWriteMode {
    /// Roughly half of the unsynced bytes reach the platter: a frame
    /// truncated mid-body, caught by the length check (or the CRC when the
    /// cut lands inside the final frame's body).
    Midway,
    /// Every unsynced byte lands but the last one is corrupted: frame
    /// length intact, so only the CRC can reject it.
    FullLengthCorrupt,
    /// Only a few leading bytes land: a frame header without a body,
    /// caught by the truncated-tail check.
    HeaderOnly,
}

impl TornWriteMode {
    /// All variants, for sweep generators and per-variant tests.
    pub const ALL: [TornWriteMode; 3] = [
        TornWriteMode::Midway,
        TornWriteMode::FullLengthCorrupt,
        TornWriteMode::HeaderOnly,
    ];

    /// How many of `volatile` unsynced bytes survive under this mode.
    pub fn keep_of(self, volatile: usize) -> usize {
        match self {
            TornWriteMode::Midway => volatile.div_ceil(2),
            TornWriteMode::FullLengthCorrupt => volatile,
            TornWriteMode::HeaderOnly => volatile.min(6),
        }
    }

    /// Stable name used by the fault-script codec.
    pub fn name(self) -> &'static str {
        match self {
            TornWriteMode::Midway => "torn-midway",
            TornWriteMode::FullLengthCorrupt => "torn-full",
            TornWriteMode::HeaderOnly => "torn-header",
        }
    }

    /// Inverse of [`TornWriteMode::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|m| m.name() == name)
    }
}

#[derive(Debug, Default)]
struct SimInner {
    durable: Vec<u8>,
    volatile: Vec<u8>,
    failed: bool,
    stats: DiskStats,
}

/// The crash-simulating stable store.
///
/// Cloning shares the underlying device (it is an `Arc`), which is how a
/// "restarted process" reopens the same disk after [`SimDisk::crash`].
#[derive(Debug, Clone, Default)]
pub struct SimDisk {
    inner: Arc<Mutex<SimInner>>,
}

impl SimDisk {
    /// Create an empty device.
    pub fn new() -> Self {
        Self::default()
    }

    /// Simulate a crash: volatile bytes are discarded per `style` and the
    /// device remains usable (a restart re-reads the durable prefix).
    pub fn crash(&self, style: CrashStyle) {
        let mut g = self.inner.lock();
        g.stats.crashes += 1;
        match style {
            CrashStyle::DropVolatile => g.volatile.clear(),
            CrashStyle::Torn { keep } => {
                let keep = keep.min(g.volatile.len());
                g.volatile.truncate(keep);
                if keep > 0 {
                    g.volatile[keep - 1] ^= 0x80;
                }
                let torn: Vec<u8> = std::mem::take(&mut g.volatile);
                g.durable.extend_from_slice(&torn);
            }
        }
        // After DropVolatile nothing moves; after Torn the surviving corrupt
        // prefix is durable (it physically hit the medium).
        if style == CrashStyle::DropVolatile {
            // nothing else to do
        }
    }

    /// Crash with a torn tail shaped by `mode`: the surviving byte count is
    /// computed from the volatile length under the device lock, so the tear
    /// always lands inside the unsynced region. With nothing unsynced this
    /// degrades to a clean [`CrashStyle::DropVolatile`]-equivalent crash —
    /// durable bytes are never corrupted (they already hit the platter).
    pub fn crash_torn(&self, mode: TornWriteMode) {
        let mut g = self.inner.lock();
        g.stats.crashes += 1;
        let keep = mode.keep_of(g.volatile.len());
        g.volatile.truncate(keep);
        if keep > 0 {
            g.volatile[keep - 1] ^= 0x80;
        }
        let torn: Vec<u8> = std::mem::take(&mut g.volatile);
        g.durable.extend_from_slice(&torn);
    }

    /// Mark the device as failed: every subsequent operation returns
    /// [`StorageError::DeviceFailed`] until [`SimDisk::repair`].
    pub fn fail(&self) {
        self.inner.lock().failed = true;
    }

    /// Clear a [`SimDisk::fail`] condition.
    pub fn repair(&self) {
        self.inner.lock().failed = false;
    }

    /// Number of bytes currently durable (synced).
    pub fn durable_len(&self) -> u64 {
        self.inner.lock().durable.len() as u64
    }

    /// Number of bytes currently volatile (would be lost by a crash).
    pub fn volatile_len(&self) -> u64 {
        self.inner.lock().volatile.len() as u64
    }

    fn check(&self, g: &SimInner) -> StorageResult<()> {
        if g.failed {
            Err(StorageError::DeviceFailed)
        } else {
            Ok(())
        }
    }
}

impl Disk for SimDisk {
    fn append(&self, data: &[u8]) -> StorageResult<u64> {
        let mut g = self.inner.lock();
        self.check(&g)?;
        let off = (g.durable.len() + g.volatile.len()) as u64;
        g.volatile.extend_from_slice(data);
        g.stats.appends += 1;
        g.stats.bytes_appended += data.len() as u64;
        Ok(off)
    }

    fn read(&self, offset: u64, len: usize) -> StorageResult<Vec<u8>> {
        let mut g = self.inner.lock();
        self.check(&g)?;
        g.stats.reads += 1;
        let size = (g.durable.len() + g.volatile.len()) as u64;
        let end = offset
            .checked_add(len as u64)
            .filter(|&e| e <= size)
            .ok_or(StorageError::OutOfBounds { offset, len, size })?;
        let dlen = g.durable.len() as u64;
        let mut out = Vec::with_capacity(len);
        if offset < dlen {
            let stop = end.min(dlen);
            out.extend_from_slice(&g.durable[offset as usize..stop as usize]);
        }
        if end > dlen {
            let start = offset.max(dlen) - dlen;
            out.extend_from_slice(&g.volatile[start as usize..(end - dlen) as usize]);
        }
        Ok(out)
    }

    fn len(&self) -> u64 {
        let g = self.inner.lock();
        (g.durable.len() + g.volatile.len()) as u64
    }

    fn sync(&self) -> StorageResult<()> {
        let mut g = self.inner.lock();
        self.check(&g)?;
        let v: Vec<u8> = std::mem::take(&mut g.volatile);
        g.durable.extend_from_slice(&v);
        g.stats.syncs += 1;
        Ok(())
    }

    fn reset(&self, contents: Vec<u8>) -> StorageResult<()> {
        let mut g = self.inner.lock();
        self.check(&g)?;
        g.durable = contents;
        g.volatile.clear();
        Ok(())
    }

    fn stats(&self) -> DiskStats {
        self.inner.lock().stats
    }
}

/// A device wrapper that charges a fixed latency per [`Disk::sync`] (and,
/// opt-in, per [`Disk::read`]).
///
/// [`SimDisk`]'s sync is a memcpy, so per-commit and group-commit forcing
/// cost the same and a benchmark cannot see batching win. Real log devices
/// pay a rotation / flush delay per force — this wrapper models that cost so
/// experiments (E16) measure the sync *count* the way hardware would.
///
/// Forces are serialized: a log device has one flush channel, so two threads
/// syncing "at the same time" still pay two delays back to back. Without
/// that, per-commit syncing would scale linearly with committer threads and
/// no benchmark could see why group commit exists. Reads, when given a
/// latency via [`LatencyDisk::with_read_latency`], go through the same
/// single command channel — which is what lets a recovery benchmark see the
/// point of one scan thread per log device: reads on *different* devices
/// overlap, reads on the same device queue.
pub struct LatencyDisk {
    inner: Arc<dyn Disk>,
    sync_latency: std::time::Duration,
    read_latency: std::time::Duration,
    flush_channel: Mutex<()>,
}

impl LatencyDisk {
    /// Wrap `inner`, sleeping `sync_latency` on every sync.
    pub fn new(inner: Arc<dyn Disk>, sync_latency: std::time::Duration) -> Self {
        LatencyDisk {
            inner,
            sync_latency,
            read_latency: std::time::Duration::ZERO,
            flush_channel: Mutex::new(()),
        }
    }

    /// Also sleep `read_latency` on every read (default: reads are free).
    pub fn with_read_latency(mut self, read_latency: std::time::Duration) -> Self {
        self.read_latency = read_latency;
        self
    }
}

impl Disk for LatencyDisk {
    fn append(&self, data: &[u8]) -> StorageResult<u64> {
        self.inner.append(data)
    }

    fn read(&self, offset: u64, len: usize) -> StorageResult<Vec<u8>> {
        if !self.read_latency.is_zero() {
            let _channel = self.flush_channel.lock();
            std::thread::sleep(self.read_latency);
        }
        self.inner.read(offset, len)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn sync(&self) -> StorageResult<()> {
        let _flush = self.flush_channel.lock();
        if !self.sync_latency.is_zero() {
            std::thread::sleep(self.sync_latency);
        }
        self.inner.sync()
    }

    fn reset(&self, contents: Vec<u8>) -> StorageResult<()> {
        self.inner.reset(contents)
    }

    fn stats(&self) -> DiskStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memdisk_append_read_roundtrip() {
        let d = MemDisk::new();
        let off = d.append(b"hello").unwrap();
        assert_eq!(off, 0);
        let off2 = d.append(b"world").unwrap();
        assert_eq!(off2, 5);
        assert_eq!(d.read(0, 10).unwrap(), b"helloworld");
        assert_eq!(d.read(5, 5).unwrap(), b"world");
    }

    #[test]
    fn memdisk_out_of_bounds_read() {
        let d = MemDisk::new();
        d.append(b"abc").unwrap();
        assert!(matches!(
            d.read(2, 5),
            Err(StorageError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn simdisk_crash_drops_unsynced_bytes() {
        let d = SimDisk::new();
        d.append(b"synced").unwrap();
        d.sync().unwrap();
        d.append(b"lost").unwrap();
        assert_eq!(d.len(), 10);
        d.crash(CrashStyle::DropVolatile);
        assert_eq!(d.len(), 6);
        assert_eq!(d.read(0, 6).unwrap(), b"synced");
    }

    #[test]
    fn simdisk_sync_makes_bytes_durable() {
        let d = SimDisk::new();
        d.append(b"abc").unwrap();
        assert_eq!(d.volatile_len(), 3);
        d.sync().unwrap();
        assert_eq!(d.volatile_len(), 0);
        assert_eq!(d.durable_len(), 3);
        d.crash(CrashStyle::DropVolatile);
        assert_eq!(d.read(0, 3).unwrap(), b"abc");
    }

    #[test]
    fn simdisk_torn_crash_keeps_corrupt_prefix() {
        let d = SimDisk::new();
        d.append(b"good").unwrap();
        d.sync().unwrap();
        d.append(b"partial").unwrap();
        d.crash(CrashStyle::Torn { keep: 3 });
        assert_eq!(d.len(), 7);
        let tail = d.read(4, 3).unwrap();
        // first two torn bytes intact, last one flipped
        assert_eq!(&tail[..2], b"pa");
        assert_eq!(tail[2], b'r' ^ 0x80);
    }

    #[test]
    fn torn_mode_keep_counts() {
        assert_eq!(TornWriteMode::Midway.keep_of(10), 5);
        assert_eq!(TornWriteMode::Midway.keep_of(7), 4);
        assert_eq!(TornWriteMode::Midway.keep_of(1), 1);
        assert_eq!(TornWriteMode::FullLengthCorrupt.keep_of(9), 9);
        assert_eq!(TornWriteMode::HeaderOnly.keep_of(100), 6);
        assert_eq!(TornWriteMode::HeaderOnly.keep_of(3), 3);
        for m in TornWriteMode::ALL {
            assert_eq!(m.keep_of(0), 0);
            assert_eq!(TornWriteMode::from_name(m.name()), Some(m));
        }
        assert_eq!(TornWriteMode::from_name("torn-sideways"), None);
    }

    #[test]
    fn crash_torn_tears_only_the_volatile_tail() {
        let d = SimDisk::new();
        d.append(b"durable!").unwrap();
        d.sync().unwrap();
        d.append(b"0123456789").unwrap();
        d.crash_torn(TornWriteMode::Midway);
        // Half the volatile bytes survive, last one flipped; durable intact.
        assert_eq!(d.read(0, 8).unwrap(), b"durable!");
        assert_eq!(d.len(), 13);
        assert_eq!(d.read(8, 5).unwrap(), [b'0', b'1', b'2', b'3', b'4' ^ 0x80]);
        assert_eq!(d.volatile_len(), 0, "torn prefix became durable");
    }

    #[test]
    fn crash_torn_with_empty_volatile_is_clean() {
        let d = SimDisk::new();
        d.append(b"safe").unwrap();
        d.sync().unwrap();
        d.crash_torn(TornWriteMode::FullLengthCorrupt);
        assert_eq!(d.read(0, 4).unwrap(), b"safe");
        assert_eq!(d.stats().crashes, 1);
    }

    #[test]
    fn simdisk_read_spans_durable_and_volatile() {
        let d = SimDisk::new();
        d.append(b"dur").unwrap();
        d.sync().unwrap();
        d.append(b"vol").unwrap();
        assert_eq!(d.read(1, 4).unwrap(), b"urvo");
    }

    #[test]
    fn simdisk_fail_and_repair() {
        let d = SimDisk::new();
        d.fail();
        assert_eq!(d.append(b"x"), Err(StorageError::DeviceFailed));
        assert_eq!(d.sync(), Err(StorageError::DeviceFailed));
        d.repair();
        assert!(d.append(b"x").is_ok());
    }

    #[test]
    fn simdisk_reset_is_durable() {
        let d = SimDisk::new();
        d.append(b"old").unwrap();
        d.reset(b"new!".to_vec()).unwrap();
        d.crash(CrashStyle::DropVolatile);
        assert_eq!(d.read(0, 4).unwrap(), b"new!");
    }

    #[test]
    fn stats_count_operations() {
        let d = SimDisk::new();
        d.append(b"ab").unwrap();
        d.append(b"c").unwrap();
        d.sync().unwrap();
        d.read(0, 1).unwrap();
        d.crash(CrashStyle::DropVolatile);
        let s = d.stats();
        assert_eq!(s.appends, 2);
        assert_eq!(s.bytes_appended, 3);
        assert_eq!(s.syncs, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.crashes, 1);
    }

    #[test]
    fn latency_disk_delegates_and_counts() {
        let sim = SimDisk::new();
        let d = LatencyDisk::new(Arc::new(sim.clone()), std::time::Duration::from_millis(1));
        d.append(b"abc").unwrap();
        let t0 = std::time::Instant::now();
        d.sync().unwrap();
        assert!(t0.elapsed() >= std::time::Duration::from_millis(1));
        assert_eq!(sim.durable_len(), 3);
        assert_eq!(d.stats().syncs, 1);
        assert_eq!(d.read(0, 3).unwrap(), b"abc");
        d.reset(Vec::new()).unwrap();
        assert!(d.is_empty());
    }

    #[test]
    fn clone_shares_underlying_device() {
        let d = SimDisk::new();
        let d2 = d.clone();
        d.append(b"shared").unwrap();
        d.sync().unwrap();
        assert_eq!(d2.read(0, 6).unwrap(), b"shared");
    }
}
