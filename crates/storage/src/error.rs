//! Error types shared by the storage layer.

use std::fmt;

/// Result alias used throughout the storage crate.
pub type StorageResult<T> = Result<T, StorageError>;

/// Errors raised by the storage substrate.
///
/// The variants deliberately distinguish *corruption* (checksum / framing
/// damage found during recovery, which is tolerated at the log tail and fatal
/// elsewhere) from *logic* errors (misuse of the API) and *capacity* faults
/// injected by the simulated disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A read past the durable end of the device.
    OutOfBounds {
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: usize,
        /// Current device size.
        size: u64,
    },
    /// A log record failed its CRC or framing check.
    ///
    /// During recovery this is expected at the tail (a torn write from the
    /// crash) and the scan simply stops; anywhere else it indicates real
    /// corruption.
    Corrupt {
        /// Byte offset of the bad record.
        offset: u64,
        /// Human-readable detail.
        detail: String,
    },
    /// A decode failed because the buffer was truncated or malformed.
    Decode(String),
    /// The simulated device refused the operation (injected fault or the
    /// device was explicitly failed).
    DeviceFailed,
    /// A transactional operation referenced an unknown transaction token.
    UnknownTxn(u64),
    /// The operation conflicts with the store's state (e.g. double commit).
    InvalidState(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::OutOfBounds { offset, len, size } => write!(
                f,
                "read out of bounds: offset {offset} len {len} beyond device size {size}"
            ),
            StorageError::Corrupt { offset, detail } => {
                write!(f, "corrupt record at offset {offset}: {detail}")
            }
            StorageError::Decode(msg) => write!(f, "decode error: {msg}"),
            StorageError::DeviceFailed => write!(f, "storage device failed"),
            StorageError::UnknownTxn(t) => write!(f, "unknown storage transaction token {t}"),
            StorageError::InvalidState(msg) => write!(f, "invalid storage state: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StorageError::OutOfBounds {
            offset: 10,
            len: 4,
            size: 8,
        };
        assert!(e.to_string().contains("out of bounds"));
        let e = StorageError::Corrupt {
            offset: 0,
            detail: "bad crc".into(),
        };
        assert!(e.to_string().contains("bad crc"));
        let e = StorageError::UnknownTxn(7);
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(StorageError::DeviceFailed, StorageError::DeviceFailed);
        assert_ne!(
            StorageError::Decode("a".into()),
            StorageError::Decode("b".into())
        );
    }
}
