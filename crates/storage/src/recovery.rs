//! The redo pass run when a store reopens after a crash.
//!
//! Because uncommitted writes never reach the shared tree (see
//! [`crate::kv`]), recovery is redo-only: group the log's write records by
//! transaction, apply the groups whose `Commit` record is durable — in commit
//! order — and surface `Prepare`d-but-unresolved transactions as *in-doubt*
//! for the two-phase-commit coordinator to resolve (paper §6 notes a QM "may
//! need to support multiple transaction protocols"; in-doubt handoff is the
//! hook that makes the queue store a well-behaved 2PC participant).
//!
//! ## Partitioned logs
//!
//! With `wal_partitions > 1` the store splits its log by key hash; recovery
//! scans every log **in parallel** (one named thread per log) and then merges
//! the per-log facts. Commit records carry the global *epoch* allocated at
//! the commit point, so committed transactions are replayed in epoch order
//! across logs; a key always hashes to the same log, so per-key record order
//! within one log is already replay order for that key. Commit records with
//! no epoch payload (pre-partitioning logs, and hand-built test logs) fall
//! back to their scan position, carrying the last epoch seen in the same log
//! so legacy and epoch-stamped records interleave in log order.
//!
//! ## The checkpoint watermark
//!
//! Checkpointing truncates the logs one at a time after the chain segment is
//! durable, so a crash mid-checkpoint can leave some logs truncated and some
//! not. Every surviving record of such a crash describes a transaction the
//! chain already covers — but replaying it anyway is not harmless: a newer
//! transaction's commit record (which lives only in its *home* log) may be
//! among the truncated ones while an older transaction's data + commit for
//! the same key survive in an untruncated sibling, and redoing the older
//! commit would regress the key below checkpointed state. The chain
//! therefore carries a **covered-epoch watermark**
//! ([`crate::checkpoint::CheckpointChain::covered_epoch`]), and
//! [`replay_partitioned`] *skips* every commit record with a lower epoch:
//! the record still resolves its transaction (a matching `Prepare` does not
//! resurface as in-doubt, and it still counts in `committed_txns`), but its
//! redo operations are dropped — the chain already holds their final
//! effect. The recovered epoch counter resumes at or above the watermark so
//! post-recovery commits can never be mistaken for covered ones.
//!
//! Records are grouped by the *internal incarnation id* the store stamps
//! into each record's txn field — unique per transaction incarnation, never
//! reused, so a caller token recycled after a restart can never splice a
//! dead incarnation's data records into a later outcome (the single-log
//! scanner used to handle this by consuming ops at each outcome record in
//! sequence; with outcome records living in one log and data records in
//! many, uniqueness replaces sequence). `Prepare` records carry the caller's
//! token in their payload, so in-doubt transactions still surface under the
//! token the coordinator knows.

use crate::codec::Reader;
use crate::error::{StorageError, StorageResult};
use crate::kv::WriteOp;
use crate::wal::{RecordKind, Wal};
use std::collections::{HashMap, HashSet};

/// What the redo pass found in a single log, before it is applied.
#[derive(Debug, Default)]
pub struct ReplayOutcome {
    /// Redo operations of committed transactions, in commit order.
    pub redo: Vec<WriteOp>,
    /// Number of committed transactions replayed.
    pub committed_txns: usize,
    /// Number of aborted transactions discarded.
    pub aborted_txns: usize,
    /// Prepared transactions with no durable outcome, with their buffered
    /// writes, keyed by transaction token.
    pub in_doubt: HashMap<u64, Vec<WriteOp>>,
    /// Byte offset where the valid log prefix ends. Anything between here
    /// and the device length is a torn tail that must be discarded before
    /// new records are appended — otherwise the next recovery scan stops at
    /// the old tear and never sees them.
    pub valid_end: u64,
}

/// What the redo pass found across a set of partitioned logs.
#[derive(Debug, Default)]
pub struct PartitionedOutcome {
    /// Redo operations of committed transactions, in global epoch order.
    pub redo: Vec<WriteOp>,
    /// Number of committed transactions replayed.
    pub committed_txns: usize,
    /// Number of aborted transactions discarded.
    pub aborted_txns: usize,
    /// Prepared transactions with no durable outcome, ops merged across
    /// logs, keyed by transaction token.
    pub in_doubt: HashMap<u64, Vec<WriteOp>>,
    /// Internal incarnation id of each in-doubt transaction, keyed by
    /// token — resolving the transaction must reuse its original id so the
    /// outcome record matches the data records already in the logs.
    pub in_doubt_internal: HashMap<u64, u64>,
    /// Per-log valid-prefix ends (index-aligned with the scanned logs).
    pub valid_ends: Vec<u64>,
    /// One past the highest commit epoch seen — where the epoch counter and
    /// the retire line resume.
    pub next_epoch: u64,
    /// One past the highest incarnation id seen in any log — where the
    /// store's id counter resumes so ids stay unique across restarts.
    pub next_txn_id: u64,
}

/// Summary returned to callers of [`crate::kv::KvStore::open`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Redo operations applied.
    pub replayed: usize,
    /// Committed transactions found in the log.
    pub committed_txns: usize,
    /// Aborted transactions found in the log.
    pub aborted_txns: usize,
    /// Tokens of in-doubt (prepared, unresolved) transactions, sorted.
    pub in_doubt: Vec<u64>,
}

/// Per-log classification of every record, produced by one scan.
#[derive(Debug, Default)]
struct LogFacts {
    valid_end: u64,
    /// Data records per transaction, in append order.
    ops: HashMap<u64, Vec<WriteOp>>,
    /// Commit records in scan order: (txn, epoch payload if present).
    commits: Vec<(u64, Option<u64>)>,
    /// Prepare records: (incarnation id, caller token from the payload —
    /// falling back to the id itself for payload-less legacy records).
    prepared: Vec<(u64, u64)>,
    aborted: Vec<u64>,
    /// Highest record txn field seen (0 when the log is empty).
    max_txn: u64,
}

fn scan_and_classify(wal: &Wal) -> StorageResult<LogFacts> {
    let (records, valid_end) = wal.scan(0)?;
    let mut facts = LogFacts {
        valid_end,
        ..LogFacts::default()
    };
    for rec in records {
        facts.max_txn = facts.max_txn.max(rec.txn);
        match rec.kind {
            RecordKind::KvPut => {
                let op = WriteOp::decode_put(&rec.payload)?;
                facts.ops.entry(rec.txn).or_default().push(op);
            }
            RecordKind::KvDelete => {
                let op = WriteOp::decode_delete(&rec.payload)?;
                facts.ops.entry(rec.txn).or_default().push(op);
            }
            RecordKind::Prepare => {
                let token = if rec.payload.len() >= 8 {
                    Reader::new(&rec.payload).u64().unwrap_or(rec.txn)
                } else {
                    rec.txn
                };
                facts.prepared.push((rec.txn, token));
            }
            RecordKind::Commit => {
                let epoch = if rec.payload.len() >= 8 {
                    Reader::new(&rec.payload).u64().ok()
                } else {
                    None
                };
                facts.commits.push((rec.txn, epoch));
            }
            RecordKind::Abort => facts.aborted.push(rec.txn),
            RecordKind::Checkpoint | RecordKind::Custom(_) => {
                // Checkpoint markers carry no redo info; custom records are
                // scanned by their owners via `Wal::scan` directly.
            }
        }
    }
    Ok(facts)
}

/// Scan `wals` (in parallel when there is more than one) and merge the
/// per-log facts into one global outcome.
///
/// `covered_epoch` is the checkpoint chain's watermark: commit records with
/// a lower epoch are *resolved but not replayed* — their effects are already
/// in the chain, and re-applying one could regress a key whose newer commit
/// record was in a log the interrupted checkpoint had already truncated.
/// Pass `0` when there is no chain (nothing is skipped).
pub fn replay_partitioned(wals: &[Wal], covered_epoch: u64) -> StorageResult<PartitionedOutcome> {
    let mut facts: Vec<LogFacts> = if wals.len() <= 1 {
        let mut v = Vec::with_capacity(wals.len());
        for wal in wals {
            v.push(scan_and_classify(wal)?);
        }
        v
    } else {
        let results: StorageResult<Vec<LogFacts>> = std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(wals.len());
            for (i, wal) in wals.iter().enumerate() {
                let builder = std::thread::Builder::new().name(format!("rrq-recover-{i}"));
                let handle = builder
                    .spawn_scoped(s, move || scan_and_classify(wal))
                    .map_err(|e| {
                        StorageError::InvalidState(format!("recovery scan thread: {e}"))
                    })?;
                handles.push(handle);
            }
            let mut out = Vec::with_capacity(handles.len());
            for h in handles {
                let res = h.join().map_err(|_| {
                    StorageError::InvalidState("recovery scan thread panicked".into())
                })?;
                out.push(res?);
            }
            Ok(out)
        });
        rrq_obs::counter_add("storage.recovery.parallel_logs", wals.len() as u64);
        results?
    };

    // Merge: a transaction is committed if any log holds its commit record.
    // Sort key = (epoch, log, scan position); commits without an epoch carry
    // the last epoch seen in their log, so they stay in log order relative
    // to their neighbours.
    let mut committed: HashMap<u64, (u64, usize, usize)> = HashMap::new();
    let mut max_epoch: Option<u64> = None;
    let mut max_txn = 0u64;
    let mut prepared: Vec<(u64, u64)> = Vec::new();
    let mut aborted: HashSet<u64> = HashSet::new();
    for (li, f) in facts.iter().enumerate() {
        max_txn = max_txn.max(f.max_txn);
        let mut carry = 0u64;
        for (pos, (txn, epoch)) in f.commits.iter().enumerate() {
            let key_epoch = match epoch {
                Some(e) => {
                    carry = *e;
                    max_epoch = Some(max_epoch.map_or(*e, |m| m.max(*e)));
                    *e
                }
                None => carry,
            };
            committed.insert(*txn, (key_epoch, li, pos));
        }
        prepared.extend(f.prepared.iter().copied());
        aborted.extend(f.aborted.iter().copied());
    }

    let mut order: Vec<(u64, usize, usize, u64)> = committed
        .iter()
        .map(|(txn, (e, li, pos))| (*e, *li, *pos, *txn))
        .collect();
    order.sort_unstable();

    let mut out = PartitionedOutcome {
        committed_txns: committed.len(),
        valid_ends: facts.iter().map(|f| f.valid_end).collect(),
        // Floor at the watermark: after a checkpoint truncates every log the
        // epoch counter would otherwise restart at 0, and this recovery's
        // own commits would look "covered" to the *next* recovery.
        next_epoch: max_epoch.map_or(0, |e| e + 1).max(covered_epoch),
        next_txn_id: max_txn + 1,
        ..PartitionedOutcome::default()
    };
    for (epoch, _, _, txn) in order {
        if epoch < covered_epoch {
            // Covered by the checkpoint chain: the transaction is resolved
            // (its prepare, if any, must not resurface as in-doubt) but its
            // redo is already reflected in the chain — and may since have
            // been overwritten by a newer commit whose own record lived in
            // an already-truncated log. Drop the ops instead of replaying.
            for f in facts.iter_mut() {
                f.ops.remove(&txn);
            }
            rrq_obs::counter_inc("storage.recovery.covered_commits_skipped");
            continue;
        }
        for f in facts.iter_mut() {
            if let Some(ops) = f.ops.remove(&txn) {
                out.redo.extend(ops);
            }
        }
    }
    for txn in &aborted {
        if !committed.contains_key(txn) {
            out.aborted_txns += 1;
        }
    }
    for (id, token) in prepared {
        if committed.contains_key(&id) || aborted.contains(&id) {
            continue;
        }
        let mut ops = Vec::new();
        for f in facts.iter_mut() {
            if let Some(part) = f.ops.remove(&id) {
                ops.extend(part);
            }
        }
        out.in_doubt.insert(token, ops);
        out.in_doubt_internal.insert(token, id);
    }
    // Writes without prepare or outcome simply vanish (the crash hit before
    // commit); `facts[*].ops` leftovers are dropped here.
    Ok(out)
}

/// Scan a single log and classify every transaction's fate (no checkpoint
/// chain: every commit found is replayed).
pub fn replay(wal: &Wal) -> StorageResult<ReplayOutcome> {
    let out = replay_partitioned(std::slice::from_ref(wal), 0)?;
    let valid_end = match out.valid_ends.first() {
        Some(v) => *v,
        None => 0,
    };
    Ok(ReplayOutcome {
        redo: out.redo,
        committed_txns: out.committed_txns,
        aborted_txns: out.aborted_txns,
        in_doubt: out.in_doubt,
        valid_end,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::SimDisk;
    use std::sync::Arc;

    fn wal() -> Wal {
        Wal::new(Arc::new(SimDisk::new()))
    }

    fn put_payload(key: &[u8], value: &[u8]) -> Vec<u8> {
        WriteOp::Put {
            key: key.to_vec(),
            value: value.to_vec(),
        }
        .encode_payload()
    }

    fn epoch_payload(e: u64) -> Vec<u8> {
        let mut p = Vec::new();
        crate::codec::put::u64(&mut p, e);
        p
    }

    #[test]
    fn committed_txn_is_replayed() {
        let w = wal();
        w.append(1, RecordKind::KvPut, &put_payload(b"a", b"1"))
            .unwrap();
        w.append(1, RecordKind::Commit, &[]).unwrap();
        w.sync().unwrap();
        let out = replay(&w).unwrap();
        assert_eq!(out.committed_txns, 1);
        assert_eq!(out.redo.len(), 1);
        assert!(out.in_doubt.is_empty());
    }

    #[test]
    fn unresolved_writes_are_dropped() {
        let w = wal();
        w.append(1, RecordKind::KvPut, &put_payload(b"a", b"1"))
            .unwrap();
        w.sync().unwrap();
        let out = replay(&w).unwrap();
        assert!(out.redo.is_empty());
        assert!(out.in_doubt.is_empty());
    }

    #[test]
    fn aborted_txn_discarded() {
        let w = wal();
        w.append(1, RecordKind::KvPut, &put_payload(b"a", b"1"))
            .unwrap();
        w.append(1, RecordKind::Abort, &[]).unwrap();
        w.sync().unwrap();
        let out = replay(&w).unwrap();
        assert!(out.redo.is_empty());
        assert_eq!(out.aborted_txns, 1);
    }

    #[test]
    fn prepared_txn_is_in_doubt_with_its_writes() {
        let w = wal();
        w.append(5, RecordKind::KvPut, &put_payload(b"x", b"9"))
            .unwrap();
        w.append(5, RecordKind::Prepare, &[]).unwrap();
        w.sync().unwrap();
        let out = replay(&w).unwrap();
        assert_eq!(out.in_doubt.len(), 1);
        assert_eq!(out.in_doubt[&5].len(), 1);
    }

    #[test]
    fn interleaved_txns_apply_in_commit_order() {
        let w = wal();
        w.append(1, RecordKind::KvPut, &put_payload(b"k", b"one"))
            .unwrap();
        w.append(2, RecordKind::KvPut, &put_payload(b"k", b"two"))
            .unwrap();
        w.append(2, RecordKind::Commit, &[]).unwrap();
        w.append(1, RecordKind::Commit, &[]).unwrap();
        w.sync().unwrap();
        let out = replay(&w).unwrap();
        assert_eq!(out.redo.len(), 2);
        // txn 2 committed first, so txn 1's write must come last.
        match &out.redo[1] {
            WriteOp::Put { value, .. } => assert_eq!(value, b"one"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn custom_and_checkpoint_records_ignored() {
        let w = wal();
        w.append(0, RecordKind::Checkpoint, &[]).unwrap();
        w.append(9, RecordKind::Custom(0x81), b"opaque").unwrap();
        w.sync().unwrap();
        let out = replay(&w).unwrap();
        assert!(out.redo.is_empty());
        assert!(out.in_doubt.is_empty());
    }

    #[test]
    fn epoch_order_wins_across_logs() {
        // Two logs; the commit on log 1 has the *lower* epoch, so its write
        // must be applied first even though log order says otherwise.
        let w0 = wal();
        let w1 = wal();
        w0.append(1, RecordKind::KvPut, &put_payload(b"k", b"late"))
            .unwrap();
        w0.append(1, RecordKind::Commit, &epoch_payload(7)).unwrap();
        w1.append(2, RecordKind::KvPut, &put_payload(b"k", b"early"))
            .unwrap();
        w1.append(2, RecordKind::Commit, &epoch_payload(3)).unwrap();
        w0.sync().unwrap();
        w1.sync().unwrap();
        let out = replay_partitioned(&[w0, w1], 0).unwrap();
        assert_eq!(out.committed_txns, 2);
        assert_eq!(out.next_epoch, 8);
        match &out.redo[1] {
            WriteOp::Put { value, .. } => assert_eq!(value, b"late"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn in_doubt_ops_merge_across_logs() {
        // Data records in both logs, prepare in the home log only.
        let w0 = wal();
        let w1 = wal();
        w0.append(5, RecordKind::KvPut, &put_payload(b"a", b"1"))
            .unwrap();
        w0.append(5, RecordKind::Prepare, &[]).unwrap();
        w1.append(5, RecordKind::KvPut, &put_payload(b"b", b"2"))
            .unwrap();
        w0.sync().unwrap();
        w1.sync().unwrap();
        let out = replay_partitioned(&[w0, w1], 0).unwrap();
        assert_eq!(out.in_doubt.len(), 1);
        assert_eq!(out.in_doubt[&5].len(), 2, "ops from both logs merged");
    }

    #[test]
    fn sibling_data_without_commit_record_vanishes() {
        // The crash window between sibling-log force and home commit record:
        // data is durable in log 1 but no commit record exists anywhere.
        let w0 = wal();
        let w1 = wal();
        w1.append(9, RecordKind::KvPut, &put_payload(b"x", b"1"))
            .unwrap();
        w1.sync().unwrap();
        let out = replay_partitioned(&[w0, w1], 0).unwrap();
        assert!(out.redo.is_empty());
        assert!(out.in_doubt.is_empty());
        assert_eq!(out.committed_txns, 0);
    }

    #[test]
    fn per_log_valid_ends_reported() {
        let w0 = wal();
        let w1 = wal();
        w0.append(1, RecordKind::KvPut, &put_payload(b"a", b"1"))
            .unwrap();
        w0.sync().unwrap();
        w1.append(2, RecordKind::KvPut, &put_payload(b"b", b"2"))
            .unwrap();
        w1.sync().unwrap();
        // Tear log 1's tail only.
        w1.append(2, RecordKind::KvPut, &put_payload(b"c", b"3"))
            .unwrap();
        w1.sync().unwrap();
        let raw = w1.disk().read(0, w1.len() as usize).unwrap();
        let cut = raw.len() - 3;
        w1.disk().reset(raw[..cut].to_vec()).unwrap();

        let wals = [w0, w1];
        let out = replay_partitioned(&wals, 0).unwrap();
        assert_eq!(out.valid_ends.len(), 2);
        assert_eq!(out.valid_ends[0], wals[0].len(), "log 0 fully valid");
        assert!(out.valid_ends[1] < cut as u64, "log 1 tail invalid");
    }

    #[test]
    fn commits_below_the_watermark_are_resolved_but_not_replayed() {
        // The partial-truncation crash: txn 1 (epoch 3) survives whole in an
        // untruncated log; txn 2's commit record (epoch 9, home = the other,
        // already-truncated log) is gone, but its data record for the same
        // key survives next to txn 1's. The chain covers both; replaying
        // txn 1 would regress the key.
        let w0 = wal(); // the truncated home log of txn 2: empty
        let w1 = wal();
        w1.append(1, RecordKind::KvPut, &put_payload(b"k", b"old"))
            .unwrap();
        w1.append(1, RecordKind::Commit, &epoch_payload(3)).unwrap();
        w1.append(2, RecordKind::KvPut, &put_payload(b"k", b"new"))
            .unwrap();
        w0.sync().unwrap();
        w1.sync().unwrap();
        let out = replay_partitioned(&[w0, w1], 10).unwrap();
        assert!(out.redo.is_empty(), "covered commit must not replay");
        assert_eq!(out.committed_txns, 1, "the commit record still counts");
        assert!(out.in_doubt.is_empty());
        assert_eq!(out.next_epoch, 10, "epoch counter floored at the watermark");
    }

    #[test]
    fn commits_at_or_above_the_watermark_still_replay() {
        let w = wal();
        w.append(1, RecordKind::KvPut, &put_payload(b"a", b"1"))
            .unwrap();
        w.append(1, RecordKind::Commit, &epoch_payload(5)).unwrap();
        w.sync().unwrap();
        let out = replay_partitioned(std::slice::from_ref(&w), 5).unwrap();
        assert_eq!(out.redo.len(), 1, "epoch == watermark is NOT covered");
        assert_eq!(out.next_epoch, 6);
    }

    #[test]
    fn covered_prepare_plus_commit_does_not_resurface_in_doubt() {
        // A prepared-then-committed transaction whose home log escaped
        // truncation: prepare and commit records both survive below the
        // watermark. Skipping the commit must still resolve the prepare.
        let w = wal();
        w.append(4, RecordKind::KvPut, &put_payload(b"x", b"v"))
            .unwrap();
        w.append(4, RecordKind::Prepare, &[]).unwrap();
        w.append(4, RecordKind::Commit, &epoch_payload(2)).unwrap();
        w.sync().unwrap();
        let out = replay_partitioned(std::slice::from_ref(&w), 7).unwrap();
        assert!(out.redo.is_empty());
        assert!(
            out.in_doubt.is_empty(),
            "resolved txn must not come back in-doubt"
        );
    }
}
