//! The redo pass run when a store reopens after a crash.
//!
//! Because uncommitted writes never reach the shared tree (see
//! [`crate::kv`]), recovery is redo-only: group the log's write records by
//! transaction, apply the groups whose `Commit` record is durable — in commit
//! order — and surface `Prepare`d-but-unresolved transactions as *in-doubt*
//! for the two-phase-commit coordinator to resolve (paper §6 notes a QM "may
//! need to support multiple transaction protocols"; in-doubt handoff is the
//! hook that makes the queue store a well-behaved 2PC participant).

use crate::error::StorageResult;
use crate::kv::WriteOp;
use crate::wal::{RecordKind, Wal};
use std::collections::HashMap;

/// What the redo pass found, before it is applied.
#[derive(Debug, Default)]
pub struct ReplayOutcome {
    /// Redo operations of committed transactions, in commit order.
    pub redo: Vec<WriteOp>,
    /// Number of committed transactions replayed.
    pub committed_txns: usize,
    /// Number of aborted transactions discarded.
    pub aborted_txns: usize,
    /// Prepared transactions with no durable outcome, with their buffered
    /// writes, keyed by transaction token.
    pub in_doubt: HashMap<u64, Vec<WriteOp>>,
    /// Byte offset where the valid log prefix ends. Anything between here
    /// and the device length is a torn tail that must be discarded before
    /// new records are appended — otherwise the next recovery scan stops at
    /// the old tear and never sees them.
    pub valid_end: u64,
}

/// Summary returned to callers of [`crate::kv::KvStore::open`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Redo operations applied.
    pub replayed: usize,
    /// Committed transactions found in the log.
    pub committed_txns: usize,
    /// Aborted transactions found in the log.
    pub aborted_txns: usize,
    /// Tokens of in-doubt (prepared, unresolved) transactions, sorted.
    pub in_doubt: Vec<u64>,
}

/// Scan the log and classify every transaction's fate.
pub fn replay(wal: &Wal) -> StorageResult<ReplayOutcome> {
    let (records, valid_end) = wal.scan(0)?;
    let mut pending: HashMap<u64, Vec<WriteOp>> = HashMap::new();
    let mut prepared: HashMap<u64, bool> = HashMap::new();
    let mut out = ReplayOutcome {
        valid_end,
        ..ReplayOutcome::default()
    };

    for rec in records {
        match rec.kind {
            RecordKind::KvPut => {
                let op = WriteOp::decode_put(&rec.payload)?;
                pending.entry(rec.txn).or_default().push(op);
            }
            RecordKind::KvDelete => {
                let op = WriteOp::decode_delete(&rec.payload)?;
                pending.entry(rec.txn).or_default().push(op);
            }
            RecordKind::Prepare => {
                prepared.insert(rec.txn, true);
            }
            RecordKind::Commit => {
                prepared.remove(&rec.txn);
                if let Some(ops) = pending.remove(&rec.txn) {
                    out.redo.extend(ops);
                }
                out.committed_txns += 1;
            }
            RecordKind::Abort => {
                prepared.remove(&rec.txn);
                pending.remove(&rec.txn);
                out.aborted_txns += 1;
            }
            RecordKind::Checkpoint | RecordKind::Custom(_) => {
                // Checkpoint markers carry no redo info; custom records are
                // scanned by their owners via `Wal::scan` directly.
            }
        }
    }

    for (txn, _) in prepared {
        let ops = pending.remove(&txn).unwrap_or_default();
        out.in_doubt.insert(txn, ops);
    }
    // Writes without prepare or outcome simply vanish (the crash hit before
    // commit); `pending` leftovers are dropped here.
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::SimDisk;
    use std::sync::Arc;

    fn wal() -> Wal {
        Wal::new(Arc::new(SimDisk::new()))
    }

    fn put_payload(key: &[u8], value: &[u8]) -> Vec<u8> {
        WriteOp::Put {
            key: key.to_vec(),
            value: value.to_vec(),
        }
        .encode_payload()
    }

    #[test]
    fn committed_txn_is_replayed() {
        let w = wal();
        w.append(1, RecordKind::KvPut, &put_payload(b"a", b"1"))
            .unwrap();
        w.append(1, RecordKind::Commit, &[]).unwrap();
        w.sync().unwrap();
        let out = replay(&w).unwrap();
        assert_eq!(out.committed_txns, 1);
        assert_eq!(out.redo.len(), 1);
        assert!(out.in_doubt.is_empty());
    }

    #[test]
    fn unresolved_writes_are_dropped() {
        let w = wal();
        w.append(1, RecordKind::KvPut, &put_payload(b"a", b"1"))
            .unwrap();
        w.sync().unwrap();
        let out = replay(&w).unwrap();
        assert!(out.redo.is_empty());
        assert!(out.in_doubt.is_empty());
    }

    #[test]
    fn aborted_txn_discarded() {
        let w = wal();
        w.append(1, RecordKind::KvPut, &put_payload(b"a", b"1"))
            .unwrap();
        w.append(1, RecordKind::Abort, &[]).unwrap();
        w.sync().unwrap();
        let out = replay(&w).unwrap();
        assert!(out.redo.is_empty());
        assert_eq!(out.aborted_txns, 1);
    }

    #[test]
    fn prepared_txn_is_in_doubt_with_its_writes() {
        let w = wal();
        w.append(5, RecordKind::KvPut, &put_payload(b"x", b"9"))
            .unwrap();
        w.append(5, RecordKind::Prepare, &[]).unwrap();
        w.sync().unwrap();
        let out = replay(&w).unwrap();
        assert_eq!(out.in_doubt.len(), 1);
        assert_eq!(out.in_doubt[&5].len(), 1);
    }

    #[test]
    fn interleaved_txns_apply_in_commit_order() {
        let w = wal();
        w.append(1, RecordKind::KvPut, &put_payload(b"k", b"one"))
            .unwrap();
        w.append(2, RecordKind::KvPut, &put_payload(b"k", b"two"))
            .unwrap();
        w.append(2, RecordKind::Commit, &[]).unwrap();
        w.append(1, RecordKind::Commit, &[]).unwrap();
        w.sync().unwrap();
        let out = replay(&w).unwrap();
        assert_eq!(out.redo.len(), 2);
        // txn 2 committed first, so txn 1's write must come last.
        match &out.redo[1] {
            WriteOp::Put { value, .. } => assert_eq!(value, b"one"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn custom_and_checkpoint_records_ignored() {
        let w = wal();
        w.append(0, RecordKind::Checkpoint, &[]).unwrap();
        w.append(9, RecordKind::Custom(0x81), b"opaque").unwrap();
        w.sync().unwrap();
        let out = replay(&w).unwrap();
        assert!(out.redo.is_empty());
        assert!(out.in_doubt.is_empty());
    }
}
