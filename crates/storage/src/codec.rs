//! Hand-rolled binary codec for log records, checkpoints, and queue payloads.
//!
//! The format is deliberately simple and self-contained: fixed-width
//! little-endian integers, length-prefixed byte strings, and a [`Encode`] /
//! [`Decode`] trait pair. Keeping the codec in-crate means the WAL format is
//! fully specified by this repository (no external serialization crate whose
//! format could drift) and lets recovery distinguish truncation from
//! corruption precisely.

use crate::error::{StorageError, StorageResult};

/// Types that can serialize themselves onto a byte buffer.
pub trait Encode {
    /// Append this value's encoding to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Convenience: encode into a fresh buffer.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }
}

/// Types that can deserialize themselves from a [`Reader`].
pub trait Decode: Sized {
    /// Consume bytes from `r` and reconstruct the value.
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self>;

    /// Convenience: decode from a complete buffer, requiring full consumption.
    fn decode_all(bytes: &[u8]) -> StorageResult<Self> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        if !r.is_empty() {
            return Err(StorageError::Decode(format!(
                "{} trailing bytes after decode",
                r.remaining()
            )));
        }
        Ok(v)
    }
}

/// A cursor over a byte slice with checked reads.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when all bytes are consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> StorageResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(StorageError::Decode(format!(
                "need {n} bytes, only {} remain",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a single byte.
    pub fn u8(&mut self) -> StorageResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian u16.
    pub fn u16(&mut self) -> StorageResult<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a little-endian u32.
    pub fn u32(&mut self) -> StorageResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian u64.
    pub fn u64(&mut self) -> StorageResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a little-endian i64.
    pub fn i64(&mut self) -> StorageResult<i64> {
        Ok(self.u64()? as i64)
    }

    /// Read a bool encoded as one byte (0 or 1).
    pub fn bool(&mut self) -> StorageResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(StorageError::Decode(format!("invalid bool byte {b}"))),
        }
    }

    /// Read a u32-length-prefixed byte string.
    pub fn bytes(&mut self) -> StorageResult<Vec<u8>> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Read a u32-length-prefixed UTF-8 string.
    pub fn string(&mut self) -> StorageResult<String> {
        let raw = self.bytes()?;
        String::from_utf8(raw).map_err(|e| StorageError::Decode(format!("invalid utf8: {e}")))
    }
}

/// Append helpers mirroring [`Reader`].
pub mod put {
    /// Append a u8.
    pub fn u8(buf: &mut Vec<u8>, v: u8) {
        buf.push(v);
    }
    /// Append a little-endian u16.
    pub fn u16(buf: &mut Vec<u8>, v: u16) {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Append a little-endian u32.
    pub fn u32(buf: &mut Vec<u8>, v: u32) {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Append a little-endian u64.
    pub fn u64(buf: &mut Vec<u8>, v: u64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Append a little-endian i64.
    pub fn i64(buf: &mut Vec<u8>, v: i64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Append a bool as one byte.
    pub fn bool(buf: &mut Vec<u8>, v: bool) {
        buf.push(v as u8);
    }
    /// Append a u32-length-prefixed byte string.
    pub fn bytes(buf: &mut Vec<u8>, v: &[u8]) {
        u32(buf, v.len() as u32);
        buf.extend_from_slice(v);
    }
    /// Append a u32-length-prefixed UTF-8 string.
    pub fn string(buf: &mut Vec<u8>, v: &str) {
        bytes(buf, v.as_bytes());
    }
}

impl Encode for Vec<u8> {
    fn encode(&self, buf: &mut Vec<u8>) {
        put::bytes(buf, self);
    }
}

impl Decode for Vec<u8> {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        r.bytes()
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        put::string(buf, self);
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        r.string()
    }
}

impl Encode for u64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        put::u64(buf, *self);
    }
}

impl Decode for u64 {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        r.u64()
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => put::u8(buf, 0),
            Some(v) => {
                put::u8(buf, 1);
                v.encode(buf);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            b => Err(StorageError::Decode(format!("invalid option tag {b}"))),
        }
    }
}

impl<T: Encode> Encode for Vec<T>
where
    T: Encode,
{
    fn encode(&self, buf: &mut Vec<u8>) {
        put::u32(buf, self.len() as u32);
        for item in self {
            item.encode(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ints_roundtrip() {
        let mut buf = Vec::new();
        put::u8(&mut buf, 0xAB);
        put::u16(&mut buf, 0xBEEF);
        put::u32(&mut buf, 0xDEAD_BEEF);
        put::u64(&mut buf, u64::MAX - 1);
        put::i64(&mut buf, -42);
        put::bool(&mut buf, true);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -42);
        assert!(r.bool().unwrap());
        assert!(r.is_empty());
    }

    #[test]
    fn bytes_and_strings_roundtrip() {
        let mut buf = Vec::new();
        put::bytes(&mut buf, b"payload");
        put::string(&mut buf, "queue/req");
        let mut r = Reader::new(&buf);
        assert_eq!(r.bytes().unwrap(), b"payload");
        assert_eq!(r.string().unwrap(), "queue/req");
    }

    #[test]
    fn truncated_read_is_decode_error() {
        let buf = vec![1, 2];
        let mut r = Reader::new(&buf);
        assert!(matches!(r.u32(), Err(StorageError::Decode(_))));
    }

    #[test]
    fn bogus_bool_and_option_tags_rejected() {
        let mut r = Reader::new(&[7]);
        assert!(r.bool().is_err());
        let mut r = Reader::new(&[9]);
        assert!(Option::<u64>::decode(&mut r).is_err());
    }

    #[test]
    fn option_roundtrip() {
        let some: Option<u64> = Some(99);
        let none: Option<u64> = None;
        let mut buf = Vec::new();
        some.encode(&mut buf);
        none.encode(&mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(Option::<u64>::decode(&mut r).unwrap(), Some(99));
        assert_eq!(Option::<u64>::decode(&mut r).unwrap(), None);
    }

    #[test]
    fn decode_all_rejects_trailing_garbage() {
        let mut buf = Vec::new();
        put::u64(&mut buf, 5);
        buf.push(0xFF);
        assert!(u64::decode_all(&buf).is_err());
    }

    #[test]
    fn invalid_utf8_is_error() {
        let mut buf = Vec::new();
        put::bytes(&mut buf, &[0xFF, 0xFE]);
        let mut r = Reader::new(&buf);
        assert!(r.string().is_err());
    }
}
