//! A recoverable, transactional, main-memory key-value store.
//!
//! This is the "main memory database" of §10 of the paper: all live data is
//! in an in-memory B-tree, durability comes from the write-ahead log, and a
//! periodic checkpoint bounds recovery time. The store is the foundation for
//! the queue manager's element, registration, and metadata tables, and for
//! the application databases (bank accounts, orders) used by the servers.
//!
//! ## Transaction discipline
//!
//! * All mutations happen under a caller-supplied transaction token
//!   ([`KvStore::begin`]). Uncommitted writes live only in the transaction's
//!   private buffer — they never touch the shared tree, so *abort is a no-op*
//!   on the tree and crash recovery is redo-only.
//! * Reads within a transaction see the transaction's own writes (the buffer
//!   is an overlay over the tree).
//! * [`KvStore::prepare`] forces the transaction's redo records plus a
//!   `Prepare` record — phase 1 of two-phase commit. A prepared transaction
//!   survives a crash as *in-doubt* and can be resolved either way by the
//!   coordinator after recovery.
//! * [`KvStore::commit`] forces a `Commit` record (logging the writes first
//!   if `prepare` was skipped, the one-phase fast path) and only then applies
//!   the writes to the tree.
//!
//! Concurrency control (locking) is the responsibility of the transaction
//! layer above; this store guarantees atomicity and durability only.
//!
//! ## Internal locking
//!
//! The store is reader-parallel: committed state lives in `mem` behind an
//! `RwLock`, so `get`/`scan_prefix*` take a read lock and run concurrently
//! with each other and with the logging half of a commit. Private overlays
//! live in `txns` behind their own mutex; the WAL append latch (`log`)
//! serializes record appends and allocates the *apply sequence*, so the
//! order writes reach the shared tree always equals commit-record order in
//! the log (recovery replays in commit order — the live tree must agree).
//! Commit forcing goes through the [`GroupCommit`] coordinator, which
//! batches concurrent syncs into one device force per group.
//!
//! Lock order: a thread holds at most one of {`txns`, `mem`, `log`} at a
//! time, except the apply step (`apply` → `mem.write`) and checkpointing,
//! which holds the exclusive `ckpt_gate` and may take `mem.read` then `log`.
//! Commit-point record writers (commit / prepare / logged abort) hold
//! `ckpt_gate.read` so a checkpoint can never truncate the log while a
//! commit record is in flight between append and sync. The classes and
//! their declared order live in `LOCKS.md` (kv-gate, kv-txns, kv-log,
//! kv-apply, kv-mem); the rrq-analyze `lock-order` and
//! `no-block-under-guard` rules check every path against them — in
//! particular `log` is a no-block class, so device forces happen outside
//! the append latch (see [`KvStore::checkpoint`]).

use crate::checkpoint::{load_checkpoint, write_checkpoint};
use crate::codec::{put, Reader};
use crate::disk::Disk;
use crate::error::{StorageError, StorageResult};
use crate::group_commit::{GroupCommit, GroupCommitStats};
use crate::recovery::{replay, RecoveryReport};
use crate::wal::{RecordKind, Wal};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A single redo operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteOp {
    /// Insert or overwrite `key`.
    Put {
        /// Key bytes.
        key: Vec<u8>,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// Remove `key` (removing an absent key is a logged no-op).
    Delete {
        /// Key bytes.
        key: Vec<u8>,
    },
}

impl WriteOp {
    /// The key this operation touches.
    pub fn key(&self) -> &[u8] {
        match self {
            WriteOp::Put { key, .. } | WriteOp::Delete { key } => key,
        }
    }

    /// Encode as a WAL payload.
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            WriteOp::Put { key, value } => {
                put::bytes(&mut buf, key);
                put::bytes(&mut buf, value);
            }
            WriteOp::Delete { key } => {
                put::bytes(&mut buf, key);
            }
        }
        buf
    }

    /// Decode a `KvPut` payload.
    pub fn decode_put(payload: &[u8]) -> StorageResult<WriteOp> {
        let mut r = Reader::new(payload);
        let key = r.bytes()?;
        let value = r.bytes()?;
        Ok(WriteOp::Put { key, value })
    }

    /// Decode a `KvDelete` payload.
    pub fn decode_delete(payload: &[u8]) -> StorageResult<WriteOp> {
        let mut r = Reader::new(payload);
        let key = r.bytes()?;
        Ok(WriteOp::Delete { key })
    }
}

/// Per-transaction private state.
#[derive(Debug, Default)]
struct TxnState {
    /// Redo operations in execution order.
    ops: Vec<WriteOp>,
    /// Overlay for read-your-writes: key → Some(value) | None (deleted).
    overlay: HashMap<Vec<u8>, Option<Vec<u8>>>,
    /// Writes have been logged (prepare ran, or recovery found them).
    logged: bool,
    /// Prepare record is durable — the txn is in-doubt until resolved.
    prepared: bool,
}

/// Tuning knobs for a [`KvStore`].
#[derive(Debug, Clone, Copy)]
pub struct KvOptions {
    /// Force the log on commit (the write-ahead rule). Turning this off
    /// models the paper's *volatile queues* (§10): cheap, but contents are
    /// lost on a crash.
    pub sync_on_commit: bool,
    /// Route commit-point forces through the group-commit coordinator so
    /// concurrent committers share one device sync. Off = the per-commit
    /// sync baseline (one force per transaction).
    pub group_commit: bool,
    /// How long a group leader dallies before syncing, letting more
    /// committers join the group. Zero = opportunistic batching only.
    pub group_commit_window: Duration,
}

impl Default for KvOptions {
    fn default() -> Self {
        KvOptions {
            sync_on_commit: true,
            group_commit: true,
            group_commit_window: Duration::ZERO,
        }
    }
}

/// Serializes WAL appends and hands out apply sequence numbers at the
/// commit point, so apply order == commit-record order.
#[derive(Debug, Default)]
struct LogState {
    next_seq: u64,
}

impl LogState {
    fn alloc_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }
}

/// The retire line: commit `seq` may touch the shared tree only once every
/// earlier seq has retired.
#[derive(Debug, Default)]
struct ApplyState {
    applied: u64,
}

/// Handle to an open transaction, used purely as documentation — all methods
/// take the raw token so the transaction layer can drive many stores with
/// one token.
pub type KvTxn = u64;

/// One page of a prefix scan: the visible entries plus the continuation
/// cursor (`Some(key)` → call again with `after = Some(key)`).
pub type ScanPage = (Vec<(Vec<u8>, Vec<u8>)>, Option<Vec<u8>>);

/// The recoverable key-value store. Cheap to share via `Arc`.
pub struct KvStore {
    /// Committed state. Readers share; only the apply step writes.
    mem: RwLock<BTreeMap<Vec<u8>, Vec<u8>>>,
    /// Open transactions' private buffers.
    txns: Mutex<HashMap<u64, TxnState>>,
    /// WAL append latch + apply-sequence allocator.
    log: Mutex<LogState>,
    /// Retire line for in-order application of committed writes.
    apply: Mutex<ApplyState>,
    apply_cv: Condvar,
    /// Commit-force batching.
    group: GroupCommit,
    /// Commit-point writers hold `read`; checkpoint holds `write` so the
    /// log is never truncated under an in-flight commit record.
    ckpt_gate: RwLock<()>,
    wal: Wal,
    ckpt: Arc<dyn Disk>,
    opts: KvOptions,
    commits: AtomicU64,
    aborts: AtomicU64,
}

impl KvStore {
    /// Open (or recover) a store over a log device and a checkpoint device.
    ///
    /// Recovery loads the last complete checkpoint, replays every committed
    /// transaction in the log in commit order, and re-materializes prepared
    /// but unresolved transactions as in-doubt (listed in the returned
    /// [`RecoveryReport`]; resolve them with [`KvStore::commit`] /
    /// [`KvStore::abort`]).
    pub fn open(
        wal_disk: Arc<dyn Disk>,
        ckpt_disk: Arc<dyn Disk>,
        opts: KvOptions,
    ) -> StorageResult<(Arc<KvStore>, RecoveryReport)> {
        let mem = load_checkpoint(ckpt_disk.as_ref())?;
        let wal = Wal::new(wal_disk);
        let outcome = replay(&wal)?;
        rrq_obs::counter_inc("storage.recovery.runs");
        rrq_obs::counter_add("storage.recovery.redo_records", outcome.redo.len() as u64);
        rrq_obs::counter_add("storage.recovery.in_doubt", outcome.in_doubt.len() as u64);

        // Discard a torn tail (a crash mid-append left corrupt bytes on the
        // platter). Future appends must start at the valid prefix, or the
        // next recovery's scan would stop at the old tear and lose them.
        if outcome.valid_end < wal.len() {
            let valid = wal.disk().read(0, outcome.valid_end as usize)?;
            wal.disk().reset(valid)?;
            rrq_obs::counter_inc("storage.recovery.torn_tail_truncations");
        }

        let mut mem = mem;
        for op in &outcome.redo {
            apply(&mut mem, op);
        }
        let mut txns = HashMap::new();
        for (token, ops) in outcome.in_doubt.iter() {
            let mut st = TxnState {
                logged: true,
                prepared: true,
                ..Default::default()
            };
            for op in ops {
                st.overlay.insert(
                    op.key().to_vec(),
                    match op {
                        WriteOp::Put { value, .. } => Some(value.clone()),
                        WriteOp::Delete { .. } => None,
                    },
                );
                st.ops.push(op.clone());
            }
            txns.insert(*token, st);
        }

        let report = RecoveryReport {
            replayed: outcome.redo.len(),
            committed_txns: outcome.committed_txns,
            aborted_txns: outcome.aborted_txns,
            in_doubt: outcome.in_doubt.keys().copied().collect(),
        };
        let store = Arc::new(KvStore {
            mem: RwLock::new(mem),
            txns: Mutex::new(txns),
            log: Mutex::new(LogState::default()),
            apply: Mutex::new(ApplyState::default()),
            apply_cv: Condvar::new(),
            group: GroupCommit::new(opts.group_commit_window),
            ckpt_gate: RwLock::new(()),
            wal,
            ckpt: ckpt_disk,
            opts,
            commits: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
        });
        Ok((store, report))
    }

    /// Begin a transaction under the caller's token.
    pub fn begin(&self, txn: KvTxn) -> StorageResult<()> {
        let mut g = self.txns.lock();
        if g.contains_key(&txn) {
            return Err(StorageError::InvalidState(format!(
                "txn {txn} already open"
            )));
        }
        g.insert(txn, TxnState::default());
        Ok(())
    }

    /// True if `txn` is currently open (including recovered in-doubt ones).
    pub fn is_open(&self, txn: KvTxn) -> bool {
        self.txns.lock().contains_key(&txn)
    }

    /// Buffer a put in `txn`.
    pub fn put(&self, txn: KvTxn, key: &[u8], value: &[u8]) -> StorageResult<()> {
        let mut g = self.txns.lock();
        let st = g.get_mut(&txn).ok_or(StorageError::UnknownTxn(txn))?;
        if st.prepared {
            return Err(StorageError::InvalidState(
                "cannot write after prepare".into(),
            ));
        }
        st.ops.push(WriteOp::Put {
            key: key.to_vec(),
            value: value.to_vec(),
        });
        st.overlay.insert(key.to_vec(), Some(value.to_vec()));
        Ok(())
    }

    /// Buffer a delete in `txn`.
    pub fn delete(&self, txn: KvTxn, key: &[u8]) -> StorageResult<()> {
        let mut g = self.txns.lock();
        let st = g.get_mut(&txn).ok_or(StorageError::UnknownTxn(txn))?;
        if st.prepared {
            return Err(StorageError::InvalidState(
                "cannot write after prepare".into(),
            ));
        }
        st.ops.push(WriteOp::Delete { key: key.to_vec() });
        st.overlay.insert(key.to_vec(), None);
        Ok(())
    }

    /// Read `key`. With `Some(txn)`, the transaction's own writes are
    /// visible; with `None`, only committed state is read.
    pub fn get(&self, txn: Option<KvTxn>, key: &[u8]) -> StorageResult<Option<Vec<u8>>> {
        if let Some(t) = txn {
            let g = self.txns.lock();
            let st = g.get(&t).ok_or(StorageError::UnknownTxn(t))?;
            if let Some(v) = st.overlay.get(key) {
                return Ok(v.clone());
            }
        }
        Ok(self.mem.read().get(key).cloned())
    }

    /// Scan all committed keys with `prefix`, merged with the transaction's
    /// overlay when `txn` is supplied. Results are key-ordered.
    pub fn scan_prefix(
        &self,
        txn: Option<KvTxn>,
        prefix: &[u8],
    ) -> StorageResult<Vec<(Vec<u8>, Vec<u8>)>> {
        // Overlay first (own-thread data, brief txns lock), tree second —
        // never two internal locks at once.
        type Overlay = Vec<(Vec<u8>, Option<Vec<u8>>)>;
        let overlay: Option<Overlay> = match txn {
            Some(t) => {
                let g = self.txns.lock();
                let st = g.get(&t).ok_or(StorageError::UnknownTxn(t))?;
                Some(
                    st.overlay
                        .iter()
                        .filter(|(k, _)| k.starts_with(prefix))
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect(),
                )
            }
            None => None,
        };
        let mut out: BTreeMap<Vec<u8>, Vec<u8>> = {
            let mem = self.mem.read();
            mem.range::<[u8], _>((Bound::Included(prefix), Bound::Unbounded))
                .take_while(|(k, _)| k.starts_with(prefix))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect()
        };
        if let Some(ov) = overlay {
            for (k, v) in ov {
                match v {
                    Some(val) => {
                        out.insert(k, val);
                    }
                    None => {
                        out.remove(&k);
                    }
                }
            }
        }
        Ok(out.into_iter().collect())
    }

    /// Paged prefix scan for large keyspaces (queue scans page through
    /// candidates instead of copying the whole queue).
    ///
    /// Returns up to `limit` visible entries with keys strictly greater than
    /// `after` (or from the start of the prefix when `after` is `None`),
    /// plus a continuation cursor: `Some(key)` means call again with
    /// `after = Some(key)`; `None` means the prefix is exhausted. The cursor
    /// tracks *raw* tree position, so entries hidden by the transaction's
    /// own deletes never stall pagination.
    pub fn scan_prefix_page(
        &self,
        txn: Option<KvTxn>,
        prefix: &[u8],
        after: Option<&[u8]>,
        limit: usize,
    ) -> StorageResult<ScanPage> {
        let limit = limit.max(1);
        let start: Vec<u8> = match after {
            // Strictly-greater start: append a zero byte to form the next key.
            Some(a) => {
                let mut s = a.to_vec();
                s.push(0);
                s
            }
            None => prefix.to_vec(),
        };

        // Raw page from the tree, under the shared read lock only.
        let (raw, cursor) = {
            let mem = self.mem.read();
            let raw: Vec<(Vec<u8>, Vec<u8>)> = mem
                .range::<[u8], _>((Bound::Included(start.as_slice()), Bound::Unbounded))
                .take_while(|(k, _)| k.starts_with(prefix))
                .take(limit)
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            let cursor = if raw.len() == limit {
                raw.last().map(|(k, _)| k.clone())
            } else {
                None
            };
            (raw, cursor)
        };

        let Some(t) = txn else {
            return Ok((raw, cursor));
        };

        // Overlay entries inside this page's window: keys in
        // (start ..= cursor], or to the end of the prefix on the last page.
        // Beyond the raw page boundary, later pages will pick them up.
        let mut ov: Vec<(Vec<u8>, Option<Vec<u8>>)> = {
            let g = self.txns.lock();
            let st = g.get(&t).ok_or(StorageError::UnknownTxn(t))?;
            st.overlay
                .iter()
                .filter(|(k, _)| {
                    k.starts_with(prefix)
                        && k.as_slice() >= start.as_slice()
                        && cursor.as_ref().is_none_or(|c| *k <= c)
                })
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect()
        };
        if ov.is_empty() {
            return Ok((raw, cursor));
        }
        ov.sort_unstable_by(|a, b| a.0.cmp(&b.0));

        // Two-pointer merge: both sides sorted, overlay wins on equal keys,
        // overlay `None` hides the raw entry. No intermediate map.
        const RAW: u8 = 0;
        const OVERLAY: u8 = 1;
        const BOTH: u8 = 2; // equal keys: overlay shadows the raw entry
        let mut page = Vec::with_capacity(raw.len() + ov.len());
        let mut ri = raw.into_iter().peekable();
        let mut oi = ov.into_iter().peekable();
        loop {
            let pick = match (ri.peek(), oi.peek()) {
                (None, None) => break,
                (Some(_), None) => RAW,
                (None, Some(_)) => OVERLAY,
                (Some(r), Some(o)) => {
                    if r.0 < o.0 {
                        RAW
                    } else if o.0 < r.0 {
                        OVERLAY
                    } else {
                        BOTH
                    }
                }
            };
            if pick == BOTH {
                let _ = ri.next();
            }
            if pick == RAW {
                page.extend(ri.next());
            } else if let Some((k, Some(v))) = oi.next() {
                page.push((k, v));
            }
        }
        Ok((page, cursor))
    }

    /// Number of committed keys (diagnostics).
    pub fn committed_len(&self) -> usize {
        self.mem.read().len()
    }

    /// Phase 1 of two-phase commit: force the transaction's redo records and
    /// a `Prepare` marker to the log. After this returns, the transaction
    /// will survive a crash as in-doubt.
    pub fn prepare(&self, txn: KvTxn) -> StorageResult<()> {
        let _gate = self.ckpt_gate.read();
        let ops = {
            let mut g = self.txns.lock();
            let st = g.get_mut(&txn).ok_or(StorageError::UnknownTxn(txn))?;
            if st.prepared {
                return Ok(()); // idempotent
            }
            // Claim before logging so no write can slip in unlogged between
            // the clone below and the durable prepare record.
            st.prepared = true;
            st.ops.clone()
        };
        let result = (|| {
            let target;
            {
                let _log = self.log.lock();
                log_ops(&self.wal, txn, &ops)?;
                self.wal.append(txn, RecordKind::Prepare, &[])?;
                target = self.wal.len();
            }
            // Prepare always forces, even for volatile stores: an in-doubt
            // txn must survive as in-doubt.
            self.force_through(target)
        })();
        let mut g = self.txns.lock();
        if let Some(st) = g.get_mut(&txn) {
            match result {
                Ok(()) => st.logged = true,
                Err(_) => st.prepared = false, // un-claim; caller may retry
            }
        }
        result
    }

    /// Commit `txn`: make its writes durable and visible.
    ///
    /// One-phase path (no prior [`KvStore::prepare`]): writes + `Commit`
    /// record are logged and forced together. The force goes through the
    /// group-commit coordinator (when enabled), so concurrent committers
    /// share one device sync; writes reach the shared tree only after the
    /// force returns, in commit-record order (the apply sequence allocated
    /// under the append latch).
    pub fn commit(&self, txn: KvTxn) -> StorageResult<()> {
        let _gate = self.ckpt_gate.read();
        let (ops, logged) = {
            let g = self.txns.lock();
            let st = g.get(&txn).ok_or(StorageError::UnknownTxn(txn))?;
            (st.ops.clone(), st.logged)
        };
        let seq;
        {
            let mut log = self.log.lock();
            if !logged {
                log_ops(&self.wal, txn, &ops)?;
            }
            self.wal.append(txn, RecordKind::Commit, &[])?;
            seq = log.alloc_seq();
        }
        let target = self.wal.len();
        if let Err(e) = self.sync_through(target) {
            // Keep the retire line moving; nothing is applied, the txn stays
            // open, and the caller sees the device error (same outcome as
            // the old per-txn sync failing).
            self.retire(seq, &[]);
            return Err(e);
        }
        self.retire(seq, &ops);
        self.txns.lock().remove(&txn);
        self.commits.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    /// Force the log through `target` for a commit point, honoring the
    /// store's durability options.
    fn sync_through(&self, target: u64) -> StorageResult<()> {
        if !self.opts.sync_on_commit {
            return Ok(());
        }
        self.force_through(target)
    }

    /// Unconditional force (prepare, checkpoint): batched when group commit
    /// is on, a direct device sync otherwise.
    fn force_through(&self, target: u64) -> StorageResult<()> {
        if self.opts.group_commit {
            self.group.sync_through(&self.wal, target)
        } else {
            self.wal.sync()
        }
    }

    /// Wait for our turn on the retire line, apply `ops` to the shared tree,
    /// and pass the baton. Applying in sequence order keeps the live tree
    /// identical to what recovery would rebuild (commit-record order).
    fn retire(&self, seq: u64, ops: &[WriteOp]) {
        let mut g = self.apply.lock();
        while g.applied != seq {
            self.apply_cv.wait(&mut g);
        }
        if !ops.is_empty() {
            let mut mem = self.mem.write();
            for op in ops {
                apply(&mut mem, op);
            }
        }
        g.applied += 1;
        self.apply_cv.notify_all();
    }

    /// Abort `txn`: discard its buffered writes.
    ///
    /// If the transaction was prepared, an `Abort` record is logged so
    /// recovery stops considering it in-doubt.
    pub fn abort(&self, txn: KvTxn) -> StorageResult<()> {
        let _gate = self.ckpt_gate.read();
        let st = self
            .txns
            .lock()
            .remove(&txn)
            .ok_or(StorageError::UnknownTxn(txn))?;
        if st.logged {
            let _log = self.log.lock();
            self.wal.append(txn, RecordKind::Abort, &[])?;
            // No sync needed: if the abort record is lost, recovery treats the
            // txn as in-doubt and the coordinator aborts it again (presumed
            // abort would also work).
        }
        self.aborts.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    /// Write a checkpoint: the complete committed state is atomically swapped
    /// onto the checkpoint device, then the log is truncated. Open
    /// transactions are unaffected (their writes are not yet in `mem`), but
    /// prepared transactions block checkpointing — their redo records live
    /// only in the log.
    ///
    /// Holds the checkpoint gate exclusively, so no commit record can sit
    /// appended-but-unforced (or forced-but-unapplied) while the log is
    /// truncated underneath it.
    pub fn checkpoint(&self) -> StorageResult<()> {
        let _gate = self.ckpt_gate.write();
        if self.txns.lock().values().any(|t| t.prepared) {
            return Err(StorageError::InvalidState(
                "cannot checkpoint with prepared transactions pending".into(),
            ));
        }
        {
            let mem = self.mem.read();
            write_checkpoint(self.ckpt.as_ref(), &mem)?;
        }
        {
            // The append latch covers only the truncate + marker append; the
            // device force and the coordinator reset run after it drops
            // (kv-log is a no-block class — the exclusive gate already
            // excludes every appender, so nothing can slip in between).
            let _log = self.log.lock();
            self.wal.reset()?;
            self.wal.append(0, RecordKind::Checkpoint, &[])?;
        }
        self.wal.sync()?;
        // Log offsets restarted; the coordinator's watermark must too.
        self.group.on_truncate();
        Ok(())
    }

    /// Current log length in bytes (drives checkpoint policy).
    pub fn wal_len(&self) -> u64 {
        self.wal.len()
    }

    /// (commits, aborts) counters.
    pub fn txn_counts(&self) -> (u64, u64) {
        (
            self.commits.load(Ordering::Acquire),
            self.aborts.load(Ordering::Acquire),
        )
    }

    /// Group-commit batching counters (requests vs. device syncs).
    pub fn group_commit_stats(&self) -> GroupCommitStats {
        self.group.stats()
    }
}

fn log_ops(wal: &Wal, txn: u64, ops: &[WriteOp]) -> StorageResult<()> {
    for op in ops {
        let (kind, payload) = match op {
            WriteOp::Put { .. } => (RecordKind::KvPut, op.encode_payload()),
            WriteOp::Delete { .. } => (RecordKind::KvDelete, op.encode_payload()),
        };
        wal.append(txn, kind, &payload)?;
    }
    Ok(())
}

fn apply(mem: &mut BTreeMap<Vec<u8>, Vec<u8>>, op: &WriteOp) {
    match op {
        WriteOp::Put { key, value } => {
            mem.insert(key.clone(), value.clone());
        }
        WriteOp::Delete { key } => {
            mem.remove(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::{CrashStyle, SimDisk};

    fn fresh() -> (Arc<KvStore>, SimDisk, SimDisk) {
        let wal = SimDisk::new();
        let ckpt = SimDisk::new();
        let (store, report) = KvStore::open(
            Arc::new(wal.clone()),
            Arc::new(ckpt.clone()),
            KvOptions::default(),
        )
        .unwrap();
        assert_eq!(report.replayed, 0);
        (store, wal, ckpt)
    }

    fn reopen(wal: &SimDisk, ckpt: &SimDisk) -> (Arc<KvStore>, RecoveryReport) {
        KvStore::open(
            Arc::new(wal.clone()),
            Arc::new(ckpt.clone()),
            KvOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn committed_writes_visible_and_durable() {
        let (store, wal, ckpt) = fresh();
        store.begin(1).unwrap();
        store.put(1, b"a", b"1").unwrap();
        store.put(1, b"b", b"2").unwrap();
        store.commit(1).unwrap();
        assert_eq!(store.get(None, b"a").unwrap(), Some(b"1".to_vec()));

        wal.crash(CrashStyle::DropVolatile);
        let (store2, report) = reopen(&wal, &ckpt);
        assert_eq!(report.committed_txns, 1);
        assert_eq!(store2.get(None, b"a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(store2.get(None, b"b").unwrap(), Some(b"2".to_vec()));
    }

    #[test]
    fn uncommitted_writes_invisible_and_lost() {
        let (store, wal, ckpt) = fresh();
        store.begin(1).unwrap();
        store.put(1, b"a", b"1").unwrap();
        assert_eq!(store.get(None, b"a").unwrap(), None, "not visible outside");
        assert_eq!(
            store.get(Some(1), b"a").unwrap(),
            Some(b"1".to_vec()),
            "read-your-writes"
        );
        wal.crash(CrashStyle::DropVolatile);
        let (store2, report) = reopen(&wal, &ckpt);
        assert_eq!(report.replayed, 0);
        assert_eq!(store2.get(None, b"a").unwrap(), None);
    }

    #[test]
    fn abort_discards_buffer() {
        let (store, _, _) = fresh();
        store.begin(1).unwrap();
        store.put(1, b"a", b"1").unwrap();
        store.abort(1).unwrap();
        assert_eq!(store.get(None, b"a").unwrap(), None);
        assert!(!store.is_open(1));
        assert_eq!(store.txn_counts(), (0, 1));
    }

    #[test]
    fn delete_roundtrip() {
        let (store, _, _) = fresh();
        store.begin(1).unwrap();
        store.put(1, b"k", b"v").unwrap();
        store.commit(1).unwrap();
        store.begin(2).unwrap();
        store.delete(2, b"k").unwrap();
        assert_eq!(store.get(Some(2), b"k").unwrap(), None);
        assert_eq!(store.get(None, b"k").unwrap(), Some(b"v".to_vec()));
        store.commit(2).unwrap();
        assert_eq!(store.get(None, b"k").unwrap(), None);
    }

    #[test]
    fn scan_prefix_merges_overlay() {
        let (store, _, _) = fresh();
        store.begin(1).unwrap();
        store.put(1, b"q/1", b"a").unwrap();
        store.put(1, b"q/2", b"b").unwrap();
        store.put(1, b"r/1", b"x").unwrap();
        store.commit(1).unwrap();

        store.begin(2).unwrap();
        store.put(2, b"q/3", b"c").unwrap();
        store.delete(2, b"q/1").unwrap();
        let rows = store.scan_prefix(Some(2), b"q/").unwrap();
        assert_eq!(
            rows,
            vec![
                (b"q/2".to_vec(), b"b".to_vec()),
                (b"q/3".to_vec(), b"c".to_vec())
            ]
        );
        // Committed view unchanged until commit.
        let committed = store.scan_prefix(None, b"q/").unwrap();
        assert_eq!(committed.len(), 2);
        store.abort(2).unwrap();
    }

    #[test]
    fn prepared_txn_survives_crash_as_in_doubt() {
        let (store, wal, ckpt) = fresh();
        store.begin(7).unwrap();
        store.put(7, b"x", b"1").unwrap();
        store.prepare(7).unwrap();
        wal.crash(CrashStyle::DropVolatile);

        let (store2, report) = reopen(&wal, &ckpt);
        assert_eq!(report.in_doubt, vec![7]);
        assert_eq!(store2.get(None, b"x").unwrap(), None, "still invisible");
        // Coordinator decides commit:
        store2.commit(7).unwrap();
        assert_eq!(store2.get(None, b"x").unwrap(), Some(b"1".to_vec()));

        // And the commit itself is durable.
        wal.crash(CrashStyle::DropVolatile);
        let (store3, _) = reopen(&wal, &ckpt);
        assert_eq!(store3.get(None, b"x").unwrap(), Some(b"1".to_vec()));
    }

    #[test]
    fn in_doubt_txn_can_be_aborted_after_recovery() {
        let (store, wal, ckpt) = fresh();
        store.begin(7).unwrap();
        store.put(7, b"x", b"1").unwrap();
        store.prepare(7).unwrap();
        wal.crash(CrashStyle::DropVolatile);
        let (store2, report) = reopen(&wal, &ckpt);
        assert_eq!(report.in_doubt, vec![7]);
        store2.abort(7).unwrap();
        assert_eq!(store2.get(None, b"x").unwrap(), None);
        let (store3, report3) = reopen(&wal, &ckpt);
        // The abort may need re-resolution if its record wasn't synced —
        // presumed abort: still in doubt or gone, but never committed.
        if !report3.in_doubt.is_empty() {
            store3.abort(7).unwrap();
        }
        assert_eq!(store3.get(None, b"x").unwrap(), None);
    }

    #[test]
    fn write_after_prepare_rejected() {
        let (store, _, _) = fresh();
        store.begin(1).unwrap();
        store.put(1, b"a", b"1").unwrap();
        store.prepare(1).unwrap();
        assert!(store.put(1, b"b", b"2").is_err());
        assert!(store.delete(1, b"a").is_err());
    }

    #[test]
    fn checkpoint_truncates_log_and_preserves_data() {
        let (store, wal, ckpt) = fresh();
        for i in 0..50u32 {
            let t = 100 + i as u64;
            store.begin(t).unwrap();
            store.put(t, format!("k{i}").as_bytes(), b"v").unwrap();
            store.commit(t).unwrap();
        }
        let before = store.wal_len();
        store.checkpoint().unwrap();
        assert!(store.wal_len() < before);

        wal.crash(CrashStyle::DropVolatile);
        let (store2, report) = reopen(&wal, &ckpt);
        assert_eq!(report.replayed, 0, "state came from checkpoint");
        assert_eq!(store2.committed_len(), 50);
        assert_eq!(store2.get(None, b"k49").unwrap(), Some(b"v".to_vec()));
    }

    #[test]
    fn post_checkpoint_commits_replay_over_checkpoint() {
        let (store, wal, ckpt) = fresh();
        store.begin(1).unwrap();
        store.put(1, b"a", b"old").unwrap();
        store.commit(1).unwrap();
        store.checkpoint().unwrap();
        store.begin(2).unwrap();
        store.put(2, b"a", b"new").unwrap();
        store.commit(2).unwrap();

        wal.crash(CrashStyle::DropVolatile);
        let (store2, report) = reopen(&wal, &ckpt);
        assert_eq!(report.replayed, 1);
        assert_eq!(store2.get(None, b"a").unwrap(), Some(b"new".to_vec()));
    }

    #[test]
    fn checkpoint_blocked_by_prepared_txn() {
        let (store, _, _) = fresh();
        store.begin(1).unwrap();
        store.put(1, b"a", b"1").unwrap();
        store.prepare(1).unwrap();
        assert!(store.checkpoint().is_err());
        store.commit(1).unwrap();
        assert!(store.checkpoint().is_ok());
    }

    #[test]
    fn double_begin_rejected_and_unknown_txn_errors() {
        let (store, _, _) = fresh();
        store.begin(1).unwrap();
        assert!(store.begin(1).is_err());
        assert!(matches!(
            store.put(99, b"k", b"v"),
            Err(StorageError::UnknownTxn(99))
        ));
        assert!(store.commit(99).is_err());
        assert!(store.abort(99).is_err());
    }

    #[test]
    fn volatile_mode_loses_data_on_crash() {
        let wal = SimDisk::new();
        let ckpt = SimDisk::new();
        let (store, _) = KvStore::open(
            Arc::new(wal.clone()),
            Arc::new(ckpt.clone()),
            KvOptions {
                sync_on_commit: false,
                ..KvOptions::default()
            },
        )
        .unwrap();
        store.begin(1).unwrap();
        store.put(1, b"a", b"1").unwrap();
        store.commit(1).unwrap();
        assert_eq!(store.get(None, b"a").unwrap(), Some(b"1".to_vec()));
        wal.crash(CrashStyle::DropVolatile);
        let (store2, _) = reopen(&wal, &ckpt);
        assert_eq!(store2.get(None, b"a").unwrap(), None, "volatile queue lost");
    }

    #[test]
    fn scan_prefix_page_pages_through_everything() {
        let (store, _, _) = fresh();
        store.begin(1).unwrap();
        for i in 0..25u32 {
            store
                .put(1, format!("p/{i:04}").as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        store.put(1, b"q/other", b"x").unwrap();
        store.commit(1).unwrap();

        let mut seen = Vec::new();
        let mut after: Option<Vec<u8>> = None;
        loop {
            let (page, cursor) = store
                .scan_prefix_page(None, b"p/", after.as_deref(), 7)
                .unwrap();
            seen.extend(page.into_iter().map(|(k, _)| k));
            match cursor {
                Some(c) => after = Some(c),
                None => break,
            }
        }
        assert_eq!(seen.len(), 25);
        assert!(seen.windows(2).all(|w| w[0] < w[1]), "ordered");
    }

    #[test]
    fn scan_prefix_page_merges_own_overlay() {
        let (store, _, _) = fresh();
        store.begin(1).unwrap();
        store.put(1, b"p/1", b"a").unwrap();
        store.put(1, b"p/3", b"c").unwrap();
        store.commit(1).unwrap();

        store.begin(2).unwrap();
        store.put(2, b"p/2", b"b").unwrap();
        store.delete(2, b"p/1").unwrap();
        let (page, cursor) = store.scan_prefix_page(Some(2), b"p/", None, 10).unwrap();
        assert_eq!(
            page.iter().map(|(k, _)| k.as_slice()).collect::<Vec<_>>(),
            vec![b"p/2".as_slice(), b"p/3".as_slice()]
        );
        assert!(cursor.is_none());
        store.abort(2).unwrap();
    }

    #[test]
    fn scan_prefix_page_cursor_survives_overlay_deletes() {
        let (store, _, _) = fresh();
        store.begin(1).unwrap();
        for i in 0..6u32 {
            store.put(1, format!("p/{i}").as_bytes(), b"v").unwrap();
        }
        store.commit(1).unwrap();
        store.begin(2).unwrap();
        // Delete the entire first page worth of entries.
        for i in 0..3u32 {
            store.delete(2, format!("p/{i}").as_bytes()).unwrap();
        }
        let (page, cursor) = store.scan_prefix_page(Some(2), b"p/", None, 3).unwrap();
        assert!(page.is_empty(), "first page fully deleted by overlay");
        let c = cursor.expect("cursor must continue past deleted page");
        let (page2, _) = store.scan_prefix_page(Some(2), b"p/", Some(&c), 3).unwrap();
        assert_eq!(page2.len(), 3);
        store.abort(2).unwrap();
    }

    #[test]
    fn commit_order_respected_on_replay() {
        let (store, wal, ckpt) = fresh();
        // Interleave two txns writing the same key; commit order decides.
        store.begin(1).unwrap();
        store.begin(2).unwrap();
        store.put(1, b"k", b"from-1").unwrap();
        store.put(2, b"k", b"from-2").unwrap();
        store.commit(2).unwrap();
        store.commit(1).unwrap();
        assert_eq!(store.get(None, b"k").unwrap(), Some(b"from-1".to_vec()));
        wal.crash(CrashStyle::DropVolatile);
        let (store2, _) = reopen(&wal, &ckpt);
        assert_eq!(store2.get(None, b"k").unwrap(), Some(b"from-1".to_vec()));
    }

    #[test]
    fn torn_tail_after_last_commit_is_harmless() {
        let (store, wal, ckpt) = fresh();
        store.begin(1).unwrap();
        store.put(1, b"a", b"1").unwrap();
        store.commit(1).unwrap();
        // Start another commit whose records only partially reach disk.
        store.begin(2).unwrap();
        store.put(2, b"b", b"2").unwrap();
        // Simulate: records appended but torn mid-write during the sync.
        // (commit would sync; emulate by writing ops without sync then tearing)
        // We use prepare's logging path indirectly: just crash before commit.
        wal.crash(CrashStyle::Torn { keep: 5 });
        let (store2, _) = reopen(&wal, &ckpt);
        assert_eq!(store2.get(None, b"a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(store2.get(None, b"b").unwrap(), None);
    }
}
