//! A recoverable, transactional, main-memory key-value store.
//!
//! This is the "main memory database" of §10 of the paper: all live data is
//! in an in-memory B-tree, durability comes from the write-ahead log, and a
//! periodic checkpoint bounds recovery time. The store is the foundation for
//! the queue manager's element, registration, and metadata tables, and for
//! the application databases (bank accounts, orders) used by the servers.
//!
//! ## Transaction discipline
//!
//! * All mutations happen under a caller-supplied transaction token
//!   ([`KvStore::begin`]). Uncommitted writes live only in the transaction's
//!   private buffer — they never touch the shared tree, so *abort is a no-op*
//!   on the tree and crash recovery is redo-only.
//! * Reads within a transaction see the transaction's own writes (the buffer
//!   is an overlay over the tree).
//! * [`KvStore::prepare`] forces the transaction's redo records plus a
//!   `Prepare` record — phase 1 of two-phase commit. A prepared transaction
//!   survives a crash as *in-doubt* and can be resolved either way by the
//!   coordinator after recovery.
//! * [`KvStore::commit`] forces a `Commit` record (logging the writes first
//!   if `prepare` was skipped, the one-phase fast path) and only then applies
//!   the writes to the tree.
//!
//! Concurrency control (locking) is the responsibility of the transaction
//! layer above; this store guarantees atomicity and durability only.
//!
//! ## Partitioned logging and the epoch scheme
//!
//! The write-ahead log is split into `wal_partitions` per-shard logs (see
//! [`KvStore::open_partitioned`]; [`KvStore::open`] is the one-log
//! baseline). A key always hashes to the same log
//! ([`partition_for_key`]), each log has its own append latch, its own
//! [`GroupCommit`] coordinator, and — in the simulator — its own latency
//! device, so commits touching different shards force different devices in
//! parallel.
//!
//! Commit order across logs is preserved by a global **epoch**: the commit
//! point allocates a monotonically increasing epoch under the *home* log's
//! latch (the lowest-indexed log the transaction touches) and stamps it
//! into the commit record's payload. A multi-key transaction appends and
//! *forces* its data records in every sibling log before the home commit
//! record exists at all — unconditionally, even when `sync_on_commit` is
//! off, because the home log can always be forced incidentally by another
//! transaction — so a durable commit record implies durable data, and
//! recovery replays committed transactions in epoch order (see
//! [`crate::recovery::replay_partitioned`]). The retire line applies writes
//! to the shared tree in the same epoch order, so the live tree always
//! equals what recovery would rebuild. Checkpoint segments carry the
//! **covered-epoch watermark** (the retire line's position when the segment
//! was cut); replay skips commits below it, which is what makes the
//! per-log, non-atomic log truncation after a checkpoint crash-safe.
//!
//! ## Internal locking
//!
//! The store is reader-parallel: committed state lives in `mem` behind an
//! `RwLock`, so `get`/`scan_prefix*` take a read lock and run concurrently
//! with each other and with the logging half of a commit. Private overlays
//! live in `txns` behind their own mutex; each log's append latch
//! serializes record appends to that log. Commit forcing goes through the
//! log's [`GroupCommit`] coordinator, which batches concurrent syncs into
//! one device force per group.
//!
//! Lock order: a thread holds at most one of {`txns`, `mem`, `latch`} at a
//! time, except the apply step (`apply` → `mem.write`) and checkpointing,
//! which holds the exclusive `ckpt_gate` and may take `mem.read` then a log
//! latch. Commit-point record writers (commit / prepare / logged abort)
//! hold `ckpt_gate.read` so a checkpoint can never truncate a log while a
//! commit record is in flight between append and sync. The classes and
//! their declared order live in `LOCKS.md` (kv-gate, kv-txns, kv-log,
//! kv-apply, kv-mem); the rrq-analyze `lock-order` and
//! `no-block-under-guard` rules check every path against them — in
//! particular the per-log latch is a no-block class, so device forces
//! happen outside it (see [`KvStore::checkpoint`]).

use crate::checkpoint::{append_delta, load_chain, write_base};
use crate::codec::{put, Reader};
use crate::disk::Disk;
use crate::error::{StorageError, StorageResult};
use crate::group_commit::{GroupCommit, GroupCommitStats};
use crate::recovery::{replay_partitioned, RecoveryReport};
use crate::wal::{RecordKind, Wal};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A single redo operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteOp {
    /// Insert or overwrite `key`.
    Put {
        /// Key bytes.
        key: Vec<u8>,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// Remove `key` (removing an absent key is a logged no-op).
    Delete {
        /// Key bytes.
        key: Vec<u8>,
    },
}

impl WriteOp {
    /// The key this operation touches.
    pub fn key(&self) -> &[u8] {
        match self {
            WriteOp::Put { key, .. } | WriteOp::Delete { key } => key,
        }
    }

    /// Encode as a WAL payload.
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            WriteOp::Put { key, value } => {
                put::bytes(&mut buf, key);
                put::bytes(&mut buf, value);
            }
            WriteOp::Delete { key } => {
                put::bytes(&mut buf, key);
            }
        }
        buf
    }

    /// Decode a `KvPut` payload.
    pub fn decode_put(payload: &[u8]) -> StorageResult<WriteOp> {
        let mut r = Reader::new(payload);
        let key = r.bytes()?;
        let value = r.bytes()?;
        Ok(WriteOp::Put { key, value })
    }

    /// Decode a `KvDelete` payload.
    pub fn decode_delete(payload: &[u8]) -> StorageResult<WriteOp> {
        let mut r = Reader::new(payload);
        let key = r.bytes()?;
        Ok(WriteOp::Delete { key })
    }
}

/// Most partitions any store will reasonably use; callers pre-allocating
/// per-log devices (the simulator's `RepoDisks`) size against this.
pub const MAX_WAL_PARTITIONS: usize = 8;

/// Stable key → log mapping: FNV-1a over the key bytes, mod the partition
/// count. Exposed so tests and fault scripts can aim at a specific log.
pub fn partition_for_key(key: &[u8], partitions: usize) -> usize {
    if partitions <= 1 {
        return 0;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    (h % partitions as u64) as usize
}

fn touched_partitions(ops: &[WriteOp], n: usize) -> Vec<usize> {
    let mut seen = vec![false; n];
    for op in ops {
        seen[partition_for_key(op.key(), n)] = true;
    }
    (0..n).filter(|&i| seen[i]).collect()
}

/// The *home* log of a transaction: the lowest-indexed log it touches (log 0
/// for empty transactions). The commit, prepare, and abort markers all go to
/// the home log, so recovery finds a transaction's outcome in exactly one
/// place. Deterministic in the op *set*, so a recovered in-doubt transaction
/// resolves through the same log it prepared through.
fn home_partition(ops: &[WriteOp], n: usize) -> usize {
    if n <= 1 {
        return 0;
    }
    touched_partitions(ops, n).first().copied().unwrap_or(0)
}

fn ops_for_partition(ops: &[WriteOp], part: usize, n: usize) -> Vec<WriteOp> {
    if n <= 1 {
        return ops.to_vec();
    }
    ops.iter()
        .filter(|op| partition_for_key(op.key(), n) == part)
        .cloned()
        .collect()
}

/// Per-transaction private state.
#[derive(Debug, Default)]
struct TxnState {
    /// Unique incarnation id stamped into this transaction's log records.
    /// Never reused (the counter resumes past every id found in the logs),
    /// so a recycled caller token can never splice a dead incarnation's
    /// records into a later outcome during replay.
    internal: u64,
    /// Redo operations in execution order.
    ops: Vec<WriteOp>,
    /// Overlay for read-your-writes: key → Some(value) | None (deleted).
    overlay: HashMap<Vec<u8>, Option<Vec<u8>>>,
    /// Writes have been logged (prepare ran, or recovery found them).
    logged: bool,
    /// Prepare record is durable — the txn is in-doubt until resolved.
    prepared: bool,
}

/// Tuning knobs for a [`KvStore`].
#[derive(Debug, Clone, Copy)]
pub struct KvOptions {
    /// Force the log on commit (the write-ahead rule). Turning this off
    /// models the paper's *volatile queues* (§10): cheap, but contents are
    /// lost on a crash.
    pub sync_on_commit: bool,
    /// Route commit-point forces through the group-commit coordinator so
    /// concurrent committers share one device sync. Off = the per-commit
    /// sync baseline (one force per transaction).
    pub group_commit: bool,
    /// How long a group leader dallies before syncing, letting more
    /// committers join the group. Zero = opportunistic batching only.
    pub group_commit_window: Duration,
}

impl Default for KvOptions {
    fn default() -> Self {
        KvOptions {
            sync_on_commit: true,
            group_commit: true,
            group_commit_window: Duration::ZERO,
        }
    }
}

/// One log partition: its WAL, its group-commit coordinator (each log has
/// its own durable watermark — truncating one log must never make a sibling
/// log's records look durable), and the append latch serializing appends.
struct LogUnit {
    wal: Wal,
    group: GroupCommit,
    latch: Mutex<()>,
}

/// The retire line: the commit with epoch `e` may touch the shared tree only
/// once every earlier epoch has retired. `dirty` accumulates the keys
/// written since the last checkpoint — the next incremental checkpoint's
/// delta segment is exactly this set.
#[derive(Debug, Default)]
struct ApplyState {
    applied: u64,
    dirty: HashSet<Vec<u8>>,
}

/// How many chain segments accumulate before the next checkpoint rewrites a
/// full base instead of appending another delta.
const SEGMENT_LIMIT: u64 = 8;

/// Handle to an open transaction, used purely as documentation — all methods
/// take the raw token so the transaction layer can drive many stores with
/// one token.
pub type KvTxn = u64;

/// One page of a prefix scan: the visible entries plus the continuation
/// cursor (`Some(key)` → call again with `after = Some(key)`).
pub type ScanPage = (Vec<(Vec<u8>, Vec<u8>)>, Option<Vec<u8>>);

/// The recoverable key-value store. Cheap to share via `Arc`.
pub struct KvStore {
    /// Committed state. Readers share; only the apply step writes.
    mem: RwLock<BTreeMap<Vec<u8>, Vec<u8>>>,
    /// Open transactions' private buffers.
    txns: Mutex<HashMap<u64, TxnState>>,
    /// The per-shard logs (length = `wal_partitions`).
    logs: Vec<LogUnit>,
    /// Global commit epoch: allocated under the home log's latch, stamped
    /// into the commit record, never reset (checkpoints truncate logs but
    /// epochs keep rising; on recovery the counter is floored at the
    /// chain's covered-epoch watermark, and stale un-truncated records —
    /// epochs below the watermark — are skipped by replay, not re-applied).
    epoch: AtomicU64,
    /// Incarnation-id allocator (see [`TxnState::internal`]).
    next_txn: AtomicU64,
    /// Retire line for in-order application of committed writes.
    apply: Mutex<ApplyState>,
    apply_cv: Condvar,
    /// Commit-point writers hold `read`; checkpoint holds `write` so no log
    /// is ever truncated under an in-flight commit record.
    ckpt_gate: RwLock<()>,
    ckpt: Arc<dyn Disk>,
    /// Valid segments on the checkpoint device (0 = no usable chain).
    /// Mutated only under the exclusive checkpoint gate.
    ckpt_segments: AtomicU64,
    opts: KvOptions,
    commits: AtomicU64,
    aborts: AtomicU64,
}

impl KvStore {
    /// Open (or recover) a store over a single log device and a checkpoint
    /// device — the `wal_partitions = 1` baseline.
    pub fn open(
        wal_disk: Arc<dyn Disk>,
        ckpt_disk: Arc<dyn Disk>,
        opts: KvOptions,
    ) -> StorageResult<(Arc<KvStore>, RecoveryReport)> {
        Self::open_partitioned(vec![wal_disk], ckpt_disk, opts)
    }

    /// Open (or recover) a store over one log device per partition plus a
    /// checkpoint device.
    ///
    /// Recovery loads the last complete checkpoint chain (base + deltas),
    /// replays every committed transaction from all logs — scanned in
    /// parallel, merged in epoch order — and re-materializes prepared but
    /// unresolved transactions as in-doubt (listed in the returned
    /// [`RecoveryReport`]; resolve them with [`KvStore::commit`] /
    /// [`KvStore::abort`]).
    pub fn open_partitioned(
        wal_disks: Vec<Arc<dyn Disk>>,
        ckpt_disk: Arc<dyn Disk>,
        opts: KvOptions,
    ) -> StorageResult<(Arc<KvStore>, RecoveryReport)> {
        if wal_disks.is_empty() {
            return Err(StorageError::InvalidState(
                "at least one wal partition required".into(),
            ));
        }
        let chain = load_chain(ckpt_disk.as_ref())?;
        if chain.valid_end < ckpt_disk.len() {
            // A crash mid-checkpoint left a torn or stale segment: drop it
            // so the next delta append lands right after the valid chain.
            let valid = ckpt_disk.read(0, chain.valid_end as usize)?;
            ckpt_disk.reset(valid)?;
            rrq_obs::counter_inc("storage.ckpt.stale_segments_dropped");
        }

        let wals: Vec<Wal> = wal_disks.into_iter().map(Wal::new).collect();
        // Commits with epochs below the chain's watermark are resolved but
        // not replayed: their effects are in the chain, and a crash mid-log-
        // truncation may have erased the newer commits that superseded them.
        let outcome = replay_partitioned(&wals, chain.covered_epoch)?;
        rrq_obs::counter_inc("storage.recovery.runs");
        rrq_obs::counter_add("storage.recovery.redo_records", outcome.redo.len() as u64);
        rrq_obs::counter_add("storage.recovery.in_doubt", outcome.in_doubt.len() as u64);
        rrq_obs::gauge_set("storage.wal.partitions", wals.len() as i64);

        // Discard torn tails (a crash mid-append left corrupt bytes on a
        // platter). Future appends must start at each log's valid prefix, or
        // the next recovery's scan would stop at the old tear and lose them.
        for (wal, valid_end) in wals.iter().zip(outcome.valid_ends.iter()) {
            if *valid_end < wal.len() {
                let valid = wal.disk().read(0, *valid_end as usize)?;
                wal.disk().reset(valid)?;
                rrq_obs::counter_inc("storage.recovery.torn_tail_truncations");
            }
        }

        let mut mem = chain.mem;
        let mut dirty = HashSet::new();
        for op in &outcome.redo {
            apply(&mut mem, op);
            // Replayed keys are durable in the logs but not in the chain:
            // they are dirty until the next checkpoint covers them.
            dirty.insert(op.key().to_vec());
        }
        let mut txns = HashMap::new();
        for (token, ops) in outcome.in_doubt.iter() {
            let mut st = TxnState {
                internal: outcome.in_doubt_internal.get(token).copied().unwrap_or(0),
                logged: true,
                prepared: true,
                ..Default::default()
            };
            for op in ops {
                st.overlay.insert(
                    op.key().to_vec(),
                    match op {
                        WriteOp::Put { value, .. } => Some(value.clone()),
                        WriteOp::Delete { .. } => None,
                    },
                );
                st.ops.push(op.clone());
            }
            txns.insert(*token, st);
        }

        let report = RecoveryReport {
            replayed: outcome.redo.len(),
            committed_txns: outcome.committed_txns,
            aborted_txns: outcome.aborted_txns,
            in_doubt: outcome.in_doubt.keys().copied().collect(),
        };
        let logs: Vec<LogUnit> = wals
            .into_iter()
            .map(|wal| LogUnit {
                wal,
                group: GroupCommit::new(opts.group_commit_window),
                latch: Mutex::new(()),
            })
            .collect();
        let store = Arc::new(KvStore {
            mem: RwLock::new(mem),
            txns: Mutex::new(txns),
            logs,
            epoch: AtomicU64::new(outcome.next_epoch),
            next_txn: AtomicU64::new(outcome.next_txn_id),
            apply: Mutex::new(ApplyState {
                applied: outcome.next_epoch,
                dirty,
            }),
            apply_cv: Condvar::new(),
            ckpt_gate: RwLock::new(()),
            ckpt: ckpt_disk,
            ckpt_segments: AtomicU64::new(chain.segments),
            opts,
            commits: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
        });
        Ok((store, report))
    }

    /// Begin a transaction under the caller's token.
    pub fn begin(&self, txn: KvTxn) -> StorageResult<()> {
        let internal = self.next_txn.fetch_add(1, Ordering::SeqCst);
        let mut g = self.txns.lock();
        if g.contains_key(&txn) {
            return Err(StorageError::InvalidState(format!(
                "txn {txn} already open"
            )));
        }
        g.insert(
            txn,
            TxnState {
                internal,
                ..Default::default()
            },
        );
        Ok(())
    }

    /// True if `txn` is currently open (including recovered in-doubt ones).
    pub fn is_open(&self, txn: KvTxn) -> bool {
        self.txns.lock().contains_key(&txn)
    }

    /// Buffer a put in `txn`.
    pub fn put(&self, txn: KvTxn, key: &[u8], value: &[u8]) -> StorageResult<()> {
        let mut g = self.txns.lock();
        let st = g.get_mut(&txn).ok_or(StorageError::UnknownTxn(txn))?;
        if st.prepared {
            return Err(StorageError::InvalidState(
                "cannot write after prepare".into(),
            ));
        }
        st.ops.push(WriteOp::Put {
            key: key.to_vec(),
            value: value.to_vec(),
        });
        st.overlay.insert(key.to_vec(), Some(value.to_vec()));
        Ok(())
    }

    /// Buffer a delete in `txn`.
    pub fn delete(&self, txn: KvTxn, key: &[u8]) -> StorageResult<()> {
        let mut g = self.txns.lock();
        let st = g.get_mut(&txn).ok_or(StorageError::UnknownTxn(txn))?;
        if st.prepared {
            return Err(StorageError::InvalidState(
                "cannot write after prepare".into(),
            ));
        }
        st.ops.push(WriteOp::Delete { key: key.to_vec() });
        st.overlay.insert(key.to_vec(), None);
        Ok(())
    }

    /// Read `key`. With `Some(txn)`, the transaction's own writes are
    /// visible; with `None`, only committed state is read.
    pub fn get(&self, txn: Option<KvTxn>, key: &[u8]) -> StorageResult<Option<Vec<u8>>> {
        if let Some(t) = txn {
            let g = self.txns.lock();
            let st = g.get(&t).ok_or(StorageError::UnknownTxn(t))?;
            if let Some(v) = st.overlay.get(key) {
                return Ok(v.clone());
            }
        }
        Ok(self.mem.read().get(key).cloned())
    }

    /// Scan all committed keys with `prefix`, merged with the transaction's
    /// overlay when `txn` is supplied. Results are key-ordered.
    pub fn scan_prefix(
        &self,
        txn: Option<KvTxn>,
        prefix: &[u8],
    ) -> StorageResult<Vec<(Vec<u8>, Vec<u8>)>> {
        // Overlay first (own-thread data, brief txns lock), tree second —
        // never two internal locks at once.
        type Overlay = Vec<(Vec<u8>, Option<Vec<u8>>)>;
        let overlay: Option<Overlay> = match txn {
            Some(t) => {
                let g = self.txns.lock();
                let st = g.get(&t).ok_or(StorageError::UnknownTxn(t))?;
                Some(
                    st.overlay
                        .iter()
                        .filter(|(k, _)| k.starts_with(prefix))
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect(),
                )
            }
            None => None,
        };
        let mut out: BTreeMap<Vec<u8>, Vec<u8>> = {
            let mem = self.mem.read();
            mem.range::<[u8], _>((Bound::Included(prefix), Bound::Unbounded))
                .take_while(|(k, _)| k.starts_with(prefix))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect()
        };
        if let Some(ov) = overlay {
            for (k, v) in ov {
                match v {
                    Some(val) => {
                        out.insert(k, val);
                    }
                    None => {
                        out.remove(&k);
                    }
                }
            }
        }
        Ok(out.into_iter().collect())
    }

    /// Paged prefix scan for large keyspaces (queue scans page through
    /// candidates instead of copying the whole queue).
    ///
    /// Returns up to `limit` visible entries with keys strictly greater than
    /// `after` (or from the start of the prefix when `after` is `None`),
    /// plus a continuation cursor: `Some(key)` means call again with
    /// `after = Some(key)`; `None` means the prefix is exhausted. The cursor
    /// tracks *raw* tree position, so entries hidden by the transaction's
    /// own deletes never stall pagination.
    pub fn scan_prefix_page(
        &self,
        txn: Option<KvTxn>,
        prefix: &[u8],
        after: Option<&[u8]>,
        limit: usize,
    ) -> StorageResult<ScanPage> {
        let limit = limit.max(1);
        let start: Vec<u8> = match after {
            // Strictly-greater start: append a zero byte to form the next key.
            Some(a) => {
                let mut s = a.to_vec();
                s.push(0);
                s
            }
            None => prefix.to_vec(),
        };

        // Raw page from the tree, under the shared read lock only.
        let (raw, cursor) = {
            let mem = self.mem.read();
            let raw: Vec<(Vec<u8>, Vec<u8>)> = mem
                .range::<[u8], _>((Bound::Included(start.as_slice()), Bound::Unbounded))
                .take_while(|(k, _)| k.starts_with(prefix))
                .take(limit)
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            let cursor = if raw.len() == limit {
                raw.last().map(|(k, _)| k.clone())
            } else {
                None
            };
            (raw, cursor)
        };

        let Some(t) = txn else {
            return Ok((raw, cursor));
        };

        // Overlay entries inside this page's window: keys in
        // (start ..= cursor], or to the end of the prefix on the last page.
        // Beyond the raw page boundary, later pages will pick them up.
        let mut ov: Vec<(Vec<u8>, Option<Vec<u8>>)> = {
            let g = self.txns.lock();
            let st = g.get(&t).ok_or(StorageError::UnknownTxn(t))?;
            st.overlay
                .iter()
                .filter(|(k, _)| {
                    k.starts_with(prefix)
                        && k.as_slice() >= start.as_slice()
                        && cursor.as_ref().is_none_or(|c| *k <= c)
                })
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect()
        };
        if ov.is_empty() {
            return Ok((raw, cursor));
        }
        ov.sort_unstable_by(|a, b| a.0.cmp(&b.0));

        // Two-pointer merge: both sides sorted, overlay wins on equal keys,
        // overlay `None` hides the raw entry. No intermediate map.
        const RAW: u8 = 0;
        const OVERLAY: u8 = 1;
        const BOTH: u8 = 2; // equal keys: overlay shadows the raw entry
        let mut page = Vec::with_capacity(raw.len() + ov.len());
        let mut ri = raw.into_iter().peekable();
        let mut oi = ov.into_iter().peekable();
        loop {
            let pick = match (ri.peek(), oi.peek()) {
                (None, None) => break,
                (Some(_), None) => RAW,
                (None, Some(_)) => OVERLAY,
                (Some(r), Some(o)) => {
                    if r.0 < o.0 {
                        RAW
                    } else if o.0 < r.0 {
                        OVERLAY
                    } else {
                        BOTH
                    }
                }
            };
            if pick == BOTH {
                let _ = ri.next();
            }
            if pick == RAW {
                page.extend(ri.next());
            } else if let Some((k, Some(v))) = oi.next() {
                page.push((k, v));
            }
        }
        Ok((page, cursor))
    }

    /// Number of committed keys (diagnostics).
    pub fn committed_len(&self) -> usize {
        self.mem.read().len()
    }

    /// Phase 1 of two-phase commit: force the transaction's redo records and
    /// a `Prepare` marker to the log. After this returns, the transaction
    /// will survive a crash as in-doubt.
    pub fn prepare(&self, txn: KvTxn) -> StorageResult<()> {
        let _gate = self.ckpt_gate.read();
        let (ops, id) = {
            let mut g = self.txns.lock();
            let st = g.get_mut(&txn).ok_or(StorageError::UnknownTxn(txn))?;
            if st.prepared {
                return Ok(()); // idempotent
            }
            // Claim before logging so no write can slip in unlogged between
            // the clone below and the durable prepare record.
            st.prepared = true;
            (st.ops.clone(), st.internal)
        };
        let result = (|| {
            let n = self.logs.len();
            let home = home_partition(&ops, n);
            // Sibling logs first: after the home log's prepare record is
            // durable the whole transaction must survive as in-doubt, so
            // every other log's data records are forced before it.
            for idx in touched_partitions(&ops, n) {
                if idx == home {
                    continue;
                }
                let part_ops = ops_for_partition(&ops, idx, n);
                let unit = &self.logs[idx];
                let target;
                {
                    let _latch = unit.latch.lock();
                    log_ops(&unit.wal, id, &part_ops)?;
                    target = unit.wal.len();
                }
                // Prepare always forces, even for volatile stores: an
                // in-doubt txn must survive as in-doubt.
                self.force_through(unit, target)?;
            }
            let home_ops = ops_for_partition(&ops, home, n);
            let unit = &self.logs[home];
            // The prepare record's payload carries the caller's token:
            // recovery surfaces the in-doubt txn under the token the
            // coordinator knows, while the records stay keyed by `id`.
            let mut token = Vec::with_capacity(8);
            put::u64(&mut token, txn);
            let target;
            {
                let _latch = unit.latch.lock();
                log_ops(&unit.wal, id, &home_ops)?;
                unit.wal.append(id, RecordKind::Prepare, &token)?;
                target = unit.wal.len();
            }
            self.force_through(unit, target)
        })();
        let mut g = self.txns.lock();
        if let Some(st) = g.get_mut(&txn) {
            match result {
                Ok(()) => st.logged = true,
                Err(_) => st.prepared = false, // un-claim; caller may retry
            }
        }
        result
    }

    /// Commit `txn`: make its writes durable and visible.
    ///
    /// One-phase path (no prior [`KvStore::prepare`]): writes + `Commit`
    /// record are logged and forced together. Data records for sibling logs
    /// are appended and forced *first*, so the commit record in the home log
    /// is never durable while any of the transaction's data is not. The
    /// force goes through the home log's group-commit coordinator (when
    /// enabled), so concurrent committers on the same log share one device
    /// sync; writes reach the shared tree only after the force returns, in
    /// global epoch order (the epoch allocated under the home append latch).
    pub fn commit(&self, txn: KvTxn) -> StorageResult<()> {
        self.commit_inner(txn, true)
    }

    /// Commit `txn` with durability deferred: writes become visible and the
    /// commit record is appended, but no force is issued even when
    /// `sync_on_commit` is on. The caller owns the durability point and must
    /// call [`KvStore::force_wal`] before externalizing the result (the
    /// planned-execution epoch close). A crash before that force loses the
    /// commit exactly as a `sync_on_commit: false` store would.
    pub fn commit_deferred(&self, txn: KvTxn) -> StorageResult<()> {
        self.commit_inner(txn, false)
    }

    /// Force every log partition through its current end. This is the epoch
    /// durability point for [`KvStore::commit_deferred`]: after it returns,
    /// every previously committed transaction survives a crash.
    pub fn force_wal(&self) -> StorageResult<()> {
        let _gate = self.ckpt_gate.read();
        for unit in &self.logs {
            let target = {
                let _latch = unit.latch.lock();
                unit.wal.len()
            };
            self.force_through(unit, target)?;
        }
        Ok(())
    }

    fn commit_inner(&self, txn: KvTxn, sync: bool) -> StorageResult<()> {
        let _gate = self.ckpt_gate.read();
        let (ops, logged, id) = {
            let g = self.txns.lock();
            let st = g.get(&txn).ok_or(StorageError::UnknownTxn(txn))?;
            (st.ops.clone(), st.logged, st.internal)
        };
        let n = self.logs.len();
        let home = home_partition(&ops, n);
        if !logged && n > 1 {
            for idx in touched_partitions(&ops, n) {
                if idx == home {
                    continue;
                }
                let part_ops = ops_for_partition(&ops, idx, n);
                let unit = &self.logs[idx];
                let target;
                {
                    let _latch = unit.latch.lock();
                    log_ops(&unit.wal, id, &part_ops)?;
                    target = unit.wal.len();
                }
                // Sibling data is forced unconditionally (like prepare), not
                // via `sync_through`: even with `sync_on_commit` off, the
                // home log can be forced incidentally — another transaction's
                // prepare or group commit — making this commit's record
                // durable. Commit-record-durable ⇒ data-durable must hold
                // structurally, not only when the options ask for a sync.
                self.force_through(unit, target)?;
            }
        }
        let home_ops = if logged {
            Vec::new()
        } else {
            ops_for_partition(&ops, home, n)
        };
        let unit = &self.logs[home];
        let epoch;
        let target;
        let appended;
        {
            let _latch = unit.latch.lock();
            if !logged {
                log_ops(&unit.wal, id, &home_ops)?;
            }
            epoch = self.epoch.fetch_add(1, Ordering::SeqCst);
            let mut payload = Vec::with_capacity(8);
            put::u64(&mut payload, epoch);
            appended = unit.wal.append(id, RecordKind::Commit, &payload);
            target = unit.wal.len();
        }
        if let Err(e) = appended.and_then(|_| self.sync_through(unit, target, sync)) {
            // Append or force failed after the epoch was allocated: keep the
            // retire line moving. Nothing is applied, the txn stays open, and
            // the caller sees the device error.
            self.retire(epoch, &[]);
            return Err(e);
        }
        self.retire(epoch, &ops);
        self.txns.lock().remove(&txn);
        self.commits.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    /// Force `unit`'s log through `target` for a commit point, honoring the
    /// store's durability options. `want: false` is the deferred-commit
    /// path: like `sync_on_commit: false`, the force is someone else's
    /// responsibility — here the epoch close's [`KvStore::force_wal`], which
    /// must run before the commit's effects are externalized.
    fn sync_through(&self, unit: &LogUnit, target: u64, want: bool) -> StorageResult<()> {
        if !want || !self.opts.sync_on_commit {
            return Ok(());
        }
        self.force_through(unit, target)
    }

    /// Unconditional force (prepare, checkpoint): batched when group commit
    /// is on, a direct device sync otherwise.
    fn force_through(&self, unit: &LogUnit, target: u64) -> StorageResult<()> {
        if self.opts.group_commit {
            unit.group.sync_through(&unit.wal, target)
        } else {
            unit.wal.sync()
        }
    }

    /// Wait for our turn on the retire line, apply `ops` to the shared tree,
    /// and pass the baton. Applying in epoch order keeps the live tree
    /// identical to what recovery would rebuild (epoch-merged replay).
    fn retire(&self, epoch: u64, ops: &[WriteOp]) {
        let mut g = self.apply.lock();
        while g.applied != epoch {
            self.apply_cv.wait(&mut g);
        }
        if !ops.is_empty() {
            {
                let mut mem = self.mem.write();
                for op in ops {
                    apply(&mut mem, op);
                }
            }
            for op in ops {
                g.dirty.insert(op.key().to_vec());
            }
        }
        g.applied += 1;
        self.apply_cv.notify_all();
    }

    /// Abort `txn`: discard its buffered writes.
    ///
    /// If the transaction was prepared, an `Abort` record is logged (to its
    /// home log) so recovery stops considering it in-doubt.
    pub fn abort(&self, txn: KvTxn) -> StorageResult<()> {
        let _gate = self.ckpt_gate.read();
        let st = self
            .txns
            .lock()
            .remove(&txn)
            .ok_or(StorageError::UnknownTxn(txn))?;
        if st.logged {
            let unit = &self.logs[home_partition(&st.ops, self.logs.len())];
            let _latch = unit.latch.lock();
            unit.wal.append(st.internal, RecordKind::Abort, &[])?;
            // No sync needed: if the abort record is lost, recovery treats the
            // txn as in-doubt and the coordinator aborts it again (presumed
            // abort would also work).
        }
        self.aborts.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    /// Write a checkpoint and truncate the logs.
    ///
    /// Checkpoints are *incremental*: the first one (or one following
    /// [`SEGMENT_LIMIT`] accumulated segments) writes a full base snapshot
    /// with an atomic device swap; later ones append a crc-checked delta
    /// segment holding only the keys dirtied since the previous checkpoint,
    /// then force it. Either way the chain is durable before any log is
    /// truncated — a crash mid-checkpoint leaves a torn delta that recovery
    /// discards, falling back to the previous complete chain plus the
    /// still-untruncated logs. Open transactions are unaffected (their
    /// writes are not yet in `mem`), but prepared transactions block
    /// checkpointing — their redo records live only in the logs.
    ///
    /// Each segment is stamped with the **covered-epoch watermark** — the
    /// retire line's position, one past the highest epoch reflected in `mem`
    /// and hence in the chain. The log truncations below are per-log, not
    /// atomic across logs: a crash partway through can leave a newer
    /// transaction's commit record erased (its home log already truncated)
    /// while an older transaction's data and commit records for the same
    /// keys survive in a not-yet-truncated sibling. The watermark is what
    /// makes that window safe — replay skips every commit below it instead
    /// of regressing keys to pre-checkpoint values, so the order in which
    /// the logs are truncated does not matter.
    ///
    /// Holds the checkpoint gate exclusively, so no commit record can sit
    /// appended-but-unforced (or forced-but-unapplied) while a log is
    /// truncated underneath it.
    pub fn checkpoint(&self) -> StorageResult<()> {
        let _gate = self.ckpt_gate.write();
        if self.txns.lock().values().any(|t| t.prepared) {
            return Err(StorageError::InvalidState(
                "cannot checkpoint with prepared transactions pending".into(),
            ));
        }
        // The exclusive gate means no commit is in flight: every allocated
        // epoch has retired, so `applied` is exactly the watermark the new
        // segment may claim — all epochs below it are reflected in `mem`.
        let (dirty, covered_epoch) = {
            let mut ag = self.apply.lock();
            (std::mem::take(&mut ag.dirty), ag.applied)
        };
        let segments = self.ckpt_segments.load(Ordering::SeqCst);
        let wrote = (|| {
            if segments == 0 || segments >= SEGMENT_LIMIT {
                {
                    let mem = self.mem.read();
                    write_base(self.ckpt.as_ref(), &mem, covered_epoch)?;
                }
                self.ckpt_segments.store(1, Ordering::SeqCst);
                rrq_obs::counter_inc("storage.ckpt.base_segments");
            } else if !dirty.is_empty() {
                let delta: BTreeMap<Vec<u8>, Option<Vec<u8>>> = {
                    let mem = self.mem.read();
                    dirty
                        .iter()
                        .map(|k| (k.clone(), mem.get(k).cloned()))
                        .collect()
                };
                append_delta(self.ckpt.as_ref(), &delta, covered_epoch)?;
                self.ckpt_segments.fetch_add(1, Ordering::SeqCst);
                rrq_obs::counter_inc("storage.ckpt.delta_segments");
            }
            // Nothing dirty and a valid chain: the chain already describes
            // the whole tree, so only the log truncation below is needed.
            Ok(())
        })();
        if let Err(e) = wrote {
            // The segment never became durable: the taken dirty keys are
            // still covered only by the logs — put them back for the next
            // checkpoint attempt.
            {
                let mut ag = self.apply.lock();
                ag.dirty.extend(dirty);
            }
            return Err(e);
        }
        for unit in &self.logs {
            {
                // The append latch covers only the truncate + marker append;
                // the device force and the coordinator reset run after it
                // drops (kv-log is a no-block class — the exclusive gate
                // already excludes every appender, so nothing can slip in
                // between).
                let _latch = unit.latch.lock();
                unit.wal.reset()?;
                unit.wal.append(0, RecordKind::Checkpoint, &[])?;
            }
            unit.wal.sync()?;
            // This log's offsets restarted; its coordinator's watermark must
            // too — and only its own (sibling logs keep their watermarks).
            unit.group.on_truncate();
        }
        Ok(())
    }

    /// Total log length in bytes across all partitions (drives checkpoint
    /// policy).
    pub fn wal_len(&self) -> u64 {
        self.logs.iter().map(|u| u.wal.len()).sum()
    }

    /// Number of log partitions this store was opened with.
    pub fn wal_partitions(&self) -> usize {
        self.logs.len()
    }

    /// (commits, aborts) counters.
    pub fn txn_counts(&self) -> (u64, u64) {
        (
            self.commits.load(Ordering::Acquire),
            self.aborts.load(Ordering::Acquire),
        )
    }

    /// Group-commit batching counters (requests vs. device syncs), summed
    /// across the per-log coordinators.
    pub fn group_commit_stats(&self) -> GroupCommitStats {
        let mut total = GroupCommitStats::default();
        for unit in &self.logs {
            let s = unit.group.stats();
            total.requests += s.requests;
            total.groups += s.groups;
        }
        total
    }
}

fn log_ops(wal: &Wal, txn: u64, ops: &[WriteOp]) -> StorageResult<()> {
    for op in ops {
        let (kind, payload) = match op {
            WriteOp::Put { .. } => (RecordKind::KvPut, op.encode_payload()),
            WriteOp::Delete { .. } => (RecordKind::KvDelete, op.encode_payload()),
        };
        wal.append(txn, kind, &payload)?;
    }
    Ok(())
}

fn apply(mem: &mut BTreeMap<Vec<u8>, Vec<u8>>, op: &WriteOp) {
    match op {
        WriteOp::Put { key, value } => {
            mem.insert(key.clone(), value.clone());
        }
        WriteOp::Delete { key } => {
            mem.remove(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::{CrashStyle, SimDisk};

    fn fresh() -> (Arc<KvStore>, SimDisk, SimDisk) {
        let wal = SimDisk::new();
        let ckpt = SimDisk::new();
        let (store, report) = KvStore::open(
            Arc::new(wal.clone()),
            Arc::new(ckpt.clone()),
            KvOptions::default(),
        )
        .unwrap();
        assert_eq!(report.replayed, 0);
        (store, wal, ckpt)
    }

    fn reopen(wal: &SimDisk, ckpt: &SimDisk) -> (Arc<KvStore>, RecoveryReport) {
        KvStore::open(
            Arc::new(wal.clone()),
            Arc::new(ckpt.clone()),
            KvOptions::default(),
        )
        .unwrap()
    }

    fn fresh_partitioned(n: usize) -> (Arc<KvStore>, Vec<SimDisk>, SimDisk) {
        let wals: Vec<SimDisk> = (0..n).map(|_| SimDisk::new()).collect();
        let ckpt = SimDisk::new();
        let (store, report) = KvStore::open_partitioned(
            wals.iter()
                .map(|d| Arc::new(d.clone()) as Arc<dyn Disk>)
                .collect(),
            Arc::new(ckpt.clone()),
            KvOptions::default(),
        )
        .unwrap();
        assert_eq!(report.replayed, 0);
        (store, wals, ckpt)
    }

    fn reopen_partitioned(wals: &[SimDisk], ckpt: &SimDisk) -> (Arc<KvStore>, RecoveryReport) {
        KvStore::open_partitioned(
            wals.iter()
                .map(|d| Arc::new(d.clone()) as Arc<dyn Disk>)
                .collect(),
            Arc::new(ckpt.clone()),
            KvOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn committed_writes_visible_and_durable() {
        let (store, wal, ckpt) = fresh();
        store.begin(1).unwrap();
        store.put(1, b"a", b"1").unwrap();
        store.put(1, b"b", b"2").unwrap();
        store.commit(1).unwrap();
        assert_eq!(store.get(None, b"a").unwrap(), Some(b"1".to_vec()));

        wal.crash(CrashStyle::DropVolatile);
        let (store2, report) = reopen(&wal, &ckpt);
        assert_eq!(report.committed_txns, 1);
        assert_eq!(store2.get(None, b"a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(store2.get(None, b"b").unwrap(), Some(b"2".to_vec()));
    }

    #[test]
    fn deferred_commit_visible_but_lost_until_forced() {
        let (store, wal, ckpt) = fresh();
        store.begin(1).unwrap();
        store.put(1, b"a", b"1").unwrap();
        store.commit_deferred(1).unwrap();
        // Visible immediately, like any commit...
        assert_eq!(store.get(None, b"a").unwrap(), Some(b"1".to_vec()));

        // ...but a crash before the epoch force loses it.
        wal.crash(CrashStyle::DropVolatile);
        let (store2, _) = reopen(&wal, &ckpt);
        assert_eq!(
            store2.get(None, b"a").unwrap(),
            None,
            "unforced commit lost"
        );

        // A deferred commit followed by force_wal survives.
        store2.begin(2).unwrap();
        store2.put(2, b"b", b"2").unwrap();
        store2.commit_deferred(2).unwrap();
        store2.force_wal().unwrap();
        wal.crash(CrashStyle::DropVolatile);
        let (store3, report) = reopen(&wal, &ckpt);
        assert_eq!(report.committed_txns, 1);
        assert_eq!(store3.get(None, b"b").unwrap(), Some(b"2".to_vec()));
    }

    #[test]
    fn force_wal_covers_every_partition() {
        let (store, wals, ckpt) = fresh_partitioned(3);
        store.begin(1).unwrap();
        for i in 0..9u8 {
            store.put(1, &[b'k', i], &[i]).unwrap();
        }
        store.commit_deferred(1).unwrap();
        store.force_wal().unwrap();
        for d in &wals {
            d.crash(CrashStyle::DropVolatile);
        }
        let (store2, _) = reopen_partitioned(&wals, &ckpt);
        for i in 0..9u8 {
            assert_eq!(store2.get(None, &[b'k', i]).unwrap(), Some(vec![i]));
        }
    }

    #[test]
    fn uncommitted_writes_invisible_and_lost() {
        let (store, wal, ckpt) = fresh();
        store.begin(1).unwrap();
        store.put(1, b"a", b"1").unwrap();
        assert_eq!(store.get(None, b"a").unwrap(), None, "not visible outside");
        assert_eq!(
            store.get(Some(1), b"a").unwrap(),
            Some(b"1".to_vec()),
            "read-your-writes"
        );
        wal.crash(CrashStyle::DropVolatile);
        let (store2, report) = reopen(&wal, &ckpt);
        assert_eq!(report.replayed, 0);
        assert_eq!(store2.get(None, b"a").unwrap(), None);
    }

    #[test]
    fn abort_discards_buffer() {
        let (store, _, _) = fresh();
        store.begin(1).unwrap();
        store.put(1, b"a", b"1").unwrap();
        store.abort(1).unwrap();
        assert_eq!(store.get(None, b"a").unwrap(), None);
        assert!(!store.is_open(1));
        assert_eq!(store.txn_counts(), (0, 1));
    }

    #[test]
    fn delete_roundtrip() {
        let (store, _, _) = fresh();
        store.begin(1).unwrap();
        store.put(1, b"k", b"v").unwrap();
        store.commit(1).unwrap();
        store.begin(2).unwrap();
        store.delete(2, b"k").unwrap();
        assert_eq!(store.get(Some(2), b"k").unwrap(), None);
        assert_eq!(store.get(None, b"k").unwrap(), Some(b"v".to_vec()));
        store.commit(2).unwrap();
        assert_eq!(store.get(None, b"k").unwrap(), None);
    }

    #[test]
    fn scan_prefix_merges_overlay() {
        let (store, _, _) = fresh();
        store.begin(1).unwrap();
        store.put(1, b"q/1", b"a").unwrap();
        store.put(1, b"q/2", b"b").unwrap();
        store.put(1, b"r/1", b"x").unwrap();
        store.commit(1).unwrap();

        store.begin(2).unwrap();
        store.put(2, b"q/3", b"c").unwrap();
        store.delete(2, b"q/1").unwrap();
        let rows = store.scan_prefix(Some(2), b"q/").unwrap();
        assert_eq!(
            rows,
            vec![
                (b"q/2".to_vec(), b"b".to_vec()),
                (b"q/3".to_vec(), b"c".to_vec())
            ]
        );
        // Committed view unchanged until commit.
        let committed = store.scan_prefix(None, b"q/").unwrap();
        assert_eq!(committed.len(), 2);
        store.abort(2).unwrap();
    }

    #[test]
    fn prepared_txn_survives_crash_as_in_doubt() {
        let (store, wal, ckpt) = fresh();
        store.begin(7).unwrap();
        store.put(7, b"x", b"1").unwrap();
        store.prepare(7).unwrap();
        wal.crash(CrashStyle::DropVolatile);

        let (store2, report) = reopen(&wal, &ckpt);
        assert_eq!(report.in_doubt, vec![7]);
        assert_eq!(store2.get(None, b"x").unwrap(), None, "still invisible");
        // Coordinator decides commit:
        store2.commit(7).unwrap();
        assert_eq!(store2.get(None, b"x").unwrap(), Some(b"1".to_vec()));

        // And the commit itself is durable.
        wal.crash(CrashStyle::DropVolatile);
        let (store3, _) = reopen(&wal, &ckpt);
        assert_eq!(store3.get(None, b"x").unwrap(), Some(b"1".to_vec()));
    }

    #[test]
    fn in_doubt_txn_can_be_aborted_after_recovery() {
        let (store, wal, ckpt) = fresh();
        store.begin(7).unwrap();
        store.put(7, b"x", b"1").unwrap();
        store.prepare(7).unwrap();
        wal.crash(CrashStyle::DropVolatile);
        let (store2, report) = reopen(&wal, &ckpt);
        assert_eq!(report.in_doubt, vec![7]);
        store2.abort(7).unwrap();
        assert_eq!(store2.get(None, b"x").unwrap(), None);
        let (store3, report3) = reopen(&wal, &ckpt);
        // The abort may need re-resolution if its record wasn't synced —
        // presumed abort: still in doubt or gone, but never committed.
        if !report3.in_doubt.is_empty() {
            store3.abort(7).unwrap();
        }
        assert_eq!(store3.get(None, b"x").unwrap(), None);
    }

    #[test]
    fn write_after_prepare_rejected() {
        let (store, _, _) = fresh();
        store.begin(1).unwrap();
        store.put(1, b"a", b"1").unwrap();
        store.prepare(1).unwrap();
        assert!(store.put(1, b"b", b"2").is_err());
        assert!(store.delete(1, b"a").is_err());
    }

    #[test]
    fn checkpoint_truncates_log_and_preserves_data() {
        let (store, wal, ckpt) = fresh();
        for i in 0..50u32 {
            let t = 100 + i as u64;
            store.begin(t).unwrap();
            store.put(t, format!("k{i}").as_bytes(), b"v").unwrap();
            store.commit(t).unwrap();
        }
        let before = store.wal_len();
        store.checkpoint().unwrap();
        assert!(store.wal_len() < before);

        wal.crash(CrashStyle::DropVolatile);
        let (store2, report) = reopen(&wal, &ckpt);
        assert_eq!(report.replayed, 0, "state came from checkpoint");
        assert_eq!(store2.committed_len(), 50);
        assert_eq!(store2.get(None, b"k49").unwrap(), Some(b"v".to_vec()));
    }

    #[test]
    fn post_checkpoint_commits_replay_over_checkpoint() {
        let (store, wal, ckpt) = fresh();
        store.begin(1).unwrap();
        store.put(1, b"a", b"old").unwrap();
        store.commit(1).unwrap();
        store.checkpoint().unwrap();
        store.begin(2).unwrap();
        store.put(2, b"a", b"new").unwrap();
        store.commit(2).unwrap();

        wal.crash(CrashStyle::DropVolatile);
        let (store2, report) = reopen(&wal, &ckpt);
        assert_eq!(report.replayed, 1);
        assert_eq!(store2.get(None, b"a").unwrap(), Some(b"new".to_vec()));
    }

    #[test]
    fn checkpoint_blocked_by_prepared_txn() {
        let (store, _, _) = fresh();
        store.begin(1).unwrap();
        store.put(1, b"a", b"1").unwrap();
        store.prepare(1).unwrap();
        assert!(store.checkpoint().is_err());
        store.commit(1).unwrap();
        assert!(store.checkpoint().is_ok());
    }

    #[test]
    fn double_begin_rejected_and_unknown_txn_errors() {
        let (store, _, _) = fresh();
        store.begin(1).unwrap();
        assert!(store.begin(1).is_err());
        assert!(matches!(
            store.put(99, b"k", b"v"),
            Err(StorageError::UnknownTxn(99))
        ));
        assert!(store.commit(99).is_err());
        assert!(store.abort(99).is_err());
    }

    #[test]
    fn volatile_mode_loses_data_on_crash() {
        let wal = SimDisk::new();
        let ckpt = SimDisk::new();
        let (store, _) = KvStore::open(
            Arc::new(wal.clone()),
            Arc::new(ckpt.clone()),
            KvOptions {
                sync_on_commit: false,
                ..KvOptions::default()
            },
        )
        .unwrap();
        store.begin(1).unwrap();
        store.put(1, b"a", b"1").unwrap();
        store.commit(1).unwrap();
        assert_eq!(store.get(None, b"a").unwrap(), Some(b"1".to_vec()));
        wal.crash(CrashStyle::DropVolatile);
        let (store2, _) = reopen(&wal, &ckpt);
        assert_eq!(store2.get(None, b"a").unwrap(), None, "volatile queue lost");
    }

    #[test]
    fn scan_prefix_page_pages_through_everything() {
        let (store, _, _) = fresh();
        store.begin(1).unwrap();
        for i in 0..25u32 {
            store
                .put(1, format!("p/{i:04}").as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        store.put(1, b"q/other", b"x").unwrap();
        store.commit(1).unwrap();

        let mut seen = Vec::new();
        let mut after: Option<Vec<u8>> = None;
        loop {
            let (page, cursor) = store
                .scan_prefix_page(None, b"p/", after.as_deref(), 7)
                .unwrap();
            seen.extend(page.into_iter().map(|(k, _)| k));
            match cursor {
                Some(c) => after = Some(c),
                None => break,
            }
        }
        assert_eq!(seen.len(), 25);
        assert!(seen.windows(2).all(|w| w[0] < w[1]), "ordered");
    }

    #[test]
    fn scan_prefix_page_merges_own_overlay() {
        let (store, _, _) = fresh();
        store.begin(1).unwrap();
        store.put(1, b"p/1", b"a").unwrap();
        store.put(1, b"p/3", b"c").unwrap();
        store.commit(1).unwrap();

        store.begin(2).unwrap();
        store.put(2, b"p/2", b"b").unwrap();
        store.delete(2, b"p/1").unwrap();
        let (page, cursor) = store.scan_prefix_page(Some(2), b"p/", None, 10).unwrap();
        assert_eq!(
            page.iter().map(|(k, _)| k.as_slice()).collect::<Vec<_>>(),
            vec![b"p/2".as_slice(), b"p/3".as_slice()]
        );
        assert!(cursor.is_none());
        store.abort(2).unwrap();
    }

    #[test]
    fn scan_prefix_page_cursor_survives_overlay_deletes() {
        let (store, _, _) = fresh();
        store.begin(1).unwrap();
        for i in 0..6u32 {
            store.put(1, format!("p/{i}").as_bytes(), b"v").unwrap();
        }
        store.commit(1).unwrap();
        store.begin(2).unwrap();
        // Delete the entire first page worth of entries.
        for i in 0..3u32 {
            store.delete(2, format!("p/{i}").as_bytes()).unwrap();
        }
        let (page, cursor) = store.scan_prefix_page(Some(2), b"p/", None, 3).unwrap();
        assert!(page.is_empty(), "first page fully deleted by overlay");
        let c = cursor.expect("cursor must continue past deleted page");
        let (page2, _) = store.scan_prefix_page(Some(2), b"p/", Some(&c), 3).unwrap();
        assert_eq!(page2.len(), 3);
        store.abort(2).unwrap();
    }

    #[test]
    fn commit_order_respected_on_replay() {
        let (store, wal, ckpt) = fresh();
        // Interleave two txns writing the same key; commit order decides.
        store.begin(1).unwrap();
        store.begin(2).unwrap();
        store.put(1, b"k", b"from-1").unwrap();
        store.put(2, b"k", b"from-2").unwrap();
        store.commit(2).unwrap();
        store.commit(1).unwrap();
        assert_eq!(store.get(None, b"k").unwrap(), Some(b"from-1".to_vec()));
        wal.crash(CrashStyle::DropVolatile);
        let (store2, _) = reopen(&wal, &ckpt);
        assert_eq!(store2.get(None, b"k").unwrap(), Some(b"from-1".to_vec()));
    }

    #[test]
    fn torn_tail_after_last_commit_is_harmless() {
        let (store, wal, ckpt) = fresh();
        store.begin(1).unwrap();
        store.put(1, b"a", b"1").unwrap();
        store.commit(1).unwrap();
        // Start another commit whose records only partially reach disk.
        store.begin(2).unwrap();
        store.put(2, b"b", b"2").unwrap();
        // Simulate: records appended but torn mid-write during the sync.
        // (commit would sync; emulate by writing ops without sync then tearing)
        // We use prepare's logging path indirectly: just crash before commit.
        wal.crash(CrashStyle::Torn { keep: 5 });
        let (store2, _) = reopen(&wal, &ckpt);
        assert_eq!(store2.get(None, b"a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(store2.get(None, b"b").unwrap(), None);
    }

    #[test]
    fn partition_for_key_is_stable_and_in_range() {
        for n in 1..=MAX_WAL_PARTITIONS {
            for key in [&b"a"[..], b"q/elem/0001", b"", b"acct/42"] {
                let p = partition_for_key(key, n);
                assert!(p < n);
                assert_eq!(p, partition_for_key(key, n), "deterministic");
            }
        }
        assert_eq!(partition_for_key(b"anything", 1), 0);
    }

    #[test]
    fn partitioned_multi_key_txn_survives_crash() {
        let (store, wals, ckpt) = fresh_partitioned(4);
        assert_eq!(store.wal_partitions(), 4);
        store.begin(1).unwrap();
        // Enough keys that several partitions are touched.
        for i in 0..16u32 {
            store
                .put(1, format!("k/{i}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        store.commit(1).unwrap();
        let touched = wals.iter().filter(|w| w.durable_len() > 0).count();
        assert!(touched > 1, "a 16-key txn must span multiple logs");

        for w in &wals {
            w.crash(CrashStyle::DropVolatile);
        }
        let (store2, report) = reopen_partitioned(&wals, &ckpt);
        assert_eq!(report.committed_txns, 1);
        for i in 0..16u32 {
            assert_eq!(
                store2.get(None, format!("k/{i}").as_bytes()).unwrap(),
                Some(format!("v{i}").into_bytes())
            );
        }
    }

    #[test]
    fn partitioned_commit_order_respected_across_logs() {
        let (store, wals, ckpt) = fresh_partitioned(4);
        // Many txns over a few keys: the final value of each key is decided
        // by global commit (epoch) order, which replay must reproduce.
        for t in 1..=40u64 {
            store.begin(t).unwrap();
            let key = format!("k/{}", t % 5);
            store
                .put(t, key.as_bytes(), format!("v{t}").as_bytes())
                .unwrap();
            store.commit(t).unwrap();
        }
        let live: Vec<_> = store.scan_prefix(None, b"k/").unwrap();
        for w in &wals {
            w.crash(CrashStyle::DropVolatile);
        }
        let (store2, _) = reopen_partitioned(&wals, &ckpt);
        assert_eq!(store2.scan_prefix(None, b"k/").unwrap(), live);
    }

    #[test]
    fn partitioned_incremental_checkpoint_bounds_replay() {
        let (store, wals, ckpt) = fresh_partitioned(4);
        for t in 1..=20u64 {
            store.begin(t).unwrap();
            store.put(t, format!("k/{t}").as_bytes(), b"v").unwrap();
            store.commit(t).unwrap();
        }
        store.checkpoint().unwrap(); // base
        for t in 21..=25u64 {
            store.begin(t).unwrap();
            store.put(t, format!("k/{t}").as_bytes(), b"w").unwrap();
            store.commit(t).unwrap();
        }
        store.checkpoint().unwrap(); // delta: 5 keys, not 25
        for w in &wals {
            w.crash(CrashStyle::DropVolatile);
        }
        let (store2, report) = reopen_partitioned(&wals, &ckpt);
        assert_eq!(report.replayed, 0, "all state came from the chain");
        assert_eq!(store2.committed_len(), 25);
        assert_eq!(store2.get(None, b"k/25").unwrap(), Some(b"w".to_vec()));
        assert_eq!(store2.get(None, b"k/1").unwrap(), Some(b"v".to_vec()));
    }

    #[test]
    fn partitioned_prepare_commits_after_recovery() {
        let (store, wals, ckpt) = fresh_partitioned(4);
        store.begin(9).unwrap();
        for i in 0..8u32 {
            store.put(9, format!("p/{i}").as_bytes(), b"x").unwrap();
        }
        store.prepare(9).unwrap();
        for w in &wals {
            w.crash(CrashStyle::DropVolatile);
        }
        let (store2, report) = reopen_partitioned(&wals, &ckpt);
        assert_eq!(report.in_doubt, vec![9]);
        store2.commit(9).unwrap();
        for w in &wals {
            w.crash(CrashStyle::DropVolatile);
        }
        let (store3, _) = reopen_partitioned(&wals, &ckpt);
        for i in 0..8u32 {
            assert_eq!(
                store3.get(None, format!("p/{i}").as_bytes()).unwrap(),
                Some(b"x".to_vec())
            );
        }
    }

    #[test]
    fn delta_checkpoint_preserves_deletes() {
        let (store, wal, ckpt) = fresh();
        store.begin(1).unwrap();
        store.put(1, b"keep", b"1").unwrap();
        store.put(1, b"drop", b"2").unwrap();
        store.commit(1).unwrap();
        store.checkpoint().unwrap(); // base with both keys
        store.begin(2).unwrap();
        store.delete(2, b"drop").unwrap();
        store.commit(2).unwrap();
        store.checkpoint().unwrap(); // delta with a tombstone
        wal.crash(CrashStyle::DropVolatile);
        let (store2, report) = reopen(&wal, &ckpt);
        assert_eq!(report.replayed, 0);
        assert_eq!(store2.get(None, b"keep").unwrap(), Some(b"1".to_vec()));
        assert_eq!(store2.get(None, b"drop").unwrap(), None);
    }

    #[test]
    fn segment_limit_triggers_base_rewrite() {
        let (store, _, ckpt) = fresh();
        let mut t = 0u64;
        // First checkpoint = base, the next SEGMENT_LIMIT-1 = deltas, then
        // the chain is rewritten as a single base again.
        for round in 0..(SEGMENT_LIMIT + 2) {
            t += 1;
            store.begin(t).unwrap();
            store.put(t, format!("r/{round}").as_bytes(), b"v").unwrap();
            store.commit(t).unwrap();
            store.checkpoint().unwrap();
        }
        let chain = crate::checkpoint::load_chain(&ckpt).unwrap();
        assert!(
            chain.segments <= SEGMENT_LIMIT,
            "chain rewritten before exceeding the limit: {}",
            chain.segments
        );
        assert_eq!(chain.mem.len() as u64, SEGMENT_LIMIT + 2);
    }
}
