//! The group-commit coordinator.
//!
//! Classic group commit (DeWitt et al., cited in the paper's §10 discussion
//! of logging for main-memory queue stores): when N transactions reach their
//! commit point at about the same time, one log force can make all of their
//! commit records durable at once, so the disk pays one sync per *group*
//! instead of one per transaction.
//!
//! The coordinator tracks a durable watermark — the log length known to have
//! reached stable storage. A committer that has appended its commit record at
//! offset `target` calls [`GroupCommit::sync_through`]; if the watermark
//! already covers `target` the force it needed happened on someone else's
//! sync and it returns immediately. Otherwise the first arrival becomes the
//! *leader*: it optionally dallies for the configured window (letting more
//! committers append their records), issues one [`Wal::sync`], and advances
//! the watermark past every record appended before the sync. Followers park
//! on a condition variable and wake when the watermark passes their target.
//!
//! The write-ahead rule is untouched: `sync_through` returns only once the
//! caller's commit record is durable, and the store applies writes to the
//! shared tree strictly after that return. A crash between the group's sync
//! and a follower's wakeup loses nothing — the follower's record was covered
//! by the leader's sync, so recovery replays it (see
//! `crates/storage/tests/group_commit.rs`).

use crate::error::StorageResult;
use crate::wal::Wal;
use parking_lot::{Condvar, Mutex};
use std::time::Duration;

/// Counters exposed for benchmarks: `requests / groups` is the achieved
/// batching factor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupCommitStats {
    /// Number of `sync_through` calls that needed durability work.
    pub requests: u64,
    /// Number of device syncs actually issued (groups formed).
    pub groups: u64,
}

#[derive(Debug, Default)]
struct GcState {
    /// Log length known durable. Reset by [`GroupCommit::on_truncate`].
    durable: u64,
    /// Record count known durable (metrics: per-group batch sizes).
    durable_records: u64,
    /// A leader is currently dallying or syncing.
    leader_active: bool,
    stats: GroupCommitStats,
}

/// Batches concurrent log forces into one device sync per group.
pub struct GroupCommit {
    /// How long a leader dallies before syncing, letting followers join.
    /// Zero means purely opportunistic batching: whoever arrives while the
    /// leader is inside `sync` rides the next group.
    window: Duration,
    state: Mutex<GcState>,
    cv: Condvar,
}

impl GroupCommit {
    /// New coordinator with the given dally window.
    pub fn new(window: Duration) -> Self {
        GroupCommit {
            window,
            state: Mutex::new(GcState::default()),
            cv: Condvar::new(),
        }
    }

    /// Block until log bytes `[0, target)` are durable, forcing the device at
    /// most once per group of concurrent callers.
    ///
    /// On a sync error the leader surfaces the error to itself and wakes the
    /// followers; each follower re-enters the loop, and the first becomes the
    /// next leader and observes the device error first-hand. No caller is
    /// ever told its record is durable when the sync failed.
    pub fn sync_through(&self, wal: &Wal, target: u64) -> StorageResult<()> {
        let mut g = self.state.lock();
        if g.durable >= target {
            return Ok(());
        }
        g.stats.requests += 1;
        rrq_obs::counter_inc("storage.gc.sync_requests");
        let mut waited = false;
        loop {
            if g.durable >= target {
                if waited {
                    // Satisfied by another leader's force without syncing.
                    rrq_obs::counter_inc("storage.gc.follower_wakeups");
                }
                return Ok(());
            }
            if !g.leader_active {
                g.leader_active = true;
                drop(g);
                if !self.window.is_zero() {
                    std::thread::sleep(self.window);
                }
                // Everything appended before this point is covered by the
                // sync below: the device moves its whole volatile tail to
                // stable storage in one force.
                let covered = wal.len();
                let covered_records = wal.records_appended();
                let res = wal.sync();
                g = self.state.lock();
                g.leader_active = false;
                match res {
                    Ok(()) => {
                        g.durable = g.durable.max(covered);
                        g.stats.groups += 1;
                        rrq_obs::counter_inc("storage.gc.groups");
                        let batch = covered_records.saturating_sub(g.durable_records);
                        g.durable_records = g.durable_records.max(covered_records);
                        rrq_obs::observe("storage.gc.batch_records", batch);
                        self.cv.notify_all();
                        // The leader's own record is covered by its own sync;
                        // it returns through the `durable >= target` check
                        // above without counting as a follower wakeup.
                        waited = false;
                    }
                    Err(e) => {
                        // Wake followers so one of them retries as leader.
                        self.cv.notify_all();
                        return Err(e);
                    }
                }
            } else {
                waited = true;
                self.cv.wait(&mut g);
            }
        }
    }

    /// The log was truncated (checkpoint): durable offsets restart at zero.
    pub fn on_truncate(&self) {
        let mut g = self.state.lock();
        g.durable = 0;
        g.durable_records = 0;
    }

    /// Snapshot of the batching counters.
    pub fn stats(&self) -> GroupCommitStats {
        self.state.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::{Disk, SimDisk};
    use crate::wal::RecordKind;
    use std::sync::Arc;

    #[test]
    fn single_caller_syncs_once() {
        let disk = SimDisk::new();
        let wal = Wal::new(Arc::new(disk.clone()));
        let gc = GroupCommit::new(Duration::ZERO);
        wal.append(1, RecordKind::Commit, &[]).unwrap();
        gc.sync_through(&wal, wal.len()).unwrap();
        assert_eq!(disk.stats().syncs, 1);
        assert_eq!(disk.volatile_len(), 0);
        let s = gc.stats();
        assert_eq!((s.requests, s.groups), (1, 1));
    }

    #[test]
    fn covered_target_returns_without_new_sync() {
        let disk = SimDisk::new();
        let wal = Wal::new(Arc::new(disk.clone()));
        let gc = GroupCommit::new(Duration::ZERO);
        wal.append(1, RecordKind::Commit, &[]).unwrap();
        let t = wal.len();
        gc.sync_through(&wal, t).unwrap();
        gc.sync_through(&wal, t).unwrap();
        assert_eq!(disk.stats().syncs, 1, "second call was already durable");
    }

    #[test]
    fn dally_window_batches_concurrent_committers() {
        let disk = SimDisk::new();
        let wal = Arc::new(Wal::new(Arc::new(disk.clone())));
        let gc = Arc::new(GroupCommit::new(Duration::from_millis(30)));
        let handles: Vec<_> = (0..8u64)
            .map(|i| {
                let (wal, gc) = (Arc::clone(&wal), Arc::clone(&gc));
                let disk = disk.clone();
                std::thread::spawn(move || {
                    wal.append(i, RecordKind::Commit, &[]).unwrap();
                    let target = wal.len();
                    gc.sync_through(&wal, target).unwrap();
                    assert!(disk.durable_len() >= target, "durable on return");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = gc.stats();
        assert!(
            s.groups < s.requests,
            "8 committers within a 30ms window must share groups: {s:?}"
        );
    }

    #[test]
    fn truncate_resets_watermark() {
        let disk = SimDisk::new();
        let wal = Wal::new(Arc::new(disk.clone()));
        let gc = GroupCommit::new(Duration::ZERO);
        wal.append(1, RecordKind::Commit, &[]).unwrap();
        gc.sync_through(&wal, wal.len()).unwrap();
        wal.reset().unwrap();
        gc.on_truncate();
        wal.append(2, RecordKind::Commit, &[]).unwrap();
        gc.sync_through(&wal, wal.len()).unwrap();
        assert_eq!(disk.volatile_len(), 0, "post-truncate record forced");
    }

    #[test]
    fn truncating_one_log_leaves_sibling_watermark_intact() {
        // Regression: with one coordinator per log partition, a checkpoint
        // truncating log A must reset only A's watermark. A global reset
        // would make log B's already-durable records look volatile — a
        // commit racing the checkpoint on B would re-force needlessly, and
        // B's watermark could no longer prove its commit record durable.
        let (disk_a, disk_b) = (SimDisk::new(), SimDisk::new());
        let wal_a = Wal::new(Arc::new(disk_a.clone()));
        let wal_b = Wal::new(Arc::new(disk_b.clone()));
        let (gc_a, gc_b) = (
            GroupCommit::new(Duration::ZERO),
            GroupCommit::new(Duration::ZERO),
        );
        wal_b.append(1, RecordKind::Commit, &[]).unwrap();
        let b_target = wal_b.len();
        gc_b.sync_through(&wal_b, b_target).unwrap();
        let b_syncs = disk_b.stats().syncs;

        // Checkpoint truncates log A only.
        wal_a.append(2, RecordKind::Commit, &[]).unwrap();
        gc_a.sync_through(&wal_a, wal_a.len()).unwrap();
        wal_a.reset().unwrap();
        gc_a.on_truncate();

        // Sibling B's watermark still covers its commit record: no new
        // device sync is needed to prove it durable.
        gc_b.sync_through(&wal_b, b_target).unwrap();
        assert_eq!(
            disk_b.stats().syncs,
            b_syncs,
            "sibling log re-forced after a checkpoint it was not part of"
        );
        // And A's own watermark did reset: its next record is forced.
        wal_a.append(3, RecordKind::Commit, &[]).unwrap();
        gc_a.sync_through(&wal_a, wal_a.len()).unwrap();
        assert_eq!(disk_a.volatile_len(), 0);
    }

    #[test]
    fn sync_error_is_surfaced_not_swallowed() {
        let disk = SimDisk::new();
        let wal = Wal::new(Arc::new(disk.clone()));
        let gc = GroupCommit::new(Duration::ZERO);
        wal.append(1, RecordKind::Commit, &[]).unwrap();
        let target = wal.len();
        disk.fail();
        assert!(gc.sync_through(&wal, target).is_err());
        disk.repair();
        gc.sync_through(&wal, target).unwrap();
    }
}
