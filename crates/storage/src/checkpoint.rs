//! Incremental checkpoint chains for the key-value store.
//!
//! A checkpoint is no longer a single full serialization of the tree: the
//! device holds a *chain* of crc32-framed segments — one **base** snapshot
//! (written with an atomic device swap, [`crate::disk::Disk::reset`],
//! modelling write-temp-then-rename) followed by zero or more **delta**
//! segments, each carrying only the keys dirtied since the previous segment
//! (appended, then forced with [`crate::disk::Disk::sync`]). Restart cost is
//! therefore bounded by data touched since the last checkpoint, not by
//! history length.
//!
//! Crash atomicity: a crash mid-base leaves the previous contents intact
//! (the swap is atomic); a crash mid-delta leaves a torn tail that fails its
//! CRC, so [`load_chain`] stops at the previous complete segment — and the
//! store only truncates its logs *after* the segment write returns, so the
//! logs still hold everything the lost delta described. A chain whose first
//! segment is not a valid base (including the pre-segment full-snapshot
//! format) is treated as absent.
//!
//! Every segment carries the store's **covered-epoch watermark**: one past
//! the highest commit epoch whose effects the chain describes. Replay skips
//! commit records with epochs below the newest valid segment's watermark —
//! they are stale survivors of a crash that interrupted the per-log
//! truncation after the segment was already durable, and re-applying one
//! could regress a key whose newer value lives only in the chain (its own
//! commit record having been in an already-truncated sibling log). See
//! [`crate::recovery::replay_partitioned`].

use crate::checksum::crc32;
use crate::codec::{put, Reader};
use crate::disk::Disk;
use crate::error::StorageResult;
use std::collections::BTreeMap;

/// Segment frame marker (distinct from the retired full-snapshot magic).
const SEG_MAGIC: u32 = 0xC4EC_B007;

/// Frame header bytes: magic(4) + kind(1) + body len(8).
const SEG_HEADER: usize = 13;

/// Trailing CRC-32 over magic + kind + len + body.
const SEG_TRAILER: usize = 4;

const KIND_BASE: u8 = 0;
const KIND_DELTA: u8 = 1;

/// What [`load_chain`] found on the checkpoint device.
#[derive(Debug, Default)]
pub struct CheckpointChain {
    /// The tree described by the valid chain prefix (base + deltas applied).
    pub mem: BTreeMap<Vec<u8>, Vec<u8>>,
    /// Number of valid segments (0 = no usable checkpoint).
    pub segments: u64,
    /// Byte offset where the valid chain ends. Bytes past it are a stale or
    /// torn segment and must be discarded before the next delta is appended.
    pub valid_end: u64,
    /// Covered-epoch watermark of the newest valid segment: every commit
    /// with an epoch below this is fully described by `mem`. Replay must
    /// not re-apply such commits (0 = empty chain, nothing covered).
    pub covered_epoch: u64,
}

fn frame(kind: u8, body: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(SEG_HEADER + body.len() + SEG_TRAILER);
    put::u32(&mut buf, SEG_MAGIC);
    put::u8(&mut buf, kind);
    put::u64(&mut buf, body.len() as u64);
    buf.extend_from_slice(body);
    let crc = crc32(&buf);
    put::u32(&mut buf, crc);
    buf
}

/// Serialize the whole tree as a base segment and atomically swap it onto
/// `disk`, starting a fresh chain. `covered_epoch` is the commit-epoch
/// watermark the snapshot describes. Durable when this returns.
pub fn write_base(
    disk: &dyn Disk,
    mem: &BTreeMap<Vec<u8>, Vec<u8>>,
    covered_epoch: u64,
) -> StorageResult<()> {
    let mut body = Vec::new();
    put::u64(&mut body, covered_epoch);
    put::u64(&mut body, mem.len() as u64);
    for (k, v) in mem {
        put::bytes(&mut body, k);
        put::bytes(&mut body, v);
    }
    disk.reset(frame(KIND_BASE, &body))
}

/// Append one delta segment — the dirtied keys with their current committed
/// values (`None` = tombstone) stamped with the commit-epoch watermark the
/// chain now covers — and force it. Durable when this returns.
pub fn append_delta(
    disk: &dyn Disk,
    delta: &BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    covered_epoch: u64,
) -> StorageResult<()> {
    let mut body = Vec::new();
    put::u64(&mut body, covered_epoch);
    put::u64(&mut body, delta.len() as u64);
    for (k, v) in delta {
        put::bytes(&mut body, k);
        match v {
            Some(val) => {
                put::u8(&mut body, 1);
                put::bytes(&mut body, val);
            }
            None => put::u8(&mut body, 0),
        }
    }
    disk.append(&frame(KIND_DELTA, &body))?;
    disk.sync()
}

fn apply_base(body: &[u8], mem: &mut BTreeMap<Vec<u8>, Vec<u8>>) -> StorageResult<u64> {
    let mut r = Reader::new(body);
    let covered_epoch = r.u64()?;
    let count = r.u64()?;
    mem.clear();
    for _ in 0..count {
        let k = r.bytes()?;
        let v = r.bytes()?;
        mem.insert(k, v);
    }
    Ok(covered_epoch)
}

fn apply_delta(body: &[u8], mem: &mut BTreeMap<Vec<u8>, Vec<u8>>) -> StorageResult<u64> {
    let mut r = Reader::new(body);
    let covered_epoch = r.u64()?;
    let count = r.u64()?;
    for _ in 0..count {
        let k = r.bytes()?;
        match r.u8()? {
            0 => {
                mem.remove(&k);
            }
            _ => {
                let v = r.bytes()?;
                mem.insert(k, v);
            }
        }
    }
    Ok(covered_epoch)
}

/// Walk the segment chain from offset 0, applying base + deltas in order.
///
/// The walk stops — without error — at the first segment that is truncated,
/// has a bad magic or kind, or fails its CRC: that is the torn tail of a
/// crash mid-checkpoint, and everything it described is still in the logs.
/// A chain that does not *start* with a valid base is treated as absent.
pub fn load_chain(disk: &dyn Disk) -> StorageResult<CheckpointChain> {
    let total = disk.len();
    let mut chain = CheckpointChain::default();
    let mut off = 0u64;
    while off + (SEG_HEADER + SEG_TRAILER) as u64 <= total {
        let header = disk.read(off, SEG_HEADER)?;
        let mut r = Reader::new(&header);
        let Ok(magic) = r.u32() else { break };
        if magic != SEG_MAGIC {
            break;
        }
        let Ok(kind) = r.u8() else { break };
        if kind != KIND_BASE && kind != KIND_DELTA {
            break;
        }
        let Ok(len) = r.u64() else { break };
        let frame_end = off + (SEG_HEADER as u64) + len + (SEG_TRAILER as u64);
        if frame_end > total {
            break; // truncated tail
        }
        let covered = disk.read(off, SEG_HEADER + len as usize)?;
        let crc_bytes = disk.read(off + SEG_HEADER as u64 + len, SEG_TRAILER)?;
        let expect = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
        if crc32(&covered) != expect {
            break; // torn segment
        }
        if chain.segments == 0 && kind != KIND_BASE {
            break; // chain must start with a base
        }
        let body = &covered[SEG_HEADER..];
        let applied = if kind == KIND_BASE {
            apply_base(body, &mut chain.mem)
        } else {
            apply_delta(body, &mut chain.mem)
        };
        let Ok(covered_epoch) = applied else {
            break; // a crc-valid but undecodable segment: stop, don't fail
        };
        chain.covered_epoch = chain.covered_epoch.max(covered_epoch);
        chain.segments += 1;
        off = frame_end;
        chain.valid_end = off;
    }
    if chain.segments == 0 {
        chain.mem.clear();
        chain.valid_end = 0;
        chain.covered_epoch = 0;
    }
    Ok(chain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn sample() -> BTreeMap<Vec<u8>, Vec<u8>> {
        let mut m = BTreeMap::new();
        m.insert(b"alpha".to_vec(), b"1".to_vec());
        m.insert(b"beta".to_vec(), vec![0u8; 1024]);
        m.insert(Vec::new(), b"empty-key".to_vec());
        m
    }

    #[test]
    fn base_roundtrip() {
        let d = MemDisk::new();
        let m = sample();
        write_base(&d, &m, 42).unwrap();
        let chain = load_chain(&d).unwrap();
        assert_eq!(chain.mem, m);
        assert_eq!(chain.segments, 1);
        assert_eq!(chain.valid_end, d.len());
        assert_eq!(chain.covered_epoch, 42);
    }

    #[test]
    fn empty_device_loads_empty_chain() {
        let d = MemDisk::new();
        let chain = load_chain(&d).unwrap();
        assert!(chain.mem.is_empty());
        assert_eq!(chain.segments, 0);
        assert_eq!(chain.covered_epoch, 0);
    }

    #[test]
    fn deltas_apply_in_order_over_base() {
        let d = MemDisk::new();
        write_base(&d, &sample(), 10).unwrap();
        let mut d1 = BTreeMap::new();
        d1.insert(b"alpha".to_vec(), Some(b"2".to_vec()));
        d1.insert(b"gamma".to_vec(), Some(b"3".to_vec()));
        append_delta(&d, &d1, 20).unwrap();
        let mut d2 = BTreeMap::new();
        d2.insert(b"beta".to_vec(), None); // tombstone
        d2.insert(b"alpha".to_vec(), Some(b"4".to_vec()));
        append_delta(&d, &d2, 30).unwrap();

        let chain = load_chain(&d).unwrap();
        assert_eq!(chain.segments, 3);
        assert_eq!(chain.covered_epoch, 30, "newest segment's watermark wins");
        assert_eq!(chain.mem.get(b"alpha".as_slice()), Some(&b"4".to_vec()));
        assert_eq!(chain.mem.get(b"beta".as_slice()), None);
        assert_eq!(chain.mem.get(b"gamma".as_slice()), Some(&b"3".to_vec()));
        assert_eq!(
            chain.mem.get(b"".as_slice()),
            Some(&b"empty-key".to_vec()),
            "untouched base key survives"
        );
    }

    #[test]
    fn torn_delta_falls_back_to_previous_chain() {
        let d = MemDisk::new();
        write_base(&d, &sample(), 5).unwrap();
        let mut d1 = BTreeMap::new();
        d1.insert(b"alpha".to_vec(), Some(b"2".to_vec()));
        append_delta(&d, &d1, 8).unwrap();
        let good_end = d.len();

        // A second delta whose tail is torn: drop its last byte (the CRC
        // cannot validate).
        let mut d2 = BTreeMap::new();
        d2.insert(b"alpha".to_vec(), Some(b"99".to_vec()));
        append_delta(&d, &d2, 12).unwrap();
        let raw = d.read(0, d.len() as usize).unwrap();
        d.reset(raw[..raw.len() - 1].to_vec()).unwrap();

        let chain = load_chain(&d).unwrap();
        assert_eq!(chain.segments, 2, "stops at the previous complete segment");
        assert_eq!(chain.valid_end, good_end);
        assert_eq!(chain.mem.get(b"alpha".as_slice()), Some(&b"2".to_vec()));
        assert_eq!(
            chain.covered_epoch, 8,
            "torn segment's watermark must not count — its epochs are only in the logs"
        );
    }

    #[test]
    fn corrupt_base_treated_as_absent() {
        let d = MemDisk::new();
        write_base(&d, &sample(), 7).unwrap();
        let raw = d.read(0, d.len() as usize).unwrap();
        let mut bad = raw.clone();
        bad[10] ^= 0xFF;
        d.reset(bad).unwrap();
        let chain = load_chain(&d).unwrap();
        assert!(chain.mem.is_empty());
        assert_eq!(chain.segments, 0);
        assert_eq!(chain.valid_end, 0);
        assert_eq!(chain.covered_epoch, 0);
    }

    #[test]
    fn delta_without_base_treated_as_absent() {
        let d = MemDisk::new();
        let mut d1 = BTreeMap::new();
        d1.insert(b"k".to_vec(), Some(b"v".to_vec()));
        append_delta(&d, &d1, 9).unwrap();
        let chain = load_chain(&d).unwrap();
        assert_eq!(chain.segments, 0);
        assert!(chain.mem.is_empty());
        assert_eq!(chain.covered_epoch, 0);
    }

    #[test]
    fn short_garbage_treated_as_absent() {
        let d = MemDisk::new();
        d.reset(vec![1, 2, 3]).unwrap();
        let chain = load_chain(&d).unwrap();
        assert!(chain.mem.is_empty());
        assert_eq!(chain.segments, 0);
    }

    #[test]
    fn new_base_replaces_previous_chain() {
        let d = MemDisk::new();
        write_base(&d, &sample(), 3).unwrap();
        let mut d1 = BTreeMap::new();
        d1.insert(b"x".to_vec(), Some(b"y".to_vec()));
        append_delta(&d, &d1, 6).unwrap();
        let mut m2 = BTreeMap::new();
        m2.insert(b"only".to_vec(), b"one".to_vec());
        write_base(&d, &m2, 11).unwrap();
        let chain = load_chain(&d).unwrap();
        assert_eq!(chain.segments, 1);
        assert_eq!(chain.mem, m2);
        assert_eq!(chain.covered_epoch, 11);
    }

    #[test]
    fn empty_tree_roundtrips() {
        let d = MemDisk::new();
        write_base(&d, &BTreeMap::new(), 0).unwrap();
        let chain = load_chain(&d).unwrap();
        assert!(chain.mem.is_empty());
        assert_eq!(chain.segments, 1);
    }
}
