//! Checkpoint snapshots for the key-value store.
//!
//! A checkpoint is a full serialization of the committed tree, written with
//! an atomic device swap ([`crate::disk::Disk::reset`], modelling
//! write-temp-then-rename) so a crash during checkpointing leaves the
//! previous checkpoint intact. The snapshot carries a magic header, an entry
//! count, and a trailing CRC-32 over everything before it; a snapshot that
//! fails validation is treated as absent (the log still has everything since
//! the previous good checkpoint — see [`crate::kv::KvStore::checkpoint`],
//! which only truncates the log *after* the swap succeeds).

use crate::checksum::crc32;
use crate::codec::{put, Reader};
use crate::disk::Disk;
use crate::error::{StorageError, StorageResult};
use std::collections::BTreeMap;

const CKPT_MAGIC: u32 = 0xC4EC_B001;

/// Serialize the tree and atomically swap it onto `disk`.
pub fn write_checkpoint(disk: &dyn Disk, mem: &BTreeMap<Vec<u8>, Vec<u8>>) -> StorageResult<()> {
    let mut buf = Vec::new();
    put::u32(&mut buf, CKPT_MAGIC);
    put::u64(&mut buf, mem.len() as u64);
    for (k, v) in mem {
        put::bytes(&mut buf, k);
        put::bytes(&mut buf, v);
    }
    let crc = crc32(&buf);
    put::u32(&mut buf, crc);
    disk.reset(buf)
}

/// Load the checkpoint from `disk`, returning an empty tree when the device
/// is empty or the snapshot is invalid.
pub fn load_checkpoint(disk: &dyn Disk) -> StorageResult<BTreeMap<Vec<u8>, Vec<u8>>> {
    let len = disk.len();
    if len == 0 {
        return Ok(BTreeMap::new());
    }
    if len < 16 {
        // magic + count + crc can't fit: treat as absent.
        return Ok(BTreeMap::new());
    }
    let raw = disk.read(0, len as usize)?;
    let (body, crc_bytes) = raw.split_at(raw.len() - 4);
    let expect = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    if crc32(body) != expect {
        return Ok(BTreeMap::new());
    }
    let mut r = Reader::new(body);
    let magic = r.u32()?;
    if magic != CKPT_MAGIC {
        return Ok(BTreeMap::new());
    }
    let count = r.u64()?;
    let mut mem = BTreeMap::new();
    for _ in 0..count {
        let k = r.bytes()?;
        let v = r.bytes()?;
        mem.insert(k, v);
    }
    if !r.is_empty() {
        return Err(StorageError::Decode(
            "trailing bytes in checkpoint body".into(),
        ));
    }
    Ok(mem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn sample() -> BTreeMap<Vec<u8>, Vec<u8>> {
        let mut m = BTreeMap::new();
        m.insert(b"alpha".to_vec(), b"1".to_vec());
        m.insert(b"beta".to_vec(), vec![0u8; 1024]);
        m.insert(Vec::new(), b"empty-key".to_vec());
        m
    }

    #[test]
    fn roundtrip() {
        let d = MemDisk::new();
        let m = sample();
        write_checkpoint(&d, &m).unwrap();
        assert_eq!(load_checkpoint(&d).unwrap(), m);
    }

    #[test]
    fn empty_device_loads_empty_tree() {
        let d = MemDisk::new();
        assert!(load_checkpoint(&d).unwrap().is_empty());
    }

    #[test]
    fn corrupt_snapshot_treated_as_absent() {
        let d = MemDisk::new();
        write_checkpoint(&d, &sample()).unwrap();
        // Flip one byte in the middle.
        let raw = d.read(0, d.len() as usize).unwrap();
        let mut bad = raw.clone();
        bad[10] ^= 0xFF;
        d.reset(bad).unwrap();
        assert!(load_checkpoint(&d).unwrap().is_empty());
    }

    #[test]
    fn short_garbage_treated_as_absent() {
        let d = MemDisk::new();
        d.reset(vec![1, 2, 3]).unwrap();
        assert!(load_checkpoint(&d).unwrap().is_empty());
    }

    #[test]
    fn rewrite_replaces_previous_snapshot() {
        let d = MemDisk::new();
        write_checkpoint(&d, &sample()).unwrap();
        let mut m2 = BTreeMap::new();
        m2.insert(b"only".to_vec(), b"one".to_vec());
        write_checkpoint(&d, &m2).unwrap();
        assert_eq!(load_checkpoint(&d).unwrap(), m2);
    }

    #[test]
    fn empty_tree_roundtrips() {
        let d = MemDisk::new();
        write_checkpoint(&d, &BTreeMap::new()).unwrap();
        assert!(load_checkpoint(&d).unwrap().is_empty());
    }
}
