//! The write-ahead log.
//!
//! Every state change to a recoverable store is described by a [`LogRecord`]
//! appended here *before* the change is considered committed (§10: "there is
//! still the need to log updates"). Records are framed with a magic marker,
//! a length, and a CRC-32 over the body; a recovery scan replays records
//! until it reaches the end of the log or a frame that fails validation —
//! the torn tail left by a crash.

use crate::checksum::crc32;
use crate::codec::{put, Reader};
use crate::disk::Disk;
use crate::error::{StorageError, StorageResult};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Frame marker; helps recovery distinguish "end of log" from garbage.
const MAGIC: u16 = 0x51CB; // "QCB" — queue control block

/// Header bytes preceding each record body: magic(2) + len(4) + crc(4).
const FRAME_HEADER: usize = 10;

/// The kind of a log record.
///
/// `KvPut`/`KvDelete` carry redo information for the key-value store;
/// `Prepare`/`Commit`/`Abort` delimit transaction outcomes; `Custom` lets
/// higher layers (the queue manager, the saga log) write their own records
/// through the same recovery machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecordKind {
    /// A key-value insert or update (redo).
    KvPut,
    /// A key-value deletion (redo).
    KvDelete,
    /// The transaction's writes are all logged; it may commit (2PC phase 1).
    Prepare,
    /// The transaction committed; its logged writes must be applied.
    Commit,
    /// The transaction aborted; its logged writes must be discarded.
    Abort,
    /// A checkpoint boundary record.
    Checkpoint,
    /// An application-defined record, identified by a subtype byte.
    Custom(u8),
}

impl RecordKind {
    fn to_byte(self) -> u8 {
        match self {
            RecordKind::KvPut => 1,
            RecordKind::KvDelete => 2,
            RecordKind::Prepare => 3,
            RecordKind::Commit => 4,
            RecordKind::Abort => 5,
            RecordKind::Checkpoint => 6,
            RecordKind::Custom(b) => {
                debug_assert!(b >= 0x80, "custom subtypes live in 0x80..=0xFF");
                b
            }
        }
    }

    fn from_byte(b: u8) -> StorageResult<Self> {
        match b {
            1 => Ok(RecordKind::KvPut),
            2 => Ok(RecordKind::KvDelete),
            3 => Ok(RecordKind::Prepare),
            4 => Ok(RecordKind::Commit),
            5 => Ok(RecordKind::Abort),
            6 => Ok(RecordKind::Checkpoint),
            b if b >= 0x80 => Ok(RecordKind::Custom(b)),
            b => Err(StorageError::Decode(format!("unknown record kind {b}"))),
        }
    }
}

/// A single log record as written to / read from the device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Log sequence number — the byte offset of the record's frame.
    pub lsn: u64,
    /// Owning transaction token (0 for non-transactional records).
    pub txn: u64,
    /// Discriminant.
    pub kind: RecordKind,
    /// Kind-specific payload (already codec-encoded by the caller).
    pub payload: Vec<u8>,
}

/// An append-only, checksummed log over a [`Disk`].
///
/// The log itself is cheap to clone (shared `Arc` device); callers serialize
/// appends externally (the KV store holds its own lock around WAL access).
pub struct Wal {
    disk: Arc<dyn Disk>,
    /// Records appended through this instance (metrics only).
    appended: AtomicU64,
    /// Records covered by the last successful [`Wal::sync`] (metrics only).
    synced: AtomicU64,
}

impl Wal {
    /// Open a log over a device. Existing contents are left untouched; call
    /// [`Wal::scan`] to read them back.
    pub fn new(disk: Arc<dyn Disk>) -> Self {
        Wal {
            disk,
            appended: AtomicU64::new(0),
            synced: AtomicU64::new(0),
        }
    }

    /// The underlying device (for stats and crash injection in tests).
    pub fn disk(&self) -> &Arc<dyn Disk> {
        &self.disk
    }

    /// Append a record; returns its LSN. Not durable until [`Wal::sync`].
    pub fn append(&self, txn: u64, kind: RecordKind, payload: &[u8]) -> StorageResult<u64> {
        let mut body = Vec::with_capacity(9 + payload.len());
        put::u64(&mut body, txn);
        put::u8(&mut body, kind.to_byte());
        body.extend_from_slice(payload);

        let mut frame = Vec::with_capacity(FRAME_HEADER + body.len());
        put::u16(&mut frame, MAGIC);
        put::u32(&mut frame, body.len() as u32);
        put::u32(&mut frame, crc32(&body));
        frame.extend_from_slice(&body);
        let lsn = self.disk.append(&frame)?;
        self.appended.fetch_add(1, Ordering::AcqRel);
        rrq_obs::counter_inc("storage.wal.appends");
        if kind == RecordKind::Commit {
            rrq_obs::counter_inc("storage.wal.commit_records");
        }
        Ok(lsn)
    }

    /// Force all appended records to stable storage.
    pub fn sync(&self) -> StorageResult<()> {
        // Snapshot the record count before the device force: everything
        // appended up to here is covered, later appends may not be.
        let covered = self.appended.load(Ordering::SeqCst);
        self.disk.sync()?;
        let prev = self.synced.fetch_max(covered, Ordering::SeqCst);
        rrq_obs::counter_inc("storage.wal.forces");
        rrq_obs::counter_add("storage.wal.records_synced", covered.saturating_sub(prev));
        Ok(())
    }

    /// Records appended through this instance (metrics bookkeeping).
    pub fn records_appended(&self) -> u64 {
        self.appended.load(Ordering::SeqCst)
    }

    /// Total log length in bytes.
    pub fn len(&self) -> u64 {
        self.disk.len()
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Atomically truncate the log to empty (after a checkpoint).
    pub fn reset(&self) -> StorageResult<()> {
        self.disk.reset(Vec::new())?;
        self.appended.store(0, Ordering::SeqCst);
        self.synced.store(0, Ordering::SeqCst);
        Ok(())
    }

    /// Scan the log from `start` and return every valid record.
    ///
    /// The scan stops cleanly at the first frame that is truncated, has a bad
    /// magic, or fails its CRC — that is the torn tail of the last crash, and
    /// by the write-ahead rule nothing after it can belong to a committed
    /// transaction. The offset where valid data ends is also returned.
    pub fn scan(&self, start: u64) -> StorageResult<(Vec<LogRecord>, u64)> {
        let end = self.disk.len();
        let mut records = Vec::new();
        let mut off = start;
        while off + FRAME_HEADER as u64 <= end {
            let header = self.disk.read(off, FRAME_HEADER)?;
            let mut r = Reader::new(&header);
            // The header reads cannot run short (FRAME_HEADER bytes were just
            // read), but recovery must never panic: surface any miscount as a
            // corrupt frame instead of unwrapping.
            let corrupt = |e: StorageError| StorageError::Corrupt {
                offset: off,
                detail: e.to_string(),
            };
            let magic = r.u16().map_err(corrupt)?;
            if magic != MAGIC {
                break;
            }
            let len = r.u32().map_err(corrupt)? as usize;
            let crc = r.u32().map_err(corrupt)?;
            if off + (FRAME_HEADER + len) as u64 > end {
                break; // truncated tail
            }
            let body = self.disk.read(off + FRAME_HEADER as u64, len)?;
            if crc32(&body) != crc {
                break; // torn write
            }
            let mut br = Reader::new(&body);
            let txn = br.u64().map_err(|e| StorageError::Corrupt {
                offset: off,
                detail: e.to_string(),
            })?;
            let kind_b = br.u8().map_err(|e| StorageError::Corrupt {
                offset: off,
                detail: e.to_string(),
            })?;
            let kind = RecordKind::from_byte(kind_b).map_err(|e| StorageError::Corrupt {
                offset: off,
                detail: e.to_string(),
            })?;
            let payload = body[9..].to_vec();
            records.push(LogRecord {
                lsn: off,
                txn,
                kind,
                payload,
            });
            off += (FRAME_HEADER + len) as u64;
        }
        Ok((records, off))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::{CrashStyle, SimDisk};

    fn wal_on(disk: &SimDisk) -> Wal {
        Wal::new(Arc::new(disk.clone()))
    }

    #[test]
    fn append_scan_roundtrip() {
        let disk = SimDisk::new();
        let wal = wal_on(&disk);
        let l0 = wal.append(1, RecordKind::KvPut, b"k=v").unwrap();
        let l1 = wal.append(1, RecordKind::Commit, b"").unwrap();
        assert!(l1 > l0);
        wal.sync().unwrap();
        let (recs, valid) = wal.scan(0).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].txn, 1);
        assert_eq!(recs[0].kind, RecordKind::KvPut);
        assert_eq!(recs[0].payload, b"k=v");
        assert_eq!(recs[1].kind, RecordKind::Commit);
        assert_eq!(valid, wal.len());
    }

    #[test]
    fn unsynced_records_vanish_on_crash() {
        let disk = SimDisk::new();
        let wal = wal_on(&disk);
        wal.append(1, RecordKind::KvPut, b"durable").unwrap();
        wal.sync().unwrap();
        wal.append(2, RecordKind::KvPut, b"volatile").unwrap();
        disk.crash(CrashStyle::DropVolatile);
        let (recs, _) = wal.scan(0).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].payload, b"durable");
    }

    #[test]
    fn torn_tail_stops_scan_without_error() {
        let disk = SimDisk::new();
        let wal = wal_on(&disk);
        wal.append(1, RecordKind::KvPut, b"good record").unwrap();
        wal.sync().unwrap();
        wal.append(2, RecordKind::KvPut, b"torn record").unwrap();
        // Keep only part of the second frame, with its last byte corrupted.
        disk.crash(CrashStyle::Torn { keep: 12 });
        let (recs, valid) = wal.scan(0).unwrap();
        assert_eq!(recs.len(), 1);
        assert!(valid < wal.len());
    }

    #[test]
    fn torn_crc_detected_even_when_length_intact() {
        let disk = SimDisk::new();
        let wal = wal_on(&disk);
        wal.append(1, RecordKind::KvPut, b"aaaa").unwrap();
        wal.sync().unwrap();
        let full = disk.len() as usize;
        wal.append(2, RecordKind::KvPut, b"bbbb").unwrap();
        // Tear inside the *body* of the second record: full frame length
        // survives but one payload byte is flipped.
        let second_frame_len = disk.len() as usize - full;
        disk.crash(CrashStyle::Torn {
            keep: second_frame_len,
        });
        let (recs, _) = wal.scan(0).unwrap();
        assert_eq!(recs.len(), 1, "corrupt second record must be rejected");
    }

    #[test]
    fn scan_from_midpoint() {
        let disk = SimDisk::new();
        let wal = wal_on(&disk);
        wal.append(1, RecordKind::KvPut, b"first").unwrap();
        let l1 = wal.append(2, RecordKind::KvPut, b"second").unwrap();
        wal.sync().unwrap();
        let (recs, _) = wal.scan(l1).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].payload, b"second");
    }

    #[test]
    fn reset_empties_log() {
        let disk = SimDisk::new();
        let wal = wal_on(&disk);
        wal.append(1, RecordKind::KvPut, b"x").unwrap();
        wal.sync().unwrap();
        wal.reset().unwrap();
        assert!(wal.is_empty());
        let (recs, _) = wal.scan(0).unwrap();
        assert!(recs.is_empty());
    }

    #[test]
    fn custom_kinds_roundtrip() {
        let disk = SimDisk::new();
        let wal = wal_on(&disk);
        wal.append(9, RecordKind::Custom(0x90), b"app").unwrap();
        wal.sync().unwrap();
        let (recs, _) = wal.scan(0).unwrap();
        assert_eq!(recs[0].kind, RecordKind::Custom(0x90));
    }

    #[test]
    fn kind_byte_roundtrip_all() {
        for k in [
            RecordKind::KvPut,
            RecordKind::KvDelete,
            RecordKind::Prepare,
            RecordKind::Commit,
            RecordKind::Abort,
            RecordKind::Checkpoint,
            RecordKind::Custom(0xAB),
        ] {
            assert_eq!(RecordKind::from_byte(k.to_byte()).unwrap(), k);
        }
        assert!(RecordKind::from_byte(0).is_err());
        assert!(RecordKind::from_byte(7).is_err());
    }

    #[test]
    fn empty_payload_records() {
        let disk = SimDisk::new();
        let wal = wal_on(&disk);
        wal.append(3, RecordKind::Commit, b"").unwrap();
        wal.sync().unwrap();
        let (recs, _) = wal.scan(0).unwrap();
        assert_eq!(recs[0].payload, Vec::<u8>::new());
    }
}
