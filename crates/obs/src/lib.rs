//! rrq-obs: deterministic metrics and lightweight trace spans.
//!
//! The paper's performance arguments (§10: group-commit batching, skip-locked
//! dequeue, main-memory queues) are about *rates* — commits per force, skips
//! per dequeue, lock hold times. This crate gives every production crate a
//! place to report those rates without taking a dependency on anything above
//! the bottom of the workspace graph:
//!
//! * lock-free-ish **counters** and **gauges** (atomic cells behind a
//!   read-mostly registry map);
//! * fixed-bucket power-of-two **histograms** with an exact text codec;
//! * **trace spans** that time themselves against the registry's logical
//!   tick clock and feed a histogram plus a bounded span log.
//!
//! Time is the registry's own logical clock: every instrumented event
//! advances it by one tick, so durations are "events elapsed", never
//! wall-clock (the rrq-lint no-wallclock rule covers this crate). Under a
//! fixed seed the counters are exactly reproducible, which is what lets
//! `rrq_sim`'s explorer assert conservation laws over them after every
//! fault script.
//!
//! Like the `rrq_check::race` hooks (S18), everything is off by default: a
//! [`Session`] turns the registry on and serializes concurrent metric tests
//! in one process, and every hook starts with one relaxed atomic load so
//! dormant instrumentation is effectively free.
//!
//! Every metric name used by a production crate must be declared exactly
//! once in `crates/obs/METRICS.md`; the `metric-catalogue` rrq-lint rule
//! enforces this.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Number of histogram buckets: one for zero, one per power of two up to
/// `2^30`, and a final catch-all.
pub const BUCKETS: usize = 32;

/// Bounded span log size; spans past the cap still feed their histogram.
const SPAN_CAP: usize = 65_536;

static ENABLED: AtomicBool = AtomicBool::new(false);
static SESSION: Mutex<()> = Mutex::new(());
static TICKS: AtomicU64 = AtomicU64::new(0);

// Deliberate-bug knob for the explorer's metrics-conservation oracle: when
// armed, deltas to the named counter are applied twice. Test-only by
// construction — it can only be set through an active `Session`.
static BUG_ARMED: AtomicBool = AtomicBool::new(false);
static DOUBLED: Mutex<Option<&'static str>> = Mutex::new(None);

fn lock_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn read_ok<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|p| p.into_inner())
}

fn write_ok<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|p| p.into_inner())
}

struct Histo {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histo {
    fn new() -> Histo {
        Histo {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    fn observe(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed); // wrapping by construction
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// One completed trace span, in logical ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span (and histogram) name.
    pub name: &'static str,
    /// Logical tick at which the span was opened.
    pub start: u64,
    /// Logical tick at which the span was dropped.
    pub end: u64,
}

struct Registry {
    counters: RwLock<HashMap<&'static str, Arc<AtomicU64>>>,
    gauges: RwLock<HashMap<&'static str, Arc<AtomicI64>>>,
    histograms: RwLock<HashMap<&'static str, Arc<Histo>>>,
    spans: Mutex<Vec<SpanRecord>>,
}

fn registry() -> &'static Registry {
    static R: OnceLock<Registry> = OnceLock::new();
    R.get_or_init(|| Registry {
        counters: RwLock::new(HashMap::new()),
        gauges: RwLock::new(HashMap::new()),
        histograms: RwLock::new(HashMap::new()),
        spans: Mutex::new(Vec::new()),
    })
}

fn reset_registry() {
    let r = registry();
    write_ok(&r.counters).clear();
    write_ok(&r.gauges).clear();
    write_ok(&r.histograms).clear();
    lock_ok(&r.spans).clear();
    TICKS.store(0, Ordering::SeqCst);
}

/// Advance the logical clock by one event and return the new reading.
fn tick() -> u64 {
    TICKS.fetch_add(1, Ordering::Relaxed) + 1
}

/// Current logical-clock reading (does not advance the clock).
pub fn now() -> u64 {
    TICKS.load(Ordering::Relaxed)
}

/// Advance the logical clock by `n` ticks — for simulators that want dwell
/// times to reflect simulated progress rather than raw event counts.
pub fn advance(n: u64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    TICKS.fetch_add(n, Ordering::Relaxed);
}

fn counter_cell(name: &'static str) -> Arc<AtomicU64> {
    let r = registry();
    if let Some(c) = read_ok(&r.counters).get(name) {
        return Arc::clone(c);
    }
    Arc::clone(
        write_ok(&r.counters)
            .entry(name)
            .or_insert_with(|| Arc::new(AtomicU64::new(0))),
    )
}

fn gauge_cell(name: &'static str) -> Arc<AtomicI64> {
    let r = registry();
    if let Some(c) = read_ok(&r.gauges).get(name) {
        return Arc::clone(c);
    }
    Arc::clone(
        write_ok(&r.gauges)
            .entry(name)
            .or_insert_with(|| Arc::new(AtomicI64::new(0))),
    )
}

fn hist_cell(name: &'static str) -> Arc<Histo> {
    let r = registry();
    if let Some(c) = read_ok(&r.histograms).get(name) {
        return Arc::clone(c);
    }
    Arc::clone(
        write_ok(&r.histograms)
            .entry(name)
            .or_insert_with(|| Arc::new(Histo::new())),
    )
}

/// Add `delta` to the named counter. No-op without an active [`Session`].
pub fn counter_add(name: &'static str, delta: u64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    tick();
    let delta = if BUG_ARMED.load(Ordering::Relaxed) && lock_ok(&DOUBLED).as_deref() == Some(name) {
        delta.wrapping_mul(2)
    } else {
        delta
    };
    counter_cell(name).fetch_add(delta, Ordering::Relaxed);
}

/// Add one to the named counter. No-op without an active [`Session`].
pub fn counter_inc(name: &'static str) {
    counter_add(name, 1);
}

/// Add `delta` (possibly negative) to the named gauge. No-op without an
/// active [`Session`].
pub fn gauge_add(name: &'static str, delta: i64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    tick();
    gauge_cell(name).fetch_add(delta, Ordering::Relaxed);
}

/// Set the named gauge to `value`. No-op without an active [`Session`].
pub fn gauge_set(name: &'static str, value: i64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    tick();
    gauge_cell(name).store(value, Ordering::Relaxed);
}

/// Record `value` into the named histogram. No-op without an active
/// [`Session`].
pub fn observe(name: &'static str, value: u64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    tick();
    hist_cell(name).observe(value);
}

/// Open a trace span; dropping it records its duration (in logical ticks)
/// into the histogram of the same name and appends to the bounded span log.
pub fn span(name: &'static str) -> Span {
    if !ENABLED.load(Ordering::Relaxed) {
        return Span {
            name,
            start: 0,
            live: false,
        };
    }
    Span {
        name,
        start: tick(),
        live: true,
    }
}

/// An open trace span; see [`span`].
#[must_use = "a span measures until it is dropped"]
pub struct Span {
    name: &'static str,
    start: u64,
    live: bool,
}

impl Span {
    /// The tick at which this span was opened (0 when recorded while the
    /// registry was disabled).
    pub fn start(&self) -> u64 {
        self.start
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.live || !ENABLED.load(Ordering::Relaxed) {
            return;
        }
        let end = tick();
        hist_cell(self.name).observe(end.saturating_sub(self.start));
        let mut spans = lock_ok(&registry().spans);
        if spans.len() < SPAN_CAP {
            spans.push(SpanRecord {
                name: self.name,
                start: self.start,
                end,
            });
        }
    }
}

/// Index of the histogram bucket for `v`: bucket 0 holds zeros, bucket
/// `i` (1..=30) holds `[2^(i-1), 2^i)`, bucket 31 holds everything above.
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i`, used as the quantile representative.
pub fn bucket_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        _ if i >= BUCKETS - 1 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// A point-in-time copy of one histogram. `sum` is the wrapping sum of all
/// observed values (observations are u64 and may overflow by design).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts; see [`bucket_of`].
    pub buckets: [u64; BUCKETS],
    /// Wrapping sum of observed values.
    pub sum: u64,
    /// Total observations.
    pub count: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            sum: 0,
            count: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Record one value (ground-truth bookkeeping for tests and reports).
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.sum = self.sum.wrapping_add(v);
        self.count += 1;
    }

    /// Bucketwise merge of `other` into `self`.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += *o;
        }
        self.sum = self.sum.wrapping_add(other.sum);
        self.count += other.count;
    }

    /// Upper bound of the bucket in which the `q`-quantile observation
    /// falls (`0.0 ..= 1.0`); returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_bound(i);
            }
        }
        bucket_bound(BUCKETS - 1)
    }

    /// Mean of observed values (0 for an empty histogram). Meaningless if
    /// `sum` has wrapped.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One snapshotted metric value.
///
/// The histogram variant dominates the enum's size, but a snapshot holds a
/// few dozen values at most and they are iterated, not stored in bulk, so
/// boxing would buy indirection for nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(clippy::large_enum_variant)]
pub enum Value {
    /// Monotone counter.
    Counter(u64),
    /// Signed gauge.
    Gauge(i64),
    /// Fixed-bucket histogram.
    Histogram(HistogramSnapshot),
}

/// A point-in-time copy of the whole registry: `(name, value)` pairs sorted
/// by name, so two renders of equal snapshots are byte-identical and
/// snapshots are diffable.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Sorted `(name, value)` entries.
    pub entries: Vec<(String, Value)>,
}

/// Copy the current registry contents. Usable at any time; between
/// sessions it reports whatever the last session left behind.
pub fn snapshot() -> Snapshot {
    let r = registry();
    let mut entries: Vec<(String, Value)> = Vec::new();
    for (name, c) in read_ok(&r.counters).iter() {
        entries.push((name.to_string(), Value::Counter(c.load(Ordering::SeqCst))));
    }
    for (name, g) in read_ok(&r.gauges).iter() {
        entries.push((name.to_string(), Value::Gauge(g.load(Ordering::SeqCst))));
    }
    for (name, h) in read_ok(&r.histograms).iter() {
        entries.push((name.to_string(), Value::Histogram(h.snapshot())));
    }
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    Snapshot { entries }
}

impl Snapshot {
    /// Value of the named counter, defaulting to 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(Value::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Value of the named gauge, defaulting to 0 when absent.
    pub fn gauge(&self, name: &str) -> i64 {
        match self.get(name) {
            Some(Value::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// The named histogram, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name) {
            Some(Value::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Look up a metric by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Render as the line-oriented text format parsed by [`Snapshot::parse`].
    ///
    /// ```text
    /// counter storage.wal.appends 42
    /// gauge qm.queue.depth 3
    /// hist txn.lock.wait_ticks count=5 sum=37 1:1 3:3 6:1
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.entries {
            match value {
                Value::Counter(v) => {
                    let _ = writeln!(out, "counter {name} {v}");
                }
                Value::Gauge(v) => {
                    let _ = writeln!(out, "gauge {name} {v}");
                }
                Value::Histogram(h) => {
                    let _ = write!(out, "hist {name} count={} sum={}", h.count, h.sum);
                    for (i, b) in h.buckets.iter().enumerate() {
                        if *b != 0 {
                            let _ = write!(out, " {i}:{b}");
                        }
                    }
                    out.push('\n');
                }
            }
        }
        out
    }

    /// Parse the [`Snapshot::render`] format; exact inverse for any
    /// rendered snapshot.
    pub fn parse(text: &str) -> Result<Snapshot, String> {
        let mut entries: Vec<(String, Value)> = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let err = |what: &str| format!("line {}: {what}: {line}", lineno + 1);
            let mut tok = line.split_whitespace();
            let kind = tok.next().ok_or_else(|| err("empty"))?;
            let name = tok.next().ok_or_else(|| err("missing name"))?.to_string();
            match kind {
                "counter" => {
                    let v = tok
                        .next()
                        .and_then(|t| t.parse::<u64>().ok())
                        .ok_or_else(|| err("bad counter value"))?;
                    entries.push((name, Value::Counter(v)));
                }
                "gauge" => {
                    let v = tok
                        .next()
                        .and_then(|t| t.parse::<i64>().ok())
                        .ok_or_else(|| err("bad gauge value"))?;
                    entries.push((name, Value::Gauge(v)));
                }
                "hist" => {
                    let mut h = HistogramSnapshot::default();
                    for t in tok {
                        if let Some(v) = t.strip_prefix("count=") {
                            h.count = v.parse().map_err(|_| err("bad count"))?;
                        } else if let Some(v) = t.strip_prefix("sum=") {
                            h.sum = v.parse().map_err(|_| err("bad sum"))?;
                        } else {
                            let (i, n) = t.split_once(':').ok_or_else(|| err("bad bucket"))?;
                            let i: usize = i.parse().map_err(|_| err("bad bucket index"))?;
                            if i >= BUCKETS {
                                return Err(err("bucket index out of range"));
                            }
                            h.buckets[i] = n.parse().map_err(|_| err("bad bucket count"))?;
                        }
                    }
                    entries.push((name, Value::Histogram(h)));
                }
                _ => return Err(err("unknown metric kind")),
            }
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(Snapshot { entries })
    }

    /// Difference since `earlier`: counters and histogram contents
    /// subtract (wrapping), gauges keep their later reading. Metrics absent
    /// from `earlier` pass through unchanged.
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        let mut entries: Vec<(String, Value)> = Vec::new();
        for (name, value) in &self.entries {
            let diffed = match (value, earlier.get(name)) {
                (Value::Counter(now), Some(Value::Counter(then))) => {
                    Value::Counter(now.wrapping_sub(*then))
                }
                (Value::Histogram(now), Some(Value::Histogram(then))) => {
                    let mut h = now.clone();
                    for (b, t) in h.buckets.iter_mut().zip(then.buckets.iter()) {
                        *b = b.wrapping_sub(*t);
                    }
                    h.sum = h.sum.wrapping_sub(then.sum);
                    h.count = h.count.wrapping_sub(then.count);
                    Value::Histogram(h)
                }
                _ => value.clone(),
            };
            entries.push((name.clone(), diffed));
        }
        Snapshot { entries }
    }
}

/// Enables the metric hooks for its lifetime, clearing all prior state;
/// drop disables them. Sessions serialize on a process-wide mutex, exactly
/// like `rrq_check::race::Session`, so concurrent `cargo test` threads
/// never share a registry.
pub struct Session {
    _guard: MutexGuard<'static, ()>,
}

impl Session {
    /// Reset the registry and enable the hooks.
    pub fn start() -> Session {
        let guard = lock_ok(&SESSION);
        reset_registry();
        BUG_ARMED.store(false, Ordering::SeqCst);
        *lock_ok(&DOUBLED) = None;
        ENABLED.store(true, Ordering::SeqCst);
        Session { _guard: guard }
    }

    /// Clear all metrics and the clock but keep the session active — used
    /// by sweep drivers that check one script at a time.
    pub fn reset(&self) {
        reset_registry();
    }

    /// Copy the current registry contents.
    pub fn snapshot(&self) -> Snapshot {
        snapshot()
    }

    /// Drain the span log.
    pub fn take_spans(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut *lock_ok(&registry().spans))
    }

    /// Test knob: double every delta applied to the named counter (`None`
    /// disarms). This models a double-count instrumentation bug so the
    /// explorer can prove its metrics-conservation oracle bites.
    pub fn double_count(&self, name: Option<&'static str>) {
        *lock_ok(&DOUBLED) = name;
        BUG_ARMED.store(name.is_some(), Ordering::SeqCst);
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::SeqCst);
        BUG_ARMED.store(false, Ordering::SeqCst);
        *lock_ok(&DOUBLED) = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hooks_are_inert_without_a_session() {
        counter_add("t.inert", 5);
        gauge_add("t.inert.g", 2);
        observe("t.inert.h", 7);
        let s = Session::start(); // resets registry
        assert_eq!(s.snapshot().counter("t.inert"), 0);
        assert_eq!(s.snapshot().gauge("t.inert.g"), 0);
        assert!(s.snapshot().histogram("t.inert.h").is_none());
    }

    #[test]
    fn counters_gauges_and_histograms_record() {
        let s = Session::start();
        counter_add("t.c", 2);
        counter_inc("t.c");
        gauge_add("t.g", 5);
        gauge_add("t.g", -2);
        observe("t.h", 0);
        observe("t.h", 3);
        observe("t.h", 1024);
        let snap = s.snapshot();
        assert_eq!(snap.counter("t.c"), 3);
        assert_eq!(snap.gauge("t.g"), 3);
        let h = snap.histogram("t.h").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 1027);
        assert_eq!(h.buckets[bucket_of(0)], 1);
        assert_eq!(h.buckets[bucket_of(3)], 1);
        assert_eq!(h.buckets[bucket_of(1024)], 1);
    }

    #[test]
    fn bucket_layout_is_power_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        for v in [0u64, 1, 7, 8, 1 << 29, (1 << 30) + 1, u64::MAX] {
            let i = bucket_of(v);
            assert!(v <= bucket_bound(i), "v={v} bucket={i}");
            if i > 0 {
                assert!(v > bucket_bound(i - 1), "v={v} bucket={i}");
            }
        }
    }

    #[test]
    fn spans_feed_histogram_and_log() {
        let s = Session::start();
        {
            let _sp = span("t.span");
            counter_inc("t.work"); // one tick inside the span
        }
        let snap = s.snapshot();
        let h = snap.histogram("t.span").unwrap();
        assert_eq!(h.count, 1);
        assert!(h.sum >= 1, "span covered at least the inner event");
        let spans = s.take_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "t.span");
        assert!(spans[0].end > spans[0].start);
    }

    #[test]
    fn render_parse_round_trips() {
        let s = Session::start();
        counter_add("t.rt.c", 42);
        gauge_add("t.rt.g", -7);
        for v in [0u64, 1, 2, 3, 9, 1 << 20, u64::MAX] {
            observe("t.rt.h", v);
        }
        let snap = s.snapshot();
        let text = snap.render();
        let back = Snapshot::parse(&text).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.render(), text);
    }

    #[test]
    fn diff_subtracts_counters_and_histograms() {
        let s = Session::start();
        counter_add("t.d.c", 10);
        observe("t.d.h", 4);
        let before = s.snapshot();
        counter_add("t.d.c", 5);
        observe("t.d.h", 4);
        gauge_set("t.d.g", 9);
        let after = s.snapshot();
        let d = after.diff(&before);
        assert_eq!(d.counter("t.d.c"), 5);
        assert_eq!(d.histogram("t.d.h").unwrap().count, 1);
        assert_eq!(d.gauge("t.d.g"), 9);
    }

    #[test]
    fn double_count_knob_doubles_one_counter_only() {
        let s = Session::start();
        s.double_count(Some("t.bug.target"));
        counter_add("t.bug.target", 3);
        counter_add("t.bug.other", 3);
        let snap = s.snapshot();
        assert_eq!(snap.counter("t.bug.target"), 6);
        assert_eq!(snap.counter("t.bug.other"), 3);
        s.double_count(None);
        counter_add("t.bug.target", 1);
        assert_eq!(s.snapshot().counter("t.bug.target"), 7);
    }

    #[test]
    fn session_reset_clears_state_but_stays_enabled() {
        let s = Session::start();
        counter_inc("t.reset");
        s.reset();
        assert_eq!(s.snapshot().counter("t.reset"), 0);
        counter_inc("t.reset");
        assert_eq!(s.snapshot().counter("t.reset"), 1);
    }

    #[test]
    fn quantiles_hit_bucket_bounds() {
        let mut h = HistogramSnapshot::default();
        for _ in 0..90 {
            h.record(3); // bucket 2, bound 3
        }
        for _ in 0..10 {
            h.record(1000); // bucket 10, bound 1023
        }
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(0.9), 3);
        assert_eq!(h.quantile(0.95), 1023);
        assert_eq!(h.quantile(1.0), 1023);
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }
}
