//! Properties of the metrics layer: bucket geometry, exact histogram
//! bookkeeping for arbitrary value sequences, merge-as-concatenation, text
//! round-trips, and counter monotonicity under concurrent incrementers.

use proptest::collection::vec;
use proptest::prelude::*;
use rrq_obs::{bucket_bound, bucket_of, HistogramSnapshot, Session, Snapshot, Value, BUCKETS};

fn ground_truth(values: &[u64]) -> HistogramSnapshot {
    let mut h = HistogramSnapshot::default();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bucket_geometry_covers_u64(v in any::<u64>()) {
        let i = bucket_of(v);
        prop_assert!(i < BUCKETS);
        // The value lies within its bucket's bounds.
        prop_assert!(v <= bucket_bound(i));
        if i > 0 {
            prop_assert!(v > bucket_bound(i - 1));
        } else {
            prop_assert_eq!(v, 0);
        }
    }

    #[test]
    fn histogram_counts_arbitrary_sequences_exactly(values in vec(any::<u64>(), 0..200)) {
        let h = ground_truth(&values);
        prop_assert_eq!(h.count, values.len() as u64);
        let mut wrap_sum = 0u64;
        let mut by_bucket = [0u64; BUCKETS];
        for &v in &values {
            wrap_sum = wrap_sum.wrapping_add(v);
            by_bucket[bucket_of(v)] += 1;
        }
        prop_assert_eq!(h.sum, wrap_sum);
        prop_assert_eq!(h.buckets, by_bucket);
        prop_assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
    }

    #[test]
    fn merge_is_concatenation(
        a in vec(any::<u64>(), 0..120),
        b in vec(any::<u64>(), 0..120),
    ) {
        let mut merged = ground_truth(&a);
        merged.merge(&ground_truth(&b));
        let mut both = a.clone();
        both.extend_from_slice(&b);
        prop_assert_eq!(merged, ground_truth(&both));
    }

    #[test]
    fn quantile_bound_is_attained_and_monotone(values in vec(any::<u64>(), 1..120)) {
        let h = ground_truth(&values);
        // Quantiles are bucket upper bounds, so q=1.0 dominates every
        // observation and quantiles never decrease in q.
        let max = *values.iter().max().unwrap();
        prop_assert!(h.quantile(1.0) >= max);
        let mut last = h.quantile(0.0);
        for q in [0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let cur = h.quantile(q);
            prop_assert!(cur >= last);
            last = cur;
        }
    }

    #[test]
    fn registry_observation_and_text_round_trip_are_exact(
        values in vec(any::<u64>(), 0..150),
        counter_increments in vec(any::<u32>(), 0..40),
        gauge_moves in vec(any::<i32>(), 0..40),
    ) {
        // One registry session per case: counters start from zero.
        let session = Session::start();
        for &v in &values {
            rrq_obs::observe("prop.hist", v);
        }
        let mut want_counter = 0u64;
        for &d in &counter_increments {
            rrq_obs::counter_add("prop.counter", u64::from(d));
            want_counter += u64::from(d);
        }
        let mut want_gauge = 0i64;
        for &d in &gauge_moves {
            rrq_obs::gauge_add("prop.gauge", i64::from(d));
            want_gauge += i64::from(d);
        }
        let snap = session.snapshot();

        // The registry recorded exactly the ground truth.
        let got = snap.histogram("prop.hist").cloned().unwrap_or_default();
        prop_assert_eq!(&got, &ground_truth(&values));
        prop_assert_eq!(snap.counter("prop.counter"), want_counter);
        prop_assert_eq!(snap.gauge("prop.gauge"), want_gauge);

        // render → parse is the identity on snapshots.
        let reparsed = Snapshot::parse(&snap.render()).unwrap();
        prop_assert_eq!(&reparsed, &snap);
        // ... and renders byte-identically (the format is canonical).
        prop_assert_eq!(reparsed.render(), snap.render());
    }

    #[test]
    fn diff_inverts_merge_for_counters(
        early in vec(any::<u32>(), 0..30),
        late in vec(any::<u32>(), 0..30),
    ) {
        let session = Session::start();
        for &d in &early {
            rrq_obs::counter_add("prop.diff", u64::from(d));
        }
        let before = session.snapshot();
        for &d in &late {
            rrq_obs::counter_add("prop.diff", u64::from(d));
        }
        let after = session.snapshot();
        let delta = after.diff(&before);
        let want: u64 = late.iter().map(|&d| u64::from(d)).sum();
        prop_assert_eq!(delta.counter("prop.diff"), want);
    }
}

#[test]
fn counter_snapshots_are_monotone_across_concurrent_incrementers() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 20_000;

    let session = Session::start();
    let workers: Vec<_> = (0..THREADS)
        .map(|_| {
            std::thread::spawn(|| {
                for _ in 0..PER_THREAD {
                    rrq_obs::counter_inc("prop.concurrent");
                }
            })
        })
        .collect();

    // Snapshots taken mid-flight must read a non-decreasing sequence.
    let mut last = 0u64;
    let mut observed = 0usize;
    while observed < 200 {
        let now = rrq_obs::snapshot().counter("prop.concurrent");
        assert!(
            now >= last,
            "counter went backwards: {now} after {last} (snapshot {observed})"
        );
        last = now;
        observed += 1;
    }
    for w in workers {
        w.join().unwrap();
    }
    assert_eq!(
        session.snapshot().counter("prop.concurrent"),
        THREADS as u64 * PER_THREAD,
        "no increment lost"
    );
    drop(session);

    // Disabled registry: hooks are inert, the last session's numbers stay.
    rrq_obs::counter_inc("prop.concurrent");
    let v = rrq_obs::snapshot().counter("prop.concurrent");
    assert_eq!(v, THREADS as u64 * PER_THREAD);

    // Gauges accept concurrent churn too: +1/-1 pairs always net zero.
    let session = Session::start();
    let churners: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(|| {
                for _ in 0..10_000 {
                    rrq_obs::gauge_add("prop.churn", 1);
                    rrq_obs::gauge_add("prop.churn", -1);
                }
            })
        })
        .collect();
    for c in churners {
        c.join().unwrap();
    }
    assert_eq!(session.snapshot().gauge("prop.churn"), 0);
}

#[test]
fn parse_rejects_malformed_lines() {
    for bad in [
        "counter only-name",
        "gauge g not-a-number",
        "hist h count=x",
        "hist h 99:1",
        "hist h 5",
        "widget w 3",
    ] {
        assert!(
            Snapshot::parse(bad).is_err(),
            "expected a parse error for {bad:?}"
        );
    }
    // Values survive even when entries arrive unsorted.
    let s = Snapshot::parse("counter b 2\ncounter a 1\n").unwrap();
    assert_eq!(s.counter("a"), 1);
    assert_eq!(s.counter("b"), 2);
    assert!(matches!(s.get("a"), Some(Value::Counter(1))));
}
