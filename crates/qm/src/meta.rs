//! Per-queue configuration.

use rrq_storage::codec::{put, Decode, Encode, Reader};
use rrq_storage::{StorageError, StorageResult};

/// How concurrent dequeuers interact with write-locked elements (§10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderingMode {
    /// Scan past elements locked by uncommitted dequeues — the paper's
    /// recommended behaviour ("allowing readers to scan the queue and ignore
    /// write-locked elements"). Dequeue order can deviate from FIFO when a
    /// dequeuer aborts, which §10 argues is tolerable.
    SkipLocked,
    /// Block behind the lock on the head element: exact FIFO, at the cost of
    /// the "performance degradation that strict ordering would imply".
    StrictFifo,
}

impl OrderingMode {
    fn to_byte(self) -> u8 {
        match self {
            OrderingMode::SkipLocked => 0,
            OrderingMode::StrictFifo => 1,
        }
    }

    fn from_byte(b: u8) -> StorageResult<Self> {
        match b {
            0 => Ok(OrderingMode::SkipLocked),
            1 => Ok(OrderingMode::StrictFifo),
            b => Err(StorageError::Decode(format!("bad ordering mode {b}"))),
        }
    }
}

/// Queue metadata, stored durably alongside the elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueMeta {
    /// Queue name (unique within the repository, §4.1).
    pub name: String,
    /// Dequeue ordering discipline.
    pub mode: OrderingMode,
    /// The *n* attribute of §4.2: the n-th aborted dequeue moves the element
    /// to the error queue. `0` disables the limit (retry forever).
    pub retry_limit: u32,
    /// Name of the error queue; defaults to `<name>.errors`.
    pub error_queue: String,
    /// Durable (survives crashes) or volatile (§10) storage.
    pub durable: bool,
    /// Forward enqueues to this queue instead (§9 "queue redirection").
    pub redirect_to: Option<String>,
    /// Raise an alert when live depth reaches this value (§9 "alert
    /// thresholds").
    pub alert_threshold: Option<u64>,
    /// Accepting operations? (start/stop, §4.1.)
    pub started: bool,
    /// When an aborted dequeue returns the element, move it to the *back*
    /// of the queue instead of its original position. Trades FIFO fidelity
    /// for livelock-freedom when requests block on resources held by
    /// requests deeper in the queue (see the §6 lock-inheritance hazard in
    /// `rrq-core::pipeline`).
    pub requeue_at_back_on_abort: bool,
}

impl QueueMeta {
    /// Metadata with the library defaults for `name`.
    pub fn with_defaults(name: impl Into<String>) -> Self {
        let name = name.into();
        let error_queue = format!("{name}.errors");
        QueueMeta {
            name,
            mode: OrderingMode::SkipLocked,
            retry_limit: 5,
            error_queue,
            durable: true,
            redirect_to: None,
            alert_threshold: None,
            started: true,
            requeue_at_back_on_abort: false,
        }
    }
}

impl Encode for QueueMeta {
    fn encode(&self, buf: &mut Vec<u8>) {
        put::string(buf, &self.name);
        put::u8(buf, self.mode.to_byte());
        put::u32(buf, self.retry_limit);
        put::string(buf, &self.error_queue);
        put::bool(buf, self.durable);
        match &self.redirect_to {
            None => put::u8(buf, 0),
            Some(t) => {
                put::u8(buf, 1);
                put::string(buf, t);
            }
        }
        match self.alert_threshold {
            None => put::u8(buf, 0),
            Some(v) => {
                put::u8(buf, 1);
                put::u64(buf, v);
            }
        }
        put::bool(buf, self.started);
        put::bool(buf, self.requeue_at_back_on_abort);
    }
}

impl Decode for QueueMeta {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        let name = r.string()?;
        let mode = OrderingMode::from_byte(r.u8()?)?;
        let retry_limit = r.u32()?;
        let error_queue = r.string()?;
        let durable = r.bool()?;
        let redirect_to = match r.u8()? {
            0 => None,
            1 => Some(r.string()?),
            b => return Err(StorageError::Decode(format!("bad option tag {b}"))),
        };
        let alert_threshold = match r.u8()? {
            0 => None,
            1 => Some(r.u64()?),
            b => return Err(StorageError::Decode(format!("bad option tag {b}"))),
        };
        let started = r.bool()?;
        let requeue_at_back_on_abort = r.bool()?;
        Ok(QueueMeta {
            name,
            mode,
            retry_limit,
            error_queue,
            durable,
            redirect_to,
            alert_threshold,
            started,
            requeue_at_back_on_abort,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let m = QueueMeta::with_defaults("req");
        assert_eq!(m.name, "req");
        assert_eq!(m.error_queue, "req.errors");
        assert_eq!(m.mode, OrderingMode::SkipLocked);
        assert!(m.durable);
        assert!(m.started);
        assert_eq!(m.retry_limit, 5);
    }

    #[test]
    fn roundtrip_all_fields() {
        let m = QueueMeta {
            name: "q".into(),
            mode: OrderingMode::StrictFifo,
            retry_limit: 0,
            error_queue: "deadletter".into(),
            durable: false,
            redirect_to: Some("other".into()),
            alert_threshold: Some(1000),
            started: false,
            requeue_at_back_on_abort: true,
        };
        let d = QueueMeta::decode_all(&m.encode_to_vec()).unwrap();
        assert_eq!(d, m);
    }

    #[test]
    fn roundtrip_defaults() {
        let m = QueueMeta::with_defaults("x");
        let d = QueueMeta::decode_all(&m.encode_to_vec()).unwrap();
        assert_eq!(d, m);
    }

    #[test]
    fn bad_mode_byte_rejected() {
        assert!(OrderingMode::from_byte(9).is_err());
    }
}
