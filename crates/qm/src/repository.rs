//! A queue repository: "a set of queues … Each repository has a system- (or
//! network-) wide unique name" (§4.1), bundled with the node-local
//! transaction machinery and its recovery path.
//!
//! [`Repository::open`] is the restart entry point: it recovers the durable
//! store from checkpoint + log, resolves in-doubt two-phase-commit
//! participants against the coordinator log, re-creates the volatile store
//! empty (volatile queues lose their contents on a node failure, §10), and
//! hands back a ready [`QueueManager`] + [`TxnManager`] pair.

use crate::error::{QmError, QmResult};
use crate::meta::QueueMeta;
use crate::ops::QueueManager;
use rrq_storage::disk::{CrashStyle, Disk, LatencyDisk, SimDisk, TornWriteMode};
use rrq_storage::kv::{KvOptions, KvStore, MAX_WAL_PARTITIONS};
use rrq_storage::recovery::RecoveryReport;
use rrq_txn::{
    CoordinatorLog, KvResource, LockManager, ResourceManager, Txn, TxnManager, DEFAULT_LOCK_SHARDS,
};
use std::sync::Arc;
use std::time::Duration;

/// The stable devices backing a repository. Clone-shared: keep a copy to
/// crash and reopen the "same disks" in tests and simulations.
///
/// One WAL device exists per possible log partition
/// ([`MAX_WAL_PARTITIONS`]); a repository opened with `wal_partitions = N`
/// uses the first `N`. The legacy `wal` field aliases `wals[0]` (SimDisk
/// clones share state), so single-log code keeps working unchanged.
#[derive(Debug, Clone)]
pub struct RepoDisks {
    /// Write-ahead log device of partition 0 (aliases `wals[0]`).
    pub wal: SimDisk,
    /// Per-partition write-ahead log devices.
    pub wals: Vec<SimDisk>,
    /// Checkpoint device.
    pub ckpt: SimDisk,
    /// Two-phase-commit coordinator log device.
    pub coord: SimDisk,
}

impl Default for RepoDisks {
    fn default() -> Self {
        let wals: Vec<SimDisk> = (0..MAX_WAL_PARTITIONS).map(|_| SimDisk::new()).collect();
        RepoDisks {
            wal: wals[0].clone(),
            wals,
            ckpt: SimDisk::new(),
            coord: SimDisk::new(),
        }
    }
}

impl RepoDisks {
    /// Fresh, empty devices.
    pub fn new() -> Self {
        Self::default()
    }

    /// Crash all devices (unsynced bytes lost).
    pub fn crash(&self) {
        self.crash_with(None);
    }

    /// Crash all devices; with `Some(mode)` every WAL device additionally
    /// keeps a torn (corrupt) tail of its unsynced bytes, so recovery must
    /// reject the partial frames. The checkpoint and coordinator devices
    /// only ever take whole-contents swaps or forced appends, so a torn
    /// tail there models nothing the protocol can see — they always drop
    /// volatile cleanly.
    pub fn crash_with(&self, torn: Option<TornWriteMode>) {
        self.crash_torn_logs(torn, 0);
    }

    /// Crash all devices, tearing only the WAL partitions selected by
    /// `mask` (bit *i* = log *i*; `0` = all of them — the [`Self::crash_with`]
    /// behaviour). Unselected logs drop their volatile bytes cleanly, which
    /// models per-device torn writes: each log is its own platter, so a
    /// power cut can tear some logs' in-flight frames and not others'.
    pub fn crash_torn_logs(&self, torn: Option<TornWriteMode>, mask: u8) {
        for (i, w) in self.wals.iter().enumerate() {
            let selected = mask == 0 || (i < u8::BITS as usize && mask & (1 << i) != 0);
            match torn {
                Some(mode) if selected => w.crash_torn(mode),
                _ => w.crash(CrashStyle::DropVolatile),
            }
        }
        self.ckpt.crash(CrashStyle::DropVolatile);
        self.coord.crash(CrashStyle::DropVolatile);
    }
}

/// Tuning knobs for [`Repository::open_with`]. `Default` is what
/// [`Repository::open`] uses; `shards: 1` restores the pre-striping
/// single-mutex coordination layer (the E18 baseline).
#[derive(Debug, Clone)]
pub struct RepoOptions {
    /// Stripe count for the lock table and the pending-transaction map.
    pub shards: usize,
    /// Durable-store options (group commit, sync policy).
    pub kv: KvOptions,
    /// When set, wrap each WAL device in a [`LatencyDisk`] charging this
    /// much per force — models real storage devices for contention
    /// experiments. With several partitions each log gets its *own* latency
    /// wrapper, so forces on different logs proceed in parallel.
    pub wal_sync_latency: Option<Duration>,
    /// Number of per-shard WAL partitions (clamped to
    /// `1..=`[`MAX_WAL_PARTITIONS`]). `1` is the exact single-log baseline.
    pub wal_partitions: usize,
    /// Route skip-locked dequeues through the flat-combining front end
    /// (DESIGN.md §24): one combiner drains the ready index per round and
    /// hands disjoint candidates to every concurrent dequeuer. `false` is
    /// the per-queue-mutex baseline E20 measures against.
    pub dequeue_combining: bool,
}

impl Default for RepoOptions {
    fn default() -> Self {
        RepoOptions {
            shards: DEFAULT_LOCK_SHARDS,
            kv: KvOptions::default(),
            wal_sync_latency: None,
            wal_partitions: 1,
            dequeue_combining: false,
        }
    }
}

/// An open repository.
pub struct Repository {
    name: String,
    qm: Arc<QueueManager>,
    tm: TxnManager,
    store: Arc<KvStore>,
    disks: RepoDisks,
}

impl Repository {
    /// Open (or recover) the repository on `disks` with default options.
    pub fn open(name: impl Into<String>, disks: RepoDisks) -> QmResult<(Self, RecoveryReport)> {
        Self::open_with(name, disks, RepoOptions::default())
    }

    /// Open (or recover) the repository on `disks` with explicit tuning.
    pub fn open_with(
        name: impl Into<String>,
        disks: RepoDisks,
        opts: RepoOptions,
    ) -> QmResult<(Self, RecoveryReport)> {
        let name = name.into();
        let partitions = opts.wal_partitions.clamp(1, MAX_WAL_PARTITIONS);
        let wals: Vec<Arc<dyn Disk>> = disks
            .wals
            .iter()
            .take(partitions)
            .map(|d| match opts.wal_sync_latency {
                Some(cost) => {
                    Arc::new(LatencyDisk::new(Arc::new(d.clone()), cost)) as Arc<dyn Disk>
                }
                None => Arc::new(d.clone()) as Arc<dyn Disk>,
            })
            .collect();
        let (store, report) =
            KvStore::open_partitioned(wals, Arc::new(disks.ckpt.clone()), opts.kv)?;

        // Volatile queues: a brand-new in-memory store each incarnation.
        let (volatile, _) = KvStore::open(
            Arc::new(SimDisk::new()),
            Arc::new(SimDisk::new()),
            KvOptions {
                sync_on_commit: false,
                ..KvOptions::default()
            },
        )?;

        let locks = Arc::new(LockManager::with_shards(opts.shards));
        let coord = CoordinatorLog::new(Arc::new(disks.coord.clone()));
        let tm = TxnManager::new(Arc::clone(&locks), Some(coord), 1);

        // Resolve in-doubt transactions left by a crash between 2PC phases.
        if !report.in_doubt.is_empty() {
            let rm = KvResource::new(format!("{name}/store"), Arc::clone(&store));
            tm.resolve_in_doubt(&rm, &report.in_doubt)?;
        }

        let qm = QueueManager::with_shards(
            format!("qm/{name}"),
            Arc::clone(&store),
            volatile,
            locks,
            opts.shards,
        )?;
        qm.set_dequeue_combining(opts.dequeue_combining);

        Ok((
            Repository {
                name,
                qm,
                tm,
                store,
                disks,
            },
            report,
        ))
    }

    /// Open on fresh devices.
    pub fn create(name: impl Into<String>) -> QmResult<Self> {
        let (repo, _) = Self::open(name, RepoDisks::new())?;
        Ok(repo)
    }

    /// Repository name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The queue manager.
    pub fn qm(&self) -> &Arc<QueueManager> {
        &self.qm
    }

    /// The transaction manager.
    pub fn tm(&self) -> &TxnManager {
        &self.tm
    }

    /// The durable store (application tables can live here too).
    pub fn store(&self) -> &Arc<KvStore> {
        &self.store
    }

    /// The backing devices (crash injection, reopening).
    pub fn disks(&self) -> &RepoDisks {
        &self.disks
    }

    /// Begin a transaction with the queue manager already enlisted.
    pub fn begin(&self) -> QmResult<Txn> {
        let mut txn = self.tm.begin();
        let rm: Arc<dyn ResourceManager> = Arc::clone(&self.qm) as _;
        txn.enlist(rm)?;
        Ok(txn)
    }

    /// Run `f` inside a transaction and commit; abort on error.
    pub fn autocommit<R>(&self, f: impl FnOnce(&Txn) -> QmResult<R>) -> QmResult<R> {
        let txn = self.begin()?;
        match f(&txn) {
            Ok(r) => {
                txn.commit()?;
                Ok(r)
            }
            Err(e) => {
                let _ = txn.abort();
                Err(e)
            }
        }
    }

    /// Create a queue with default settings, returning its metadata.
    pub fn create_queue_defaults(&self, name: &str) -> QmResult<QueueMeta> {
        let meta = QueueMeta::with_defaults(name);
        match self.qm.create_queue(meta.clone()) {
            Ok(()) => Ok(meta),
            Err(QmError::QueueExists(_)) => self.qm.queue_meta(name),
            Err(e) => Err(e),
        }
    }

    /// Checkpoint the durable store (bounds recovery time).
    pub fn checkpoint(&self) -> QmResult<()> {
        Ok(self.store.checkpoint()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{DequeueOptions, EnqueueOptions};

    #[test]
    fn create_and_reopen_preserves_queues() {
        let disks = RepoDisks::new();
        {
            let (repo, _) = Repository::open("r1", disks.clone()).unwrap();
            repo.create_queue_defaults("req").unwrap();
            let (h, _) = repo.qm().register("req", "c1", true).unwrap();
            repo.autocommit(|t| {
                repo.qm()
                    .enqueue(t.id().raw(), &h, b"hello", EnqueueOptions::default())
            })
            .unwrap();
        }
        disks.crash();
        let (repo2, _) = Repository::open("r1", disks).unwrap();
        assert_eq!(repo2.qm().depth("req").unwrap(), 1);
        let (h, _) = repo2.qm().register("req", "s1", false).unwrap();
        let e = repo2
            .autocommit(|t| {
                repo2
                    .qm()
                    .dequeue(t.id().raw(), &h, DequeueOptions::default())
            })
            .unwrap();
        assert_eq!(e.payload, b"hello");
    }

    #[test]
    fn autocommit_aborts_on_error() {
        let repo = Repository::create("r2").unwrap();
        repo.create_queue_defaults("q").unwrap();
        let (h, _) = repo.qm().register("q", "c", false).unwrap();
        let r: QmResult<()> = repo.autocommit(|t| {
            repo.qm()
                .enqueue(t.id().raw(), &h, b"x", EnqueueOptions::default())?;
            Err(QmError::Invalid("boom".into()))
        });
        assert!(r.is_err());
        assert_eq!(repo.qm().depth("q").unwrap(), 0);
    }

    #[test]
    fn volatile_queue_empty_after_reopen() {
        let disks = RepoDisks::new();
        {
            let (repo, _) = Repository::open("r3", disks.clone()).unwrap();
            let mut meta = QueueMeta::with_defaults("vol");
            meta.durable = false;
            repo.qm().create_queue(meta).unwrap();
            let (h, _) = repo.qm().register("vol", "c", false).unwrap();
            repo.autocommit(|t| {
                repo.qm()
                    .enqueue(t.id().raw(), &h, b"gone", EnqueueOptions::default())
            })
            .unwrap();
            assert_eq!(repo.qm().depth("vol").unwrap(), 1);
        }
        disks.crash();
        let (repo2, _) = Repository::open("r3", disks).unwrap();
        // The queue still exists (metadata is durable) but is empty.
        assert_eq!(repo2.qm().depth("vol").unwrap(), 0);
    }

    #[test]
    fn shards_one_baseline_still_works_end_to_end() {
        let disks = RepoDisks::new();
        let opts = RepoOptions {
            shards: 1,
            ..RepoOptions::default()
        };
        let (repo, _) = Repository::open_with("r5", disks.clone(), opts.clone()).unwrap();
        repo.create_queue_defaults("q").unwrap();
        let (h, _) = repo.qm().register("q", "c", true).unwrap();
        repo.autocommit(|t| {
            repo.qm()
                .enqueue(t.id().raw(), &h, b"one", EnqueueOptions::default())
        })
        .unwrap();
        drop(repo);
        disks.crash();
        let (repo2, _) = Repository::open_with("r5", disks, opts).unwrap();
        assert_eq!(repo2.qm().depth("q").unwrap(), 1);
        let (h, _) = repo2.qm().register("q", "s", false).unwrap();
        let e = repo2
            .autocommit(|t| {
                repo2
                    .qm()
                    .dequeue(t.id().raw(), &h, DequeueOptions::default())
            })
            .unwrap();
        assert_eq!(e.payload, b"one");
    }

    #[test]
    fn epoch_increases_across_opens() {
        let disks = RepoDisks::new();
        let e1 = {
            let (repo, _) = Repository::open("r4", disks.clone()).unwrap();
            repo.qm().epoch()
        };
        let (repo2, _) = Repository::open("r4", disks).unwrap();
        assert!(repo2.qm().epoch() > e1);
    }
}
