//! A queue repository: "a set of queues … Each repository has a system- (or
//! network-) wide unique name" (§4.1), bundled with the node-local
//! transaction machinery and its recovery path.
//!
//! [`Repository::open`] is the restart entry point: it recovers the durable
//! store from checkpoint + log, resolves in-doubt two-phase-commit
//! participants against the coordinator log, re-creates the volatile store
//! empty (volatile queues lose their contents on a node failure, §10), and
//! hands back a ready [`QueueManager`] + [`TxnManager`] pair.
//!
//! With `RepoOptions { repo_partitions: N > 1 }` the repository becomes a
//! shared-nothing *cluster* of N partitions (DESIGN.md S25): each partition
//! owns the queues [`crate::route::partition_of`] hashes to it and runs its
//! own durable store (own WAL group + checkpoint device), queue manager,
//! and lock manager. Only two pieces are shared, both append-only: the 2PC
//! coordinator log (one decision record covers every partition a
//! transaction touched) and the transaction-id generator (ids key lock
//! tables and store tokens, so they must be cluster-unique). A transaction
//! homed on one partition that never touches another partition's queues is
//! the paper's common case and pays zero cross-partition coordination; one
//! that does touch a sibling enlists it as a second resource manager and
//! commits through the existing logged two-phase protocol in `rrq-txn`.

use crate::error::{QmError, QmResult};
use crate::meta::QueueMeta;
use crate::ops::QueueManager;
use crate::route::{partition_of, MAX_REPO_PARTITIONS};
use rrq_storage::disk::{CrashStyle, Disk, LatencyDisk, SimDisk, TornWriteMode};
use rrq_storage::kv::{KvOptions, KvStore, MAX_WAL_PARTITIONS};
use rrq_storage::recovery::RecoveryReport;
use rrq_txn::{
    CoordinatorLog, KvResource, LockManager, ResourceManager, Txn, TxnId, TxnIdGen, TxnManager,
    TxnResult, DEFAULT_LOCK_SHARDS,
};
use std::sync::Arc;
use std::time::Duration;

/// The stable devices backing a repository. Clone-shared: keep a copy to
/// crash and reopen the "same disks" in tests and simulations.
///
/// Devices come in [`MAX_REPO_PARTITIONS`] groups — one per possible
/// repository partition, each with [`MAX_WAL_PARTITIONS`] WAL devices and a
/// checkpoint device; a repository opened with `repo_partitions = P,
/// wal_partitions = N` uses the first `N` WALs of the first `P` groups. The
/// legacy fields alias group 0 (SimDisk clones share state), so single-
/// partition code keeps working unchanged. The coordinator log is a single
/// shared device: it is the one piece of 2PC state every partition's
/// recovery consults.
#[derive(Debug, Clone)]
pub struct RepoDisks {
    /// Write-ahead log device of partition 0's log 0 (aliases
    /// `wal_groups[0][0]`).
    pub wal: SimDisk,
    /// Partition 0's write-ahead log devices (aliases `wal_groups[0]`).
    pub wals: Vec<SimDisk>,
    /// Partition 0's checkpoint device (aliases `ckpts[0]`).
    pub ckpt: SimDisk,
    /// Two-phase-commit coordinator log device (cluster-shared).
    pub coord: SimDisk,
    /// Per-repository-partition WAL device groups.
    pub wal_groups: Vec<Vec<SimDisk>>,
    /// Per-repository-partition checkpoint devices.
    pub ckpts: Vec<SimDisk>,
}

impl Default for RepoDisks {
    fn default() -> Self {
        let wal_groups: Vec<Vec<SimDisk>> = (0..MAX_REPO_PARTITIONS)
            .map(|_| (0..MAX_WAL_PARTITIONS).map(|_| SimDisk::new()).collect())
            .collect();
        let ckpts: Vec<SimDisk> = (0..MAX_REPO_PARTITIONS).map(|_| SimDisk::new()).collect();
        RepoDisks {
            wal: wal_groups[0][0].clone(),
            wals: wal_groups[0].clone(),
            ckpt: ckpts[0].clone(),
            coord: SimDisk::new(),
            wal_groups,
            ckpts,
        }
    }
}

impl RepoDisks {
    /// Fresh, empty devices.
    pub fn new() -> Self {
        Self::default()
    }

    /// Crash all devices (unsynced bytes lost).
    pub fn crash(&self) {
        self.crash_with(None);
    }

    /// Crash all devices; with `Some(mode)` every WAL device additionally
    /// keeps a torn (corrupt) tail of its unsynced bytes, so recovery must
    /// reject the partial frames. The checkpoint and coordinator devices
    /// only ever take whole-contents swaps or forced appends, so a torn
    /// tail there models nothing the protocol can see — they always drop
    /// volatile cleanly.
    pub fn crash_with(&self, torn: Option<TornWriteMode>) {
        self.crash_torn_logs(torn, 0);
    }

    /// Crash all devices, tearing only the WAL log indexes selected by
    /// `mask` (bit *i* = log *i* of every partition group; `0` = all of
    /// them — the [`Self::crash_with`] behaviour). Unselected logs drop
    /// their volatile bytes cleanly, which models per-device torn writes:
    /// each log is its own platter, so a power cut can tear some logs'
    /// in-flight frames and not others'.
    pub fn crash_torn_logs(&self, torn: Option<TornWriteMode>, mask: u8) {
        for group in &self.wal_groups {
            crash_group(group, torn, mask);
        }
        for c in &self.ckpts {
            c.crash(CrashStyle::DropVolatile);
        }
        self.coord.crash(CrashStyle::DropVolatile);
    }

    /// Crash only repository partition `part`'s devices (its WAL group and
    /// checkpoint device), leaving every sibling partition's devices — and
    /// the shared coordinator log — untouched. This is the partition-scoped
    /// failure of a shared-nothing cluster: one node loses power while the
    /// rest keep their state. `torn`/`mask` follow
    /// [`Self::crash_torn_logs`], scoped to the one group.
    pub fn crash_partition(&self, part: usize, torn: Option<TornWriteMode>, mask: u8) {
        let part = part % self.wal_groups.len().max(1);
        crash_group(&self.wal_groups[part], torn, mask);
        self.ckpts[part].crash(CrashStyle::DropVolatile);
    }
}

fn crash_group(group: &[SimDisk], torn: Option<TornWriteMode>, mask: u8) {
    for (i, w) in group.iter().enumerate() {
        let selected = mask == 0 || (i < u8::BITS as usize && mask & (1 << i) != 0);
        match torn {
            Some(mode) if selected => w.crash_torn(mode),
            _ => w.crash(CrashStyle::DropVolatile),
        }
    }
}

/// How servers execute requests against this repository.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// The untouched 2PL baseline: every server transaction takes element
    /// and application locks through the striped lock manager, and each
    /// commit is its own durability point.
    #[default]
    Locked,
    /// Deterministic planned execution (DESIGN.md §26): requests are
    /// batched into epochs, a plan phase partitions each batch into
    /// per-key access queues in priority order, and the execute phase runs
    /// them lock-free — transactions commit speculatively (visible at
    /// once, durable at the epoch force) and the queue index applies in
    /// one batch at epoch close. Requires `dequeue_combining: false`; the
    /// planner replaces the dispenser as the dequeue arbiter.
    Planned,
}

/// Tuning knobs for [`Repository::open_with`]. `Default` is what
/// [`Repository::open`] uses; `shards: 1` restores the pre-striping
/// single-mutex coordination layer (the E18 baseline).
#[derive(Debug, Clone)]
pub struct RepoOptions {
    /// Stripe count for the lock table and the pending-transaction map.
    pub shards: usize,
    /// Durable-store options (group commit, sync policy).
    pub kv: KvOptions,
    /// When set, wrap each WAL device in a [`LatencyDisk`] charging this
    /// much per force — models real storage devices for contention
    /// experiments. With several partitions each log gets its *own* latency
    /// wrapper, so forces on different logs proceed in parallel.
    pub wal_sync_latency: Option<Duration>,
    /// Number of per-shard WAL partitions (clamped to
    /// `1..=`[`MAX_WAL_PARTITIONS`]). `1` is the exact single-log baseline.
    pub wal_partitions: usize,
    /// Route skip-locked dequeues through the flat-combining front end
    /// (DESIGN.md §24): one combiner drains the ready index per round and
    /// hands disjoint candidates to every concurrent dequeuer. `false` is
    /// the per-queue-mutex baseline E20 measures against.
    pub dequeue_combining: bool,
    /// Number of shared-nothing repository partitions (clamped to
    /// `1..=`[`MAX_REPO_PARTITIONS`]). Each owns the queues that hash to it
    /// plus its own store, WAL group, and lock manager; `1` is the exact
    /// single-repository baseline.
    pub repo_partitions: usize,
    /// Request execution mode. [`ExecMode::Locked`] (the default) is the
    /// exact 2PL baseline; [`ExecMode::Planned`] enables the epoch
    /// planner's lock-free path and is rejected when combined with
    /// `dequeue_combining` (both arbitrate dequeue candidates).
    pub exec_mode: ExecMode,
}

impl Default for RepoOptions {
    fn default() -> Self {
        RepoOptions {
            shards: DEFAULT_LOCK_SHARDS,
            kv: KvOptions::default(),
            wal_sync_latency: None,
            wal_partitions: 1,
            dequeue_combining: false,
            repo_partitions: 1,
            exec_mode: ExecMode::default(),
        }
    }
}

/// One shared-nothing partition: a durable store, its queue manager, and
/// the transaction manager wired to the partition's own lock manager (plus
/// the cluster-shared coordinator log and id generator).
struct RepoPartition {
    qm: Arc<QueueManager>,
    tm: TxnManager,
    store: Arc<KvStore>,
}

/// A cross-partition participant: wraps a *sibling* partition's queue
/// manager so locks taken there under the transaction's id are released on
/// that partition's own lock manager at commit/abort. ([`Txn`] only releases
/// locks on its home manager; without this wrapper a cross-partition
/// enqueue would leak its element locks forever.)
struct SiblingRm {
    qm: Arc<QueueManager>,
    locks: Arc<LockManager>,
}

impl ResourceManager for SiblingRm {
    fn name(&self) -> &str {
        self.qm.qm_name()
    }

    fn begin(&self, txn: TxnId) -> TxnResult<()> {
        ResourceManager::begin(&*self.qm, txn)
    }

    fn prepare(&self, txn: TxnId) -> TxnResult<()> {
        ResourceManager::prepare(&*self.qm, txn)
    }

    fn commit(&self, txn: TxnId) -> TxnResult<()> {
        let r = ResourceManager::commit(&*self.qm, txn);
        // 2PL release point for the sibling's locks: the commit decision is
        // already durable in the shared coordinator log by the time the
        // commit phase runs, and on failure the transaction aborts below.
        self.locks.unlock_all(txn.raw());
        r
    }

    fn abort(&self, txn: TxnId) -> TxnResult<()> {
        let r = ResourceManager::abort(&*self.qm, txn);
        self.locks.unlock_all(txn.raw());
        r
    }
}

/// An open repository (a cluster of 1..=[`MAX_REPO_PARTITIONS`] shared-
/// nothing partitions; see the module docs).
pub struct Repository {
    name: String,
    parts: Vec<RepoPartition>,
    disks: RepoDisks,
    exec_mode: ExecMode,
}

impl Repository {
    /// Open (or recover) the repository on `disks` with default options.
    pub fn open(name: impl Into<String>, disks: RepoDisks) -> QmResult<(Self, RecoveryReport)> {
        Self::open_with(name, disks, RepoOptions::default())
    }

    /// Open (or recover) the repository on `disks` with explicit tuning.
    ///
    /// Partitions recover independently (each replays only its own WAL
    /// group), then resolve their in-doubt transactions against the shared
    /// coordinator log — so a cross-partition transaction prepared
    /// everywhere but only decided in the coordinator log commits on every
    /// partition, and one never decided aborts on every partition
    /// (presumed abort). The returned report aggregates all partitions.
    pub fn open_with(
        name: impl Into<String>,
        disks: RepoDisks,
        opts: RepoOptions,
    ) -> QmResult<(Self, RecoveryReport)> {
        let name = name.into();
        let wal_partitions = opts.wal_partitions.clamp(1, MAX_WAL_PARTITIONS);
        let repo_partitions = opts.repo_partitions.clamp(1, MAX_REPO_PARTITIONS);

        // The flat-combining dispenser and the epoch planner are both
        // dequeue-candidate arbiters; planned execution bypasses the
        // dispenser entirely, so composing them would silently disable one.
        // Reject the combination up front (DESIGN.md §26).
        if opts.dequeue_combining && opts.exec_mode == ExecMode::Planned {
            return Err(QmError::IncompatibleOptions(
                "dequeue_combining cannot be used with ExecMode::Planned \
                 (the epoch plan, not the dispenser, arbitrates dequeues)"
                    .into(),
            ));
        }

        // A planned transaction defers its home partition's WAL force to the
        // epoch close, but a sibling partition enlisted for a cross-partition
        // reply commits (and syncs) immediately — a crash inside the commit
        // window would then leave a durable reply for a dequeue that never
        // happened, breaking exactly-once. Until the epoch force spans every
        // enlisted partition, planned execution is single-partition only.
        if repo_partitions > 1 && opts.exec_mode == ExecMode::Planned {
            return Err(QmError::IncompatibleOptions(
                "repo_partitions > 1 cannot be used with ExecMode::Planned \
                 (the epoch durability point covers only the home partition)"
                    .into(),
            ));
        }

        // Cluster-shared pieces: one decision log, one id space.
        let coord = Arc::new(CoordinatorLog::new(Arc::new(disks.coord.clone())));
        let ids = Arc::new(TxnIdGen::new(1));

        let mut parts = Vec::with_capacity(repo_partitions);
        for p in 0..repo_partitions {
            let wals: Vec<Arc<dyn Disk>> = disks.wal_groups[p]
                .iter()
                .take(wal_partitions)
                .map(|d| match opts.wal_sync_latency {
                    Some(cost) => {
                        Arc::new(LatencyDisk::new(Arc::new(d.clone()), cost)) as Arc<dyn Disk>
                    }
                    None => Arc::new(d.clone()) as Arc<dyn Disk>,
                })
                .collect();
            let (store, report) =
                KvStore::open_partitioned(wals, Arc::new(disks.ckpts[p].clone()), opts.kv)?;

            // Volatile queues: a brand-new in-memory store each incarnation.
            let (volatile, _) = KvStore::open(
                Arc::new(SimDisk::new()),
                Arc::new(SimDisk::new()),
                KvOptions {
                    sync_on_commit: false,
                    ..KvOptions::default()
                },
            )?;

            let locks = Arc::new(LockManager::with_shards(opts.shards));
            let tm =
                TxnManager::with_shared(Arc::clone(&locks), Some(Arc::clone(&coord)), ids.clone());

            // Resolve in-doubt transactions left by a crash between 2PC
            // phases.
            if !report.in_doubt.is_empty() {
                let rm_name = match p {
                    0 => format!("{name}/store"),
                    p => format!("{name}/p{p}/store"),
                };
                let rm = KvResource::new(rm_name, Arc::clone(&store));
                tm.resolve_in_doubt(&rm, &report.in_doubt)?;
            }

            let qm_name = match p {
                0 => format!("qm/{name}"),
                p => format!("qm/{name}/p{p}"),
            };
            let qm = QueueManager::with_shards_base(
                qm_name,
                Arc::clone(&store),
                volatile,
                locks,
                opts.shards,
                crate::route::epoch_band_base(p),
            )?;
            qm.set_dequeue_combining(opts.dequeue_combining);
            parts.push((RepoPartition { qm, tm, store }, report));
        }

        let report = parts
            .iter()
            .fold(RecoveryReport::default(), |mut acc, (_, r)| {
                acc.replayed += r.replayed;
                acc.committed_txns += r.committed_txns;
                acc.aborted_txns += r.aborted_txns;
                acc.in_doubt.extend_from_slice(&r.in_doubt);
                acc
            });
        let parts: Vec<RepoPartition> = parts.into_iter().map(|(p, _)| p).collect();

        Ok((
            Repository {
                name,
                parts,
                disks,
                exec_mode: opts.exec_mode,
            },
            report,
        ))
    }

    /// Open on fresh devices.
    pub fn create(name: impl Into<String>) -> QmResult<Self> {
        let (repo, _) = Self::open(name, RepoDisks::new())?;
        Ok(repo)
    }

    /// Repository name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of shared-nothing partitions in this cluster.
    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    /// The execution mode this repository was opened with.
    pub fn exec_mode(&self) -> ExecMode {
        self.exec_mode
    }

    /// The partition that owns `queue`.
    pub fn partition_of(&self, queue: &str) -> usize {
        partition_of(queue, self.parts.len())
    }

    /// Partition 0's queue manager — with `repo_partitions = 1` (the
    /// default) this is *the* queue manager, exactly as before.
    pub fn qm(&self) -> &Arc<QueueManager> {
        &self.parts[0].qm
    }

    /// Partition 0's transaction manager.
    pub fn tm(&self) -> &TxnManager {
        &self.parts[0].tm
    }

    /// Partition 0's durable store (application tables can live here too).
    pub fn store(&self) -> &Arc<KvStore> {
        &self.parts[0].store
    }

    /// Queue manager of partition `p` (clamped).
    pub fn qm_at(&self, p: usize) -> &Arc<QueueManager> {
        &self.parts[p % self.parts.len()].qm
    }

    /// Transaction manager of partition `p` (clamped).
    pub fn tm_at(&self, p: usize) -> &TxnManager {
        &self.parts[p % self.parts.len()].tm
    }

    /// Durable store of partition `p` (clamped).
    pub fn store_at(&self, p: usize) -> &Arc<KvStore> {
        &self.parts[p % self.parts.len()].store
    }

    /// Queue manager owning `queue`.
    pub fn qm_for(&self, queue: &str) -> &Arc<QueueManager> {
        &self.parts[self.partition_of(queue)].qm
    }

    /// Durable store of the partition owning `queue` (application state
    /// lives co-located with the queue that drives it).
    pub fn store_for(&self, queue: &str) -> &Arc<KvStore> {
        &self.parts[self.partition_of(queue)].store
    }

    /// The backing devices (crash injection, reopening).
    pub fn disks(&self) -> &RepoDisks {
        &self.disks
    }

    /// Begin a transaction homed on partition 0 with its queue manager
    /// already enlisted — the single-partition baseline entry point.
    pub fn begin(&self) -> QmResult<Txn> {
        self.begin_on_part(0)
    }

    /// Begin a transaction homed on partition `p`: its lock manager serves
    /// the transaction's lock calls and its queue manager is enlisted.
    pub fn begin_on_part(&self, p: usize) -> QmResult<Txn> {
        let part = &self.parts[p % self.parts.len()];
        let txn = part.tm.begin();
        let rm: Arc<dyn ResourceManager> = Arc::clone(&part.qm) as _;
        txn.enlist(rm)?;
        Ok(txn)
    }

    /// Begin a transaction homed on the partition owning `queue`; returns
    /// the transaction and its home partition index.
    pub fn begin_on(&self, queue: &str) -> QmResult<(Txn, usize)> {
        let p = self.partition_of(queue);
        Ok((self.begin_on_part(p)?, p))
    }

    /// Make `queue`'s owning partition a participant of `txn` (no-op when
    /// `queue` is already home — the caller's own partition). Returns the
    /// owning partition's queue manager, ready for operations under
    /// `txn`'s id. A cross-partition enlistment upgrades the eventual
    /// commit to the logged two-phase protocol.
    pub fn enlist_queue(
        &self,
        txn: &Txn,
        home: usize,
        queue: &str,
    ) -> QmResult<&Arc<QueueManager>> {
        let p = self.partition_of(queue);
        if p == home % self.parts.len() {
            return Ok(&self.parts[p].qm);
        }
        rrq_obs::counter_inc("route.xpart.enlists");
        let part = &self.parts[p];
        let rm: Arc<dyn ResourceManager> = Arc::new(SiblingRm {
            qm: Arc::clone(&part.qm),
            locks: Arc::clone(part.tm.locks()),
        });
        txn.enlist(rm)?;
        Ok(&part.qm)
    }

    /// Run `f` inside a partition-0-homed transaction and commit; abort on
    /// error.
    pub fn autocommit<R>(&self, f: impl FnOnce(&Txn) -> QmResult<R>) -> QmResult<R> {
        self.autocommit_on_part(0, f)
    }

    /// [`Self::autocommit`] homed on the partition owning `queue`.
    pub fn autocommit_on<R>(
        &self,
        queue: &str,
        f: impl FnOnce(&Txn) -> QmResult<R>,
    ) -> QmResult<R> {
        self.autocommit_on_part(self.partition_of(queue), f)
    }

    /// [`Self::autocommit`] homed on partition `p`.
    pub fn autocommit_on_part<R>(
        &self,
        p: usize,
        f: impl FnOnce(&Txn) -> QmResult<R>,
    ) -> QmResult<R> {
        let txn = self.begin_on_part(p)?;
        match f(&txn) {
            Ok(r) => {
                txn.commit()?;
                Ok(r)
            }
            Err(e) => {
                let _ = txn.abort();
                Err(e)
            }
        }
    }

    /// Create a queue with default settings on its owning partition,
    /// returning its metadata.
    pub fn create_queue_defaults(&self, name: &str) -> QmResult<QueueMeta> {
        let meta = QueueMeta::with_defaults(name);
        let qm = self.qm_for(name);
        match qm.create_queue(meta.clone()) {
            Ok(()) => Ok(meta),
            Err(QmError::QueueExists(_)) => qm.queue_meta(name),
            Err(e) => Err(e),
        }
    }

    /// Checkpoint every partition's durable store (bounds recovery time).
    pub fn checkpoint(&self) -> QmResult<()> {
        for part in &self.parts {
            part.store.checkpoint()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{DequeueOptions, EnqueueOptions};

    #[test]
    fn create_and_reopen_preserves_queues() {
        let disks = RepoDisks::new();
        {
            let (repo, _) = Repository::open("r1", disks.clone()).unwrap();
            repo.create_queue_defaults("req").unwrap();
            let (h, _) = repo.qm().register("req", "c1", true).unwrap();
            repo.autocommit(|t| {
                repo.qm()
                    .enqueue(t.id().raw(), &h, b"hello", EnqueueOptions::default())
            })
            .unwrap();
        }
        disks.crash();
        let (repo2, _) = Repository::open("r1", disks).unwrap();
        assert_eq!(repo2.qm().depth("req").unwrap(), 1);
        let (h, _) = repo2.qm().register("req", "s1", false).unwrap();
        let e = repo2
            .autocommit(|t| {
                repo2
                    .qm()
                    .dequeue(t.id().raw(), &h, DequeueOptions::default())
            })
            .unwrap();
        assert_eq!(e.payload, b"hello");
    }

    #[test]
    fn autocommit_aborts_on_error() {
        let repo = Repository::create("r2").unwrap();
        repo.create_queue_defaults("q").unwrap();
        let (h, _) = repo.qm().register("q", "c", false).unwrap();
        let r: QmResult<()> = repo.autocommit(|t| {
            repo.qm()
                .enqueue(t.id().raw(), &h, b"x", EnqueueOptions::default())?;
            Err(QmError::Invalid("boom".into()))
        });
        assert!(r.is_err());
        assert_eq!(repo.qm().depth("q").unwrap(), 0);
    }

    #[test]
    fn volatile_queue_empty_after_reopen() {
        let disks = RepoDisks::new();
        {
            let (repo, _) = Repository::open("r3", disks.clone()).unwrap();
            let mut meta = QueueMeta::with_defaults("vol");
            meta.durable = false;
            repo.qm().create_queue(meta).unwrap();
            let (h, _) = repo.qm().register("vol", "c", false).unwrap();
            repo.autocommit(|t| {
                repo.qm()
                    .enqueue(t.id().raw(), &h, b"gone", EnqueueOptions::default())
            })
            .unwrap();
            assert_eq!(repo.qm().depth("vol").unwrap(), 1);
        }
        disks.crash();
        let (repo2, _) = Repository::open("r3", disks).unwrap();
        // The queue still exists (metadata is durable) but is empty.
        assert_eq!(repo2.qm().depth("vol").unwrap(), 0);
    }

    #[test]
    fn shards_one_baseline_still_works_end_to_end() {
        let disks = RepoDisks::new();
        let opts = RepoOptions {
            shards: 1,
            ..RepoOptions::default()
        };
        let (repo, _) = Repository::open_with("r5", disks.clone(), opts.clone()).unwrap();
        repo.create_queue_defaults("q").unwrap();
        let (h, _) = repo.qm().register("q", "c", true).unwrap();
        repo.autocommit(|t| {
            repo.qm()
                .enqueue(t.id().raw(), &h, b"one", EnqueueOptions::default())
        })
        .unwrap();
        drop(repo);
        disks.crash();
        let (repo2, _) = Repository::open_with("r5", disks, opts).unwrap();
        assert_eq!(repo2.qm().depth("q").unwrap(), 1);
        let (h, _) = repo2.qm().register("q", "s", false).unwrap();
        let e = repo2
            .autocommit(|t| {
                repo2
                    .qm()
                    .dequeue(t.id().raw(), &h, DequeueOptions::default())
            })
            .unwrap();
        assert_eq!(e.payload, b"one");
    }

    #[test]
    fn epoch_increases_across_opens() {
        let disks = RepoDisks::new();
        let e1 = {
            let (repo, _) = Repository::open("r4", disks.clone()).unwrap();
            repo.qm().epoch()
        };
        let (repo2, _) = Repository::open("r4", disks).unwrap();
        assert!(repo2.qm().epoch() > e1);
    }

    fn partitioned(name: &str, disks: RepoDisks, n: usize) -> Repository {
        let (repo, _) = Repository::open_with(
            name,
            disks,
            RepoOptions {
                repo_partitions: n,
                ..RepoOptions::default()
            },
        )
        .unwrap();
        repo
    }

    #[test]
    fn partitioned_local_roundtrip_on_every_partition() {
        let repo = partitioned("pr1", RepoDisks::new(), 4);
        for i in 0..16 {
            let q = format!("q{i}");
            repo.create_queue_defaults(&q).unwrap();
            let (h, _) = repo.qm_for(&q).register(&q, "c", false).unwrap();
            repo.autocommit_on(&q, |t| {
                repo.qm_for(&q)
                    .enqueue(t.id().raw(), &h, q.as_bytes(), EnqueueOptions::default())
            })
            .unwrap();
            assert_eq!(repo.qm_for(&q).depth(&q).unwrap(), 1);
            let e = repo
                .autocommit_on(&q, |t| {
                    repo.qm_for(&q)
                        .dequeue(t.id().raw(), &h, DequeueOptions::default())
                })
                .unwrap();
            assert_eq!(e.payload, q.as_bytes());
        }
    }

    #[test]
    fn cross_partition_move_commits_atomically() {
        let repo = partitioned("pr2", RepoDisks::new(), 4);
        // Find two queues on different partitions.
        let (qa, qb) = two_queues_apart(&repo);
        repo.create_queue_defaults(&qa).unwrap();
        repo.create_queue_defaults(&qb).unwrap();
        let (ha, _) = repo.qm_for(&qa).register(&qa, "mv", false).unwrap();
        let (hb, _) = repo.qm_for(&qb).register(&qb, "mv", false).unwrap();
        repo.autocommit_on(&qa, |t| {
            repo.qm_for(&qa)
                .enqueue(t.id().raw(), &ha, b"m", EnqueueOptions::default())
        })
        .unwrap();

        // Move: dequeue from qa (home), enqueue to qb (sibling) — one txn.
        let (txn, home) = repo.begin_on(&qa).unwrap();
        let e = repo
            .qm_for(&qa)
            .dequeue(txn.id().raw(), &ha, DequeueOptions::default())
            .unwrap();
        let qm_b = repo.enlist_queue(&txn, home, &qb).unwrap();
        qm_b.enqueue(txn.id().raw(), &hb, &e.payload, EnqueueOptions::default())
            .unwrap();
        assert_eq!(txn.enlisted(), 2);
        txn.commit().unwrap();

        assert_eq!(repo.qm_for(&qa).depth(&qa).unwrap(), 0);
        assert_eq!(repo.qm_for(&qb).depth(&qb).unwrap(), 1);
        // Sibling locks released: another txn can take the element.
        let e2 = repo
            .autocommit_on(&qb, |t| {
                repo.qm_for(&qb)
                    .dequeue(t.id().raw(), &hb, DequeueOptions::default())
            })
            .unwrap();
        assert_eq!(e2.payload, b"m");
    }

    #[test]
    fn cross_partition_abort_undoes_both_sides() {
        let repo = partitioned("pr3", RepoDisks::new(), 4);
        let (qa, qb) = two_queues_apart(&repo);
        repo.create_queue_defaults(&qa).unwrap();
        repo.create_queue_defaults(&qb).unwrap();
        let (ha, _) = repo.qm_for(&qa).register(&qa, "mv", false).unwrap();
        let (hb, _) = repo.qm_for(&qb).register(&qb, "mv", false).unwrap();
        repo.autocommit_on(&qa, |t| {
            repo.qm_for(&qa)
                .enqueue(t.id().raw(), &ha, b"m", EnqueueOptions::default())
        })
        .unwrap();

        let (txn, home) = repo.begin_on(&qa).unwrap();
        repo.qm_for(&qa)
            .dequeue(txn.id().raw(), &ha, DequeueOptions::default())
            .unwrap();
        let qm_b = repo.enlist_queue(&txn, home, &qb).unwrap();
        qm_b.enqueue(txn.id().raw(), &hb, b"m", EnqueueOptions::default())
            .unwrap();
        txn.abort().unwrap();

        // The dequeue is undone (element back on qa) and the enqueue gone.
        assert_eq!(repo.qm_for(&qa).depth(&qa).unwrap(), 1);
        assert_eq!(repo.qm_for(&qb).depth(&qb).unwrap(), 0);
        // No leaked locks on the sibling: a fresh enqueue+dequeue works.
        let e = repo
            .autocommit_on(&qa, |t| {
                repo.qm_for(&qa)
                    .dequeue(t.id().raw(), &ha, DequeueOptions::default())
            })
            .unwrap();
        assert_eq!(e.payload, b"m");
    }

    #[test]
    fn partitioned_cluster_survives_full_crash() {
        let disks = RepoDisks::new();
        let (qa, qb);
        {
            let repo = partitioned("pr4", disks.clone(), 4);
            (qa, qb) = two_queues_apart(&repo);
            for q in [&qa, &qb] {
                repo.create_queue_defaults(q).unwrap();
                let (h, _) = repo.qm_for(q).register(q, "c", false).unwrap();
                repo.autocommit_on(q, |t| {
                    repo.qm_for(q).enqueue(
                        t.id().raw(),
                        &h,
                        q.as_bytes(),
                        EnqueueOptions::default(),
                    )
                })
                .unwrap();
            }
        }
        disks.crash();
        let repo2 = partitioned("pr4", disks, 4);
        for q in [&qa, &qb] {
            assert_eq!(repo2.qm_for(q).depth(q).unwrap(), 1, "queue {q}");
        }
    }

    #[test]
    fn eids_are_disjoint_across_partitions() {
        let repo = partitioned("pr5", RepoDisks::new(), 4);
        let (qa, qb) = two_queues_apart(&repo);
        let mut eids = Vec::new();
        for q in [&qa, &qb] {
            repo.create_queue_defaults(q).unwrap();
            let (h, _) = repo.qm_for(q).register(q, "c", false).unwrap();
            for _ in 0..8 {
                let eid = repo
                    .autocommit_on(q, |t| {
                        repo.qm_for(q)
                            .enqueue(t.id().raw(), &h, b"x", EnqueueOptions::default())
                    })
                    .unwrap();
                eids.push(eid.raw());
            }
        }
        let uniq: std::collections::HashSet<u64> = eids.iter().copied().collect();
        assert_eq!(uniq.len(), eids.len(), "eids collide across partitions");
    }

    /// Two queue names guaranteed to live on different partitions.
    fn two_queues_apart(repo: &Repository) -> (String, String) {
        let qa = "q0".to_string();
        let pa = repo.partition_of(&qa);
        for i in 1..64 {
            let qb = format!("q{i}");
            if repo.partition_of(&qb) != pa {
                return (qa, qb);
            }
        }
        panic!("no second partition found");
    }
}
