//! Key layout of the queue store.
//!
//! All queue state lives in one ordered key-value namespace per repository:
//!
//! | prefix | contents |
//! |--------|----------|
//! | `m/<queue>`                | [`crate::meta::QueueMeta`] |
//! | `e/<queue>/<ord>`          | live [`crate::element::Element`]s, ordered |
//! | `x/<eid-be>`               | eid → element key (live-element index) |
//! | `d/<eid-be>`               | retained (dequeued) elements, for `Read`/`Rereceive` |
//! | `k/<eid-be>`               | kill tombstones (§7 cancellation in flight) |
//! | `r/<queue>/<registrant>`   | [`crate::registration::Registration`] |
//! | `t/<trigger>`              | [`crate::trigger::Trigger`] |
//! | `c/epoch`                  | restart epoch counter |
//!
//! The element ordering key `<ord>` is `(0xFF - priority) ‖ seq_be`, so a
//! plain ascending prefix scan yields highest-priority-first, FIFO within a
//! priority — the dequeue order.

use crate::element::{Eid, Priority};

/// Key of a queue's metadata record.
pub fn meta_key(queue: &str) -> Vec<u8> {
    let mut k = Vec::with_capacity(2 + queue.len());
    k.extend_from_slice(b"m/");
    k.extend_from_slice(queue.as_bytes());
    k
}

/// Prefix under which a queue's live elements sort.
pub fn element_prefix(queue: &str) -> Vec<u8> {
    let mut k = Vec::with_capacity(3 + queue.len());
    k.extend_from_slice(b"e/");
    k.extend_from_slice(queue.as_bytes());
    k.push(b'/');
    k
}

/// Ordering suffix for an element: priority-descending, then seq-ascending.
pub fn ord_suffix(priority: Priority, seq: u64) -> [u8; 9] {
    let mut s = [0u8; 9];
    s[0] = 0xFF - priority;
    s[1..].copy_from_slice(&seq.to_be_bytes());
    s
}

/// Full key of a live element.
pub fn element_key(queue: &str, priority: Priority, seq: u64) -> Vec<u8> {
    let mut k = element_prefix(queue);
    k.extend_from_slice(&ord_suffix(priority, seq));
    k
}

/// Recover the queue name from a live-element key (`e/<queue>/<ord>`).
///
/// The 9-byte ordering suffix has fixed length, so the queue name is
/// everything between the `e/` prefix and the final `/<ord>` — robust even
/// if a queue name itself contains `/`.
pub fn parse_element_key(key: &[u8]) -> Option<&str> {
    let ord_len = 9 + 1; // '/' separator + ord_suffix
    if key.len() < 2 + 1 + ord_len || !key.starts_with(b"e/") {
        return None;
    }
    let sep = key.len() - ord_len;
    if key[sep] != b'/' {
        return None;
    }
    std::str::from_utf8(&key[2..sep]).ok()
}

/// Key of the live-element index entry for `eid`.
pub fn index_key(eid: Eid) -> Vec<u8> {
    let mut k = Vec::with_capacity(10);
    k.extend_from_slice(b"x/");
    k.extend_from_slice(&eid.raw().to_be_bytes());
    k
}

/// Key of the retained (dequeued) copy of `eid`.
pub fn retained_key(eid: Eid) -> Vec<u8> {
    let mut k = Vec::with_capacity(10);
    k.extend_from_slice(b"d/");
    k.extend_from_slice(&eid.raw().to_be_bytes());
    k
}

/// Key of the kill tombstone for `eid`.
pub fn kill_key(eid: Eid) -> Vec<u8> {
    let mut k = Vec::with_capacity(10);
    k.extend_from_slice(b"k/");
    k.extend_from_slice(&eid.raw().to_be_bytes());
    k
}

/// Key of a registration record.
pub fn registration_key(queue: &str, registrant: &str) -> Vec<u8> {
    let mut k = Vec::with_capacity(3 + queue.len() + registrant.len());
    k.extend_from_slice(b"r/");
    k.extend_from_slice(queue.as_bytes());
    k.push(b'/');
    k.extend_from_slice(registrant.as_bytes());
    k
}

/// Key of a trigger record.
pub fn trigger_key(id: &str) -> Vec<u8> {
    let mut k = Vec::with_capacity(2 + id.len());
    k.extend_from_slice(b"t/");
    k.extend_from_slice(id.as_bytes());
    k
}

/// Key of the repository epoch counter.
pub fn epoch_key() -> Vec<u8> {
    b"c/epoch".to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_key_sorts_priority_desc_then_seq_asc() {
        let hi_p = element_key("q", 9, 100);
        let lo_p_early = element_key("q", 1, 1);
        let lo_p_late = element_key("q", 1, 2);
        assert!(hi_p < lo_p_early, "higher priority sorts first");
        assert!(lo_p_early < lo_p_late, "FIFO within priority");
    }

    #[test]
    fn element_keys_stay_under_queue_prefix() {
        let k = element_key("req", 0, 42);
        assert!(k.starts_with(&element_prefix("req")));
        assert!(!k.starts_with(&element_prefix("reply")));
    }

    #[test]
    fn queue_names_with_shared_prefixes_do_not_collide() {
        // "req" vs "req2": the '/' separator keeps prefixes disjoint.
        let a = element_prefix("req");
        let k = element_key("req2", 0, 1);
        assert!(!k.starts_with(&a));
    }

    #[test]
    fn distinct_namespaces() {
        let eid = Eid(7);
        let keys = [
            meta_key("q"),
            element_key("q", 0, 1),
            index_key(eid),
            retained_key(eid),
            kill_key(eid),
            registration_key("q", "c"),
            trigger_key("t"),
            epoch_key(),
        ];
        for (i, a) in keys.iter().enumerate() {
            for (j, b) in keys.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b);
                }
            }
        }
    }

    #[test]
    fn parse_element_key_round_trips() {
        let k = element_key("req", 3, 42);
        assert_eq!(parse_element_key(&k), Some("req"));
        // Queue names containing '/' still parse: the suffix is fixed-width.
        let k2 = element_key("a/b", 0, 7);
        assert_eq!(parse_element_key(&k2), Some("a/b"));
        assert_eq!(parse_element_key(b"m/req"), None);
        assert_eq!(parse_element_key(b"e/short"), None);
    }

    #[test]
    fn seq_big_endian_ordering() {
        assert!(ord_suffix(0, 255).as_slice() < ord_suffix(0, 256).as_slice());
        assert!(ord_suffix(0, u64::MAX - 1).as_slice() < ord_suffix(0, u64::MAX).as_slice());
    }
}
