//! Queue-name → repository-partition placement.
//!
//! Gray's "Queues Are Databases" argument (PAPERS.md) runs through here: a
//! cluster of shared-nothing repository partitions each owns a disjoint
//! subset of queues, and ownership is a pure function of the queue *name* —
//! no directory service, no routing table to keep consistent, any clerk or
//! server computes the same owner from the name alone. FNV-1a keeps the
//! mapping stable across processes and restarts (`DefaultHasher` is
//! documented as unstable across releases, which would silently re-home
//! every queue on a toolchain bump).

/// Upper bound on repository partitions per cluster. Each partition owns a
/// full WAL group, so this bounds total device count in simulations.
pub const MAX_REPO_PARTITIONS: usize = 8;

/// 64-bit FNV-1a over a queue name.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The partition that owns `queue` in a cluster of `partitions` repositories.
///
/// `partitions <= 1` always routes to partition 0 (the single-repository
/// baseline short-circuits before hashing, so its cost is a compare).
pub fn partition_of(queue: &str, partitions: usize) -> usize {
    if partitions <= 1 {
        return 0;
    }
    (fnv1a(queue) % partitions as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_partition_owns_everything() {
        for q in ["req", "reply.c1", "", "x"] {
            assert_eq!(partition_of(q, 0), 0);
            assert_eq!(partition_of(q, 1), 0);
        }
    }

    #[test]
    fn placement_is_stable_and_in_range() {
        for parts in 2..=MAX_REPO_PARTITIONS {
            for i in 0..64 {
                let q = format!("queue.{i}");
                let p = partition_of(&q, parts);
                assert!(p < parts);
                assert_eq!(p, partition_of(&q, parts), "must be deterministic");
            }
        }
    }

    #[test]
    fn hash_spreads_queue_names() {
        // Not a statistical test — just proof the map isn't degenerate.
        let hits: std::collections::HashSet<usize> =
            (0..32).map(|i| partition_of(&format!("q{i}"), 4)).collect();
        assert!(hits.len() >= 3, "32 names landed on {hits:?}");
    }

    #[test]
    fn fnv1a_reference_vector() {
        // FNV-1a("a") per the published reference implementation.
        assert_eq!(fnv1a("a"), 0xaf63_dc4c_8601_ec8c);
    }
}
