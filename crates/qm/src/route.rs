//! Queue-name → repository-partition placement.
//!
//! Gray's "Queues Are Databases" argument (PAPERS.md) runs through here: a
//! cluster of shared-nothing repository partitions each owns a disjoint
//! subset of queues, and ownership is a pure function of the queue *name* —
//! no directory service, no routing table to keep consistent, any clerk or
//! server computes the same owner from the name alone. FNV-1a keeps the
//! mapping stable across processes and restarts (`DefaultHasher` is
//! documented as unstable across releases, which would silently re-home
//! every queue on a toolchain bump).

/// Upper bound on repository partitions per cluster. Each partition owns a
/// full WAL group, so this bounds total device count in simulations.
pub const MAX_REPO_PARTITIONS: usize = 8;

/// Width of each partition's private epoch band, in bits.
///
/// Element ids compose as `(epoch << 40) | counter` and every repository
/// open bumps the epoch, so partition `p` seeds its queue managers at epoch
/// `(p << EPOCH_BAND_BITS) + restarts` — the single definition of the band
/// arithmetic that `Repository::open_with` and the planned-execution epoch
/// ids both use. A band of 2^20 epochs means ids from different partitions
/// can only collide after a million restarts of one partition; the
/// `partition_bands_never_collide` proptest pins the disjointness for every
/// `repo_partitions <= MAX_REPO_PARTITIONS`.
pub const EPOCH_BAND_BITS: u64 = 20;

/// First epoch of partition `p`'s band (the `Repository::open_with` seed).
pub fn epoch_band_base(p: usize) -> u64 {
    (p as u64) << EPOCH_BAND_BITS
}

/// 64-bit FNV-1a over a queue name.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The partition that owns `queue` in a cluster of `partitions` repositories.
///
/// `partitions <= 1` always routes to partition 0 (the single-repository
/// baseline short-circuits before hashing, so its cost is a compare).
pub fn partition_of(queue: &str, partitions: usize) -> usize {
    if partitions <= 1 {
        return 0;
    }
    (fnv1a(queue) % partitions as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_partition_owns_everything() {
        for q in ["req", "reply.c1", "", "x"] {
            assert_eq!(partition_of(q, 0), 0);
            assert_eq!(partition_of(q, 1), 0);
        }
    }

    #[test]
    fn placement_is_stable_and_in_range() {
        for parts in 2..=MAX_REPO_PARTITIONS {
            for i in 0..64 {
                let q = format!("queue.{i}");
                let p = partition_of(&q, parts);
                assert!(p < parts);
                assert_eq!(p, partition_of(&q, parts), "must be deterministic");
            }
        }
    }

    #[test]
    fn hash_spreads_queue_names() {
        // Not a statistical test — just proof the map isn't degenerate.
        let hits: std::collections::HashSet<usize> =
            (0..32).map(|i| partition_of(&format!("q{i}"), 4)).collect();
        assert!(hits.len() >= 3, "32 names landed on {hits:?}");
    }

    #[test]
    fn fnv1a_reference_vector() {
        // FNV-1a("a") per the published reference implementation.
        assert_eq!(fnv1a("a"), 0xaf63_dc4c_8601_ec8c);
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// Eids minted by different partitions never collide: each partition's
        /// epoch band is disjoint for any restart count below the band width,
        /// for every legal cluster size.
        #[test]
        fn partition_bands_never_collide(
            parts in 2usize..MAX_REPO_PARTITIONS + 1,
            pa in 0usize..MAX_REPO_PARTITIONS,
            pb in 0usize..MAX_REPO_PARTITIONS,
            restarts_a in 0u64..(1 << EPOCH_BAND_BITS),
            restarts_b in 0u64..(1 << EPOCH_BAND_BITS),
            counter in 0u64..(1 << 40),
        ) {
            let (pa, pb) = (pa % parts, pb % parts);
            let ea = epoch_band_base(pa) + restarts_a;
            let eb = epoch_band_base(pb) + restarts_b;
            // Epochs stay inside their own band...
            prop_assert_eq!(ea >> EPOCH_BAND_BITS, pa as u64);
            prop_assert_eq!(eb >> EPOCH_BAND_BITS, pb as u64);
            // ...so eids from different partitions can never be equal.
            if pa != pb {
                prop_assert!(
                    crate::element::Eid::compose(ea, counter)
                        != crate::element::Eid::compose(eb, counter),
                    "bands {pa}/{pb} collided at epochs {ea}/{eb}"
                );
            }
        }
    }
}
