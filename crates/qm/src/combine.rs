//! Flat-combining front end for the per-queue ready index.
//!
//! E17/E18 measured the skip-lock storm: with *n* dequeuers draining one
//! hot queue, every grant costs ≈ n−1 wasted candidate scans (each loser
//! re-pages [`crate::qindex::QueueIndex`] from the head and skips the
//! elements the winners are holding), and all n serialize on the queue's
//! ready-list mutex. Flat combining (Hendler et al.) is the standard cure:
//! instead of n threads each scanning the shared structure, every dequeuer
//! *publishes* a request slot into a per-queue publication list, and the
//! first publisher to CAS the **combiner latch** becomes the combiner — it
//! drains the BTreeMap once and hands out *disjoint* candidate batches to
//! every waiting slot, in priority-then-FIFO order of the index and FIFO
//! order of publication. A candidate is offered to exactly one dequeuer per
//! round, so the storm disappears structurally; element-lock re-resolution
//! under the existing element lock stays the correctness backstop for races
//! with aborts and kills (DESIGN.md §24).
//!
//! ## Handed-out marks
//!
//! A key the combiner dispenses is recorded in the queue's `handed` set and
//! skipped by later rounds, otherwise the next round would re-dispense it
//! while its taker still holds the element lock — recreating the storm one
//! level up. The mark is cleared by whichever comes first:
//!
//! * the requester *releases* candidates it did not consume (batch guard on
//!   every exit path, including errors), or
//! * the ready index *mutates* the key — RM commit removes it, an abort
//!   fix-up removes or re-inserts it, a kill deletes it. Every index
//!   mutation site in [`crate::ops`] calls [`Dispenser::invalidate`], so a
//!   mark can never outlive the index entry it shadows
//!   (`qm.combine.handout_invalidations` counts these).
//!
//! ## Combiner crash / abort hand-off
//!
//! The latch is an `AtomicBool` used for *election only* — it is never held
//! across a wait and is released by an RAII guard, so a combiner that
//! panics mid-round unwinds the latch free. Waiters never block on the
//! latch: they park on their own slot in 1 ms slices and re-CAS between
//! slices, so a combiner that disappears (or finishes without seeing a
//! late-published slot) is replaced by the next waiter within one slice. A
//! whole-process crash discards the dispenser with the rest of the volatile
//! state; recovery rebuilds the index and starts from an empty publication
//! list (the crash-mid-combine explorer script pins this).

use crate::element::Eid;
use crate::qindex::QueueIndex;
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Upper bound on one ready-index page the combiner drains per step.
const COMBINE_PAGE: usize = 64;

/// How long a waiting publisher parks before re-attempting the latch CAS.
/// Bounds the stall when the combiner finished without serving us (we
/// published after its last drain) or died without unwinding.
const WAIT_SLICE: Duration = Duration::from_millis(1);

/// What one combining round handed a single request slot.
pub struct Handout {
    /// Disjoint candidates, in index (priority-then-FIFO) order. Every key
    /// is marked handed-out until consumed, released, or invalidated.
    pub candidates: Vec<(Vec<u8>, Eid)>,
    /// The combiner ran out of index entries before filling this slot:
    /// re-requesting cannot surface more right now.
    pub exhausted: bool,
}

/// One published dequeue request, waiting to be served by the combiner.
struct Slot {
    /// How many candidates the requester wants this round.
    wanted: usize,
    /// Keys the requester already tried (or enqueued-then-dequeued itself)
    /// this pass; the combiner never offers these to this slot.
    exclude: HashSet<Vec<u8>>,
    /// `None` until served; the requester takes the handout under this
    /// guard. Lock class `combine-slot` (LOCKS.md).
    served: Mutex<Option<Handout>>,
    cv: Condvar,
}

/// Per-queue publication list + handed-out marks. Lock class
/// `combine-state` (LOCKS.md); the combiner pages the ready index while
/// holding it, hence the declared `combine-state < qindex-outer` edge.
#[derive(Default)]
struct CombineState {
    slots: VecDeque<Arc<Slot>>,
    handed: HashSet<Vec<u8>>,
}

#[derive(Default)]
struct QueueCombine {
    /// Combiner election word — CAS'd, never held across a wait, released
    /// by [`LatchGuard`] so a panicking combiner unwinds it free.
    latch: AtomicBool,
    publication: Mutex<CombineState>,
}

/// Releases the combiner latch on drop (including unwind).
struct LatchGuard<'a>(&'a AtomicBool);

impl Drop for LatchGuard<'_> {
    fn drop(&mut self) {
        self.0.store(false, Ordering::Release);
    }
}

/// Per-queue combining dispensers, one per [`crate::ops::QueueManager`].
#[derive(Default)]
pub struct Dispenser {
    /// Queue name → its combine cell. Lock class `combine-map` (LOCKS.md).
    combines: RwLock<HashMap<String, Arc<QueueCombine>>>,
}

impl Dispenser {
    pub fn new() -> Self {
        Self::default()
    }

    fn cell(&self, queue: &str) -> Arc<QueueCombine> {
        {
            let map = self.combines.read();
            if let Some(c) = map.get(queue) {
                return Arc::clone(c);
            }
        }
        let mut map = self.combines.write();
        Arc::clone(map.entry(queue.to_string()).or_default())
    }

    fn cell_if_present(&self, queue: &str) -> Option<Arc<QueueCombine>> {
        let map = self.combines.read();
        map.get(queue).cloned()
    }

    /// Publish a request slot and wait for a combining round to serve it —
    /// becoming the combiner ourselves if the latch is free. `exclude` keys
    /// are never offered to this slot (they still count as handed for other
    /// slots if some *other* requester holds them).
    pub fn request(
        &self,
        ix: &QueueIndex,
        queue: &str,
        wanted: usize,
        exclude: &HashSet<Vec<u8>>,
    ) -> Handout {
        let qc = self.cell(queue);
        let slot = Arc::new(Slot {
            wanted: wanted.max(1),
            exclude: exclude.clone(),
            served: Mutex::new(None),
            cv: Condvar::new(),
        });
        qc.publication.lock().slots.push_back(Arc::clone(&slot));
        loop {
            if qc
                .latch
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                let _release = LatchGuard(&qc.latch);
                combine_rounds(&qc, ix, queue);
                // Our slot was published before we took the latch, so the
                // rounds we just ran are guaranteed to have served it.
            }
            let mut g = slot.served.lock();
            if let Some(h) = g.take() {
                return h;
            }
            // Not served yet: another combiner holds the latch. Park one
            // slice on our own slot guard, then either take the handout or
            // go steal the latch (combiner may have died or finished
            // without seeing us).
            slot.cv.wait_until(&mut g, Instant::now() + WAIT_SLICE);
            if let Some(h) = g.take() {
                return h;
            }
        }
    }

    /// Clear the handed marks for candidates the requester did not consume.
    pub fn release(&self, queue: &str, keys: &[Vec<u8>]) {
        if keys.is_empty() {
            return;
        }
        let Some(qc) = self.cell_if_present(queue) else {
            return;
        };
        let mut st = qc.publication.lock();
        for k in keys {
            st.handed.remove(k);
        }
    }

    /// An index mutation removed or re-created `key`: drop its handed mark
    /// so the (new) index entry is dispensable again. Called from every
    /// `qindex` mutation site in `ops` — commit removes, abort fix-ups,
    /// kills — keeping marks from outliving the entries they shadow.
    pub fn invalidate(&self, queue: &str, key: &[u8]) {
        let Some(qc) = self.cell_if_present(queue) else {
            return;
        };
        let mut st = qc.publication.lock();
        if st.handed.remove(key) {
            rrq_obs::counter_inc("qm.combine.handout_invalidations");
        }
    }

    /// Drop all combining state for a destroyed queue.
    pub fn forget_queue(&self, queue: &str) {
        self.combines.write().remove(queue);
    }

    /// Drop all combining state (used when toggling the combining mode so
    /// stale handed marks from a previous run can never shadow the index).
    pub fn clear(&self) {
        self.combines.write().clear();
    }
}

/// Run combining rounds until the publication list drains. Caller holds the
/// latch.
fn combine_rounds(qc: &QueueCombine, ix: &QueueIndex, queue: &str) {
    loop {
        let served = combine_once(qc, ix, queue);
        if served.is_empty() {
            return;
        }
        // Deliver outside the publication lock: slot guards are leaves and
        // never nest with `combine-state`.
        for (slot, handout) in served {
            let mut g = slot.served.lock();
            *g = Some(handout);
            slot.cv.notify_one();
        }
    }
}

/// One combining round: drain the publication list, page the ready index
/// once, and assign each candidate to the first published slot (FIFO) that
/// still wants one and does not exclude it — disjoint by construction.
fn combine_once(qc: &QueueCombine, ix: &QueueIndex, queue: &str) -> Vec<(Arc<Slot>, Handout)> {
    let mut st = qc.publication.lock();
    if st.slots.is_empty() {
        return Vec::new();
    }
    let slots: Vec<Arc<Slot>> = st.slots.drain(..).collect();
    let mut batches: Vec<Vec<(Vec<u8>, Eid)>> = slots.iter().map(|_| Vec::new()).collect();
    let mut unfilled = slots.len();
    // Keys that cannot be dispensed no matter how deep we page: already
    // handed to a live holder, or excluded by every unfilled slot. Sizes
    // the page so a lone requester doesn't clone a 64-entry page for one
    // candidate.
    let overhead = st.handed.len() + slots.iter().map(|s| s.exclude.len()).max().unwrap_or(0);
    let mut cursor: Option<Vec<u8>> = None;
    let mut index_dry = false;
    let mut page: Vec<(Vec<u8>, Eid)> = Vec::new();
    while unfilled > 0 && !index_dry {
        let want: usize = slots
            .iter()
            .zip(&batches)
            .map(|(s, b)| s.wanted - b.len())
            .sum();
        let limit = (want + overhead + 4).min(COMBINE_PAGE);
        ix.candidates_after_into(queue, cursor.as_deref(), limit, &mut page);
        if page.len() < limit {
            index_dry = true;
        }
        cursor = page.last().map(|(k, _)| k.clone());
        for (k, eid) in page.drain(..) {
            if st.handed.contains(&k) {
                continue;
            }
            let taker = slots
                .iter()
                .enumerate()
                .find(|(i, s)| batches[*i].len() < s.wanted && !s.exclude.contains(&k));
            if let Some((i, slot)) = taker {
                st.handed.insert(k.clone());
                batches[i].push((k, eid));
                if batches[i].len() == slot.wanted {
                    unfilled -= 1;
                }
            }
        }
    }
    rrq_obs::counter_inc("qm.combine.rounds");
    rrq_obs::observe("qm.combine.ops_per_round", slots.len() as u64);
    drop(st);
    slots
        .into_iter()
        .zip(batches)
        .map(|(slot, candidates)| {
            rrq_obs::observe("qm.combine.batch_size", candidates.len() as u64);
            let exhausted = index_dry && candidates.len() < slot.wanted;
            (
                slot,
                Handout {
                    candidates,
                    exhausted,
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::AssertUnwindSafe;

    fn ix_with(queue: &str, keys: &[&[u8]]) -> QueueIndex {
        let ix = QueueIndex::new();
        for (i, k) in keys.iter().enumerate() {
            ix.insert(queue, k.to_vec(), Eid(i as u64));
        }
        ix
    }

    #[test]
    fn single_requester_combines_itself() {
        let ix = ix_with("q", &[b"a", b"b", b"c"]);
        let d = Dispenser::new();
        let h = d.request(&ix, "q", 1, &HashSet::new());
        assert_eq!(h.candidates.len(), 1);
        assert_eq!(h.candidates[0].0, b"a".to_vec());
        assert!(!h.exhausted, "index still has entries past the batch");
        // The head key is now marked handed: a second request skips it.
        let h2 = d.request(&ix, "q", 1, &HashSet::new());
        assert_eq!(h2.candidates[0].0, b"b".to_vec());
        // Releasing makes it dispensable again.
        d.release("q", &[b"a".to_vec(), b"b".to_vec()]);
        let h3 = d.request(&ix, "q", 1, &HashSet::new());
        assert_eq!(h3.candidates[0].0, b"a".to_vec());
    }

    #[test]
    fn exclusions_and_exhaustion() {
        let ix = ix_with("q", &[b"a", b"b"]);
        let d = Dispenser::new();
        let excl: HashSet<Vec<u8>> = [b"a".to_vec(), b"b".to_vec()].into_iter().collect();
        let h = d.request(&ix, "q", 1, &excl);
        assert!(h.candidates.is_empty());
        assert!(
            h.exhausted,
            "everything excluded ⇒ nothing more to hand out"
        );
    }

    #[test]
    fn invalidate_clears_handed_mark() {
        let ix = ix_with("q", &[b"a"]);
        let d = Dispenser::new();
        let h = d.request(&ix, "q", 1, &HashSet::new());
        assert_eq!(h.candidates.len(), 1);
        // Simulate the RM commit removing the key from the index.
        ix.remove("q", b"a");
        d.invalidate("q", b"a");
        ix.insert("q", b"a".to_vec(), Eid(9));
        let h2 = d.request(&ix, "q", 1, &HashSet::new());
        assert_eq!(
            h2.candidates[0].0,
            b"a".to_vec(),
            "mark cleared ⇒ redispensed"
        );
    }

    #[test]
    fn concurrent_requesters_get_disjoint_candidates() {
        let keys: Vec<Vec<u8>> = (0u8..32).map(|i| vec![i]).collect();
        let ix = QueueIndex::new();
        for (i, k) in keys.iter().enumerate() {
            ix.insert("q", k.clone(), Eid(i as u64));
        }
        let d = Arc::new(Dispenser::new());
        let ix = Arc::new(ix);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let d = Arc::clone(&d);
            let ix = Arc::clone(&ix);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                for _ in 0..4 {
                    let h = d.request(&ix, "q", 1, &HashSet::new());
                    got.extend(h.candidates.into_iter().map(|(k, _)| k));
                }
                got
            }));
        }
        let mut all: Vec<Vec<u8>> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), n, "no key handed to two requesters");
        assert_eq!(n, 32, "every key handed out exactly once");
    }

    #[test]
    fn latch_released_when_combiner_panics() {
        let qc = QueueCombine::default();
        assert!(qc
            .latch
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok());
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _g = LatchGuard(&qc.latch);
            panic!("combiner dies mid-round");
        }));
        assert!(r.is_err());
        assert!(
            !qc.latch.load(Ordering::Acquire),
            "unwind released the latch for the next requester"
        );
    }
}
