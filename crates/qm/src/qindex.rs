//! In-memory index of each queue's committed, live elements.
//!
//! The paper's §10 "main memory database" observation cuts both ways: the
//! durable truth lives in the log + checkpoint, but the *working set* — which
//! elements are ready to dequeue, and in what order — is small and hot, so a
//! dequeue should not have to page the element keyspace to find its
//! candidate. [`QueueIndex`] keeps, per queue, an ordered map from element
//! key to eid. Because element keys embed `(0xFF - priority) ‖ seq`
//! ([`crate::keys::ord_suffix`]), iterating the map yields exactly the
//! dequeue order: highest priority first, FIFO within a priority.
//!
//! The index mirrors the **committed** state only. It is updated at the
//! queue manager's commit/abort boundaries (after the backing stores have
//! committed), never from inside an open transaction, so a reader can trust
//! that every entry refers to an element that was visible to
//! `scan_prefix(None, ..)` a moment ago. The element may still disappear
//! between candidate selection and lock acquisition — dequeue re-reads under
//! the element lock, exactly as the scan path always has.
//!
//! ## Locking
//!
//! Queues are independent hot spots (§10 argues relaxed ordering exists so
//! concurrent servers don't serialize on shared queue state), so the index
//! gives each queue its own mutex under an outer `RwLock`'d map:
//!
//! * single-queue operations (insert, remove, depth, candidate paging) take
//!   the outer **read** lock plus that queue's mutex for their whole
//!   critical section — commits on different queues, and enqueue-commit vs
//!   dequeue-commit racing on the same queue, no longer share one mutex;
//! * cross-queue operations ([`QueueIndex::fixup`]'s error-queue moves) and
//!   whole-index reads (`snapshot`, `depth_accounting`, `total`,
//!   `clear_queue`) take the outer **write** lock, which excludes every
//!   single-queue writer wholesale — under it the per-queue mutexes are
//!   untouched via `Mutex::get_mut`, so no path ever holds two per-queue
//!   guards (the `qindex-queue` class in LOCKS.md; the rrq-analyze
//!   `lock-order` rule rejects a second same-class acquisition).
//!
//! The depth gauge still moves strictly inside the per-queue (or
//! whole-index) critical section, so the gauge and `total()` can never be
//! observed disagreeing — the PR 4 invariant pinned by
//! `crates/qm/tests/gauge_atomicity.rs`.
//!
//! On restart the index is rebuilt from a single scan of the stores
//! (volatile queues come back empty, so in practice this is the durable
//! store's `e/` prefix). `QueueManager::index_divergence` re-derives the
//! same structure from a fresh scan at any time and compares — the
//! crash-equivalence property test in `crates/sim` leans on it.

use crate::element::Eid;
use parking_lot::{Mutex, MutexGuard, RwLock};
use std::collections::{BTreeMap, HashMap};

/// The queue-depth gauge. Updated strictly inside the per-queue (or
/// whole-index) critical section so the gauge and `total()` can never be
/// observed disagreeing — the abort disposition fix-up used to remove and
/// re-insert in two critical sections, and a concurrent `depth()`/gauge
/// reader saw the element missing from one but not the other (see
/// [`QueueIndex::fixup`]).
const DEPTH_GAUGE: &str = "qm.queue.depth";

type ReadyMap = BTreeMap<Vec<u8>, Eid>;
type Ready = HashMap<String, Mutex<ReadyMap>>;

/// Ordered ready-lists for every queue, keyed by element key.
#[derive(Default)]
pub struct QueueIndex {
    queues: RwLock<Ready>,
}

/// Acquire one queue's mutex, counting contended acquisitions (no-op cost —
/// one CAS — unless the lock is busy or a metrics session is installed).
fn enter_cell(cell: &Mutex<ReadyMap>) -> MutexGuard<'_, ReadyMap> {
    if let Some(g) = cell.try_lock() {
        return g;
    }
    rrq_obs::counter_inc("qm.qindex.shard.contended");
    let start = rrq_obs::now();
    let g = cell.lock();
    rrq_obs::observe(
        "qm.qindex.shard.acquire_wait_ticks",
        rrq_obs::now().saturating_sub(start),
    );
    g
}

/// Insert under the outer write lock (cross-queue fix-up path).
fn insert_locked(g: &mut Ready, queue: &str, elem_key: Vec<u8>, eid: Eid) {
    if g.entry(queue.to_string())
        .or_default()
        .get_mut()
        .insert(elem_key, eid)
        .is_none()
    {
        rrq_obs::gauge_add(DEPTH_GAUGE, 1);
    }
}

/// Remove under the outer write lock (cross-queue fix-up path).
fn remove_locked(g: &mut Ready, queue: &str, elem_key: &[u8]) -> bool {
    let Some(m) = g.get_mut(queue) else {
        return false;
    };
    let hit = m.get_mut().remove(elem_key).is_some();
    if hit {
        rrq_obs::gauge_add(DEPTH_GAUGE, -1);
    }
    hit
}

impl QueueIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Run `f` inside `queue`'s own critical section: outer read lock +
    /// per-queue mutex, held together for the whole closure so whole-index
    /// readers (which take the outer write lock) serialize against it.
    /// `None` when the queue has no cell yet and `create` is false.
    fn with_ready<R>(
        &self,
        queue: &str,
        create: bool,
        f: impl FnOnce(&mut ReadyMap) -> R,
    ) -> Option<R> {
        {
            let g = self.queues.read();
            if let Some(cell) = g.get(queue) {
                let mut m = enter_cell(cell);
                return Some(f(&mut m));
            }
        }
        if !create {
            return None;
        }
        // First element ever seen for this queue: briefly take the outer
        // write lock to materialize its cell (rare — once per queue name).
        let mut g = self.queues.write();
        let cell = g.entry(queue.to_string()).or_default();
        Some(f(cell.get_mut()))
    }

    /// Record a committed element.
    pub fn insert(&self, queue: &str, elem_key: Vec<u8>, eid: Eid) {
        self.with_ready(queue, true, |m| {
            if m.insert(elem_key, eid).is_none() {
                rrq_obs::gauge_add(DEPTH_GAUGE, 1);
            }
        });
    }

    /// Drop a committed element; `true` if it was present.
    pub fn remove(&self, queue: &str, elem_key: &[u8]) -> bool {
        self.with_ready(queue, false, |m| {
            let hit = m.remove(elem_key).is_some();
            if hit {
                rrq_obs::gauge_add(DEPTH_GAUGE, -1);
            }
            hit
        })
        .unwrap_or(false)
    }

    /// Batch mirror of one committed transaction: its enqueue inserts, then
    /// its dequeue removes — the commit-boundary (and planned-mode
    /// epoch-close) index application. Insert-then-remove keeps an
    /// enqueue-then-dequeue of the same element within one transaction a
    /// net no-op. Durability contract (see LOCKS.md, Durability): callers
    /// mirror only transactions whose commit records are already appended —
    /// the locked path syncs per commit, the planned path's `apply_epoch`
    /// runs after the epoch `force_wal` — so like the recovery rebuild this
    /// redoes already-durable effects.
    pub fn apply_mirror<'a>(
        &self,
        inserts: impl IntoIterator<Item = (&'a str, Vec<u8>, Eid)>,
        removes: impl IntoIterator<Item = (&'a str, &'a [u8])>,
    ) {
        for (queue, elem_key, eid) in inserts {
            self.insert(queue, elem_key, eid);
        }
        for (queue, elem_key) in removes {
            self.remove(queue, elem_key);
        }
    }

    /// Apply an abort-disposition fix-up as one atomic step: drop the
    /// element's old entry and add its new one (error-queue move, requeue,
    /// return) inside a single critical section, so index contents and the
    /// depth gauge move together and no observer sees the element half-way.
    /// May span two queues, hence the outer write lock rather than a pair of
    /// per-queue guards.
    pub fn fixup(
        &self,
        remove: Option<(&str, &[u8])>,
        insert: Option<(&str, Vec<u8>, Eid)>,
    ) -> bool {
        let mut g = self.queues.write();
        let hit = match remove {
            Some((q, k)) => remove_locked(&mut g, q, k),
            None => false,
        };
        if let Some((q, k, eid)) = insert {
            insert_locked(&mut g, q, k, eid);
        }
        hit
    }

    /// `(total(), depth-gauge reading)` observed in one critical section —
    /// they must always be equal while a metrics session is active and the
    /// whole index lifetime falls inside it.
    pub fn depth_accounting(&self) -> (usize, i64) {
        let mut g = self.queues.write();
        let total = g.values_mut().map(|c| c.get_mut().len()).sum();
        let gauge = rrq_obs::snapshot().gauge(DEPTH_GAUGE);
        (total, gauge)
    }

    /// Number of live elements in `queue` — O(1) in the queue count, no
    /// storage scan.
    pub fn depth(&self, queue: &str) -> usize {
        self.with_ready(queue, false, |m| m.len()).unwrap_or(0)
    }

    /// Forget a destroyed queue wholesale.
    pub fn clear_queue(&self, queue: &str) {
        let mut g = self.queues.write();
        if let Some(mut m) = g.remove(queue) {
            rrq_obs::gauge_add(DEPTH_GAUGE, -(m.get_mut().len() as i64));
        }
    }

    /// Up to `limit` candidates in dequeue order, strictly after `after`
    /// (exclusive cursor, like the storage page scan).
    pub fn candidates_after(
        &self,
        queue: &str,
        after: Option<&[u8]>,
        limit: usize,
    ) -> Vec<(Vec<u8>, Eid)> {
        let mut out = Vec::new();
        self.candidates_after_into(queue, after, limit, &mut out);
        out
    }

    /// [`Self::candidates_after`] into a caller-owned buffer: `out` is
    /// cleared and refilled, so a paging loop reuses one allocation across
    /// pages, and an empty page (queue unknown, index empty, or cursor past
    /// the tail) costs no allocation at all.
    pub fn candidates_after_into(
        &self,
        queue: &str,
        after: Option<&[u8]>,
        limit: usize,
        out: &mut Vec<(Vec<u8>, Eid)>,
    ) {
        use std::ops::Bound;
        out.clear();
        let _ = self.with_ready(queue, false, |m| {
            if m.is_empty() {
                return;
            }
            let lower = match after {
                Some(a) => Bound::Excluded(a),
                None => Bound::Unbounded,
            };
            out.extend(
                m.range::<[u8], _>((lower, Bound::Unbounded))
                    .take(limit)
                    .map(|(k, &eid)| (k.clone(), eid)),
            );
        });
    }

    /// Full ordered dump, sorted by queue name — the comparison shape used
    /// by the equivalence check.
    pub fn snapshot(&self) -> BTreeMap<String, Vec<(Vec<u8>, Eid)>> {
        let mut g = self.queues.write();
        g.iter_mut()
            .filter_map(|(q, m)| {
                let m = m.get_mut();
                if m.is_empty() {
                    return None;
                }
                Some((q.clone(), m.iter().map(|(k, &e)| (k.clone(), e)).collect()))
            })
            .collect()
    }

    /// Total live elements across all queues.
    pub fn total(&self) -> usize {
        let mut g = self.queues.write();
        g.values_mut().map(|c| c.get_mut().len()).sum()
    }
}

impl Drop for QueueIndex {
    fn drop(&mut self) {
        // Retire this index's contribution to the process-wide depth gauge
        // (a crashed node's surviving elements re-enter through the rebuild
        // scan of its successor, so crash + restart nets zero for them).
        let mut g = self.queues.write();
        let total: usize = g.values_mut().map(|c| c.get_mut().len()).sum();
        rrq_obs::gauge_add(DEPTH_GAUGE, -(total as i64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys;
    use std::sync::Arc;

    #[test]
    fn candidates_come_back_in_dequeue_order() {
        let ix = QueueIndex::new();
        // Insert out of order: low priority first, then high.
        let lo = keys::element_key("q", 1, 10);
        let hi = keys::element_key("q", 9, 11);
        let lo2 = keys::element_key("q", 1, 12);
        ix.insert("q", lo.clone(), Eid(10));
        ix.insert("q", hi.clone(), Eid(11));
        ix.insert("q", lo2.clone(), Eid(12));
        let c = ix.candidates_after("q", None, 10);
        assert_eq!(c.len(), 3);
        assert_eq!(c[0].1, Eid(11), "high priority first");
        assert_eq!(c[1].1, Eid(10), "then FIFO within priority");
        assert_eq!(c[2].1, Eid(12));
    }

    #[test]
    fn cursor_is_exclusive() {
        let ix = QueueIndex::new();
        let a = keys::element_key("q", 0, 1);
        let b = keys::element_key("q", 0, 2);
        ix.insert("q", a.clone(), Eid(1));
        ix.insert("q", b.clone(), Eid(2));
        let c = ix.candidates_after("q", Some(&a), 10);
        assert_eq!(c, vec![(b, Eid(2))]);
    }

    #[test]
    fn depth_and_remove_track_contents() {
        let ix = QueueIndex::new();
        let k = keys::element_key("q", 0, 1);
        assert_eq!(ix.depth("q"), 0);
        ix.insert("q", k.clone(), Eid(1));
        assert_eq!(ix.depth("q"), 1);
        assert!(ix.remove("q", &k));
        assert!(!ix.remove("q", &k), "second remove is a miss");
        assert_eq!(ix.depth("q"), 0);
        assert!(ix.snapshot().is_empty(), "empty queues drop out");
    }

    #[test]
    fn clear_queue_forgets_everything() {
        let ix = QueueIndex::new();
        ix.insert("q", keys::element_key("q", 0, 1), Eid(1));
        ix.insert("q", keys::element_key("q", 0, 2), Eid(2));
        ix.insert("p", keys::element_key("p", 0, 3), Eid(3));
        ix.clear_queue("q");
        assert_eq!(ix.depth("q"), 0);
        assert_eq!(ix.total(), 1);
    }

    #[test]
    fn parallel_queues_do_not_corrupt_totals() {
        // Hammer two disjoint queues from two threads while a third asks for
        // whole-index totals; every observation must be internally sane.
        let ix = Arc::new(QueueIndex::new());
        let mut handles = Vec::new();
        for q in ["qa", "qb"] {
            let ix = Arc::clone(&ix);
            handles.push(std::thread::spawn(move || {
                for i in 0..2000u64 {
                    let k = keys::element_key(q, 0, i);
                    ix.insert(q, k.clone(), Eid(i));
                    assert!(ix.remove(q, &k));
                }
            }));
        }
        for _ in 0..200 {
            let t = ix.total();
            assert!(t <= 2, "at most one in-flight element per queue, saw {t}");
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ix.total(), 0);
    }
}
