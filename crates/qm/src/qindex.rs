//! In-memory index of each queue's committed, live elements.
//!
//! The paper's §10 "main memory database" observation cuts both ways: the
//! durable truth lives in the log + checkpoint, but the *working set* — which
//! elements are ready to dequeue, and in what order — is small and hot, so a
//! dequeue should not have to page the element keyspace to find its
//! candidate. [`QueueIndex`] keeps, per queue, an ordered map from element
//! key to eid. Because element keys embed `(0xFF - priority) ‖ seq`
//! ([`crate::keys::ord_suffix`]), iterating the map yields exactly the
//! dequeue order: highest priority first, FIFO within a priority.
//!
//! The index mirrors the **committed** state only. It is updated at the
//! queue manager's commit/abort boundaries (after the backing stores have
//! committed), never from inside an open transaction, so a reader can trust
//! that every entry refers to an element that was visible to
//! `scan_prefix(None, ..)` a moment ago. The element may still disappear
//! between candidate selection and lock acquisition — dequeue re-reads under
//! the element lock, exactly as the scan path always has.
//!
//! On restart the index is rebuilt from a single scan of the stores
//! (volatile queues come back empty, so in practice this is the durable
//! store's `e/` prefix). `QueueManager::index_divergence` re-derives the
//! same structure from a fresh scan at any time and compares — the
//! crash-equivalence property test in `crates/sim` leans on it.

use crate::element::Eid;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};

/// The queue-depth gauge. Updated strictly inside the index's own mutex so
/// the gauge and `total()` can never be observed disagreeing — the abort
/// disposition fix-up used to remove and re-insert in two critical
/// sections, and a concurrent `depth()`/gauge reader saw the element
/// missing from one but not the other (see [`QueueIndex::fixup`]).
const DEPTH_GAUGE: &str = "qm.queue.depth";

type Ready = HashMap<String, BTreeMap<Vec<u8>, Eid>>;

/// Ordered ready-lists for every queue, keyed by element key.
#[derive(Default)]
pub struct QueueIndex {
    inner: Mutex<Ready>,
}

fn insert_locked(g: &mut Ready, queue: &str, elem_key: Vec<u8>, eid: Eid) {
    if g.entry(queue.to_string())
        .or_default()
        .insert(elem_key, eid)
        .is_none()
    {
        rrq_obs::gauge_add(DEPTH_GAUGE, 1);
    }
}

fn remove_locked(g: &mut Ready, queue: &str, elem_key: &[u8]) -> bool {
    let Some(m) = g.get_mut(queue) else {
        return false;
    };
    let hit = m.remove(elem_key).is_some();
    if m.is_empty() {
        g.remove(queue);
    }
    if hit {
        rrq_obs::gauge_add(DEPTH_GAUGE, -1);
    }
    hit
}

impl QueueIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a committed element.
    pub fn insert(&self, queue: &str, elem_key: Vec<u8>, eid: Eid) {
        insert_locked(&mut self.inner.lock(), queue, elem_key, eid);
    }

    /// Drop a committed element; `true` if it was present.
    pub fn remove(&self, queue: &str, elem_key: &[u8]) -> bool {
        remove_locked(&mut self.inner.lock(), queue, elem_key)
    }

    /// Apply an abort-disposition fix-up as one atomic step: drop the
    /// element's old entry and add its new one (error-queue move, requeue,
    /// return) inside a single critical section, so index contents and the
    /// depth gauge move together and no observer sees the element half-way.
    pub fn fixup(
        &self,
        remove: Option<(&str, &[u8])>,
        insert: Option<(&str, Vec<u8>, Eid)>,
    ) -> bool {
        let mut g = self.inner.lock();
        let hit = match remove {
            Some((q, k)) => remove_locked(&mut g, q, k),
            None => false,
        };
        if let Some((q, k, eid)) = insert {
            insert_locked(&mut g, q, k, eid);
        }
        hit
    }

    /// `(total(), depth-gauge reading)` observed in one critical section —
    /// they must always be equal while a metrics session is active and the
    /// whole index lifetime falls inside it.
    pub fn depth_accounting(&self) -> (usize, i64) {
        let g = self.inner.lock();
        let total = g.values().map(BTreeMap::len).sum();
        let gauge = rrq_obs::snapshot().gauge(DEPTH_GAUGE);
        (total, gauge)
    }

    /// Number of live elements in `queue` — O(1) in the queue count, no
    /// storage scan.
    pub fn depth(&self, queue: &str) -> usize {
        self.inner.lock().get(queue).map_or(0, BTreeMap::len)
    }

    /// Forget a destroyed queue wholesale.
    pub fn clear_queue(&self, queue: &str) {
        let mut g = self.inner.lock();
        if let Some(m) = g.remove(queue) {
            rrq_obs::gauge_add(DEPTH_GAUGE, -(m.len() as i64));
        }
    }

    /// Up to `limit` candidates in dequeue order, strictly after `after`
    /// (exclusive cursor, like the storage page scan).
    pub fn candidates_after(
        &self,
        queue: &str,
        after: Option<&[u8]>,
        limit: usize,
    ) -> Vec<(Vec<u8>, Eid)> {
        use std::ops::Bound;
        let g = self.inner.lock();
        let Some(m) = g.get(queue) else {
            return Vec::new();
        };
        let lower = match after {
            Some(a) => Bound::Excluded(a),
            None => Bound::Unbounded,
        };
        m.range::<[u8], _>((lower, Bound::Unbounded))
            .take(limit)
            .map(|(k, &eid)| (k.clone(), eid))
            .collect()
    }

    /// Full ordered dump, sorted by queue name — the comparison shape used
    /// by the equivalence check.
    pub fn snapshot(&self) -> BTreeMap<String, Vec<(Vec<u8>, Eid)>> {
        self.inner
            .lock()
            .iter()
            .filter(|(_, m)| !m.is_empty())
            .map(|(q, m)| (q.clone(), m.iter().map(|(k, &e)| (k.clone(), e)).collect()))
            .collect()
    }

    /// Total live elements across all queues.
    pub fn total(&self) -> usize {
        self.inner.lock().values().map(BTreeMap::len).sum()
    }
}

impl Drop for QueueIndex {
    fn drop(&mut self) {
        // Retire this index's contribution to the process-wide depth gauge
        // (a crashed node's surviving elements re-enter through the rebuild
        // scan of its successor, so crash + restart nets zero for them).
        let g = self.inner.get_mut();
        let total: usize = g.values().map(BTreeMap::len).sum();
        rrq_obs::gauge_add(DEPTH_GAUGE, -(total as i64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys;

    #[test]
    fn candidates_come_back_in_dequeue_order() {
        let ix = QueueIndex::new();
        // Insert out of order: low priority first, then high.
        let lo = keys::element_key("q", 1, 10);
        let hi = keys::element_key("q", 9, 11);
        let lo2 = keys::element_key("q", 1, 12);
        ix.insert("q", lo.clone(), Eid(10));
        ix.insert("q", hi.clone(), Eid(11));
        ix.insert("q", lo2.clone(), Eid(12));
        let c = ix.candidates_after("q", None, 10);
        assert_eq!(c.len(), 3);
        assert_eq!(c[0].1, Eid(11), "high priority first");
        assert_eq!(c[1].1, Eid(10), "then FIFO within priority");
        assert_eq!(c[2].1, Eid(12));
    }

    #[test]
    fn cursor_is_exclusive() {
        let ix = QueueIndex::new();
        let a = keys::element_key("q", 0, 1);
        let b = keys::element_key("q", 0, 2);
        ix.insert("q", a.clone(), Eid(1));
        ix.insert("q", b.clone(), Eid(2));
        let c = ix.candidates_after("q", Some(&a), 10);
        assert_eq!(c, vec![(b, Eid(2))]);
    }

    #[test]
    fn depth_and_remove_track_contents() {
        let ix = QueueIndex::new();
        let k = keys::element_key("q", 0, 1);
        assert_eq!(ix.depth("q"), 0);
        ix.insert("q", k.clone(), Eid(1));
        assert_eq!(ix.depth("q"), 1);
        assert!(ix.remove("q", &k));
        assert!(!ix.remove("q", &k), "second remove is a miss");
        assert_eq!(ix.depth("q"), 0);
        assert!(ix.snapshot().is_empty(), "empty queues drop out");
    }

    #[test]
    fn clear_queue_forgets_everything() {
        let ix = QueueIndex::new();
        ix.insert("q", keys::element_key("q", 0, 1), Eid(1));
        ix.insert("q", keys::element_key("q", 0, 2), Eid(2));
        ix.insert("p", keys::element_key("p", 0, 3), Eid(3));
        ix.clear_queue("q");
        assert_eq!(ix.depth("q"), 0);
        assert_eq!(ix.total(), 1);
    }
}
