//! Blocking dequeue support — the paper's "notify lock" (§10: "an extension
//! is needed to allow a transaction that Dequeues from an empty queue to
//! become blocked").
//!
//! Each queue carries a version counter bumped whenever elements may have
//! become available (an enqueue committed, or an aborted dequeue returned an
//! element). A blocked dequeuer samples the version, re-scans, and waits for
//! the version to move.

use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Per-queue availability versions with wakeups.
#[derive(Default)]
pub struct QueueNotifier {
    versions: Mutex<HashMap<String, u64>>,
    cv: Condvar,
}

impl QueueNotifier {
    /// New notifier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current version for `queue` (0 if never signalled).
    pub fn version(&self, queue: &str) -> u64 {
        *self.versions.lock().get(queue).unwrap_or(&0)
    }

    /// Signal that `queue` may have gained elements.
    pub fn signal(&self, queue: &str) {
        let mut g = self.versions.lock();
        *g.entry(queue.to_string()).or_insert(0) += 1;
        self.cv.notify_all();
    }

    /// Block until `queue`'s version exceeds `seen` or `timeout` elapses.
    /// Returns `true` when woken by a signal, `false` on timeout.
    pub fn wait_past(&self, queue: &str, seen: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut g = self.versions.lock();
        loop {
            if *g.get(queue).unwrap_or(&0) > seen {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            if self.cv.wait_until(&mut g, deadline).timed_out() {
                return *g.get(queue).unwrap_or(&0) > seen;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn signal_bumps_version() {
        let n = QueueNotifier::new();
        assert_eq!(n.version("q"), 0);
        n.signal("q");
        assert_eq!(n.version("q"), 1);
        assert_eq!(n.version("other"), 0);
    }

    #[test]
    fn wait_returns_immediately_when_version_already_past() {
        let n = QueueNotifier::new();
        n.signal("q");
        assert!(n.wait_past("q", 0, Duration::from_millis(1)));
    }

    #[test]
    fn wait_times_out() {
        let n = QueueNotifier::new();
        let t0 = Instant::now();
        assert!(!n.wait_past("q", 0, Duration::from_millis(30)));
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn waiter_woken_by_signal() {
        let n = Arc::new(QueueNotifier::new());
        let n2 = Arc::clone(&n);
        let h = thread::spawn(move || n2.wait_past("q", 0, Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(20));
        n.signal("q");
        assert!(h.join().unwrap());
    }

    #[test]
    fn signals_are_per_queue_but_wakeups_recheck() {
        let n = Arc::new(QueueNotifier::new());
        let n2 = Arc::clone(&n);
        let h = thread::spawn(move || n2.wait_past("a", 0, Duration::from_millis(200)));
        thread::sleep(Duration::from_millis(20));
        n.signal("b"); // wakes, rechecks, keeps waiting
        assert!(!h.join().unwrap());
    }
}
