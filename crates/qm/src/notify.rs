//! Blocking dequeue support — the paper's "notify lock" (§10: "an extension
//! is needed to allow a transaction that Dequeues from an empty queue to
//! become blocked").
//!
//! Each queue carries a version counter bumped whenever elements may have
//! become available (an enqueue committed, or an aborted dequeue returned an
//! element). A blocked dequeuer samples the version, re-scans, and waits for
//! the version to move.
//!
//! Wakeups are **counted, per-queue, one per newly available element**. The
//! first cut of this module shared one condvar across every queue and
//! `notify_all`'d it on any signal, so a commit adding one element to one
//! queue woke every blocked dequeuer in the process (E17 measured the
//! resulting thundering herd — the losers re-scan, skip, and go back to
//! sleep). Now each queue has its own condvar and a signal reporting *n* new
//! elements wakes at most *n* waiters: exactly the threads that can possibly
//! win an element re-scan, nobody else. Waking fewer than *n* would be a
//! livelock risk (two elements commit, one waiter wakes, the second element
//! sits until timeout); waking more is the herd again.

use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One queue's wait state. The condvar is `Arc`'d so a waiter can keep it
/// across the map rehash that an unrelated queue's first signal may cause.
#[derive(Default)]
struct Waitq {
    version: u64,
    waiters: usize,
    cv: Arc<Condvar>,
}

/// Per-queue availability versions with counted wakeups.
#[derive(Default)]
pub struct QueueNotifier {
    queues: Mutex<HashMap<String, Waitq>>,
    /// Wakeups issued (notify_one calls targeting a registered waiter) —
    /// test hook pinning the no-thundering-herd contract.
    wakeups: AtomicU64,
}

impl QueueNotifier {
    /// New notifier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current version for `queue` (0 if never signalled).
    pub fn version(&self, queue: &str) -> u64 {
        self.queues.lock().get(queue).map_or(0, |w| w.version)
    }

    /// Signal that `queue` may have gained one element.
    pub fn signal(&self, queue: &str) {
        self.signal_n(queue, 1);
    }

    /// Signal that `queue` gained up to `newly` elements: bump the version
    /// once and wake `min(newly, waiters)` blocked dequeuers on that queue
    /// — never waiters on other queues, never the whole herd.
    pub fn signal_n(&self, queue: &str, newly: usize) {
        if newly == 0 {
            return;
        }
        let mut g = self.queues.lock();
        let w = g.entry(queue.to_string()).or_default();
        w.version += 1;
        let wake = newly.min(w.waiters);
        for _ in 0..wake {
            w.cv.notify_one();
        }
        self.wakeups.fetch_add(wake as u64, Ordering::AcqRel);
    }

    /// Block until `queue`'s version exceeds `seen` or `timeout` elapses.
    /// Returns `true` when woken by a signal, `false` on timeout.
    pub fn wait_past(&self, queue: &str, seen: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut g = self.queues.lock();
        loop {
            let w = g.entry(queue.to_string()).or_default();
            if w.version > seen {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            w.waiters += 1;
            let cv = Arc::clone(&w.cv);
            let timed_out = cv.wait_until(&mut g, deadline).timed_out();
            // Re-borrow after the wait: the map may have rehashed.
            let w = g.entry(queue.to_string()).or_default();
            w.waiters -= 1;
            if timed_out {
                return w.version > seen;
            }
        }
    }

    /// Total wakeups issued so far (test hook).
    pub fn wakeups(&self) -> u64 {
        self.wakeups.load(Ordering::Acquire)
    }

    /// Waiters currently blocked on `queue` (test hook).
    pub fn waiters(&self, queue: &str) -> usize {
        self.queues.lock().get(queue).map_or(0, |w| w.waiters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn signal_bumps_version() {
        let n = QueueNotifier::new();
        assert_eq!(n.version("q"), 0);
        n.signal("q");
        assert_eq!(n.version("q"), 1);
        assert_eq!(n.version("other"), 0);
    }

    #[test]
    fn wait_returns_immediately_when_version_already_past() {
        let n = QueueNotifier::new();
        n.signal("q");
        assert!(n.wait_past("q", 0, Duration::from_millis(1)));
    }

    #[test]
    fn wait_times_out() {
        let n = QueueNotifier::new();
        let t0 = Instant::now();
        assert!(!n.wait_past("q", 0, Duration::from_millis(30)));
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn waiter_woken_by_signal() {
        let n = Arc::new(QueueNotifier::new());
        let n2 = Arc::clone(&n);
        let h = thread::spawn(move || n2.wait_past("q", 0, Duration::from_secs(5)));
        while n.waiters("q") == 0 {
            thread::yield_now();
        }
        n.signal("q");
        assert!(h.join().unwrap());
    }

    #[test]
    fn signals_are_per_queue_but_wakeups_recheck() {
        let n = Arc::new(QueueNotifier::new());
        let n2 = Arc::clone(&n);
        let h = thread::spawn(move || n2.wait_past("a", 0, Duration::from_millis(200)));
        while n.waiters("a") == 0 {
            thread::yield_now();
        }
        n.signal("b"); // different queue: waiter on "a" is not even woken
        assert!(!h.join().unwrap());
        assert_eq!(n.wakeups(), 0, "no waiter on b ⇒ no wakeup issued");
    }

    /// The wakeup-count pin: one new element among k blocked dequeuers on
    /// the same queue plus a bystander on another queue wakes exactly one
    /// thread — not the herd, not the bystander.
    #[test]
    fn one_element_wakes_exactly_one_of_many_waiters() {
        let n = Arc::new(QueueNotifier::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let n2 = Arc::clone(&n);
            handles.push(thread::spawn(move || {
                n2.wait_past("hot", 0, Duration::from_secs(5))
            }));
        }
        let n3 = Arc::clone(&n);
        let bystander = thread::spawn(move || n3.wait_past("cold", 0, Duration::from_millis(300)));
        while n.waiters("hot") < 4 || n.waiters("cold") < 1 {
            thread::yield_now();
        }
        n.signal_n("hot", 1);
        // Exactly one waiter leaves the wait; the other three stay parked.
        let t0 = Instant::now();
        while n.waiters("hot") != 3 {
            assert!(t0.elapsed() < Duration::from_secs(2), "winner never woke");
            thread::yield_now();
        }
        thread::sleep(Duration::from_millis(50));
        assert_eq!(n.waiters("hot"), 3, "only one of four dequeuers woken");
        assert_eq!(n.wakeups(), 1, "one element ⇒ one wakeup issued");
        // Flush the rest; the version already moved so they all return true.
        n.signal_n("hot", 4);
        for h in handles {
            assert!(h.join().unwrap());
        }
        assert!(!bystander.join().unwrap(), "other queue's waiter untouched");
        assert_eq!(n.wakeups(), 4, "1 + min(4, 3 remaining waiters)");
    }

    /// Underflow edge: `signal_n` with zero parked waiters must not issue
    /// (or count) any wakeup, no matter how large `newly` is — the
    /// `min(newly, waiters)` clamp saturates at zero, it never wraps. The
    /// version still moves exactly once, so a dequeuer arriving *after* the
    /// burst returns immediately instead of parking.
    #[test]
    fn signal_n_with_no_waiters_issues_no_wakeups() {
        let n = QueueNotifier::new();
        n.signal_n("q", usize::MAX);
        assert_eq!(n.wakeups(), 0, "no parked waiter ⇒ no wakeup issued");
        assert_eq!(
            n.version("q"),
            1,
            "version bumps once per signal, not per element"
        );
        n.signal_n("q", 1_000_000);
        assert_eq!(n.wakeups(), 0);
        assert_eq!(n.version("q"), 2);
        // A later waiter sees the moved version without blocking.
        assert!(n.wait_past("q", 0, Duration::from_millis(1)));
        // And `newly: 0` is a pure no-op: no version bump, no wakeup.
        n.signal_n("q", 0);
        assert_eq!(n.version("q"), 2);
        assert_eq!(n.wakeups(), 0);
    }

    /// Overflow edge: `newly` far beyond the waiter count wakes exactly the
    /// parked waiters — `min` clamps to the live count, and the surplus is
    /// not banked against future waiters.
    #[test]
    fn signal_n_overflow_clamps_to_live_waiters() {
        let n = Arc::new(QueueNotifier::new());
        let mut handles = Vec::new();
        for _ in 0..2 {
            let n2 = Arc::clone(&n);
            handles.push(thread::spawn(move || {
                n2.wait_past("q", 0, Duration::from_secs(5))
            }));
        }
        while n.waiters("q") < 2 {
            thread::yield_now();
        }
        n.signal_n("q", usize::MAX);
        for h in handles {
            assert!(h.join().unwrap());
        }
        assert_eq!(n.wakeups(), 2, "wakeups clamp to the 2 parked waiters");
        // The huge surplus is not remembered: a fresh waiter on the same
        // queue (past the new version) parks and times out normally.
        assert!(!n.wait_past("q", n.version("q"), Duration::from_millis(30)));
        assert_eq!(n.wakeups(), 2);
    }

    /// Waiter-count churn during a wake: a signal's clamp reads the count
    /// at signal time, so waiters that leave (timeout) between the count
    /// read and the wake landing just absorb a harmless extra notify, and
    /// waiters that arrive after the signal see the bumped version and
    /// never park at all. The count itself must return to zero — no
    /// double-decrement from the timeout + wake race.
    #[test]
    fn waiter_count_survives_churn_during_wake() {
        let n = Arc::new(QueueNotifier::new());
        for round in 0..20u64 {
            let mut handles = Vec::new();
            for i in 0..4 {
                let n2 = Arc::clone(&n);
                // Mixed deadlines: some waiters time out right as the
                // signal's wakeups land, racing their `waiters -= 1` with
                // the winners'.
                let timeout = Duration::from_micros(200 + 300 * i);
                handles.push(thread::spawn(move || {
                    n2.wait_past("churn", 2 * round, timeout);
                }));
            }
            thread::sleep(Duration::from_micros(400));
            n.signal_n("churn", 2);
            n.signal_n("churn", 2);
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(
                n.waiters("churn"),
                0,
                "round {round}: count must drain to 0"
            );
        }
    }

    #[test]
    fn signal_n_wakes_up_to_n_waiters() {
        let n = Arc::new(QueueNotifier::new());
        let mut handles = Vec::new();
        for _ in 0..3 {
            let n2 = Arc::clone(&n);
            handles.push(thread::spawn(move || {
                n2.wait_past("q", 0, Duration::from_secs(5))
            }));
        }
        while n.waiters("q") < 3 {
            thread::yield_now();
        }
        n.signal_n("q", 2);
        let t0 = Instant::now();
        while n.waiters("q") != 1 {
            assert!(t0.elapsed() < Duration::from_secs(2), "winners never woke");
            thread::yield_now();
        }
        assert_eq!(n.wakeups(), 2, "two new elements ⇒ two wakeups issued");
        n.signal_n("q", 1);
        for h in handles {
            assert!(h.join().unwrap());
        }
    }
}
