//! Persistent registration with operation tags — §4.3, the paper's
//! claimed-novel queue-manager feature.
//!
//! A registration associates an authenticated registrant with a queue and
//! survives registrant failures: "the failure of a registrant does not
//! implicitly deregister it". For a registrant that asked for stability, the
//! QM keeps a durable copy of the **tag**, **eid**, **operation type**, and
//! **element contents** of the registrant's most recent tagged operation,
//! updated *in the same transaction* as the operation itself. Re-registering
//! after a failure returns that record — this is the whole basis of the
//! client's connect-time resynchronization (Fig 2): the tag carries the
//! clerk's rid/ckpt state, so the QM performs the client's checkpoint for
//! free (§2).

use crate::element::Eid;
use rrq_storage::codec::{put, Decode, Encode, Reader};
use rrq_storage::{StorageError, StorageResult};

/// Which operation the stable record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LastOp {
    /// No tagged operation has run yet.
    None,
    /// Last tagged operation was an Enqueue.
    Enqueue,
    /// Last tagged operation was a Dequeue.
    Dequeue,
}

impl LastOp {
    fn to_byte(self) -> u8 {
        match self {
            LastOp::None => 0,
            LastOp::Enqueue => 1,
            LastOp::Dequeue => 2,
        }
    }

    fn from_byte(b: u8) -> StorageResult<Self> {
        match b {
            0 => Ok(LastOp::None),
            1 => Ok(LastOp::Enqueue),
            2 => Ok(LastOp::Dequeue),
            b => Err(StorageError::Decode(format!("bad last-op byte {b}"))),
        }
    }
}

/// The durable registration record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Registration {
    /// Registrant name (unique, authenticated by the caller).
    pub registrant: String,
    /// The queue this registration binds to.
    pub queue: String,
    /// Maintain the last-operation record? (`stable-flag` of Fig 3.)
    pub stable: bool,
    /// Type of the most recent tagged operation.
    pub last_op: LastOp,
    /// Tag supplied with that operation.
    pub tag: Option<Vec<u8>>,
    /// Eid of the element operated on.
    pub eid: Option<Eid>,
    /// Stable copy of that element's contents (payload only).
    pub element_copy: Option<Vec<u8>>,
}

impl Registration {
    /// Fresh registration with no history.
    pub fn new(registrant: impl Into<String>, queue: impl Into<String>, stable: bool) -> Self {
        Registration {
            registrant: registrant.into(),
            queue: queue.into(),
            stable,
            last_op: LastOp::None,
            tag: None,
            eid: None,
            element_copy: None,
        }
    }

    /// Record a tagged operation (only kept when `stable`).
    pub fn record(&mut self, op: LastOp, tag: Option<&[u8]>, eid: Eid, payload: &[u8]) {
        if !self.stable {
            return;
        }
        self.last_op = op;
        self.tag = tag.map(|t| t.to_vec());
        self.eid = Some(eid);
        self.element_copy = Some(payload.to_vec());
    }
}

impl Encode for Registration {
    fn encode(&self, buf: &mut Vec<u8>) {
        put::string(buf, &self.registrant);
        put::string(buf, &self.queue);
        put::bool(buf, self.stable);
        put::u8(buf, self.last_op.to_byte());
        self.tag.encode(buf);
        match self.eid {
            None => put::u8(buf, 0),
            Some(e) => {
                put::u8(buf, 1);
                put::u64(buf, e.raw());
            }
        }
        self.element_copy.encode(buf);
    }
}

impl Decode for Registration {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        let registrant = r.string()?;
        let queue = r.string()?;
        let stable = r.bool()?;
        let last_op = LastOp::from_byte(r.u8()?)?;
        let tag = Option::<Vec<u8>>::decode(r)?;
        let eid = match r.u8()? {
            0 => None,
            1 => Some(Eid(r.u64()?)),
            b => return Err(StorageError::Decode(format!("bad eid tag {b}"))),
        };
        let element_copy = Option::<Vec<u8>>::decode(r)?;
        Ok(Registration {
            registrant,
            queue,
            stable,
            last_op,
            tag,
            eid,
            element_copy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_registration_has_no_history() {
        let r = Registration::new("client-1", "req", true);
        assert_eq!(r.last_op, LastOp::None);
        assert!(r.tag.is_none() && r.eid.is_none() && r.element_copy.is_none());
    }

    #[test]
    fn record_updates_stable_registration() {
        let mut r = Registration::new("c", "q", true);
        r.record(LastOp::Enqueue, Some(b"rid-42"), Eid(9), b"body");
        assert_eq!(r.last_op, LastOp::Enqueue);
        assert_eq!(r.tag.as_deref(), Some(b"rid-42".as_slice()));
        assert_eq!(r.eid, Some(Eid(9)));
        assert_eq!(r.element_copy.as_deref(), Some(b"body".as_slice()));
    }

    #[test]
    fn record_is_ignored_without_stable_flag() {
        let mut r = Registration::new("c", "q", false);
        r.record(LastOp::Dequeue, Some(b"t"), Eid(1), b"x");
        assert_eq!(r.last_op, LastOp::None);
        assert!(r.tag.is_none());
    }

    #[test]
    fn roundtrip_full() {
        let mut r = Registration::new("client-7", "reply", true);
        r.record(
            LastOp::Dequeue,
            Some(b"ckpt:3"),
            Eid::compose(2, 5),
            b"reply!",
        );
        let d = Registration::decode_all(&r.encode_to_vec()).unwrap();
        assert_eq!(d, r);
    }

    #[test]
    fn roundtrip_empty() {
        let r = Registration::new("c", "q", false);
        let d = Registration::decode_all(&r.encode_to_vec()).unwrap();
        assert_eq!(d, r);
    }

    #[test]
    fn record_with_no_tag() {
        let mut r = Registration::new("c", "q", true);
        r.record(LastOp::Enqueue, None, Eid(3), b"p");
        assert_eq!(r.tag, None);
        let d = Registration::decode_all(&r.encode_to_vec()).unwrap();
        assert_eq!(d, r);
    }
}
