//! # rrq-qm
//!
//! The recoverable queue manager — the paper's §4 abstraction, implemented in
//! full:
//!
//! * **Objects** (§4.1): [`repository::Repository`] holds named
//!   [`element::Element`]-bearing queues; every element has a unique
//!   [`element::Eid`]. Data-definition operations (create / destroy / start /
//!   stop queues) live on the repository.
//! * **Data manipulation** (§4.2, Fig 3): `Enqueue`, `Dequeue`, `Read`, and
//!   §7's `KillElement` on [`ops::QueueManager`]. All operations are
//!   all-or-nothing and serializable; when invoked inside a transaction they
//!   obey transaction semantics (an aborted dequeue returns the element; an
//!   element dequeued by *n* successively-aborting transactions moves to the
//!   queue's **error queue** on the n-th abort).
//! * **Persistent registration with operation tags** (§4.3) — the paper's
//!   claimed-novel feature: [`registration`] keeps, per registrant, a stable
//!   record of the last tagged operation (tag, eid, element copy) that
//!   `Register` returns on reconnect; the tag update commits atomically with
//!   the tagged operation.
//! * **Extensions** the paper discusses: priority dequeue and content-based
//!   retrieval ([`retrieval`]), blocking dequeue via "notify locks"
//!   ([`notify`], §10), skip-locked vs. strict-FIFO ordering (§10's anomaly
//!   discussion), queue redirection and alert thresholds (§9, DECintact),
//!   volatile queues (§10), and the §6 trigger mechanism for fork/join of
//!   concurrent requests ([`trigger`]).
//!
//! The queue manager is itself a [`rrq_txn::ResourceManager`], so queue
//! operations commit or abort atomically with application-database updates
//! made in the same transaction — the property every protocol in the paper
//! leans on.

pub mod combine;
pub mod element;
pub mod error;
pub mod keys;
pub mod meta;
pub mod notify;
pub mod ops;
pub mod qindex;
pub mod registration;
pub mod repository;
pub mod retrieval;
pub mod route;
pub mod trigger;

pub use element::{Eid, Element, Priority};
pub use error::{QmError, QmResult};
pub use meta::{OrderingMode, QueueMeta};
pub use ops::{DequeueOptions, EnqueueOptions, QueueHandle, QueueManager};
pub use registration::Registration;
pub use repository::{RepoDisks, RepoOptions, Repository};
pub use retrieval::Predicate;
pub use route::{partition_of, MAX_REPO_PARTITIONS};
