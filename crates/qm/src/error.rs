//! Queue-manager errors.

use rrq_storage::StorageError;
use rrq_txn::TxnError;
use std::fmt;

/// Result alias for the queue manager.
pub type QmResult<T> = Result<T, QmError>;

/// Errors raised by queue operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QmError {
    /// The named queue does not exist in this repository.
    NoSuchQueue(String),
    /// A queue with this name already exists.
    QueueExists(String),
    /// The queue exists but is stopped (data-definition stop, §4.1).
    QueueStopped(String),
    /// Dequeue found no (matching) element and blocking was not requested or
    /// timed out.
    Empty(String),
    /// No element with this eid exists (live or retained).
    NoSuchElement(u64),
    /// The registrant is not registered with the queue.
    NotRegistered(String),
    /// The element was dequeued by a transaction that has been marked for
    /// cancellation (§7) — the transaction must abort.
    Cancelled(u64),
    /// Queue redirection formed a cycle.
    RedirectCycle(String),
    /// Transaction-layer failure (deadlock, timeout, ...).
    Txn(TxnError),
    /// Storage-layer failure.
    Storage(StorageError),
    /// API misuse or internal inconsistency.
    Invalid(String),
    /// Two [`crate::repository::RepoOptions`] knobs cannot be combined;
    /// raised by `Repository::open_with` before any device is touched.
    IncompatibleOptions(String),
}

impl fmt::Display for QmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QmError::NoSuchQueue(q) => write!(f, "no such queue: {q}"),
            QmError::QueueExists(q) => write!(f, "queue already exists: {q}"),
            QmError::QueueStopped(q) => write!(f, "queue is stopped: {q}"),
            QmError::Empty(q) => write!(f, "queue empty: {q}"),
            QmError::NoSuchElement(e) => write!(f, "no such element: eid {e}"),
            QmError::NotRegistered(r) => write!(f, "not registered: {r}"),
            QmError::Cancelled(e) => write!(f, "element {e} cancelled; transaction must abort"),
            QmError::RedirectCycle(q) => write!(f, "queue redirection cycle at {q}"),
            QmError::Txn(e) => write!(f, "transaction error: {e}"),
            QmError::Storage(e) => write!(f, "storage error: {e}"),
            QmError::Invalid(m) => write!(f, "invalid queue operation: {m}"),
            QmError::IncompatibleOptions(m) => write!(f, "incompatible repository options: {m}"),
        }
    }
}

impl std::error::Error for QmError {}

impl From<TxnError> for QmError {
    fn from(e: TxnError) -> Self {
        QmError::Txn(e)
    }
}

impl From<StorageError> for QmError {
    fn from(e: StorageError) -> Self {
        QmError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: QmError = TxnError::LockTimeout.into();
        assert!(matches!(e, QmError::Txn(_)));
        let e: QmError = StorageError::DeviceFailed.into();
        assert!(matches!(e, QmError::Storage(_)));
        assert!(QmError::Empty("req".into()).to_string().contains("req"));
        assert!(QmError::Cancelled(4).to_string().contains("abort"));
    }
}
