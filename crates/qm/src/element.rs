//! Queue elements and their identifiers.

use rrq_storage::codec::{put, Decode, Encode, Reader};
use rrq_storage::{StorageError, StorageResult};
use std::fmt;

/// A system-wide unique element identifier (§4.1).
///
/// Layout: the high bits carry the repository *epoch* (bumped on every open,
/// so ids never repeat across restarts) and the low 40 bits a per-epoch
/// counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Eid(pub u64);

impl Eid {
    /// Compose from an epoch and a counter.
    pub fn compose(epoch: u64, counter: u64) -> Self {
        debug_assert!(counter < (1 << 40), "per-epoch counter overflow");
        Eid((epoch << 40) | counter)
    }

    /// Raw value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Eid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "eid:{:x}", self.0)
    }
}

/// Scheduling priority; higher dequeues first (§10 mentions priority-based
/// dequeue in DECintact). Default 0.
pub type Priority = u8;

/// A queue element: the uninterpreted record the QM stores (§1: elements
/// "are usually uninterpreted by the QM"), plus the metadata the QM itself
/// maintains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    /// Unique identifier.
    pub eid: Eid,
    /// Scheduling priority (higher first).
    pub priority: Priority,
    /// Monotonic arrival sequence (FIFO tiebreak within a priority).
    pub seq: u64,
    /// Times a dequeue of this element has been aborted.
    pub abort_count: u32,
    /// Abort code of the most recent aborting dequeuer (0 = none) —
    /// "the element is marked with an abort code" (§4.2).
    pub abort_code: u32,
    /// Named attributes for content-based retrieval (§1, §10).
    pub attrs: Vec<(String, String)>,
    /// The payload.
    pub payload: Vec<u8>,
}

impl Element {
    /// Look up an attribute value.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

impl Encode for Element {
    fn encode(&self, buf: &mut Vec<u8>) {
        put::u64(buf, self.eid.raw());
        put::u8(buf, self.priority);
        put::u64(buf, self.seq);
        put::u32(buf, self.abort_count);
        put::u32(buf, self.abort_code);
        put::u32(buf, self.attrs.len() as u32);
        for (n, v) in &self.attrs {
            put::string(buf, n);
            put::string(buf, v);
        }
        put::bytes(buf, &self.payload);
    }
}

impl Decode for Element {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        let eid = Eid(r.u64()?);
        let priority = r.u8()?;
        let seq = r.u64()?;
        let abort_count = r.u32()?;
        let abort_code = r.u32()?;
        let n_attrs = r.u32()? as usize;
        if n_attrs > 1 << 20 {
            return Err(StorageError::Decode(format!(
                "implausible attribute count {n_attrs}"
            )));
        }
        let mut attrs = Vec::with_capacity(n_attrs);
        for _ in 0..n_attrs {
            attrs.push((r.string()?, r.string()?));
        }
        let payload = r.bytes()?;
        Ok(Element {
            eid,
            priority,
            seq,
            abort_count,
            abort_code,
            attrs,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        Element {
            eid: Eid::compose(3, 77),
            priority: 5,
            seq: 1234,
            abort_count: 2,
            abort_code: 9,
            attrs: vec![
                ("rid".into(), "client-1/42".into()),
                ("kind".into(), "transfer".into()),
            ],
            payload: b"debit:100".to_vec(),
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let e = sample();
        let buf = e.encode_to_vec();
        let d = Element::decode_all(&buf).unwrap();
        assert_eq!(d, e);
    }

    #[test]
    fn eid_compose_orders_by_epoch_then_counter() {
        assert!(Eid::compose(1, 999).raw() < Eid::compose(2, 0).raw());
        assert!(Eid::compose(2, 0) < Eid::compose(2, 1));
    }

    #[test]
    fn attr_lookup() {
        let e = sample();
        assert_eq!(e.attr("kind"), Some("transfer"));
        assert_eq!(e.attr("missing"), None);
    }

    #[test]
    fn decode_rejects_corrupt_attr_count() {
        let e = sample();
        let mut buf = e.encode_to_vec();
        // attrs count sits after eid(8)+prio(1)+seq(8)+ac(4)+code(4) = 25.
        buf[25] = 0xFF;
        buf[26] = 0xFF;
        buf[27] = 0xFF;
        buf[28] = 0x7F;
        assert!(Element::decode_all(&buf).is_err());
    }

    #[test]
    fn display_eid() {
        assert_eq!(Eid(0xFF).to_string(), "eid:ff");
    }
}
