//! Triggers — the §6 fork/join mechanism for concurrent multi-transaction
//! requests.
//!
//! "The main issue is forking a request into multiple requests and rejoining
//! the requests when the concurrent branches complete. This can be handled by
//! extending the QM with a trigger mechanism. A trigger is set to send a
//! request when all of the replies to earlier concurrent requests have been
//! received."
//!
//! A [`Trigger`] watches a *join queue*: once every required rid appears
//! among the queue's live elements (each branch enqueues its reply carrying a
//! `rid` attribute), the QM enqueues the trigger's payload — the request for
//! the continuation transaction — into the target queue, exactly once.

use rrq_storage::codec::{put, Decode, Encode, Reader};
use rrq_storage::StorageResult;

/// A persistent fork/join trigger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trigger {
    /// Unique trigger id.
    pub id: String,
    /// Queue where the branch replies accumulate.
    pub join_queue: String,
    /// The `rid` attribute values that must all be present to fire.
    pub required_rids: Vec<String>,
    /// Queue that receives the continuation request when the join completes.
    pub target_queue: String,
    /// Payload of the continuation request.
    pub payload: Vec<u8>,
    /// Set once the trigger has fired (fire-once semantics).
    pub fired: bool,
}

impl Trigger {
    /// Convenience constructor for an unfired trigger.
    pub fn new(
        id: impl Into<String>,
        join_queue: impl Into<String>,
        required_rids: Vec<String>,
        target_queue: impl Into<String>,
        payload: Vec<u8>,
    ) -> Self {
        Trigger {
            id: id.into(),
            join_queue: join_queue.into(),
            required_rids,
            target_queue: target_queue.into(),
            payload,
            fired: false,
        }
    }
}

impl Encode for Trigger {
    fn encode(&self, buf: &mut Vec<u8>) {
        put::string(buf, &self.id);
        put::string(buf, &self.join_queue);
        put::u32(buf, self.required_rids.len() as u32);
        for r in &self.required_rids {
            put::string(buf, r);
        }
        put::string(buf, &self.target_queue);
        put::bytes(buf, &self.payload);
        put::bool(buf, self.fired);
    }
}

impl Decode for Trigger {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        let id = r.string()?;
        let join_queue = r.string()?;
        let n = r.u32()? as usize;
        let mut required_rids = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            required_rids.push(r.string()?);
        }
        let target_queue = r.string()?;
        let payload = r.bytes()?;
        let fired = r.bool()?;
        Ok(Trigger {
            id,
            join_queue,
            required_rids,
            target_queue,
            payload,
            fired,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let t = Trigger::new(
            "join-42",
            "replies",
            vec!["42/a".into(), "42/b".into()],
            "req-final",
            b"finish transfer 42".to_vec(),
        );
        let d = Trigger::decode_all(&t.encode_to_vec()).unwrap();
        assert_eq!(d, t);
        assert!(!d.fired);
    }

    #[test]
    fn fired_flag_roundtrips() {
        let mut t = Trigger::new("x", "j", vec![], "t", vec![]);
        t.fired = true;
        let d = Trigger::decode_all(&t.encode_to_vec()).unwrap();
        assert!(d.fired);
    }
}
