//! The queue manager's data-manipulation operations (Fig 3) and its role as
//! a two-phase-commit participant.
//!
//! ## Transactional semantics (§4.2)
//!
//! Every operation runs under a transaction token issued by
//! [`rrq_txn::TxnManager`]; the manager itself implements
//! [`rrq_txn::ResourceManager`], so queue updates commit or abort atomically
//! with whatever else the transaction did. The key behaviours:
//!
//! * An **aborted dequeue returns the element to its queue** — automatic,
//!   because uncommitted deletes never touch the committed tree.
//! * On the **n-th aborted dequeue** of an element, the abort handler moves
//!   it to the queue's *error queue* (with the abort code recorded), which is
//!   what guarantees a poisoned request cannot cyclically restart a server
//!   forever (§5's termination argument).
//! * A **dequeued element is retained** (keyed by eid) until purged, so
//!   `Read` works "even if the last operation was a Dequeue" (§4.3) — the
//!   basis of the clerk's `Rereceive`.
//!
//! ## Concurrency (§10)
//!
//! Dequeue scans the queue in priority-then-FIFO order and write-locks the
//! element it takes. In [`OrderingMode::SkipLocked`] the scan ignores
//! elements locked by concurrent uncommitted dequeuers (the paper's relaxed
//! ordering, trading strict FIFO for concurrency); in
//! [`OrderingMode::StrictFifo`] it blocks behind the head element's lock.
//! Blocking dequeue on an empty queue uses the [`crate::notify`] versioning
//! — the paper's "notify lock".

use crate::combine::Dispenser;
use crate::element::{Eid, Element, Priority};
use crate::error::{QmError, QmResult};
use crate::keys;
use crate::meta::{OrderingMode, QueueMeta};
use crate::notify::QueueNotifier;
use crate::qindex::QueueIndex;
use crate::registration::{LastOp, Registration};
use crate::retrieval::Predicate;
use crate::trigger::Trigger;
use parking_lot::{Mutex, MutexGuard};
use rrq_storage::codec::{put, Decode, Encode, Reader};
use rrq_storage::kv::KvStore;
use rrq_txn::{
    LockKey, LockManager, LockMode, ResourceManager, TxnError, TxnId, TxnIdGen, TxnResult,
};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// `queue → ordered (element key, eid)` — the shape in which both the ready
/// index ([`QueueManager::index_snapshot`]) and a ground-truth storage scan
/// ([`QueueManager::index_from_scan`]) report the committed element keyspace,
/// so equivalence checks can compare them directly.
pub type IndexSnapshot = BTreeMap<String, Vec<(Vec<u8>, Eid)>>;

/// Identifies a registered (queue, registrant) binding — the `handle`
/// returned by `Register` in Fig 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueHandle {
    /// Queue name.
    pub queue: String,
    /// Registrant name.
    pub registrant: String,
}

/// Options for [`QueueManager::enqueue`].
#[derive(Debug, Clone, Default)]
pub struct EnqueueOptions {
    /// Scheduling priority (higher dequeues first).
    pub priority: Priority,
    /// Content attributes for predicate retrieval.
    pub attrs: Vec<(String, String)>,
    /// Registrant-defined operation tag (§4.3), recorded atomically with the
    /// operation in the registrant's stable registration record.
    pub tag: Option<Vec<u8>>,
}

/// Options for [`QueueManager::dequeue`].
#[derive(Debug, Clone, Default)]
pub struct DequeueOptions {
    /// Operation tag (§4.3).
    pub tag: Option<Vec<u8>>,
    /// Only elements matching this predicate are candidates.
    pub predicate: Option<Predicate>,
    /// Block up to this long when no candidate is available.
    pub block: Option<Duration>,
    /// Route to this error queue instead of the queue's default (`eh` in
    /// Fig 3's Dequeue).
    pub error_queue: Option<String>,
}

/// Operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QmStats {
    /// Committed-path enqueue calls.
    pub enqueues: u64,
    /// Successful dequeue calls.
    pub dequeues: u64,
    /// Read calls.
    pub reads: u64,
    /// Elements skipped because a concurrent dequeuer held their lock.
    pub lock_skips: u64,
    /// Dequeues undone by transaction aborts.
    pub aborted_dequeues: u64,
    /// Elements moved to an error queue.
    pub error_moves: u64,
    /// KillElement calls that cancelled an element.
    pub kills: u64,
    /// Alert-threshold crossings observed at commit.
    pub alerts: u64,
    /// Triggers fired.
    pub triggers_fired: u64,
}

/// A dequeue performed by a still-open transaction.
#[derive(Debug, Clone)]
struct DequeuedRef {
    queue: String,
    elem_key: Vec<u8>,
    eid: Eid,
    /// Error-queue override from the Dequeue call.
    error_queue: Option<String>,
    /// Logical tick at which the element lock was taken (metrics only: the
    /// hold time ends when the owning transaction commits or aborts).
    grabbed_at: u64,
}

/// Outcome of trying to take one dequeue candidate under its element lock.
enum Grab {
    /// Locked, validated, and removed — the dequeue succeeded.
    Taken(Element),
    /// The element vanished between selection and locking.
    Gone,
    /// A kill tombstone is racing; leave the element for its cancel.
    Tombstoned,
    /// The element lock is held by a concurrent dequeuer.
    Busy,
}

/// An enqueue performed by a still-open transaction — enough to make the
/// element visible to the ready index when the transaction commits, and to
/// the transaction's *own* dequeues before then.
#[derive(Debug, Clone)]
struct EnqueuedRef {
    queue: String,
    elem_key: Vec<u8>,
    eid: Eid,
}

#[derive(Debug, Default)]
struct PendingTxn {
    dequeued: Vec<DequeuedRef>,
    enqueued: Vec<EnqueuedRef>,
    enqueued_queues: HashSet<String>,
    /// Set by KillElement when this transaction holds a cancelled element:
    /// the transaction must abort (§7).
    poisoned: Option<Eid>,
    /// Marked by the planned executor (`mark_planned`): commit defers both
    /// durability (the WAL force) and the ready-index/notification mirror to
    /// the epoch close (`apply_epoch`), so speculative results stay
    /// invisible to clerks until the whole epoch is durable.
    planned: bool,
}

/// The queue manager for one repository.
pub struct QueueManager {
    name: String,
    durable: Arc<KvStore>,
    volatile: Arc<KvStore>,
    locks: Arc<LockManager>,
    notifier: QueueNotifier,
    /// Open-transaction bookkeeping, striped by transaction id so concurrent
    /// servers enlisting different transactions don't share one mutex. Each
    /// access touches exactly one stripe; the kill-element poison scan walks
    /// the stripes one at a time (never two guards at once — the `qm-pending`
    /// class in LOCKS.md, enforced by the rrq-analyze `lock-order` rule).
    pending: Box<[Mutex<HashMap<u64, PendingTxn>>]>,
    /// Committed ready-lists per queue — the dequeue/depth hot path. Kept in
    /// lock-step with the stores at commit/abort/kill/destroy boundaries and
    /// rebuilt from a storage scan on restart.
    qindex: QueueIndex,
    /// When false, dequeue and depth fall back to paging the element
    /// keyspace (the pre-index path, kept for benchmarks and verification).
    use_index: AtomicBool,
    /// Flat-combining front end for the ready index (DESIGN.md §24): one
    /// combiner drains the BTreeMap per round and hands disjoint candidate
    /// batches to every concurrently publishing dequeuer.
    dispenser: Dispenser,
    /// When true (and `use_index`), skip-locked non-predicate dequeues go
    /// through the dispenser instead of each paging the index themselves.
    use_combining: AtomicBool,
    /// Ids for internal system transactions (registration writes, abort-count
    /// maintenance). High floor keeps them disjoint from user transactions.
    sys_ids: TxnIdGen,
    epoch: u64,
    counter: AtomicU64,
    ns_map: Mutex<HashMap<String, u32>>,
    next_ns: AtomicU32,
    stats: Mutex<QmStats>,
    /// Queues whose alert threshold was crossed (drained by `take_alerts`).
    alerts: Mutex<Vec<String>>,
    /// Committed-but-unapplied effect mirrors of planned transactions,
    /// buffered until the epoch force (`apply_epoch`). Volatile by design:
    /// a crash mid-epoch drops the buffer along with the (unforced)
    /// commits it mirrors, and recovery rebuilds the index from storage.
    epoch_buf: Mutex<Vec<PendingTxn>>,
}

/// How many candidates a dequeue scan decodes per storage page.
const SCAN_PAGE: usize = 64;

/// Default stripe count for the pending-transaction map; matches the lock
/// manager's default. `with_shards(.., 1)` restores the single-mutex
/// behaviour for baselines and differential tests.
pub const DEFAULT_PENDING_SHARDS: usize = 16;

impl QueueManager {
    /// Build a manager over a durable store and a volatile store, sharing the
    /// node's lock manager, with the default pending-map stripe count.
    pub fn new(
        name: impl Into<String>,
        durable: Arc<KvStore>,
        volatile: Arc<KvStore>,
        locks: Arc<LockManager>,
    ) -> QmResult<Arc<Self>> {
        Self::with_shards(name, durable, volatile, locks, DEFAULT_PENDING_SHARDS)
    }

    /// Build a manager striping the pending-transaction map `shards` ways
    /// (`shards >= 1`). Bumps and persists the repository epoch (element
    /// ids and sequence numbers from this incarnation sort after every
    /// earlier one).
    pub fn with_shards(
        name: impl Into<String>,
        durable: Arc<KvStore>,
        volatile: Arc<KvStore>,
        locks: Arc<LockManager>,
        shards: usize,
    ) -> QmResult<Arc<Self>> {
        Self::with_shards_base(name, durable, volatile, locks, shards, 0)
    }

    /// [`Self::with_shards`] with an epoch *band*: a fresh store starts its
    /// epoch at `epoch_base + 1` instead of `1`. Repository partition *p*
    /// passes `p << 20`, which keeps element ids — `(epoch << 40) | counter`
    /// — disjoint across every partition of a cluster (2^20 restarts per
    /// partition before bands could meet), so an eid names its element
    /// cluster-wide and `Read`/`KillElement` can safely probe partitions.
    /// `epoch_base = 0` is bit-for-bit the single-partition baseline.
    pub fn with_shards_base(
        name: impl Into<String>,
        durable: Arc<KvStore>,
        volatile: Arc<KvStore>,
        locks: Arc<LockManager>,
        shards: usize,
        epoch_base: u64,
    ) -> QmResult<Arc<Self>> {
        let sys_ids = TxnIdGen::new(1 << 56);
        // Bump the epoch in a system transaction.
        let t = sys_ids.next().raw();
        durable.begin(t)?;
        let epoch = match durable.get(Some(t), &keys::epoch_key())? {
            Some(raw) => u64::decode_all(&raw).map_err(QmError::Storage)? + 1,
            None => epoch_base + 1,
        };
        durable.put(t, &keys::epoch_key(), &epoch.encode_to_vec())?;
        durable.commit(t)?;

        // Rebuild the ready index from the committed element keyspace. The
        // caller resolves in-doubt transactions before constructing the
        // manager, so `scan_prefix(None, ..)` is exactly the post-recovery
        // committed truth. (The volatile store is empty after a restart.)
        let qindex = QueueIndex::new();
        for store in [&durable, &volatile] {
            for (k, raw) in store.scan_prefix(None, b"e/")? {
                let Some(queue) = keys::parse_element_key(&k) else {
                    continue;
                };
                let elem = Element::decode_all(&raw).map_err(QmError::Storage)?;
                qindex.insert(queue, k.clone(), elem.eid);
                rrq_obs::counter_inc("qm.recovery.index_rebuild");
            }
        }

        Ok(Arc::new(QueueManager {
            name: name.into(),
            durable,
            volatile,
            locks,
            notifier: QueueNotifier::new(),
            pending: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            qindex,
            use_index: AtomicBool::new(true),
            dispenser: Dispenser::new(),
            use_combining: AtomicBool::new(false),
            sys_ids,
            epoch,
            counter: AtomicU64::new(0),
            ns_map: Mutex::new(HashMap::new()),
            next_ns: AtomicU32::new(1),
            stats: Mutex::new(QmStats::default()),
            alerts: Mutex::new(Vec::new()),
            epoch_buf: Mutex::new(Vec::new()),
        }))
    }

    /// This manager's participant name.
    pub fn qm_name(&self) -> &str {
        &self.name
    }

    /// The repository epoch of this incarnation.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The stripe of the pending map that owns `txn`'s bookkeeping.
    fn pending_shard(&self, txn: u64) -> MutexGuard<'_, HashMap<u64, PendingTxn>> {
        self.pending_shard_at(txn as usize % self.pending.len())
    }

    /// Acquire stripe `i` of the pending map, counting contended
    /// acquisitions (one extra CAS on the uncontended path; the metrics are
    /// no-ops unless a Session is installed).
    fn pending_shard_at(&self, i: usize) -> MutexGuard<'_, HashMap<u64, PendingTxn>> {
        let m = &self.pending[i];
        if let Some(g) = m.try_lock() {
            return g;
        }
        rrq_obs::counter_inc("qm.pending.shard.contended");
        let start = rrq_obs::now();
        let g = m.lock();
        rrq_obs::observe(
            "qm.pending.shard.acquire_wait_ticks",
            rrq_obs::now().saturating_sub(start),
        );
        g
    }

    /// Counter snapshot.
    pub fn stats(&self) -> QmStats {
        *self.stats.lock()
    }

    /// Drain the queue names whose alert thresholds were crossed since the
    /// last call (§9 "alert thresholds").
    pub fn take_alerts(&self) -> Vec<String> {
        std::mem::take(&mut *self.alerts.lock())
    }

    /// The shared lock manager.
    pub fn locks(&self) -> &Arc<LockManager> {
        &self.locks
    }

    fn ns_of(&self, queue: &str) -> u32 {
        let mut g = self.ns_map.lock();
        if let Some(&n) = g.get(queue) {
            return n;
        }
        let n = self.next_ns.fetch_add(1, Ordering::AcqRel);
        g.insert(queue.to_string(), n);
        n
    }

    fn next_eid(&self) -> (Eid, u64) {
        let c = self.counter.fetch_add(1, Ordering::AcqRel);
        let eid = Eid::compose(self.epoch, c);
        // The same epoch-qualified counter doubles as the FIFO sequence.
        (eid, eid.raw())
    }

    fn store_for(&self, meta: &QueueMeta) -> &Arc<KvStore> {
        if meta.durable {
            &self.durable
        } else {
            &self.volatile
        }
    }

    /// Run `f` inside a fresh system transaction on the durable store.
    fn system_txn<R>(&self, f: impl FnOnce(u64) -> QmResult<R>) -> QmResult<R> {
        let t = self.sys_ids.next().raw();
        self.durable.begin(t)?;
        match f(t) {
            Ok(r) => {
                self.durable.commit(t)?;
                Ok(r)
            }
            Err(e) => {
                let _ = self.durable.abort(t);
                Err(e)
            }
        }
    }

    // ------------------------------------------------------------------
    // Data definition (§4.1)
    // ------------------------------------------------------------------

    /// Create a queue. Its error queue is created lazily on first use.
    pub fn create_queue(&self, meta: QueueMeta) -> QmResult<()> {
        self.system_txn(|t| {
            let key = keys::meta_key(&meta.name);
            if self.durable.get(Some(t), &key)?.is_some() {
                return Err(QmError::QueueExists(meta.name.clone()));
            }
            self.durable.put(t, &key, &meta.encode_to_vec())?;
            Ok(())
        })
    }

    /// Fetch a queue's metadata.
    pub fn queue_meta(&self, queue: &str) -> QmResult<QueueMeta> {
        match self.durable.get(None, &keys::meta_key(queue))? {
            Some(raw) => Ok(QueueMeta::decode_all(&raw).map_err(QmError::Storage)?),
            None => Err(QmError::NoSuchQueue(queue.to_string())),
        }
    }

    /// Update a queue's metadata in place (start/stop, redirect, thresholds…).
    pub fn update_queue(&self, queue: &str, f: impl FnOnce(&mut QueueMeta)) -> QmResult<QueueMeta> {
        self.system_txn(|t| {
            let key = keys::meta_key(queue);
            let raw = self
                .durable
                .get(Some(t), &key)?
                .ok_or_else(|| QmError::NoSuchQueue(queue.to_string()))?;
            let mut meta = QueueMeta::decode_all(&raw).map_err(QmError::Storage)?;
            f(&mut meta);
            meta.name = queue.to_string(); // the name is immutable
            self.durable.put(t, &key, &meta.encode_to_vec())?;
            Ok(meta)
        })
    }

    /// Destroy a queue and all of its live elements and registrations.
    pub fn destroy_queue(&self, queue: &str) -> QmResult<()> {
        let meta = self.queue_meta(queue)?;
        let store = Arc::clone(self.store_for(&meta));
        let r = self.system_txn(|t| {
            // Volatile elements live in the other store; handle both.
            if !meta.durable {
                store.begin(t).ok(); // may double-begin if same store
            }
            let rows = self
                .durable
                .scan_prefix(Some(t), &keys::element_prefix(queue))?;
            for (k, _) in rows {
                self.durable.delete(t, &k)?;
            }
            if !meta.durable {
                let vrows = store.scan_prefix(None, &keys::element_prefix(queue))?;
                for (k, _) in vrows {
                    store.delete(t, &k)?;
                }
                store.commit(t).ok();
            }
            let regs = self
                .durable
                .scan_prefix(Some(t), format!("r/{queue}/").as_bytes())?;
            for (k, _) in regs {
                self.durable.delete(t, &k)?;
            }
            self.durable.delete(t, &keys::meta_key(queue))?;
            Ok(())
        });
        if r.is_ok() {
            self.qindex.clear_queue(queue);
            self.dispenser.forget_queue(queue);
        }
        r
    }

    /// List all queue names in the repository.
    pub fn list_queues(&self) -> QmResult<Vec<String>> {
        let rows = self.durable.scan_prefix(None, b"m/")?;
        let mut out = Vec::with_capacity(rows.len());
        for (_, raw) in rows {
            out.push(QueueMeta::decode_all(&raw).map_err(QmError::Storage)?.name);
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Registration (§4.3)
    // ------------------------------------------------------------------

    /// `Register(qname, client, stable-flag)` — idempotent. If the registrant
    /// is already registered (e.g. recovering from a failure), the existing
    /// record — including the last tagged operation — is returned unchanged.
    pub fn register(
        &self,
        queue: &str,
        registrant: &str,
        stable: bool,
    ) -> QmResult<(QueueHandle, Registration)> {
        self.queue_meta(queue)?; // must exist
        let handle = QueueHandle {
            queue: queue.to_string(),
            registrant: registrant.to_string(),
        };
        let key = keys::registration_key(queue, registrant);
        // Registration records are serialized by the KV store itself, not
        // by a lock-manager lock; report them through the store-latch hooks
        // so any future direct access that bypasses this path is flagged.
        let cell = reg_cell(queue, registrant);
        rrq_check::race::serialized_read(&cell);
        if let Some(raw) = self.durable.get(None, &key)? {
            let reg = Registration::decode_all(&raw).map_err(QmError::Storage)?;
            return Ok((handle, reg));
        }
        let reg = Registration::new(registrant, queue, stable);
        let reg2 = reg.clone();
        rrq_check::race::serialized_write(&cell);
        self.system_txn(move |t| {
            self.durable.put(t, &key, &reg2.encode_to_vec())?;
            Ok(())
        })?;
        Ok((handle, reg))
    }

    /// `Deregister` — destroys all registration information (§4.3).
    pub fn deregister(&self, handle: &QueueHandle) -> QmResult<()> {
        let key = keys::registration_key(&handle.queue, &handle.registrant);
        rrq_check::race::serialized_write(&reg_cell(&handle.queue, &handle.registrant));
        self.system_txn(|t| {
            if self.durable.get(Some(t), &key)?.is_none() {
                return Err(QmError::NotRegistered(handle.registrant.clone()));
            }
            self.durable.delete(t, &key)?;
            Ok(())
        })
    }

    /// Update the registrant's stable last-operation record inside the user
    /// transaction `txn` — atomic with the tagged operation.
    fn record_op(
        &self,
        txn: u64,
        handle: &QueueHandle,
        op: LastOp,
        tag: Option<&[u8]>,
        eid: Eid,
        payload: &[u8],
    ) -> QmResult<()> {
        let key = keys::registration_key(&handle.queue, &handle.registrant);
        // Read-modify-write of the registration record under the store's
        // internal serialization (see `register`).
        rrq_check::race::serialized_write(&reg_cell(&handle.queue, &handle.registrant));
        let raw = self
            .durable
            .get(Some(txn), &key)?
            .ok_or_else(|| QmError::NotRegistered(handle.registrant.clone()))?;
        let mut reg = Registration::decode_all(&raw).map_err(QmError::Storage)?;
        if reg.stable {
            reg.record(op, tag, eid, payload);
            self.durable.put(txn, &key, &reg.encode_to_vec())?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Enqueue / Dequeue / Read / KillElement (§4.2, §7)
    // ------------------------------------------------------------------

    /// Resolve §9 queue redirection, guarding against cycles.
    fn resolve_queue(&self, queue: &str) -> QmResult<QueueMeta> {
        let mut name = queue.to_string();
        for _ in 0..32 {
            let meta = self.queue_meta(&name)?;
            match &meta.redirect_to {
                Some(t) if t != &meta.name => name = t.clone(),
                _ => return Ok(meta),
            }
        }
        Err(QmError::RedirectCycle(queue.to_string()))
    }

    /// `Enqueue(h, element, t)` — create an element in the handle's queue
    /// under transaction `txn`, returning its eid.
    pub fn enqueue(
        &self,
        txn: u64,
        handle: &QueueHandle,
        payload: &[u8],
        opts: EnqueueOptions,
    ) -> QmResult<Eid> {
        let meta = self.resolve_queue(&handle.queue)?;
        if !meta.started {
            return Err(QmError::QueueStopped(meta.name.clone()));
        }
        let store = self.store_for(&meta);
        let (eid, seq) = self.next_eid();
        let elem = Element {
            eid,
            priority: opts.priority,
            seq,
            abort_count: 0,
            abort_code: 0,
            attrs: opts.attrs,
            payload: payload.to_vec(),
        };
        let ekey = keys::element_key(&meta.name, elem.priority, seq);
        store.put(txn, &ekey, &elem.encode_to_vec())?;
        // Tracked for the race detector; the matching dequeue-side access
        // is ordered by the queue's enqueue→dequeue happens-before edge.
        rrq_check::race::on_write(&format!("qm/elem/{eid}"));
        // Live-element index: eid → (queue, element key). Always durable so
        // Read/Kill can find volatile elements too? No — volatile elements
        // index in the volatile store, consistent with their lifetime.
        store.put(txn, &keys::index_key(eid), &encode_index(&meta.name, &ekey))?;
        if opts.tag.is_some() {
            self.record_op(
                txn,
                handle,
                LastOp::Enqueue,
                opts.tag.as_deref(),
                eid,
                payload,
            )?;
        }
        {
            let mut g = self.pending_shard(txn);
            let p = g.entry(txn).or_default();
            p.enqueued.push(EnqueuedRef {
                queue: meta.name.clone(),
                elem_key: ekey.clone(),
                eid,
            });
            p.enqueued_queues.insert(meta.name.clone());
        }
        rrq_check::race::queue_enqueued(&meta.name);
        self.stats.lock().enqueues += 1;
        rrq_obs::counter_inc("qm.enqueue.ops");
        Ok(eid)
    }

    /// `Dequeue(h, t, eh)` — remove and return the next element under
    /// transaction `txn`. See the module docs for ordering and blocking
    /// semantics.
    pub fn dequeue(
        &self,
        txn: u64,
        handle: &QueueHandle,
        opts: DequeueOptions,
    ) -> QmResult<Element> {
        let meta = self.queue_meta(&handle.queue)?;
        if !meta.started {
            return Err(QmError::QueueStopped(meta.name.clone()));
        }
        let deadline = opts.block.map(|d| Instant::now() + d);
        loop {
            let seen = self.notifier.version(&meta.name);
            match self.try_dequeue_once(txn, handle, &meta, &opts, deadline)? {
                Some(elem) => return Ok(elem),
                None => {
                    let Some(dl) = deadline else {
                        return Err(QmError::Empty(meta.name.clone()));
                    };
                    let now = Instant::now();
                    if now >= dl {
                        return Err(QmError::Empty(meta.name.clone()));
                    }
                    self.notifier.wait_past(&meta.name, seen, dl - now);
                    if Instant::now() >= dl {
                        return Err(QmError::Empty(meta.name.clone()));
                    }
                }
            }
        }
    }

    /// One candidate-selection pass. `Ok(None)` means no candidate is
    /// currently available.
    fn try_dequeue_once(
        &self,
        txn: u64,
        handle: &QueueHandle,
        meta: &QueueMeta,
        opts: &DequeueOptions,
        deadline: Option<Instant>,
    ) -> QmResult<Option<Element>> {
        if self.use_index.load(Ordering::Acquire) {
            rrq_obs::counter_inc("qm.dequeue.index_hits");
            // The combining front end covers the storm case E17 measured:
            // many skip-locked dequeuers racing on one queue. Strict-FIFO
            // blocks on the head by design and predicate dequeues filter
            // requester-side, so both keep the direct index path.
            if self.use_combining.load(Ordering::Acquire)
                && meta.mode == OrderingMode::SkipLocked
                && opts.predicate.is_none()
            {
                self.try_dequeue_once_combined(txn, handle, meta, opts, deadline)
            } else {
                self.try_dequeue_once_indexed(txn, handle, meta, opts, deadline)
            }
        } else {
            rrq_obs::counter_inc("qm.dequeue.scan_fallbacks");
            self.try_dequeue_once_scan(txn, handle, meta, opts, deadline)
        }
    }

    /// Lock, re-validate, and take one candidate element. Shared tail of the
    /// indexed and scan dequeue paths; candidate selection differs, what
    /// happens once a candidate is chosen must not.
    #[allow(clippy::too_many_arguments)]
    fn grab_element(
        &self,
        txn: u64,
        handle: &QueueHandle,
        meta: &QueueMeta,
        opts: &DequeueOptions,
        deadline: Option<Instant>,
        ns: u32,
        store: &Arc<KvStore>,
        ekey: &[u8],
    ) -> QmResult<Grab> {
        let lk = LockKey::new(ns, ekey.to_vec());
        let acquired = match meta.mode {
            OrderingMode::SkipLocked => self.locks.try_lock(txn, &lk, LockMode::Exclusive),
            OrderingMode::StrictFifo => {
                // Block behind the head element's lock.
                let wait = deadline
                    .map(|dl| dl.saturating_duration_since(Instant::now()))
                    .unwrap_or(Duration::from_secs(5));
                self.locks.lock(txn, &lk, LockMode::Exclusive, wait)
            }
        };
        match acquired {
            Ok(()) => {}
            Err(TxnError::LockTimeout) => {
                self.stats.lock().lock_skips += 1;
                rrq_obs::counter_inc("qm.dequeue.lock_skips");
                return Ok(Grab::Busy);
            }
            Err(e) => return Err(e.into()),
        }
        // Re-check under the lock: the element may have been taken
        // (committed) between candidate selection and lock acquisition.
        let Some(raw2) = store.get(Some(txn), ekey)? else {
            return Ok(Grab::Gone);
        };
        let elem = Element::decode_all(&raw2).map_err(QmError::Storage)?;
        // A kill tombstone means a cancel is racing; skip.
        if self.durable.get(None, &keys::kill_key(elem.eid))?.is_some() {
            return Ok(Grab::Tombstoned);
        }
        // Join the queue's happens-before edge, then touch the tracked
        // element cell (we hold its element lock, so this is also
        // lock-ordered).
        rrq_check::race::queue_dequeued(&meta.name);
        rrq_check::race::on_write(&format!("qm/elem/{}", elem.eid));
        store.delete(txn, ekey)?;
        store.delete(txn, &keys::index_key(elem.eid))?;
        // Retain the element contents for Read/Rereceive.
        store.put(txn, &keys::retained_key(elem.eid), &raw2)?;
        if opts.tag.is_some() {
            self.record_op(
                txn,
                handle,
                LastOp::Dequeue,
                opts.tag.as_deref(),
                elem.eid,
                &elem.payload,
            )?;
        }
        self.pending_shard(txn)
            .entry(txn)
            .or_default()
            .dequeued
            .push(DequeuedRef {
                queue: meta.name.clone(),
                elem_key: ekey.to_vec(),
                eid: elem.eid,
                error_queue: opts.error_queue.clone(),
                grabbed_at: rrq_obs::now(),
            });
        self.stats.lock().dequeues += 1;
        rrq_obs::counter_inc("qm.dequeue.ops");
        Ok(Grab::Taken(elem))
    }

    /// Candidate selection from the in-memory ready index: the committed
    /// ready-list merged with this transaction's own uncommitted enqueues,
    /// minus its own uncommitted dequeues — the same visibility the storage
    /// scan derives from the transaction overlay, without paging the
    /// keyspace.
    fn try_dequeue_once_indexed(
        &self,
        txn: u64,
        handle: &QueueHandle,
        meta: &QueueMeta,
        opts: &DequeueOptions,
        deadline: Option<Instant>,
    ) -> QmResult<Option<Element>> {
        let store = self.store_for(meta);
        let ns = self.ns_of(&meta.name);
        // This transaction's own uncommitted overlay for the queue.
        let (own_enq, own_deq) = {
            let g = self.pending_shard(txn);
            match g.get(&txn) {
                None => (Vec::new(), HashSet::new()),
                Some(p) => {
                    let mut enq: Vec<(Vec<u8>, Eid)> = p
                        .enqueued
                        .iter()
                        .filter(|e| e.queue == meta.name)
                        .map(|e| (e.elem_key.clone(), e.eid))
                        .collect();
                    enq.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                    let deq: HashSet<Vec<u8>> =
                        p.dequeued.iter().map(|d| d.elem_key.clone()).collect();
                    (enq, deq)
                }
            }
        };
        // One page buffer for the whole dequeue pass — `candidates_after_into`
        // clears and refills it, so paging costs one allocation total and an
        // empty page none at all.
        let mut cands: Vec<(Vec<u8>, Eid)> = Vec::new();
        'rescan: loop {
            let mut after: Option<Vec<u8>> = None;
            loop {
                self.qindex.candidates_after_into(
                    &meta.name,
                    after.as_deref(),
                    SCAN_PAGE,
                    &mut cands,
                );
                let exhausted = cands.len() < SCAN_PAGE;
                let hi = cands.last().map(|(k, _)| k.clone());
                // Merge own enqueues falling inside this window so ordering
                // across committed and own-pending elements is preserved.
                for (k, eid) in &own_enq {
                    let past_cursor = after.as_deref().is_none_or(|a| k.as_slice() > a);
                    let in_window = exhausted || hi.as_deref().is_some_and(|h| k.as_slice() <= h);
                    if past_cursor && in_window {
                        cands.push((k.clone(), *eid));
                    }
                }
                cands.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                cands.dedup_by(|a, b| a.0 == b.0);
                for (ekey, _) in &cands {
                    if own_deq.contains(ekey) {
                        continue;
                    }
                    if let Some(p) = &opts.predicate {
                        // Pre-filter without the lock, as the scan path does
                        // from its page contents.
                        let Some(raw) = store.get(Some(txn), ekey)? else {
                            continue;
                        };
                        let elem = Element::decode_all(&raw).map_err(QmError::Storage)?;
                        if !p.matches(&elem) {
                            continue;
                        }
                    }
                    match self.grab_element(txn, handle, meta, opts, deadline, ns, store, ekey)? {
                        Grab::Taken(e) => return Ok(Some(e)),
                        Grab::Gone => {
                            if meta.mode == OrderingMode::StrictFifo {
                                // Head is truly gone; restart the pass.
                                continue 'rescan;
                            }
                            continue;
                        }
                        Grab::Tombstoned => continue,
                        Grab::Busy => match meta.mode {
                            OrderingMode::SkipLocked => continue,
                            OrderingMode::StrictFifo => return Ok(None),
                        },
                    }
                }
                if exhausted {
                    return Ok(None);
                }
                // Own enqueues at or below `hi` were already considered, so
                // the cursor advances on the index's own pagination.
                after = hi;
            }
        }
    }

    /// Candidate selection through the flat-combining dispenser (DESIGN.md
    /// §24): publish a request slot, let the single combiner drain the ready
    /// index once for every concurrently publishing dequeuer, and grab only
    /// the disjoint candidates handed to this slot. Own uncommitted enqueues
    /// are merged requester-side exactly as the direct index path does (they
    /// are invisible to the committed-only index, hence to the combiner).
    fn try_dequeue_once_combined(
        &self,
        txn: u64,
        handle: &QueueHandle,
        meta: &QueueMeta,
        opts: &DequeueOptions,
        deadline: Option<Instant>,
    ) -> QmResult<Option<Element>> {
        let store = self.store_for(meta);
        let ns = self.ns_of(&meta.name);
        // This transaction's own uncommitted overlay for the queue.
        let (own_enq, own_deq) = {
            let g = self.pending_shard(txn);
            match g.get(&txn) {
                None => (Vec::new(), HashSet::new()),
                Some(p) => {
                    let mut enq: Vec<(Vec<u8>, Eid)> = p
                        .enqueued
                        .iter()
                        .filter(|e| e.queue == meta.name)
                        .map(|e| (e.elem_key.clone(), e.eid))
                        .collect();
                    enq.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                    let deq: HashSet<Vec<u8>> =
                        p.dequeued.iter().map(|d| d.elem_key.clone()).collect();
                    (enq, deq)
                }
            }
        };
        // Keys this pass already tried and failed on, plus own uncommitted
        // dequeues: excluded from later handouts so a re-request advances
        // past them instead of spinning on the same stale candidate.
        let mut tried: HashSet<Vec<u8>> = own_deq;
        loop {
            let handout = self.dispenser.request(&self.qindex, &meta.name, 1, &tried);
            // Merge own enqueues (invisible to the index) in key order so
            // priority-then-FIFO holds across committed and own-pending
            // elements.
            let mut cands: Vec<(&Vec<u8>, Eid)> =
                handout.candidates.iter().map(|(k, e)| (k, *e)).collect();
            for (k, eid) in &own_enq {
                if !tried.contains(k) {
                    cands.push((k, *eid));
                }
            }
            cands.sort_unstable_by(|a, b| a.0.cmp(b.0));
            cands.dedup_by(|a, b| a.0 == b.0);
            let mut taken: Option<Element> = None;
            let mut grab_err: Option<QmError> = None;
            let mut consumed: Option<Vec<u8>> = None;
            for (ekey, _) in &cands {
                match self.grab_element(txn, handle, meta, opts, deadline, ns, store, ekey) {
                    Ok(Grab::Taken(e)) => {
                        consumed = Some((*ekey).clone());
                        taken = Some(e);
                        break;
                    }
                    // Stale, tombstoned, or locked by a non-combining path:
                    // record and move on, exactly as skip-locked always has.
                    Ok(_) => {
                        tried.insert((*ekey).clone());
                    }
                    Err(e) => {
                        grab_err = Some(e);
                        break;
                    }
                }
            }
            // Clear the handed marks for everything this slot did not take
            // — on every exit path, including errors. The taken key stays
            // marked until the commit/abort/kill that mutates its index
            // entry invalidates it, so no other round can re-dispense an
            // element whose taker still holds the element lock.
            let unconsumed: Vec<Vec<u8>> = handout
                .candidates
                .iter()
                .map(|(k, _)| k.clone())
                .filter(|k| consumed.as_ref() != Some(k))
                .collect();
            self.dispenser.release(&meta.name, &unconsumed);
            if let Some(e) = grab_err {
                return Err(e);
            }
            if let Some(e) = taken {
                return Ok(Some(e));
            }
            if handout.exhausted {
                // The combiner ran the index dry for this slot's exclusions:
                // nothing is available right now — same answer the direct
                // skip-locked pass gives after paging to the tail.
                return Ok(None);
            }
        }
    }

    /// Candidate selection by paging the element keyspace — the pre-index
    /// path, kept for benchmarking and as the verification baseline for the
    /// index (`index_divergence`).
    fn try_dequeue_once_scan(
        &self,
        txn: u64,
        handle: &QueueHandle,
        meta: &QueueMeta,
        opts: &DequeueOptions,
        deadline: Option<Instant>,
    ) -> QmResult<Option<Element>> {
        let store = self.store_for(meta);
        let ns = self.ns_of(&meta.name);
        let prefix = keys::element_prefix(&meta.name);
        'rescan: loop {
            let mut after: Option<Vec<u8>> = None;
            loop {
                let (page, cursor) =
                    store.scan_prefix_page(Some(txn), &prefix, after.as_deref(), SCAN_PAGE)?;
                for (ekey, raw) in &page {
                    let elem = Element::decode_all(raw).map_err(QmError::Storage)?;
                    if let Some(p) = &opts.predicate {
                        if !p.matches(&elem) {
                            continue;
                        }
                    }
                    match self.grab_element(txn, handle, meta, opts, deadline, ns, store, ekey)? {
                        Grab::Taken(e) => return Ok(Some(e)),
                        Grab::Gone => {
                            if meta.mode == OrderingMode::StrictFifo {
                                // Head is truly gone; restart the scan.
                                continue 'rescan;
                            }
                            continue;
                        }
                        Grab::Tombstoned => continue,
                        Grab::Busy => match meta.mode {
                            OrderingMode::SkipLocked => continue,
                            OrderingMode::StrictFifo => return Ok(None),
                        },
                    }
                }
                match cursor {
                    Some(c) => after = Some(c),
                    None => return Ok(None),
                }
            }
        }
    }

    /// Batch dequeue (§1: requests "can be captured reliably in a queue, and
    /// processed later in a batch"): remove up to `max` elements in one
    /// transaction. Returns fewer (possibly zero) when the queue runs dry —
    /// batch consumers don't block.
    pub fn dequeue_batch(
        &self,
        txn: u64,
        handle: &QueueHandle,
        max: usize,
        opts: &DequeueOptions,
    ) -> QmResult<Vec<Element>> {
        let mut out = Vec::with_capacity(max.min(64));
        for _ in 0..max {
            match self.dequeue(
                txn,
                handle,
                DequeueOptions {
                    tag: None, // tags describe single ops; batch is untagged
                    predicate: opts.predicate.clone(),
                    block: None,
                    error_queue: opts.error_queue.clone(),
                },
            ) {
                Ok(e) => out.push(e),
                Err(QmError::Empty(_)) => break,
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    /// Dequeue from a *queue set* (§9, DECintact: "queue sets (a view of a
    /// set of queues)"): take the next available element from any of the
    /// named queues, trying them in order. Blocks (when `opts.block` is set)
    /// until one of them yields.
    pub fn dequeue_from_set(
        &self,
        txn: u64,
        handles: &[QueueHandle],
        opts: DequeueOptions,
    ) -> QmResult<(usize, Element)> {
        if handles.is_empty() {
            return Err(QmError::Invalid("empty queue set".into()));
        }
        let deadline = opts.block.map(|d| Instant::now() + d);
        loop {
            // Record versions before scanning so wakeups are not missed.
            let versions: Vec<u64> = handles
                .iter()
                .map(|h| self.notifier.version(&h.queue))
                .collect();
            for (i, h) in handles.iter().enumerate() {
                match self.dequeue(
                    txn,
                    h,
                    DequeueOptions {
                        tag: opts.tag.clone(),
                        predicate: opts.predicate.clone(),
                        block: None,
                        error_queue: opts.error_queue.clone(),
                    },
                ) {
                    Ok(e) => return Ok((i, e)),
                    Err(QmError::Empty(_)) => continue,
                    Err(e) => return Err(e),
                }
            }
            let Some(dl) = deadline else {
                return Err(QmError::Empty(format!(
                    "queue set [{}]",
                    handles
                        .iter()
                        .map(|h| h.queue.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            };
            let now = Instant::now();
            if now >= dl {
                return Err(QmError::Empty("queue set".into()));
            }
            // Wait for any member queue to gain elements (short poll slices
            // so a signal on a later queue is still noticed promptly).
            let slice = (dl - now).min(Duration::from_millis(25));
            let mut woken = false;
            for (h, &seen) in handles.iter().zip(&versions) {
                if self.notifier.version(&h.queue) > seen {
                    woken = true;
                    break;
                }
            }
            if !woken {
                self.notifier
                    .wait_past(&handles[0].queue, versions[0], slice);
            }
        }
    }

    /// `Read(h, e)` — return the element with `eid` without modifying it.
    /// Works for live elements and for retained (already dequeued) ones.
    pub fn read(&self, eid: Eid) -> QmResult<Element> {
        self.stats.lock().reads += 1;
        for store in [&self.durable, &self.volatile] {
            if let Some(raw) = store.get(None, &keys::index_key(eid))? {
                let (_, ekey) = decode_index(&raw)?;
                if let Some(eraw) = store.get(None, &ekey)? {
                    return Element::decode_all(&eraw).map_err(QmError::Storage);
                }
            }
            if let Some(raw) = store.get(None, &keys::retained_key(eid))? {
                return Element::decode_all(&raw).map_err(QmError::Storage);
            }
        }
        Err(QmError::NoSuchElement(eid.raw()))
    }

    /// `KillElement(e)` — §7 cancellation.
    ///
    /// * Live and unlocked: deleted immediately; returns `true`.
    /// * Dequeued by an uncommitted transaction: that transaction is poisoned
    ///   (its commit fails, forcing an abort) and a tombstone ensures the
    ///   element is deleted instead of requeued; returns `true`.
    /// * Already dequeued and committed: returns `false` — too late (§7: with
    ///   multi-transaction requests, use compensation).
    pub fn kill_element(&self, eid: Eid) -> QmResult<bool> {
        // Find the element in either store.
        for store in [&self.durable, &self.volatile] {
            let Some(raw) = store.get(None, &keys::index_key(eid))? else {
                continue;
            };
            let (queue, ekey) = decode_index(&raw)?;
            let ns = self.ns_of(&queue);
            let lk = LockKey::new(ns, ekey.clone());
            let sys = self.sys_ids.next().raw();
            match self.locks.try_lock(sys, &lk, LockMode::Exclusive) {
                Ok(()) => {
                    // Unlocked: delete right now in a system transaction.
                    let r = Self::kill_live_element(store, sys, &ekey, eid);
                    self.locks.unlock_all(sys);
                    let killed = r?;
                    if killed {
                        self.qindex.remove(&queue, &ekey);
                        self.dispenser.invalidate(&queue, &ekey);
                        rrq_obs::counter_inc("qm.element.dropped");
                        self.stats.lock().kills += 1;
                    }
                    return Ok(killed);
                }
                Err(_) => {
                    // Held by an in-flight dequeuer: poison it and leave a
                    // tombstone for its abort path.
                    self.system_txn(|t| {
                        self.durable.put(t, &keys::kill_key(eid), &[1])?;
                        Ok(())
                    })?;
                    // Walk the stripes one at a time; a dequeuer lives in
                    // exactly one, and holding two guards is never needed.
                    for i in 0..self.pending.len() {
                        let mut g = self.pending_shard_at(i);
                        for p in g.values_mut() {
                            if p.dequeued.iter().any(|d| d.eid == eid) {
                                p.poisoned = Some(eid);
                            }
                        }
                    }
                    self.stats.lock().kills += 1;
                    return Ok(true);
                }
            }
        }
        Ok(false)
    }

    /// Delete a live, unlocked element inside a committed system
    /// transaction; returns whether it was still present. A named function
    /// (not a closure in `kill_element`) so the durability-dominator pass
    /// can see the `commit` on every path to the caller's index update.
    fn kill_live_element(store: &Arc<KvStore>, sys: u64, ekey: &[u8], eid: Eid) -> QmResult<bool> {
        store.begin(sys)?;
        let still_there = store.get(Some(sys), ekey)?.is_some();
        if still_there {
            store.delete(sys, ekey)?;
            store.delete(sys, &keys::index_key(eid))?;
        }
        store.commit(sys)?;
        Ok(still_there)
    }

    /// Number of live (committed) elements in `queue` — answered from the
    /// ready index, no storage scan.
    pub fn depth(&self, queue: &str) -> QmResult<usize> {
        self.queue_meta(queue)?; // unknown queues still error
        if self.use_index.load(Ordering::Acquire) {
            return Ok(self.qindex.depth(queue));
        }
        self.depth_scan(queue)
    }

    /// Depth by paging the element keyspace — the pre-index path, kept for
    /// benchmarking and as the index's verification baseline.
    pub fn depth_scan(&self, queue: &str) -> QmResult<usize> {
        let meta = self.queue_meta(queue)?;
        let store = self.store_for(&meta);
        let prefix = keys::element_prefix(queue);
        let mut after: Option<Vec<u8>> = None;
        let mut n = 0usize;
        loop {
            let (page, cursor) = store.scan_prefix_page(None, &prefix, after.as_deref(), 256)?;
            n += page.len();
            match cursor {
                Some(c) => after = Some(c),
                None => return Ok(n),
            }
        }
    }

    /// Switch dequeue candidate selection and `depth` between the ready
    /// index (the default) and the raw storage scan. Benchmarks A/B the two;
    /// semantics are identical.
    pub fn set_indexed_dequeue(&self, on: bool) {
        self.use_index.store(on, Ordering::Release);
    }

    /// Whether the indexed hot path is active.
    pub fn indexed_dequeue(&self) -> bool {
        self.use_index.load(Ordering::Acquire)
    }

    /// Toggle the flat-combining dequeue front end (DESIGN.md §24). Clears
    /// all combining state on either transition so handed-out marks from a
    /// previous mode can never shadow live index entries.
    pub fn set_dequeue_combining(&self, on: bool) {
        self.dispenser.clear();
        self.use_combining.store(on, Ordering::Release);
    }

    /// Whether skip-locked dequeues go through the combining dispenser.
    pub fn dequeue_combining(&self) -> bool {
        self.use_combining.load(Ordering::Acquire)
    }

    /// Mark `txn` as a planned-epoch member: its commit defers durability
    /// (the WAL force) and the index/notification mirror to the next
    /// [`QueueManager::apply_epoch`]. Call right after enlisting the queue
    /// manager, before the transaction touches any element.
    pub fn mark_planned(&self, txn: u64) {
        self.pending_shard(txn).entry(txn).or_default().planned = true;
    }

    /// Mirror every buffered planned commit into the ready index and fire
    /// the deferred wakeups/alerts — the qindex batch application at epoch
    /// close. The caller must force the durable store's WAL first
    /// ([`rrq_storage::kv::KvStore::force_wal`]): a clerk woken here may
    /// immediately read its reply, which therefore must already be durable.
    pub fn apply_epoch(&self) {
        let buffered = {
            let mut buf = self.epoch_buf.lock();
            std::mem::take(&mut *buf)
        };
        for pend in &buffered {
            self.apply_committed(pend);
        }
    }

    /// Mirror one committed transaction's effects into the ready index
    /// *before* waking anyone: a dequeuer signalled below must find the new
    /// entries. The index application itself is the batch
    /// [`QueueIndex::apply_mirror`] — by the time this runs, the
    /// transaction's commit record is already appended (and, per the
    /// caller's protocol, forced), so the mirror redoes durable effects.
    fn apply_committed(&self, pend: &PendingTxn) {
        self.qindex.apply_mirror(
            pend.enqueued
                .iter()
                .map(|e| (e.queue.as_str(), e.elem_key.clone(), e.eid)),
            pend.dequeued
                .iter()
                .map(|dq| (dq.queue.as_str(), dq.elem_key.as_slice())),
        );
        rrq_obs::counter_add("qm.enqueue.committed", pend.enqueued.len() as u64);
        for dq in &pend.dequeued {
            self.dispenser.invalidate(&dq.queue, &dq.elem_key);
            rrq_obs::counter_inc("qm.dequeue.committed");
            rrq_obs::observe(
                "qm.element.lock_hold_ticks",
                rrq_obs::now().saturating_sub(dq.grabbed_at),
            );
        }
        for q in &pend.enqueued_queues {
            // Counted wakeup: at most one blocked dequeuer per newly
            // available element, never the herd (see `notify`).
            let newly = pend.enqueued.iter().filter(|e| &e.queue == q).count();
            self.notifier.signal_n(q, newly);
            // Alert thresholds (§9).
            if let Ok(meta) = self.queue_meta(q) {
                if let Some(thresh) = meta.alert_threshold {
                    if let Ok(d) = self.depth(q) {
                        if d as u64 >= thresh {
                            self.alerts.lock().push(q.clone());
                            self.stats.lock().alerts += 1;
                        }
                    }
                }
            }
            // Fork/join triggers (§6).
            let _ = self.check_triggers(q);
        }
    }

    /// The first `max` committed ready elements of `queue`, in dequeue
    /// order — the epoch batch former. Purely a read of the ready index:
    /// nothing is locked, consumed, or handed out. Entries may race with
    /// concurrent committed dequeues; [`QueueManager::dequeue_planned`]
    /// revalidates against storage when the element is actually taken.
    pub fn ready_batch(&self, queue: &str, max: usize) -> QmResult<Vec<(Vec<u8>, Eid)>> {
        let meta = self.queue_meta(queue)?;
        if !meta.started {
            return Err(QmError::QueueStopped(meta.name.clone()));
        }
        let mut cands = Vec::new();
        self.qindex
            .candidates_after_into(&meta.name, None, max, &mut cands);
        Ok(cands)
    }

    /// Take the specific element the epoch plan assigned to `txn`,
    /// *without* the element-lock backstop: the plan already guarantees no
    /// concurrent transaction was handed this key, so the try-lock that
    /// `grab_element` uses to arbitrate racing dequeuers has nothing to
    /// arbitrate. `Ok(None)` means the element is gone (consumed by an
    /// earlier epoch, moved by abort disposition, or tombstoned by a racing
    /// kill) — the caller drops the task from the plan.
    pub fn dequeue_planned(
        &self,
        txn: u64,
        handle: &QueueHandle,
        ekey: &[u8],
    ) -> QmResult<Option<Element>> {
        let meta = self.queue_meta(&handle.queue)?;
        if !meta.started {
            return Err(QmError::QueueStopped(meta.name.clone()));
        }
        let store = self.store_for(&meta);
        let Some(raw) = store.get(Some(txn), ekey)? else {
            return Ok(None);
        };
        let elem = Element::decode_all(&raw).map_err(QmError::Storage)?;
        // A kill tombstone means a cancel is racing; leave it for the kill.
        if self.durable.get(None, &keys::kill_key(elem.eid))?.is_some() {
            return Ok(None);
        }
        // Join the queue's happens-before edge, then touch the tracked
        // element cell (the plan orders all access to this element, the way
        // the element lock does on the locked path).
        rrq_check::race::queue_dequeued(&meta.name);
        rrq_check::race::on_write(&format!("qm/elem/{}", elem.eid));
        store.delete(txn, ekey)?;
        store.delete(txn, &keys::index_key(elem.eid))?;
        // Retain the element contents for Read/Rereceive.
        store.put(txn, &keys::retained_key(elem.eid), &raw)?;
        self.pending_shard(txn)
            .entry(txn)
            .or_default()
            .dequeued
            .push(DequeuedRef {
                queue: meta.name.clone(),
                elem_key: ekey.to_vec(),
                eid: elem.eid,
                error_queue: None,
                grabbed_at: rrq_obs::now(),
            });
        self.stats.lock().dequeues += 1;
        rrq_obs::counter_inc("qm.dequeue.ops");
        Ok(Some(elem))
    }

    /// The ready index's current contents: `queue → ordered (key, eid)`.
    pub fn index_snapshot(&self) -> IndexSnapshot {
        self.qindex.snapshot()
    }

    /// The ready index's element total and the `qm.queue.depth` gauge
    /// reading, captured in one critical section. The two must always agree
    /// — the gauge is updated inside the index mutex (see [`QueueIndex`]).
    pub fn depth_accounting(&self) -> (usize, i64) {
        self.qindex.depth_accounting()
    }

    /// The same structure derived from a fresh scan of the committed element
    /// keyspace in both stores — the ground truth the index must match at
    /// any quiescent point (and, critically, right after recovery).
    pub fn index_from_scan(&self) -> QmResult<IndexSnapshot> {
        let mut out = IndexSnapshot::new();
        for store in [&self.durable, &self.volatile] {
            for (k, raw) in store.scan_prefix(None, b"e/")? {
                let Some(queue) = keys::parse_element_key(&k) else {
                    continue;
                };
                let elem = Element::decode_all(&raw).map_err(QmError::Storage)?;
                out.entry(queue.to_string())
                    .or_default()
                    .push((k, elem.eid));
            }
        }
        for v in out.values_mut() {
            v.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        }
        Ok(out)
    }

    /// Verification hook: is the element lock for `(queue, ekey)` free?
    /// Probes with a throwaway system id and releases immediately. Dequeue
    /// locks are volatile, so after a restart this must hold for every
    /// indexed element.
    pub fn element_lock_free(&self, queue: &str, ekey: &[u8]) -> bool {
        let ns = self.ns_of(queue);
        let lk = LockKey::new(ns, ekey.to_vec());
        let probe = self.sys_ids.next().raw();
        let free = self.locks.try_lock(probe, &lk, LockMode::Exclusive).is_ok();
        self.locks.unlock_all(probe);
        free
    }

    /// `None` when the ready index and a fresh storage scan agree exactly
    /// (same queues, same keys in the same order, same eids); otherwise a
    /// description of the first divergence.
    pub fn index_divergence(&self) -> QmResult<Option<String>> {
        let ix = self.index_snapshot();
        let scan = self.index_from_scan()?;
        if ix == scan {
            return Ok(None);
        }
        for (q, want) in &scan {
            match ix.get(q) {
                None => {
                    return Ok(Some(format!(
                        "queue {q:?}: {} elements in storage, none in index",
                        want.len()
                    )))
                }
                Some(have) if have != want => {
                    return Ok(Some(format!(
                        "queue {q:?}: index has {} elements, storage has {}",
                        have.len(),
                        want.len()
                    )))
                }
                _ => {}
            }
        }
        for q in ix.keys() {
            if !scan.contains_key(q) {
                return Ok(Some(format!("queue {q:?}: in index but not in storage")));
            }
        }
        Ok(Some("index != storage".into()))
    }

    /// Read-only content query over a queue's live elements.
    pub fn query(&self, queue: &str, predicate: &Predicate) -> QmResult<Vec<Element>> {
        let meta = self.queue_meta(queue)?;
        let store = self.store_for(&meta);
        let rows = store.scan_prefix(None, &keys::element_prefix(queue))?;
        let mut out = Vec::new();
        for (_, raw) in rows {
            let e = Element::decode_all(&raw).map_err(QmError::Storage)?;
            if predicate.matches(&e) {
                out.push(e);
            }
        }
        Ok(out)
    }

    /// Drop the retained copy of a processed element (garbage collection for
    /// the `Read`-after-dequeue guarantee; "the reply is retained until the
    /// client says to delete it", §2).
    pub fn purge_retained(&self, eid: Eid) -> QmResult<bool> {
        self.system_txn(|t| {
            let key = keys::retained_key(eid);
            if self.durable.get(Some(t), &key)?.is_none() {
                return Ok(false);
            }
            self.durable.delete(t, &key)?;
            Ok(true)
        })
    }

    // ------------------------------------------------------------------
    // Triggers (§6 fork/join)
    // ------------------------------------------------------------------

    /// Install a trigger: when all `required_rids` are present (as `rid`
    /// attributes) among the live elements of `join_queue`, enqueue `payload`
    /// into `target_queue` exactly once.
    pub fn set_trigger(&self, trigger: Trigger) -> QmResult<()> {
        self.system_txn(|t| {
            self.durable
                .put(t, &keys::trigger_key(&trigger.id), &trigger.encode_to_vec())?;
            Ok(())
        })
    }

    /// Evaluate triggers watching `queue`; fire those whose join condition
    /// is now satisfied.
    fn check_triggers(&self, queue: &str) -> QmResult<()> {
        let rows = self.durable.scan_prefix(None, b"t/")?;
        for (tkey, raw) in rows {
            let mut trig = Trigger::decode_all(&raw).map_err(QmError::Storage)?;
            if trig.fired || trig.join_queue != queue {
                continue;
            }
            let live = self.query(queue, &Predicate::True)?;
            let present: HashSet<&str> = live.iter().filter_map(|e| e.attr("rid")).collect();
            if trig
                .required_rids
                .iter()
                .all(|r| present.contains(r.as_str()))
            {
                trig.fired = true;
                let target = trig.target_queue.clone();
                let payload = trig.payload.clone();
                let raw2 = trig.encode_to_vec();
                self.system_txn(|t| {
                    self.durable.put(t, &tkey, &raw2)?;
                    Ok(())
                })?;
                // Fire via a normal system enqueue (outside the user txn).
                let sys = self.sys_ids.next().raw();
                self.begin(TxnId(sys)).map_err(QmError::Txn)?;
                let h = QueueHandle {
                    queue: target,
                    registrant: format!("trigger/{}", trig.id),
                };
                let r = self.enqueue(sys, &h, &payload, EnqueueOptions::default());
                match r {
                    Ok(_) => {
                        ResourceManager::commit(self, TxnId(sys)).map_err(QmError::Txn)?;
                        self.stats.lock().triggers_fired += 1;
                    }
                    Err(e) => {
                        let _ = ResourceManager::abort(self, TxnId(sys));
                        return Err(e);
                    }
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Abort-side maintenance
    // ------------------------------------------------------------------

    /// After a transaction abort returned `d`'s element to its queue, bump
    /// its abort count, honour kill tombstones, and move it to the error
    /// queue when the retry limit is reached (§4.2).
    fn handle_aborted_dequeue(&self, d: &DequeuedRef, abort_code: u32) -> QmResult<()> {
        /// Where the element ended up, for ready-index maintenance and
        /// signalling — decided inside the system transaction, applied to
        /// the index only after it commits.
        enum AbortOutcome {
            /// Gone (concurrent destroy) or deleted honouring a kill.
            Dropped,
            /// Moved to the error queue under a fresh ordering key.
            Moved { queue: String, ekey: Vec<u8> },
            /// Returned to its queue under a fresh ordering key (rotate).
            Requeued { ekey: Vec<u8> },
            /// Returned to its queue under its original key.
            Returned,
        }
        self.stats.lock().aborted_dequeues += 1;
        let meta = self.queue_meta(&d.queue)?;
        let store = Arc::clone(self.store_for(&meta));
        let tomb = keys::kill_key(d.eid);
        let killed = self.durable.get(None, &tomb)?.is_some();

        let sys = self.sys_ids.next().raw();
        store.begin(sys)?;
        let result = (|| -> QmResult<AbortOutcome> {
            let Some(raw) = store.get(Some(sys), &d.elem_key)? else {
                return Ok(AbortOutcome::Dropped); // vanished (e.g. destroy)
            };
            let mut elem = Element::decode_all(&raw).map_err(QmError::Storage)?;
            if killed {
                store.delete(sys, &d.elem_key)?;
                store.delete(sys, &keys::index_key(d.eid))?;
                return Ok(AbortOutcome::Dropped);
            }
            elem.abort_count += 1;
            elem.abort_code = abort_code;
            let limit = meta.retry_limit;
            if limit > 0 && elem.abort_count >= limit {
                // Move to the error queue, keeping the element's identity.
                let errq = d
                    .error_queue
                    .clone()
                    .unwrap_or_else(|| meta.error_queue.clone());
                self.ensure_error_queue(&errq)?;
                store.delete(sys, &d.elem_key)?;
                let (_, seq) = self.next_eid(); // fresh ordering slot
                let ekey = keys::element_key(&errq, elem.priority, seq);
                elem.seq = seq;
                store.put(sys, &ekey, &elem.encode_to_vec())?;
                store.put(sys, &keys::index_key(d.eid), &encode_index(&errq, &ekey))?;
                Ok(AbortOutcome::Moved { queue: errq, ekey })
            } else if meta.requeue_at_back_on_abort {
                // Rotate to the back of the queue: same element identity,
                // fresh ordering slot. Prevents head-of-line livelock when
                // the head's required resources are held by requests deeper
                // in the queue.
                store.delete(sys, &d.elem_key)?;
                let (_, seq) = self.next_eid();
                elem.seq = seq;
                let ekey = keys::element_key(&meta.name, elem.priority, seq);
                store.put(sys, &ekey, &elem.encode_to_vec())?;
                store.put(
                    sys,
                    &keys::index_key(d.eid),
                    &encode_index(&meta.name, &ekey),
                )?;
                Ok(AbortOutcome::Requeued { ekey })
            } else {
                store.put(sys, &d.elem_key, &elem.encode_to_vec())?;
                Ok(AbortOutcome::Returned)
            }
        })();
        match result {
            Ok(outcome) => {
                store.commit(sys)?;
                if killed {
                    // Clear the tombstone now the element is gone.
                    self.system_txn(|t| {
                        self.durable.delete(t, &tomb)?;
                        Ok(())
                    })?;
                }
                // The dequeue never committed, so the old key is still in
                // the ready index; fix it up to match the outcome, then
                // signal so woken dequeuers see the fresh entry. Each arm is
                // one `fixup` call — one critical section — so the index
                // (and the depth gauge it carries) never shows the element
                // half-moved to a concurrent `depth()` or divergence check.
                match outcome {
                    AbortOutcome::Dropped => {
                        self.qindex.fixup(Some((&d.queue, &d.elem_key)), None);
                        rrq_obs::counter_inc("qm.element.dropped");
                    }
                    AbortOutcome::Moved { queue, ekey } => {
                        self.qindex
                            .fixup(Some((&d.queue, &d.elem_key)), Some((&queue, ekey, d.eid)));
                        self.stats.lock().error_moves += 1;
                        self.notifier.signal(&queue);
                    }
                    AbortOutcome::Requeued { ekey } => {
                        self.qindex
                            .fixup(Some((&d.queue, &d.elem_key)), Some((&d.queue, ekey, d.eid)));
                        self.notifier.signal(&d.queue);
                    }
                    AbortOutcome::Returned => {
                        self.qindex
                            .fixup(None, Some((&d.queue, d.elem_key.clone(), d.eid)));
                        self.notifier.signal(&d.queue);
                    }
                }
                // Every arm retired the dequeuer's claim on the old key, so
                // its handed-out mark (if the combining front end dispensed
                // it) falls with it — `Returned` re-inserts the *same* key,
                // which without this would stay shadowed and never be
                // dispensed again.
                self.dispenser.invalidate(&d.queue, &d.elem_key);
                rrq_obs::observe(
                    "qm.element.lock_hold_ticks",
                    rrq_obs::now().saturating_sub(d.grabbed_at),
                );
                Ok(())
            }
            Err(e) => {
                let _ = store.abort(sys);
                Err(e)
            }
        }
    }

    fn ensure_error_queue(&self, name: &str) -> QmResult<()> {
        if self.queue_meta(name).is_ok() {
            return Ok(());
        }
        let mut meta = QueueMeta::with_defaults(name);
        meta.retry_limit = 0; // error queues never cascade
        match self.create_queue(meta) {
            Ok(()) | Err(QmError::QueueExists(_)) => Ok(()),
            Err(e) => Err(e),
        }
    }
}

/// Race-detector cell name of a §4.3 registration record.
fn reg_cell(queue: &str, registrant: &str) -> String {
    format!("qm/reg/{queue}/{registrant}")
}

fn encode_index(queue: &str, ekey: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + queue.len() + ekey.len());
    put::string(&mut buf, queue);
    put::bytes(&mut buf, ekey);
    buf
}

fn decode_index(raw: &[u8]) -> QmResult<(String, Vec<u8>)> {
    let mut r = Reader::new(raw);
    let queue = r.string().map_err(QmError::Storage)?;
    let ekey = r.bytes().map_err(QmError::Storage)?;
    Ok((queue, ekey))
}

// ----------------------------------------------------------------------
// ResourceManager: the QM as a transaction participant
// ----------------------------------------------------------------------

impl ResourceManager for QueueManager {
    fn name(&self) -> &str {
        &self.name
    }

    fn begin(&self, txn: TxnId) -> TxnResult<()> {
        self.durable.begin(txn.raw())?;
        self.volatile.begin(txn.raw())?;
        self.pending_shard(txn.raw())
            .insert(txn.raw(), PendingTxn::default());
        Ok(())
    }

    fn prepare(&self, txn: TxnId) -> TxnResult<()> {
        {
            let g = self.pending_shard(txn.raw());
            if let Some(p) = g.get(&txn.raw()) {
                if let Some(eid) = p.poisoned {
                    return Err(TxnError::InvalidState(format!(
                        "element {eid} cancelled; transaction must abort"
                    )));
                }
            }
        }
        self.durable.prepare(txn.raw())?;
        self.volatile.prepare(txn.raw())?;
        Ok(())
    }

    fn commit(&self, txn: TxnId) -> TxnResult<()> {
        // One-phase path: the poison check runs here too.
        {
            let g = self.pending_shard(txn.raw());
            if let Some(p) = g.get(&txn.raw()) {
                if let Some(eid) = p.poisoned {
                    return Err(TxnError::InvalidState(format!(
                        "element {eid} cancelled; transaction must abort"
                    )));
                }
            }
        }
        let planned = {
            let g = self.pending_shard(txn.raw());
            g.get(&txn.raw()).is_some_and(|p| p.planned)
        };
        if planned {
            // Speculative epoch commit: visible at once, durable at the
            // epoch force (`apply_epoch` is preceded by a WAL force).
            self.durable.commit_deferred(txn.raw())?;
        } else {
            self.durable.commit(txn.raw())?;
        }
        self.volatile.commit(txn.raw())?;
        let pend = self
            .pending_shard(txn.raw())
            .remove(&txn.raw())
            .unwrap_or_default();
        if pend.planned {
            // Defer the index/notification mirror to epoch close: clerks
            // must not observe (or be woken for) a reply whose durability
            // is still pending the epoch force.
            self.epoch_buf.lock().push(pend);
            return Ok(());
        }
        self.apply_committed(&pend);
        Ok(())
    }

    fn abort(&self, txn: TxnId) -> TxnResult<()> {
        self.durable.abort(txn.raw())?;
        self.volatile.abort(txn.raw())?;
        let pend = self
            .pending_shard(txn.raw())
            .remove(&txn.raw())
            .unwrap_or_default();
        for d in &pend.dequeued {
            self.handle_aborted_dequeue(d, 1)
                .map_err(|e| TxnError::InvalidState(e.to_string()))?;
        }
        Ok(())
    }
}
