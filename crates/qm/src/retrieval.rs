//! Content-based retrieval (§1: "The QM may support content-based retrieval
//! of the elements"; §10: the request scheduler "usually requires a QM with
//! content-based retrieval capability").
//!
//! A [`Predicate`] filters dequeue candidates and read-only queries. The
//! request scheduler of §10 ("highest dollar amount first") is expressible
//! as a priority or an attribute comparison.

use crate::element::Element;

/// A filter over queue elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// Always true.
    True,
    /// Attribute `name` equals `value`.
    AttrEq(String, String),
    /// Attribute `name`, parsed as i64, is ≥ `min` (e.g. dollar amounts).
    AttrGe(String, i64),
    /// Element priority is ≥ the bound.
    PriorityGe(u8),
    /// Payload contains the byte substring.
    PayloadContains(Vec<u8>),
    /// Both hold.
    And(Box<Predicate>, Box<Predicate>),
    /// Either holds.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Convenience: `a AND b`.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Convenience: `a OR b`.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Convenience: `NOT a`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// Evaluate against an element.
    pub fn matches(&self, e: &Element) -> bool {
        match self {
            Predicate::True => true,
            Predicate::AttrEq(n, v) => e.attr(n) == Some(v.as_str()),
            Predicate::AttrGe(n, min) => e
                .attr(n)
                .and_then(|v| v.parse::<i64>().ok())
                .map(|v| v >= *min)
                .unwrap_or(false),
            Predicate::PriorityGe(p) => e.priority >= *p,
            Predicate::PayloadContains(needle) => {
                needle.is_empty()
                    || e.payload
                        .windows(needle.len())
                        .any(|w| w == needle.as_slice())
            }
            Predicate::And(a, b) => a.matches(e) && b.matches(e),
            Predicate::Or(a, b) => a.matches(e) || b.matches(e),
            Predicate::Not(a) => !a.matches(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Eid;

    fn elem(attrs: &[(&str, &str)], priority: u8, payload: &[u8]) -> Element {
        Element {
            eid: Eid(1),
            priority,
            seq: 0,
            abort_count: 0,
            abort_code: 0,
            attrs: attrs
                .iter()
                .map(|(n, v)| (n.to_string(), v.to_string()))
                .collect(),
            payload: payload.to_vec(),
        }
    }

    #[test]
    fn attr_eq() {
        let e = elem(&[("kind", "transfer")], 0, b"");
        assert!(Predicate::AttrEq("kind".into(), "transfer".into()).matches(&e));
        assert!(!Predicate::AttrEq("kind".into(), "order".into()).matches(&e));
        assert!(!Predicate::AttrEq("missing".into(), "x".into()).matches(&e));
    }

    #[test]
    fn attr_ge_numeric() {
        let e = elem(&[("amount", "5000")], 0, b"");
        assert!(Predicate::AttrGe("amount".into(), 1000).matches(&e));
        assert!(Predicate::AttrGe("amount".into(), 5000).matches(&e));
        assert!(!Predicate::AttrGe("amount".into(), 5001).matches(&e));
        let bad = elem(&[("amount", "lots")], 0, b"");
        assert!(!Predicate::AttrGe("amount".into(), 0).matches(&bad));
    }

    #[test]
    fn priority_and_payload() {
        let e = elem(&[], 7, b"hello world");
        assert!(Predicate::PriorityGe(7).matches(&e));
        assert!(!Predicate::PriorityGe(8).matches(&e));
        assert!(Predicate::PayloadContains(b"lo wo".to_vec()).matches(&e));
        assert!(!Predicate::PayloadContains(b"xyz".to_vec()).matches(&e));
        assert!(Predicate::PayloadContains(vec![]).matches(&e));
    }

    #[test]
    fn combinators() {
        let e = elem(&[("k", "v")], 3, b"abc");
        let p = Predicate::AttrEq("k".into(), "v".into())
            .and(Predicate::PriorityGe(2))
            .or(Predicate::PayloadContains(b"zzz".to_vec()));
        assert!(p.matches(&e));
        assert!(!p.clone().not().matches(&e));
        assert!(Predicate::True.matches(&e));
    }
}
