//! Regression: the abort-disposition fix-up used to remove and re-insert an
//! element in two separate index critical sections, so a concurrent
//! observer (the `depth()` gauge, or the index-divergence hook) could catch
//! the element in neither queue. [`QueueIndex::fixup`] now applies both
//! halves in one critical section; these tests hammer that path while an
//! observer asserts the invariants at every observation.

use rrq_obs::Session;
use rrq_qm::element::Eid;
use rrq_qm::ops::{DequeueOptions, EnqueueOptions};
use rrq_qm::qindex::QueueIndex;
use rrq_qm::repository::Repository;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Direct hammer on the index: one element shuttled between two queues via
/// `fixup`, with observers asserting (a) the element is always in exactly
/// one queue and (b) the depth gauge always equals the index total.
#[test]
fn fixup_moves_elements_atomically_under_concurrent_observation() {
    let session = Session::start();
    let ix = Arc::new(QueueIndex::new());
    let key = b"elem".to_vec();
    ix.insert("a", key.clone(), Eid(1));

    let stop = Arc::new(AtomicBool::new(false));
    let mover = {
        let ix = Arc::clone(&ix);
        let stop = Arc::clone(&stop);
        let key = key.clone();
        std::thread::spawn(move || {
            let mut here = "a";
            while !stop.load(Ordering::Relaxed) {
                let there = if here == "a" { "b" } else { "a" };
                assert!(ix.fixup(Some((here, &key)), Some((there, key.clone(), Eid(1)))));
                here = there;
            }
        })
    };

    for _ in 0..20_000 {
        let snap = ix.snapshot();
        let total: usize = snap.values().map(Vec::len).sum();
        assert_eq!(total, 1, "element must never be caught mid-move: {snap:?}");
        let (total, gauge) = ix.depth_accounting();
        assert_eq!(
            total as i64, gauge,
            "gauge and index total diverged mid-fixup"
        );
    }
    stop.store(true, Ordering::Relaxed);
    mover.join().unwrap();
    drop(ix);
    assert_eq!(
        session.snapshot().gauge("qm.queue.depth"),
        0,
        "dropping the index retires its whole gauge contribution"
    );
}

/// End to end through the queue manager: aborted dequeues drive the real
/// disposition fix-up (requeue, and eventually the error-queue move) while
/// an observer thread checks the gauge against the index total.
#[test]
fn abort_dispositions_keep_gauge_and_index_in_lockstep() {
    let session = Session::start();
    let repo = Arc::new(Repository::create("gauge-atomicity").unwrap());
    repo.create_queue_defaults("q").unwrap();
    let (h, _) = repo.qm().register("q", "c", false).unwrap();
    for i in 0..8u8 {
        repo.autocommit(|t| {
            repo.qm()
                .enqueue(t.id().raw(), &h, &[i], EnqueueOptions::default())
        })
        .unwrap();
    }

    let stop = Arc::new(AtomicBool::new(false));
    let observer = {
        let repo = Arc::clone(&repo);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut checks = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let (total, gauge) = repo.qm().depth_accounting();
                assert_eq!(total as i64, gauge, "gauge fell out of the index mutex");
                checks += 1;
            }
            checks
        })
    };

    // Abort every dequeue: each abort runs a disposition fix-up (requeue /
    // rotate / error-queue move once the retry limit is hit).
    for _ in 0..100 {
        let txn = repo.begin().unwrap();
        let got = repo
            .qm()
            .dequeue(txn.id().raw(), &h, DequeueOptions::default());
        txn.abort().unwrap();
        if got.is_err() {
            break; // empty: everything has moved to q.errors
        }
        // Give the observer scheduling room on single-core machines; the
        // race window it probes is unaffected.
        std::thread::yield_now();
    }
    stop.store(true, Ordering::Relaxed);
    let checks = observer.join().unwrap();
    assert!(checks > 0, "observer never ran");

    // Quiescent: the index and a fresh storage scan agree exactly, and the
    // law-A arithmetic holds for the session's counters.
    assert_eq!(repo.qm().index_divergence().unwrap(), None);
    let snap = session.snapshot();
    let flow = snap.counter("qm.enqueue.committed") as i64
        - snap.counter("qm.dequeue.committed") as i64
        - snap.counter("qm.element.dropped") as i64;
    let (total, gauge) = repo.qm().depth_accounting();
    assert_eq!(flow, gauge);
    assert_eq!(total as i64, gauge);
}
