//! Property-based tests for the queue manager.
//!
//! The reference model is a sequence of (priority, payload) pairs; the QM
//! must dequeue in priority-descending, FIFO-within-priority order, never
//! lose or duplicate an element across aborts, and preserve identity.

use proptest::prelude::*;
use rrq_qm::meta::QueueMeta;
use rrq_qm::ops::{DequeueOptions, EnqueueOptions};
use rrq_qm::repository::Repository;
use rrq_qm::QmError;
use std::collections::BTreeMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Enqueue { priority: u8, payload: u8 },
    DequeueCommit,
    DequeueAbort,
    Kill,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0u8..4, any::<u8>()).prop_map(|(priority, payload)| Op::Enqueue {
            priority,
            payload
        }),
        4 => Just(Op::DequeueCommit),
        2 => Just(Op::DequeueAbort),
        1 => Just(Op::Kill),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sequential ops against the QM match a reference priority-FIFO model.
    #[test]
    fn qm_matches_reference_priority_queue(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let repo = Repository::create("prop-qm").unwrap();
        let mut meta = QueueMeta::with_defaults("q");
        meta.retry_limit = 0; // aborts never exile in this model
        repo.qm().create_queue(meta).unwrap();
        let (h, _) = repo.qm().register("q", "c", false).unwrap();

        // Reference: map (255-priority, seq) -> payload. Aborted dequeues
        // reappear at their original position (default policy).
        let mut model: BTreeMap<(u8, u64), u8> = BTreeMap::new();
        let mut seq = 0u64;

        for op in &ops {
            match op {
                Op::Enqueue { priority, payload } => {
                    repo.autocommit(|t| {
                        repo.qm().enqueue(
                            t.id().raw(),
                            &h,
                            &[*payload],
                            EnqueueOptions {
                                priority: *priority,
                                ..Default::default()
                            },
                        )
                    })
                    .unwrap();
                    model.insert((255 - priority, seq), *payload);
                    seq += 1;
                }
                Op::DequeueCommit => {
                    let got = repo.autocommit(|t| {
                        repo.qm().dequeue(t.id().raw(), &h, DequeueOptions::default())
                    });
                    match got {
                        Ok(e) => {
                            let (k, expected) =
                                model.iter().next().map(|(k, v)| (*k, *v)).expect("model empty but QM had element");
                            prop_assert_eq!(e.payload, vec![expected], "dequeue order");
                            model.remove(&k);
                        }
                        Err(QmError::Empty(_)) => prop_assert!(model.is_empty()),
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                Op::DequeueAbort => {
                    let txn = repo.begin().unwrap();
                    let got = repo
                        .qm()
                        .dequeue(txn.id().raw(), &h, DequeueOptions::default());
                    txn.abort().unwrap();
                    if let Err(QmError::Empty(_)) = got {
                        prop_assert!(model.is_empty());
                    }
                    // Model unchanged: the element reappears in place.
                }
                Op::Kill => {
                    // Kill the current head, if any.
                    if let Some((k, _)) = model.iter().next().map(|(k, v)| (*k, *v)) {
                        let live = repo
                            .qm()
                            .query("q", &rrq_qm::Predicate::True)
                            .unwrap();
                        if let Some(head) = live.first() {
                            prop_assert!(repo.qm().kill_element(head.eid).unwrap());
                            model.remove(&k);
                        }
                    }
                }
            }
        }

        // Drain and compare the tails.
        let mut remaining = Vec::new();
        loop {
            match repo.autocommit(|t| {
                repo.qm().dequeue(t.id().raw(), &h, DequeueOptions::default())
            }) {
                Ok(e) => remaining.push(e.payload[0]),
                Err(QmError::Empty(_)) => break,
                Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
            }
        }
        let model_tail: Vec<u8> = model.values().copied().collect();
        prop_assert_eq!(remaining, model_tail, "final drain order");
    }

    /// Crash-recovery: whatever was committed before the crash is exactly
    /// what is in the queue afterwards, in the same order.
    #[test]
    fn queue_contents_survive_crash_exactly(
        payloads in proptest::collection::vec(any::<u8>(), 1..30),
        dequeue_n in 0usize..10,
    ) {
        let disks = rrq_qm::repository::RepoDisks::new();
        {
            let (repo, _) = Repository::open("prop-crash", disks.clone()).unwrap();
            repo.create_queue_defaults("q").unwrap();
            let (h, _) = repo.qm().register("q", "c", false).unwrap();
            for p in &payloads {
                repo.autocommit(|t| {
                    repo.qm()
                        .enqueue(t.id().raw(), &h, &[*p], EnqueueOptions::default())
                })
                .unwrap();
            }
            for _ in 0..dequeue_n.min(payloads.len()) {
                repo.autocommit(|t| {
                    repo.qm().dequeue(t.id().raw(), &h, DequeueOptions::default())
                })
                .unwrap();
            }
        }
        disks.crash();
        let (repo2, _) = Repository::open("prop-crash", disks).unwrap();
        let (h, _) = repo2.qm().register("q", "c2", false).unwrap();
        let expected: Vec<u8> = payloads
            .iter()
            .skip(dequeue_n.min(payloads.len()))
            .copied()
            .collect();
        let mut got = Vec::new();
        loop {
            match repo2.autocommit(|t| {
                repo2.qm().dequeue(t.id().raw(), &h, DequeueOptions::default())
            }) {
                Ok(e) => got.push(e.payload[0]),
                Err(QmError::Empty(_)) => break,
                Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
            }
        }
        prop_assert_eq!(got, expected);
    }
}

/// Concurrency: N threads consuming one queue never lose or double-consume,
/// regardless of interleaving (run outside proptest for thread control).
#[test]
fn concurrent_consumers_partition_the_queue() {
    use std::sync::Mutex;
    for seed in 0..3u64 {
        let repo = Arc::new(Repository::create(format!("prop-conc-{seed}")).unwrap());
        let mut meta = QueueMeta::with_defaults("q");
        meta.retry_limit = 0; // injected aborts must never exile elements
        repo.qm().create_queue(meta).unwrap();
        let (h, _) = repo.qm().register("q", "p", false).unwrap();
        let n = 120usize;
        for i in 0..n {
            repo.autocommit(|t| {
                repo.qm().enqueue(
                    t.id().raw(),
                    &h,
                    &(i as u32).to_le_bytes(),
                    EnqueueOptions::default(),
                )
            })
            .unwrap();
        }
        let consumed = Arc::new(Mutex::new(Vec::new()));
        let mut threads = Vec::new();
        for c in 0..6 {
            let repo = Arc::clone(&repo);
            let consumed = Arc::clone(&consumed);
            threads.push(std::thread::spawn(move || {
                let (h, _) = repo.qm().register("q", &format!("c{c}"), false).unwrap();
                let mut iter = 0u64;
                loop {
                    iter += 1;
                    // Mix commits and aborts to shake the ordering.
                    let abort = (iter + c).is_multiple_of(7);
                    if abort {
                        let txn = repo.begin().unwrap();
                        let _ = repo
                            .qm()
                            .dequeue(txn.id().raw(), &h, DequeueOptions::default());
                        txn.abort().unwrap();
                        continue;
                    }
                    match repo.autocommit(|t| {
                        repo.qm()
                            .dequeue(t.id().raw(), &h, DequeueOptions::default())
                    }) {
                        Ok(e) => consumed
                            .lock()
                            .unwrap()
                            .push(u32::from_le_bytes(e.payload.try_into().unwrap())),
                        Err(QmError::Empty(_)) => return,
                        Err(e) => panic!("{e}"),
                    }
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        let mut got = Arc::try_unwrap(consumed).unwrap().into_inner().unwrap();
        got.sort();
        let expected: Vec<u32> = (0..n as u32).collect();
        assert_eq!(got, expected, "seed {seed}: every element exactly once");
    }
}
