//! Behavioural tests for the queue manager, one per paper guarantee.

use rrq_qm::element::Eid;
use rrq_qm::meta::{OrderingMode, QueueMeta};
use rrq_qm::ops::{DequeueOptions, EnqueueOptions, QueueHandle};
use rrq_qm::registration::LastOp;
use rrq_qm::repository::{RepoDisks, Repository};
use rrq_qm::retrieval::Predicate;
use rrq_qm::trigger::Trigger;
use rrq_qm::QmError;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn repo() -> Repository {
    Repository::create("test").unwrap()
}

fn enq(repo: &Repository, h: &QueueHandle, payload: &[u8]) -> Eid {
    repo.autocommit(|t| {
        repo.qm()
            .enqueue(t.id().raw(), h, payload, EnqueueOptions::default())
    })
    .unwrap()
}

fn deq(repo: &Repository, h: &QueueHandle) -> Result<Vec<u8>, QmError> {
    repo.autocommit(|t| {
        repo.qm()
            .dequeue(t.id().raw(), h, DequeueOptions::default())
            .map(|e| e.payload)
    })
}

#[test]
fn fifo_order_within_priority() {
    let r = repo();
    r.create_queue_defaults("q").unwrap();
    let (h, _) = r.qm().register("q", "c", false).unwrap();
    for i in 0..5u8 {
        enq(&r, &h, &[i]);
    }
    for i in 0..5u8 {
        assert_eq!(deq(&r, &h).unwrap(), vec![i]);
    }
    assert!(matches!(deq(&r, &h), Err(QmError::Empty(_))));
}

#[test]
fn priority_dequeues_first() {
    let r = repo();
    r.create_queue_defaults("q").unwrap();
    let (h, _) = r.qm().register("q", "c", false).unwrap();
    r.autocommit(|t| {
        let qm = r.qm();
        qm.enqueue(t.id().raw(), &h, b"low", EnqueueOptions::default())?;
        qm.enqueue(
            t.id().raw(),
            &h,
            b"high",
            EnqueueOptions {
                priority: 9,
                ..Default::default()
            },
        )?;
        qm.enqueue(
            t.id().raw(),
            &h,
            b"mid",
            EnqueueOptions {
                priority: 5,
                ..Default::default()
            },
        )
    })
    .unwrap();
    assert_eq!(deq(&r, &h).unwrap(), b"high");
    assert_eq!(deq(&r, &h).unwrap(), b"mid");
    assert_eq!(deq(&r, &h).unwrap(), b"low");
}

#[test]
fn aborted_dequeue_returns_element() {
    let r = repo();
    r.create_queue_defaults("q").unwrap();
    let (h, _) = r.qm().register("q", "c", false).unwrap();
    enq(&r, &h, b"x");

    let txn = r.begin().unwrap();
    let e = r
        .qm()
        .dequeue(txn.id().raw(), &h, DequeueOptions::default())
        .unwrap();
    assert_eq!(e.payload, b"x");
    assert_eq!(r.qm().depth("q").unwrap(), 1, "delete not yet committed");
    txn.abort().unwrap();
    assert_eq!(r.qm().depth("q").unwrap(), 1);
    // And the element carries its abort count.
    let again = r
        .autocommit(|t| r.qm().dequeue(t.id().raw(), &h, DequeueOptions::default()))
        .unwrap();
    assert_eq!(again.abort_count, 1);
    assert_eq!(again.eid, e.eid, "element retains its identity");
}

#[test]
fn nth_abort_moves_element_to_error_queue() {
    let r = repo();
    let mut meta = QueueMeta::with_defaults("q");
    meta.retry_limit = 3;
    r.qm().create_queue(meta).unwrap();
    let (h, _) = r.qm().register("q", "c", false).unwrap();
    let eid = enq(&r, &h, b"poison");

    for i in 1..=3 {
        let txn = r.begin().unwrap();
        let got = r
            .qm()
            .dequeue(txn.id().raw(), &h, DequeueOptions::default());
        assert!(got.is_ok(), "attempt {i} should find the element");
        txn.abort().unwrap();
    }
    // After the 3rd abort the element is in q.errors, not q.
    assert_eq!(r.qm().depth("q").unwrap(), 0);
    assert_eq!(r.qm().depth("q.errors").unwrap(), 1);
    let errs = r.qm().query("q.errors", &Predicate::True).unwrap();
    assert_eq!(errs[0].eid, eid, "identity preserved across the move");
    assert_eq!(errs[0].abort_count, 3);
    assert!(errs[0].abort_code != 0, "marked with an abort code");
    assert_eq!(r.qm().stats().error_moves, 1);
}

#[test]
fn requeue_at_back_rotates_aborted_head() {
    let r = repo();
    let mut meta = QueueMeta::with_defaults("q");
    meta.retry_limit = 0;
    meta.requeue_at_back_on_abort = true;
    r.qm().create_queue(meta).unwrap();
    let (h, _) = r.qm().register("q", "c", false).unwrap();
    let first = enq(&r, &h, b"first");
    enq(&r, &h, b"second");

    // Dequeue the head and abort: with the rotate policy it moves to the
    // BACK, so the next dequeue sees "second".
    let txn = r.begin().unwrap();
    let e = r
        .qm()
        .dequeue(txn.id().raw(), &h, DequeueOptions::default())
        .unwrap();
    assert_eq!(e.payload, b"first");
    txn.abort().unwrap();

    assert_eq!(deq(&r, &h).unwrap(), b"second");
    let back = r
        .autocommit(|t| r.qm().dequeue(t.id().raw(), &h, DequeueOptions::default()))
        .unwrap();
    assert_eq!(back.payload, b"first");
    assert_eq!(back.eid, first, "identity preserved across rotation");
    assert_eq!(back.abort_count, 1);
}

#[test]
fn retry_limit_zero_retries_forever() {
    let r = repo();
    let mut meta = QueueMeta::with_defaults("q");
    meta.retry_limit = 0;
    r.qm().create_queue(meta).unwrap();
    let (h, _) = r.qm().register("q", "c", false).unwrap();
    enq(&r, &h, b"x");
    for _ in 0..10 {
        let txn = r.begin().unwrap();
        r.qm()
            .dequeue(txn.id().raw(), &h, DequeueOptions::default())
            .unwrap();
        txn.abort().unwrap();
    }
    assert_eq!(r.qm().depth("q").unwrap(), 1);
}

#[test]
fn dequeue_error_queue_override_is_honoured() {
    let r = repo();
    let mut meta = QueueMeta::with_defaults("q");
    meta.retry_limit = 1;
    r.qm().create_queue(meta).unwrap();
    let (h, _) = r.qm().register("q", "c", false).unwrap();
    enq(&r, &h, b"x");
    let txn = r.begin().unwrap();
    r.qm()
        .dequeue(
            txn.id().raw(),
            &h,
            DequeueOptions {
                error_queue: Some("custom.dead".into()),
                ..Default::default()
            },
        )
        .unwrap();
    txn.abort().unwrap();
    assert_eq!(r.qm().depth("custom.dead").unwrap(), 1);
}

#[test]
fn read_works_for_live_and_dequeued_elements() {
    let r = repo();
    r.create_queue_defaults("q").unwrap();
    let (h, _) = r.qm().register("q", "c", false).unwrap();
    let eid = enq(&r, &h, b"body");
    assert_eq!(r.qm().read(eid).unwrap().payload, b"body");
    deq(&r, &h).unwrap();
    // Retained after dequeue (§4.3: Read works "even if the last operation
    // was a Dequeue").
    assert_eq!(r.qm().read(eid).unwrap().payload, b"body");
    // Until purged.
    assert!(r.qm().purge_retained(eid).unwrap());
    assert!(matches!(r.qm().read(eid), Err(QmError::NoSuchElement(_))));
}

#[test]
fn registration_tags_survive_and_return_on_reregister() {
    let disks = RepoDisks::new();
    let (r, _) = Repository::open("t", disks.clone()).unwrap();
    r.create_queue_defaults("req").unwrap();
    let (h, reg) = r.qm().register("req", "client-1", true).unwrap();
    assert_eq!(reg.last_op, LastOp::None);
    r.autocommit(|t| {
        r.qm().enqueue(
            t.id().raw(),
            &h,
            b"request-body",
            EnqueueOptions {
                tag: Some(b"rid-7".to_vec()),
                ..Default::default()
            },
        )
    })
    .unwrap();

    // Crash the node, reopen, re-register: the tag comes back.
    drop(r);
    disks.crash();
    let (r2, _) = Repository::open("t", disks).unwrap();
    let (_, reg2) = r2.qm().register("req", "client-1", true).unwrap();
    assert_eq!(reg2.last_op, LastOp::Enqueue);
    assert_eq!(reg2.tag.as_deref(), Some(b"rid-7".as_slice()));
    assert_eq!(
        reg2.element_copy.as_deref(),
        Some(b"request-body".as_slice())
    );
}

#[test]
fn tag_update_is_atomic_with_operation() {
    let r = repo();
    r.create_queue_defaults("req").unwrap();
    let (h, _) = r.qm().register("req", "c", true).unwrap();
    // Enqueue with a tag but abort: neither element nor tag must survive.
    let txn = r.begin().unwrap();
    r.qm()
        .enqueue(
            txn.id().raw(),
            &h,
            b"x",
            EnqueueOptions {
                tag: Some(b"rid-1".to_vec()),
                ..Default::default()
            },
        )
        .unwrap();
    txn.abort().unwrap();
    let (_, reg) = r.qm().register("req", "c", true).unwrap();
    assert_eq!(reg.last_op, LastOp::None);
    assert_eq!(reg.tag, None);
    assert_eq!(r.qm().depth("req").unwrap(), 0);
}

#[test]
fn deregister_destroys_registration() {
    let r = repo();
    r.create_queue_defaults("q").unwrap();
    let (h, _) = r.qm().register("q", "c", true).unwrap();
    r.autocommit(|t| {
        r.qm().enqueue(
            t.id().raw(),
            &h,
            b"x",
            EnqueueOptions {
                tag: Some(b"t1".to_vec()),
                ..Default::default()
            },
        )
    })
    .unwrap();
    r.qm().deregister(&h).unwrap();
    let (_, reg) = r.qm().register("q", "c", true).unwrap();
    assert_eq!(reg.tag, None, "re-register after deregister starts fresh");
    assert!(matches!(
        r.qm().deregister(&QueueHandle {
            queue: "q".into(),
            registrant: "ghost".into()
        }),
        Err(QmError::NotRegistered(_))
    ));
}

#[test]
fn kill_element_in_queue() {
    let r = repo();
    r.create_queue_defaults("q").unwrap();
    let (h, _) = r.qm().register("q", "c", false).unwrap();
    let eid = enq(&r, &h, b"cancel-me");
    assert!(r.qm().kill_element(eid).unwrap());
    assert_eq!(r.qm().depth("q").unwrap(), 0);
    // Killing again: nothing to do.
    assert!(!r.qm().kill_element(eid).unwrap());
}

#[test]
fn kill_element_keeps_index_and_storage_consistent() {
    let r = repo();
    r.create_queue_defaults("q").unwrap();
    let (h, _) = r.qm().register("q", "c", false).unwrap();
    enq(&r, &h, b"keep-1");
    let victim = enq(&r, &h, b"victim");
    enq(&r, &h, b"keep-2");

    assert!(r.qm().kill_element(victim).unwrap());
    // The ready index and a raw storage scan must agree after the kill: the
    // deleting system transaction commits before the index update
    // (regression for the extracted `kill_live_element` helper, pinned by
    // the durability-dominator rule).
    assert_eq!(r.qm().depth("q").unwrap(), 2);
    assert_eq!(r.qm().depth_scan("q").unwrap(), 2);
    // Survivors dequeue in order; the victim never surfaces.
    assert_eq!(deq(&r, &h).unwrap(), b"keep-1");
    assert_eq!(deq(&r, &h).unwrap(), b"keep-2");
    assert!(matches!(deq(&r, &h), Err(QmError::Empty(_))));
}

#[test]
fn kill_element_held_by_uncommitted_dequeuer_aborts_it() {
    let r = repo();
    r.create_queue_defaults("q").unwrap();
    let (h, _) = r.qm().register("q", "c", false).unwrap();
    let eid = enq(&r, &h, b"cancel-me");

    let txn = r.begin().unwrap();
    let e = r
        .qm()
        .dequeue(txn.id().raw(), &h, DequeueOptions::default())
        .unwrap();
    assert_eq!(e.eid, eid);
    // Cancel while the server transaction is mid-flight.
    assert!(r.qm().kill_element(eid).unwrap());
    // The transaction is poisoned: commit fails…
    assert!(txn.commit().is_err());
    // …and the element is gone, not requeued (and not in an error queue —
    // "q.errors" is created lazily and should not even exist here).
    assert_eq!(r.qm().depth("q").unwrap(), 0);
    match r.qm().depth("q.errors") {
        Err(QmError::NoSuchQueue(_)) => {}
        Ok(d) => assert_eq!(d, 0),
        Err(e) => panic!("unexpected: {e}"),
    }
}

#[test]
fn kill_element_too_late_after_commit() {
    let r = repo();
    r.create_queue_defaults("q").unwrap();
    let (h, _) = r.qm().register("q", "c", false).unwrap();
    let eid = enq(&r, &h, b"done");
    deq(&r, &h).unwrap();
    assert!(!r.qm().kill_element(eid).unwrap(), "already processed");
}

#[test]
fn skip_locked_dequeuers_get_distinct_elements() {
    let r = Arc::new(repo());
    r.create_queue_defaults("q").unwrap();
    let (h, _) = r.qm().register("q", "c", false).unwrap();
    for i in 0..2u8 {
        enq(&r, &h, &[i]);
    }
    // First dequeuer holds its element uncommitted.
    let t1 = r.begin().unwrap();
    let e1 = r
        .qm()
        .dequeue(t1.id().raw(), &h, DequeueOptions::default())
        .unwrap();
    // Second dequeuer must skip the locked head and take the other element.
    let t2 = r.begin().unwrap();
    let e2 = r
        .qm()
        .dequeue(t2.id().raw(), &h, DequeueOptions::default())
        .unwrap();
    assert_ne!(e1.eid, e2.eid);
    assert!(r.qm().stats().lock_skips >= 1);
    t1.commit().unwrap();
    t2.commit().unwrap();
}

#[test]
fn strict_fifo_blocks_behind_head() {
    let r = Arc::new(Repository::create("fifo").unwrap());
    let mut meta = QueueMeta::with_defaults("q");
    meta.mode = OrderingMode::StrictFifo;
    r.qm().create_queue(meta).unwrap();
    let (h, _) = r.qm().register("q", "c", false).unwrap();
    enq(&r, &h, b"head");
    enq(&r, &h, b"tail");

    let t1 = r.begin().unwrap();
    let e1 = r
        .qm()
        .dequeue(t1.id().raw(), &h, DequeueOptions::default())
        .unwrap();
    assert_eq!(e1.payload, b"head");

    // A second strict-FIFO dequeuer must NOT take "tail"; it waits for the
    // head's fate. When t1 aborts, the head returns and t2 gets it.
    let r2 = Arc::clone(&r);
    let h2 = h.clone();
    let waiter = thread::spawn(move || {
        r2.autocommit(|t| {
            r2.qm().dequeue(
                t.id().raw(),
                &h2,
                DequeueOptions {
                    block: Some(Duration::from_secs(5)),
                    ..Default::default()
                },
            )
        })
        .map(|e| e.payload)
    });
    thread::sleep(Duration::from_millis(50));
    t1.abort().unwrap();
    let got = waiter.join().unwrap().unwrap();
    assert_eq!(got, b"head", "strict FIFO preserved across the abort");
}

#[test]
fn skip_locked_allows_fifo_anomaly_the_paper_tolerates() {
    // §10: if dequeuer A takes the head, dequeuer B takes the second
    // element, A aborts and B commits — dequeues are not FIFO. That must be
    // *allowed* in SkipLocked mode.
    let r = repo();
    r.create_queue_defaults("q").unwrap();
    let (h, _) = r.qm().register("q", "c", false).unwrap();
    enq(&r, &h, b"first");
    enq(&r, &h, b"second");

    let ta = r.begin().unwrap();
    let ea = r
        .qm()
        .dequeue(ta.id().raw(), &h, DequeueOptions::default())
        .unwrap();
    assert_eq!(ea.payload, b"first");
    let tb = r.begin().unwrap();
    let eb = r
        .qm()
        .dequeue(tb.id().raw(), &h, DequeueOptions::default())
        .unwrap();
    assert_eq!(eb.payload, b"second");
    tb.commit().unwrap(); // second committed first
    ta.abort().unwrap(); // first returns to the queue
    let next = deq(&r, &h).unwrap();
    assert_eq!(next, b"first");
}

#[test]
fn blocking_dequeue_wakes_on_enqueue() {
    let r = Arc::new(repo());
    r.create_queue_defaults("q").unwrap();
    let (h, _) = r.qm().register("q", "c", false).unwrap();
    let r2 = Arc::clone(&r);
    let h2 = h.clone();
    let waiter = thread::spawn(move || {
        r2.autocommit(|t| {
            r2.qm().dequeue(
                t.id().raw(),
                &h2,
                DequeueOptions {
                    block: Some(Duration::from_secs(5)),
                    ..Default::default()
                },
            )
        })
        .map(|e| e.payload)
    });
    thread::sleep(Duration::from_millis(50));
    enq(&r, &h, b"wake");
    assert_eq!(waiter.join().unwrap().unwrap(), b"wake");
}

#[test]
fn blocking_dequeue_times_out_when_nothing_arrives() {
    let r = repo();
    r.create_queue_defaults("q").unwrap();
    let (h, _) = r.qm().register("q", "c", false).unwrap();
    let got = r.autocommit(|t| {
        r.qm().dequeue(
            t.id().raw(),
            &h,
            DequeueOptions {
                block: Some(Duration::from_millis(50)),
                ..Default::default()
            },
        )
    });
    assert!(matches!(got, Err(QmError::Empty(_))));
}

#[test]
fn predicate_dequeue_selects_matching_only() {
    let r = repo();
    r.create_queue_defaults("q").unwrap();
    let (h, _) = r.qm().register("q", "c", false).unwrap();
    r.autocommit(|t| {
        let qm = r.qm();
        qm.enqueue(
            t.id().raw(),
            &h,
            b"small",
            EnqueueOptions {
                attrs: vec![("amount".into(), "10".into())],
                ..Default::default()
            },
        )?;
        qm.enqueue(
            t.id().raw(),
            &h,
            b"big",
            EnqueueOptions {
                attrs: vec![("amount".into(), "10000".into())],
                ..Default::default()
            },
        )
    })
    .unwrap();
    // "Highest dollar amount first" (§10): take amount ≥ 1000 first.
    let e = r
        .autocommit(|t| {
            r.qm().dequeue(
                t.id().raw(),
                &h,
                DequeueOptions {
                    predicate: Some(Predicate::AttrGe("amount".into(), 1000)),
                    ..Default::default()
                },
            )
        })
        .unwrap();
    assert_eq!(e.payload, b"big");
    assert_eq!(r.qm().depth("q").unwrap(), 1);
}

#[test]
fn queue_redirection_forwards_enqueues() {
    let r = repo();
    r.create_queue_defaults("front").unwrap();
    r.create_queue_defaults("back").unwrap();
    r.qm()
        .update_queue("front", |m| m.redirect_to = Some("back".into()))
        .unwrap();
    let (h, _) = r.qm().register("front", "c", false).unwrap();
    enq(&r, &h, b"fwd");
    assert_eq!(r.qm().depth("front").unwrap(), 0);
    assert_eq!(r.qm().depth("back").unwrap(), 1);
}

#[test]
fn redirect_cycle_detected() {
    let r = repo();
    r.create_queue_defaults("a").unwrap();
    r.create_queue_defaults("b").unwrap();
    r.qm()
        .update_queue("a", |m| m.redirect_to = Some("b".into()))
        .unwrap();
    r.qm()
        .update_queue("b", |m| m.redirect_to = Some("a".into()))
        .unwrap();
    let (h, _) = r.qm().register("a", "c", false).unwrap();
    let res = r.autocommit(|t| {
        r.qm()
            .enqueue(t.id().raw(), &h, b"x", EnqueueOptions::default())
    });
    assert!(matches!(res, Err(QmError::RedirectCycle(_))));
}

#[test]
fn stopped_queue_rejects_operations() {
    let r = repo();
    r.create_queue_defaults("q").unwrap();
    let (h, _) = r.qm().register("q", "c", false).unwrap();
    enq(&r, &h, b"x");
    r.qm().update_queue("q", |m| m.started = false).unwrap();
    let res = r.autocommit(|t| {
        r.qm()
            .enqueue(t.id().raw(), &h, b"y", EnqueueOptions::default())
    });
    assert!(matches!(res, Err(QmError::QueueStopped(_))));
    assert!(matches!(deq(&r, &h), Err(QmError::QueueStopped(_))));
    r.qm().update_queue("q", |m| m.started = true).unwrap();
    assert_eq!(deq(&r, &h).unwrap(), b"x");
}

#[test]
fn alert_threshold_raises_alert() {
    let r = repo();
    let mut meta = QueueMeta::with_defaults("q");
    meta.alert_threshold = Some(3);
    r.qm().create_queue(meta).unwrap();
    let (h, _) = r.qm().register("q", "c", false).unwrap();
    enq(&r, &h, b"1");
    enq(&r, &h, b"2");
    assert!(r.qm().take_alerts().is_empty());
    enq(&r, &h, b"3");
    let alerts = r.qm().take_alerts();
    assert_eq!(alerts, vec!["q".to_string()]);
    assert!(r.qm().take_alerts().is_empty(), "drained");
}

#[test]
fn trigger_fires_when_all_rids_present() {
    let r = repo();
    r.create_queue_defaults("join").unwrap();
    r.create_queue_defaults("continue").unwrap();
    r.qm()
        .set_trigger(Trigger::new(
            "t1",
            "join",
            vec!["a".into(), "b".into()],
            "continue",
            b"final-step".to_vec(),
        ))
        .unwrap();
    let (h, _) = r.qm().register("join", "c", false).unwrap();
    let enq_rid = |rid: &str| {
        r.autocommit(|t| {
            r.qm().enqueue(
                t.id().raw(),
                &h,
                b"branch-reply",
                EnqueueOptions {
                    attrs: vec![("rid".into(), rid.into())],
                    ..Default::default()
                },
            )
        })
        .unwrap()
    };
    enq_rid("a");
    assert_eq!(r.qm().depth("continue").unwrap(), 0, "join incomplete");
    enq_rid("b");
    assert_eq!(r.qm().depth("continue").unwrap(), 1, "trigger fired");
    // Fire-once: more arrivals don't re-fire.
    enq_rid("a");
    assert_eq!(r.qm().depth("continue").unwrap(), 1);
    assert_eq!(r.qm().stats().triggers_fired, 1);
}

#[test]
fn destroy_queue_removes_everything() {
    let r = repo();
    r.create_queue_defaults("q").unwrap();
    let (h, _) = r.qm().register("q", "c", true).unwrap();
    enq(&r, &h, b"x");
    r.qm().destroy_queue("q").unwrap();
    assert!(matches!(
        r.qm().queue_meta("q"),
        Err(QmError::NoSuchQueue(_))
    ));
    assert!(matches!(
        r.qm().register("q", "c", true),
        Err(QmError::NoSuchQueue(_))
    ));
}

#[test]
fn enqueue_then_dequeue_same_transaction() {
    let r = repo();
    r.create_queue_defaults("q").unwrap();
    let (h, _) = r.qm().register("q", "c", false).unwrap();
    let got = r
        .autocommit(|t| {
            r.qm()
                .enqueue(t.id().raw(), &h, b"self", EnqueueOptions::default())?;
            r.qm().dequeue(t.id().raw(), &h, DequeueOptions::default())
        })
        .unwrap();
    assert_eq!(got.payload, b"self");
    assert_eq!(r.qm().depth("q").unwrap(), 0);
}

#[test]
fn depth_and_list_queues() {
    let r = repo();
    r.create_queue_defaults("a").unwrap();
    r.create_queue_defaults("b").unwrap();
    let (h, _) = r.qm().register("a", "c", false).unwrap();
    enq(&r, &h, b"1");
    enq(&r, &h, b"2");
    assert_eq!(r.qm().depth("a").unwrap(), 2);
    assert_eq!(r.qm().depth("b").unwrap(), 0);
    let qs = r.qm().list_queues().unwrap();
    assert!(qs.contains(&"a".to_string()) && qs.contains(&"b".to_string()));
    assert!(matches!(
        r.qm().depth("missing"),
        Err(QmError::NoSuchQueue(_))
    ));
}

#[test]
fn dequeue_batch_takes_up_to_max_atomically() {
    let r = repo();
    r.create_queue_defaults("q").unwrap();
    let (h, _) = r.qm().register("q", "c", false).unwrap();
    for i in 0..7u8 {
        enq(&r, &h, &[i]);
    }
    // Take a batch of 5 in one transaction.
    let batch = r
        .autocommit(|t| {
            r.qm()
                .dequeue_batch(t.id().raw(), &h, 5, &DequeueOptions::default())
        })
        .unwrap();
    assert_eq!(batch.len(), 5);
    assert_eq!(
        batch.iter().map(|e| e.payload[0]).collect::<Vec<_>>(),
        vec![0, 1, 2, 3, 4]
    );
    assert_eq!(r.qm().depth("q").unwrap(), 2);
    // A batch bigger than the queue drains it without blocking.
    let rest = r
        .autocommit(|t| {
            r.qm()
                .dequeue_batch(t.id().raw(), &h, 100, &DequeueOptions::default())
        })
        .unwrap();
    assert_eq!(rest.len(), 2);

    // An aborted batch returns every element.
    for i in 0..3u8 {
        enq(&r, &h, &[10 + i]);
    }
    let txn = r.begin().unwrap();
    let b = r
        .qm()
        .dequeue_batch(txn.id().raw(), &h, 3, &DequeueOptions::default())
        .unwrap();
    assert_eq!(b.len(), 3);
    txn.abort().unwrap();
    assert_eq!(r.qm().depth("q").unwrap(), 3, "batch abort is atomic");
}

#[test]
fn queue_set_takes_from_any_member() {
    let r = repo();
    r.create_queue_defaults("a").unwrap();
    r.create_queue_defaults("b").unwrap();
    let (ha, _) = r.qm().register("a", "c", false).unwrap();
    let (hb, _) = r.qm().register("b", "c", false).unwrap();
    enq(&r, &hb, b"from-b");
    let set = vec![ha.clone(), hb.clone()];
    let (idx, e) = r
        .autocommit(|t| {
            r.qm()
                .dequeue_from_set(t.id().raw(), &set, DequeueOptions::default())
        })
        .unwrap();
    assert_eq!(idx, 1);
    assert_eq!(e.payload, b"from-b");
    // Empty set view reports empty.
    let res = r.autocommit(|t| {
        r.qm()
            .dequeue_from_set(t.id().raw(), &set, DequeueOptions::default())
    });
    assert!(matches!(res, Err(QmError::Empty(_))));
}

#[test]
fn queue_set_blocks_until_any_member_gains() {
    let r = Arc::new(repo());
    r.create_queue_defaults("a").unwrap();
    r.create_queue_defaults("b").unwrap();
    let (ha, _) = r.qm().register("a", "c", false).unwrap();
    let (hb, _) = r.qm().register("b", "c", false).unwrap();
    let set = vec![ha.clone(), hb.clone()];
    let r2 = Arc::clone(&r);
    let waiter = thread::spawn(move || {
        r2.autocommit(|t| {
            r2.qm().dequeue_from_set(
                t.id().raw(),
                &set,
                DequeueOptions {
                    block: Some(Duration::from_secs(5)),
                    ..Default::default()
                },
            )
        })
    });
    thread::sleep(Duration::from_millis(60));
    enq(&r, &hb, b"late-b");
    let (idx, e) = waiter.join().unwrap().unwrap();
    assert_eq!(idx, 1);
    assert_eq!(e.payload, b"late-b");
}

#[test]
fn many_concurrent_producers_and_consumers_lose_nothing() {
    let r = Arc::new(repo());
    r.create_queue_defaults("q").unwrap();
    let n_producers = 4;
    let per_producer = 50;
    let mut handles = Vec::new();
    for p in 0..n_producers {
        let r = Arc::clone(&r);
        handles.push(thread::spawn(move || {
            let (h, _) = r.qm().register("q", &format!("p{p}"), false).unwrap();
            for i in 0..per_producer {
                let payload = format!("{p}/{i}");
                r.autocommit(|t| {
                    r.qm().enqueue(
                        t.id().raw(),
                        &h,
                        payload.as_bytes(),
                        EnqueueOptions::default(),
                    )
                })
                .unwrap();
            }
        }));
    }
    let mut consumers = Vec::new();
    for c in 0..4 {
        let r = Arc::clone(&r);
        consumers.push(thread::spawn(move || {
            let (h, _) = r.qm().register("q", &format!("s{c}"), false).unwrap();
            let mut got = Vec::new();
            loop {
                let res = r.autocommit(|t| {
                    r.qm().dequeue(
                        t.id().raw(),
                        &h,
                        DequeueOptions {
                            block: Some(Duration::from_millis(300)),
                            ..Default::default()
                        },
                    )
                });
                match res {
                    Ok(e) => got.push(String::from_utf8(e.payload).unwrap()),
                    Err(QmError::Empty(_)) => return got,
                    Err(e) => panic!("unexpected: {e}"),
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut all: Vec<String> = consumers
        .into_iter()
        .flat_map(|c| c.join().unwrap())
        .collect();
    all.sort();
    all.dedup();
    assert_eq!(
        all.len(),
        n_producers * per_producer,
        "every element consumed exactly once"
    );
}
