//! Fault injection for the simulated network.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::time::Duration;

/// The fate of a single message, as decided by [`FaultPlan::judge_verdict`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Deliver after this delay (`Duration::ZERO` = immediately).
    Deliver(Duration),
    /// Dropped because the directional link is partitioned.
    DroppedByPartition,
    /// Dropped by the seeded loss probability.
    DroppedByChance,
}

impl Verdict {
    /// Stable single-byte tag folded into the decision digest.
    fn tag(self) -> u8 {
        match self {
            Verdict::Deliver(_) => b'D',
            Verdict::DroppedByPartition => b'P',
            Verdict::DroppedByChance => b'C',
        }
    }
}

/// The injectable fault state of the network, shared by all endpoints.
///
/// Links are directional: partitioning `a → b` stops messages from `a` to
/// `b` but not replies from `b` to `a` (use [`FaultPlan::partition_pair`]
/// for symmetric cuts).
///
/// Every judgement is folded into a running audit (count + FNV-1a digest of
/// `from`, `to`, and the verdict tag), so two plans given the same seed and
/// the same message sequence can be compared decision-for-decision without
/// recording the sequence itself. Judging depends only on the seed and the
/// calls made — never on wall-clock time or map iteration order (partitions
/// and probabilities are looked up by exact link key).
pub struct FaultPlan {
    inner: Mutex<Inner>,
}

struct Inner {
    partitions: HashSet<(String, String)>,
    drop_prob: HashMap<(String, String), f64>,
    delay: HashMap<(String, String), Duration>,
    default_drop: f64,
    /// Partition drops surface as [`crate::NetError::Partitioned`] at the
    /// sender instead of silent loss. Chance drops stay silent.
    fail_fast: bool,
    rng: StdRng,
    dropped: u64,
    decisions: u64,
    digest: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

impl FaultPlan {
    /// A plan with no faults, seeded for reproducible loss decisions.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            inner: Mutex::new(Inner {
                partitions: HashSet::new(),
                drop_prob: HashMap::new(),
                delay: HashMap::new(),
                default_drop: 0.0,
                fail_fast: false,
                rng: StdRng::seed_from_u64(seed),
                dropped: 0,
                decisions: 0,
                digest: FNV_OFFSET,
            }),
        }
    }

    /// Cut the directional link `from → to`.
    pub fn partition(&self, from: &str, to: &str) {
        self.inner
            .lock()
            .partitions
            .insert((from.to_string(), to.to_string()));
    }

    /// Cut both directions between `a` and `b`.
    pub fn partition_pair(&self, a: &str, b: &str) {
        self.partition(a, b);
        self.partition(b, a);
    }

    /// Remove any partition on `from → to` (and nothing else).
    pub fn heal(&self, from: &str, to: &str) {
        self.inner
            .lock()
            .partitions
            .remove(&(from.to_string(), to.to_string()));
    }

    /// Heal both directions.
    pub fn heal_pair(&self, a: &str, b: &str) {
        self.heal(a, b);
        self.heal(b, a);
    }

    /// Heal every partition.
    pub fn heal_all(&self) {
        self.inner.lock().partitions.clear();
    }

    /// Drop messages on `from → to` with probability `p`.
    pub fn set_drop(&self, from: &str, to: &str, p: f64) {
        self.inner
            .lock()
            .drop_prob
            .insert((from.to_string(), to.to_string()), p.clamp(0.0, 1.0));
    }

    /// Drop messages on every link with probability `p` unless overridden.
    pub fn set_default_drop(&self, p: f64) {
        self.inner.lock().default_drop = p.clamp(0.0, 1.0);
    }

    /// Delay deliveries on `from → to`.
    pub fn set_delay(&self, from: &str, to: &str, d: Duration) {
        self.inner
            .lock()
            .delay
            .insert((from.to_string(), to.to_string()), d);
    }

    /// Number of messages dropped so far.
    pub fn dropped_count(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Make partition drops fail fast at the sender: the bus returns
    /// `NetError::Partitioned` instead of silently losing the message.
    /// Chance drops stay silent either way.
    pub fn set_fail_fast(&self, on: bool) {
        self.inner.lock().fail_fast = on;
    }

    /// Whether partition drops surface as errors at the sender.
    pub fn fail_fast(&self) -> bool {
        self.inner.lock().fail_fast
    }

    /// Number of judgements made so far.
    pub fn decisions_count(&self) -> u64 {
        self.inner.lock().decisions
    }

    /// Running FNV-1a digest over `(from, to, verdict)` of every judgement.
    /// Equal seeds + equal message sequences ⇒ equal digests.
    pub fn decisions_digest(&self) -> u64 {
        self.inner.lock().digest
    }

    /// Decide the fate of one message.
    pub fn judge_verdict(&self, from: &str, to: &str) -> Verdict {
        let mut g = self.inner.lock();
        let link = (from.to_string(), to.to_string());
        let verdict = if g.partitions.contains(&link) {
            Verdict::DroppedByPartition
        } else {
            let p = g.drop_prob.get(&link).copied().unwrap_or(g.default_drop);
            // The RNG is consumed only when a probability is in play, so
            // adding an unrelated partitioned link never shifts the seeded
            // decision stream of other links.
            if p > 0.0 && g.rng.gen::<f64>() < p {
                Verdict::DroppedByChance
            } else {
                Verdict::Deliver(g.delay.get(&link).copied().unwrap_or(Duration::ZERO))
            }
        };
        if !matches!(verdict, Verdict::Deliver(_)) {
            g.dropped += 1;
        }
        g.decisions += 1;
        let mut h = fnv1a(g.digest, from.as_bytes());
        h = fnv1a(h, &[0]);
        h = fnv1a(h, to.as_bytes());
        g.digest = fnv1a(h, &[verdict.tag()]);
        verdict
    }

    /// Decide the fate of one message: `None` = dropped, `Some(delay)` =
    /// deliver after `delay`.
    pub fn judge(&self, from: &str, to: &str) -> Option<Duration> {
        match self.judge_verdict(from, to) {
            Verdict::Deliver(d) => Some(d),
            Verdict::DroppedByPartition | Verdict::DroppedByChance => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_delivers_immediately() {
        let f = FaultPlan::new(1);
        assert_eq!(f.judge("a", "b"), Some(Duration::ZERO));
        assert_eq!(f.dropped_count(), 0);
    }

    #[test]
    fn partition_is_directional() {
        let f = FaultPlan::new(1);
        f.partition("a", "b");
        assert_eq!(f.judge("a", "b"), None);
        assert!(f.judge("b", "a").is_some());
        f.heal("a", "b");
        assert!(f.judge("a", "b").is_some());
    }

    #[test]
    fn partition_pair_cuts_both_ways() {
        let f = FaultPlan::new(1);
        f.partition_pair("a", "b");
        assert_eq!(f.judge("a", "b"), None);
        assert_eq!(f.judge("b", "a"), None);
        f.heal_pair("a", "b");
        assert!(f.judge("a", "b").is_some());
        assert!(f.judge("b", "a").is_some());
    }

    #[test]
    fn drop_probability_is_statistical_and_seeded() {
        let f = FaultPlan::new(42);
        f.set_drop("a", "b", 0.5);
        let drops: usize = (0..1000).filter(|_| f.judge("a", "b").is_none()).count();
        assert!((300..700).contains(&drops), "got {drops}");
        // Same seed → same decisions.
        let f2 = FaultPlan::new(42);
        f2.set_drop("a", "b", 0.5);
        let drops2: usize = (0..1000).filter(|_| f2.judge("a", "b").is_none()).count();
        assert_eq!(drops, drops2);
    }

    #[test]
    fn delay_reported() {
        let f = FaultPlan::new(1);
        f.set_delay("a", "b", Duration::from_millis(7));
        assert_eq!(f.judge("a", "b"), Some(Duration::from_millis(7)));
    }

    #[test]
    fn drop_one_and_zero() {
        let f = FaultPlan::new(3);
        f.set_drop("a", "b", 1.0);
        assert_eq!(f.judge("a", "b"), None);
        f.set_drop("a", "b", 0.0);
        assert!(f.judge("a", "b").is_some());
    }

    /// Build a plan with several links configured and run a fixed message
    /// sequence through it, returning every verdict plus the audit state.
    fn run_sequence(seed: u64) -> (Vec<Verdict>, u64, u64) {
        let f = FaultPlan::new(seed);
        f.set_drop("a", "b", 0.4);
        f.set_drop("b", "a", 0.2);
        f.set_default_drop(0.1);
        f.set_delay("c", "a", Duration::from_millis(3));
        f.partition("a", "c");
        let links = [("a", "b"), ("b", "a"), ("a", "c"), ("c", "a"), ("b", "c")];
        let verdicts: Vec<Verdict> = (0..200)
            .map(|i| {
                let (from, to) = links[i % links.len()];
                f.judge_verdict(from, to)
            })
            .collect();
        (verdicts, f.decisions_count(), f.decisions_digest())
    }

    #[test]
    fn same_seed_same_sequence_identical_decisions() {
        let (v1, n1, d1) = run_sequence(0xfeed);
        let (v2, n2, d2) = run_sequence(0xfeed);
        assert_eq!(v1, v2, "verdict streams diverged for equal seeds");
        assert_eq!(n1, n2);
        assert_eq!(d1, d2, "audit digests diverged for equal seeds");
        assert_eq!(n1, 200);
    }

    #[test]
    fn different_seed_diverges() {
        let (_, _, d1) = run_sequence(1);
        let (_, _, d2) = run_sequence(2);
        // Partition/delay verdicts are seed-independent, but with 0.1–0.4
        // drop probabilities on the other links the 200-step streams are
        // astronomically unlikely to coincide.
        assert_ne!(d1, d2);
    }

    #[test]
    fn digest_covers_link_names_not_just_verdicts() {
        let f1 = FaultPlan::new(7);
        let f2 = FaultPlan::new(7);
        f1.judge_verdict("a", "b");
        f2.judge_verdict("x", "y");
        assert_eq!(f1.decisions_count(), f2.decisions_count());
        assert_ne!(f1.decisions_digest(), f2.decisions_digest());
    }

    #[test]
    fn partition_checks_consume_no_randomness() {
        // A partitioned link must not advance the RNG: the decision stream
        // on *other* links stays identical whether or not partitioned sends
        // are interleaved.
        let plain = FaultPlan::new(11);
        plain.set_drop("a", "b", 0.5);
        let noisy = FaultPlan::new(11);
        noisy.set_drop("a", "b", 0.5);
        noisy.partition("a", "c");
        let mut verdicts_plain = Vec::new();
        let mut verdicts_noisy = Vec::new();
        for _ in 0..100 {
            verdicts_plain.push(plain.judge_verdict("a", "b"));
            assert_eq!(noisy.judge_verdict("a", "c"), Verdict::DroppedByPartition);
            verdicts_noisy.push(noisy.judge_verdict("a", "b"));
        }
        assert_eq!(verdicts_plain, verdicts_noisy);
    }

    #[test]
    fn fail_fast_flag_round_trips() {
        let f = FaultPlan::new(1);
        assert!(!f.fail_fast());
        f.set_fail_fast(true);
        assert!(f.fail_fast());
    }

    #[test]
    fn verdict_classifies_drop_reason() {
        let f = FaultPlan::new(5);
        f.partition("a", "b");
        assert_eq!(f.judge_verdict("a", "b"), Verdict::DroppedByPartition);
        f.heal("a", "b");
        f.set_drop("a", "b", 1.0);
        assert_eq!(f.judge_verdict("a", "b"), Verdict::DroppedByChance);
        f.set_drop("a", "b", 0.0);
        f.set_delay("a", "b", Duration::from_millis(9));
        assert_eq!(
            f.judge_verdict("a", "b"),
            Verdict::Deliver(Duration::from_millis(9))
        );
        assert_eq!(f.dropped_count(), 2);
        assert_eq!(f.decisions_count(), 3);
    }
}
