//! Fault injection for the simulated network.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::time::Duration;

/// The injectable fault state of the network, shared by all endpoints.
///
/// Links are directional: partitioning `a → b` stops messages from `a` to
/// `b` but not replies from `b` to `a` (use [`FaultPlan::partition_pair`]
/// for symmetric cuts).
pub struct FaultPlan {
    inner: Mutex<Inner>,
}

struct Inner {
    partitions: HashSet<(String, String)>,
    drop_prob: HashMap<(String, String), f64>,
    delay: HashMap<(String, String), Duration>,
    default_drop: f64,
    rng: StdRng,
    dropped: u64,
}

impl FaultPlan {
    /// A plan with no faults, seeded for reproducible loss decisions.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            inner: Mutex::new(Inner {
                partitions: HashSet::new(),
                drop_prob: HashMap::new(),
                delay: HashMap::new(),
                default_drop: 0.0,
                rng: StdRng::seed_from_u64(seed),
                dropped: 0,
            }),
        }
    }

    /// Cut the directional link `from → to`.
    pub fn partition(&self, from: &str, to: &str) {
        self.inner
            .lock()
            .partitions
            .insert((from.to_string(), to.to_string()));
    }

    /// Cut both directions between `a` and `b`.
    pub fn partition_pair(&self, a: &str, b: &str) {
        self.partition(a, b);
        self.partition(b, a);
    }

    /// Remove any partition on `from → to` (and nothing else).
    pub fn heal(&self, from: &str, to: &str) {
        self.inner
            .lock()
            .partitions
            .remove(&(from.to_string(), to.to_string()));
    }

    /// Heal both directions.
    pub fn heal_pair(&self, a: &str, b: &str) {
        self.heal(a, b);
        self.heal(b, a);
    }

    /// Heal every partition.
    pub fn heal_all(&self) {
        self.inner.lock().partitions.clear();
    }

    /// Drop messages on `from → to` with probability `p`.
    pub fn set_drop(&self, from: &str, to: &str, p: f64) {
        self.inner
            .lock()
            .drop_prob
            .insert((from.to_string(), to.to_string()), p.clamp(0.0, 1.0));
    }

    /// Drop messages on every link with probability `p` unless overridden.
    pub fn set_default_drop(&self, p: f64) {
        self.inner.lock().default_drop = p.clamp(0.0, 1.0);
    }

    /// Delay deliveries on `from → to`.
    pub fn set_delay(&self, from: &str, to: &str, d: Duration) {
        self.inner
            .lock()
            .delay
            .insert((from.to_string(), to.to_string()), d);
    }

    /// Number of messages dropped so far.
    pub fn dropped_count(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Decide the fate of one message: `None` = dropped, `Some(delay)` =
    /// deliver after `delay`.
    pub fn judge(&self, from: &str, to: &str) -> Option<Duration> {
        let mut g = self.inner.lock();
        let link = (from.to_string(), to.to_string());
        if g.partitions.contains(&link) {
            g.dropped += 1;
            return None;
        }
        let p = g.drop_prob.get(&link).copied().unwrap_or(g.default_drop);
        if p > 0.0 && g.rng.gen::<f64>() < p {
            g.dropped += 1;
            return None;
        }
        Some(g.delay.get(&link).copied().unwrap_or(Duration::ZERO))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_delivers_immediately() {
        let f = FaultPlan::new(1);
        assert_eq!(f.judge("a", "b"), Some(Duration::ZERO));
        assert_eq!(f.dropped_count(), 0);
    }

    #[test]
    fn partition_is_directional() {
        let f = FaultPlan::new(1);
        f.partition("a", "b");
        assert_eq!(f.judge("a", "b"), None);
        assert!(f.judge("b", "a").is_some());
        f.heal("a", "b");
        assert!(f.judge("a", "b").is_some());
    }

    #[test]
    fn partition_pair_cuts_both_ways() {
        let f = FaultPlan::new(1);
        f.partition_pair("a", "b");
        assert_eq!(f.judge("a", "b"), None);
        assert_eq!(f.judge("b", "a"), None);
        f.heal_pair("a", "b");
        assert!(f.judge("a", "b").is_some());
        assert!(f.judge("b", "a").is_some());
    }

    #[test]
    fn drop_probability_is_statistical_and_seeded() {
        let f = FaultPlan::new(42);
        f.set_drop("a", "b", 0.5);
        let drops: usize = (0..1000).filter(|_| f.judge("a", "b").is_none()).count();
        assert!((300..700).contains(&drops), "got {drops}");
        // Same seed → same decisions.
        let f2 = FaultPlan::new(42);
        f2.set_drop("a", "b", 0.5);
        let drops2: usize = (0..1000).filter(|_| f2.judge("a", "b").is_none()).count();
        assert_eq!(drops, drops2);
    }

    #[test]
    fn delay_reported() {
        let f = FaultPlan::new(1);
        f.set_delay("a", "b", Duration::from_millis(7));
        assert_eq!(f.judge("a", "b"), Some(Duration::from_millis(7)));
    }

    #[test]
    fn drop_one_and_zero() {
        let f = FaultPlan::new(3);
        f.set_drop("a", "b", 1.0);
        assert_eq!(f.judge("a", "b"), None);
        f.set_drop("a", "b", 0.0);
        assert!(f.judge("a", "b").is_some());
    }
}
