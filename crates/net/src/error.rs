//! Network-layer errors.

use std::fmt;

/// Result alias for the network crate.
pub type NetResult<T> = Result<T, NetError>;

/// Errors raised by the simulated network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// No endpoint with this name is registered.
    UnknownEndpoint(String),
    /// The RPC deadline passed without a reply (lost message, partition, or
    /// slow server — indistinguishable to the caller, exactly as in a real
    /// network).
    Timeout,
    /// The link is partitioned and the fault plan is in fail-fast mode, so
    /// the send is refused immediately instead of silently dropped. Used by
    /// the deterministic explorer, where waiting out a real timeout per
    /// partitioned send would make sweeps wall-clock-bound.
    Partitioned,
    /// The local endpoint was shut down.
    Closed,
    /// The remote handler returned an application-level error payload.
    Remote(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownEndpoint(e) => write!(f, "unknown endpoint: {e}"),
            NetError::Timeout => write!(f, "rpc timed out"),
            NetError::Partitioned => write!(f, "link partitioned (fail-fast)"),
            NetError::Closed => write!(f, "endpoint closed"),
            NetError::Remote(m) => write!(f, "remote error: {m}"),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(NetError::Timeout.to_string().contains("timed out"));
        assert!(NetError::UnknownEndpoint("x".into())
            .to_string()
            .contains('x'));
        assert!(NetError::Partitioned.to_string().contains("partitioned"));
    }
}
