//! # rrq-net
//!
//! A simulated interprocess network. The paper's client/server split (§2)
//! assumes "interprocess communication primitives … to exchange requests and
//! replies", and §5 has the clerk invoke queue-manager operations by remote
//! procedure call. This crate provides both primitives — request/response
//! RPC and fire-and-forget one-way messages — over an in-process message
//! [`bus::NetworkBus`] with injectable faults:
//!
//! * **partitions** between named endpoints (the paper's "client and server
//!   nodes are frequently partitioned by communication failures", §1),
//! * probabilistic **message loss** per link,
//! * fixed **delivery delay** per link.
//!
//! Faults are controlled by a seeded RNG, so failure schedules are
//! reproducible.

pub mod bus;
pub mod error;
pub mod faults;
pub mod rpc;

pub use bus::{Endpoint, Envelope, NetworkBus};
pub use error::{NetError, NetResult};
pub use faults::{FaultPlan, Verdict};
pub use rpc::{RpcClient, RpcServer};
