//! The in-process message bus: named endpoints exchanging envelopes, with
//! every delivery routed through the [`crate::faults::FaultPlan`].

use crate::error::{NetError, NetResult};
use crate::faults::{FaultPlan, Verdict};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// A message in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Sender endpoint name.
    pub from: String,
    /// Destination endpoint name.
    pub to: String,
    /// Correlates replies to requests (0 for one-way messages).
    pub correlation: u64,
    /// True when this envelope answers a request.
    pub is_reply: bool,
    /// Opaque payload.
    pub payload: Vec<u8>,
}

struct BusInner {
    endpoints: Mutex<HashMap<String, Sender<Envelope>>>,
    faults: FaultPlan,
    delivered: Mutex<u64>,
}

/// The shared network. Cheap to clone.
#[derive(Clone)]
pub struct NetworkBus {
    inner: Arc<BusInner>,
}

impl NetworkBus {
    /// A bus with fault decisions seeded by `seed`.
    pub fn new(seed: u64) -> Self {
        NetworkBus {
            inner: Arc::new(BusInner {
                endpoints: Mutex::new(HashMap::new()),
                faults: FaultPlan::new(seed),
                delivered: Mutex::new(0),
            }),
        }
    }

    /// The fault-injection controls.
    pub fn faults(&self) -> &FaultPlan {
        &self.inner.faults
    }

    /// Messages successfully delivered so far.
    pub fn delivered_count(&self) -> u64 {
        *self.inner.delivered.lock()
    }

    /// Create (or replace) an endpoint. Replacing models a process restart:
    /// messages sent to the old incarnation's queue are lost.
    pub fn endpoint(&self, name: &str) -> Endpoint {
        let (tx, rx) = unbounded();
        self.inner.endpoints.lock().insert(name.to_string(), tx);
        Endpoint {
            name: name.to_string(),
            rx,
            bus: self.clone(),
        }
    }

    /// Remove an endpoint (process death).
    pub fn remove_endpoint(&self, name: &str) {
        self.inner.endpoints.lock().remove(name);
    }

    /// Send an envelope, subject to the fault plan. Lost messages and
    /// messages to unknown endpoints vanish silently from the sender's point
    /// of view — like UDP — except that an unknown *destination* is reported
    /// so tests can distinguish misconfiguration from injected loss, and
    /// partition drops are reported when the plan is in fail-fast mode (the
    /// explorer's way of skipping real timeout waits).
    pub fn send(&self, env: Envelope) -> NetResult<()> {
        let delay = match self.inner.faults.judge_verdict(&env.from, &env.to) {
            Verdict::Deliver(d) => d,
            Verdict::DroppedByPartition => {
                rrq_obs::counter_inc("net.partition.drops");
                return if self.inner.faults.fail_fast() {
                    Err(NetError::Partitioned)
                } else {
                    Ok(()) // dropped: sender can't tell
                };
            }
            Verdict::DroppedByChance => {
                rrq_obs::counter_inc("net.chance.drops");
                return Ok(()); // dropped: sender can't tell
            }
        };
        let tx = {
            let g = self.inner.endpoints.lock();
            g.get(&env.to)
                .cloned()
                .ok_or_else(|| NetError::UnknownEndpoint(env.to.clone()))?
        };
        if delay.is_zero() {
            let _ = tx.send(env);
            *self.inner.delivered.lock() += 1;
        } else {
            let bus = self.clone();
            std::thread::spawn(move || {
                std::thread::sleep(delay);
                let _ = tx.send(env);
                *bus.inner.delivered.lock() += 1;
            });
        }
        Ok(())
    }
}

/// A receiving endpoint (single consumer).
pub struct Endpoint {
    name: String,
    rx: Receiver<Envelope>,
    bus: NetworkBus,
}

impl Endpoint {
    /// This endpoint's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The bus this endpoint is attached to.
    pub fn bus(&self) -> &NetworkBus {
        &self.bus
    }

    /// Block for the next envelope up to `timeout`.
    pub fn recv(&self, timeout: Duration) -> NetResult<Envelope> {
        self.rx.recv_timeout(timeout).map_err(|_| NetError::Timeout)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope> {
        self.rx.try_recv().ok()
    }

    /// Send a payload from this endpoint.
    pub fn send_to(
        &self,
        to: &str,
        correlation: u64,
        is_reply: bool,
        payload: Vec<u8>,
    ) -> NetResult<()> {
        self.bus.send(Envelope {
            from: self.name.clone(),
            to: to.to_string(),
            correlation,
            is_reply,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_delivery() {
        let bus = NetworkBus::new(1);
        let a = bus.endpoint("a");
        let b = bus.endpoint("b");
        a.send_to("b", 1, false, b"hi".to_vec()).unwrap();
        let env = b.recv(Duration::from_secs(1)).unwrap();
        assert_eq!(env.from, "a");
        assert_eq!(env.payload, b"hi");
        assert_eq!(bus.delivered_count(), 1);
    }

    #[test]
    fn unknown_destination_reported() {
        let bus = NetworkBus::new(1);
        let a = bus.endpoint("a");
        assert!(matches!(
            a.send_to("ghost", 0, false, vec![]),
            Err(NetError::UnknownEndpoint(_))
        ));
    }

    #[test]
    fn partitioned_messages_vanish() {
        let bus = NetworkBus::new(1);
        let a = bus.endpoint("a");
        let b = bus.endpoint("b");
        bus.faults().partition("a", "b");
        a.send_to("b", 0, false, b"lost".to_vec()).unwrap();
        assert!(b.recv(Duration::from_millis(50)).is_err());
        bus.faults().heal("a", "b");
        a.send_to("b", 0, false, b"ok".to_vec()).unwrap();
        assert_eq!(b.recv(Duration::from_secs(1)).unwrap().payload, b"ok");
    }

    #[test]
    fn delayed_delivery_arrives_later() {
        let bus = NetworkBus::new(1);
        let a = bus.endpoint("a");
        let b = bus.endpoint("b");
        bus.faults().set_delay("a", "b", Duration::from_millis(60));
        a.send_to("b", 0, false, b"slow".to_vec()).unwrap();
        assert!(b.recv(Duration::from_millis(10)).is_err());
        assert_eq!(b.recv(Duration::from_secs(2)).unwrap().payload, b"slow");
    }

    #[test]
    fn endpoint_replacement_drops_old_queue() {
        let bus = NetworkBus::new(1);
        let a = bus.endpoint("a");
        let b1 = bus.endpoint("b");
        a.send_to("b", 0, false, b"for-old".to_vec()).unwrap();
        // "b" restarts before consuming.
        let b2 = bus.endpoint("b");
        a.send_to("b", 0, false, b"for-new".to_vec()).unwrap();
        assert_eq!(b2.recv(Duration::from_secs(1)).unwrap().payload, b"for-new");
        // The old incarnation still has its message, but the process is gone.
        assert_eq!(b1.try_recv().unwrap().payload, b"for-old");
    }

    #[test]
    fn fail_fast_partition_is_reported_to_sender() {
        let bus = NetworkBus::new(1);
        let a = bus.endpoint("a");
        let _b = bus.endpoint("b");
        bus.faults().set_fail_fast(true);
        bus.faults().partition("a", "b");
        assert!(matches!(
            a.send_to("b", 0, false, vec![]),
            Err(NetError::Partitioned)
        ));
        bus.faults().heal("a", "b");
        a.send_to("b", 0, false, b"ok".to_vec()).unwrap();
    }

    #[test]
    fn remove_endpoint_makes_destination_unknown() {
        let bus = NetworkBus::new(1);
        let a = bus.endpoint("a");
        let _b = bus.endpoint("b");
        bus.remove_endpoint("b");
        assert!(matches!(
            a.send_to("b", 0, false, vec![]),
            Err(NetError::UnknownEndpoint(_))
        ));
    }
}
