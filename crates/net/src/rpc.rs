//! Remote procedure call and one-way messaging over the bus.
//!
//! [`RpcClient::call`] is the clerk's normal path (§5: "the clerk invokes QM
//! operations using remote procedure call"); [`RpcClient::send_one_way`] is
//! the §5 optimization where `Send` forgoes the enqueue acknowledgement —
//! "this saves a message from the QM to the client in the common case that
//! the reply arrives within the client's timeout period".

use crate::bus::{Endpoint, Envelope, NetworkBus};
use crate::error::{NetError, NetResult};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Client half: issues requests from its own endpoint and matches replies by
/// correlation id.
pub struct RpcClient {
    endpoint: Endpoint,
    next_corr: AtomicU64,
    /// Counters: (calls, one_way_sends, retries).
    calls: AtomicU64,
    one_ways: AtomicU64,
}

impl RpcClient {
    /// Create a client endpoint named `name` on `bus`.
    pub fn new(bus: &NetworkBus, name: &str) -> Self {
        RpcClient {
            endpoint: bus.endpoint(name),
            next_corr: AtomicU64::new(1),
            calls: AtomicU64::new(0),
            one_ways: AtomicU64::new(0),
        }
    }

    /// This client's endpoint name.
    pub fn name(&self) -> &str {
        self.endpoint.name()
    }

    /// (rpc calls, one-way sends) so far.
    pub fn counts(&self) -> (u64, u64) {
        (
            self.calls.load(Ordering::Acquire),
            self.one_ways.load(Ordering::Acquire),
        )
    }

    /// Synchronous request/response. Envelopes that arrive with a stale
    /// correlation id (replies to calls that already timed out) are
    /// discarded.
    pub fn call(&self, to: &str, payload: Vec<u8>, timeout: Duration) -> NetResult<Vec<u8>> {
        self.calls.fetch_add(1, Ordering::AcqRel);
        rrq_obs::counter_inc("net.rpc.calls");
        let corr = self.next_corr.fetch_add(1, Ordering::AcqRel);
        self.endpoint.send_to(to, corr, false, payload)?;
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                rrq_obs::counter_inc("net.rpc.timeouts");
                return Err(NetError::Timeout);
            }
            let env = self.endpoint.recv(deadline - now)?;
            if env.is_reply && env.correlation == corr {
                return Ok(env.payload);
            }
            // Stale or unexpected: drop and keep waiting.
        }
    }

    /// Fire-and-forget send; no acknowledgement, no failure signal beyond
    /// local misconfiguration.
    pub fn send_one_way(&self, to: &str, payload: Vec<u8>) -> NetResult<()> {
        self.one_ways.fetch_add(1, Ordering::AcqRel);
        self.endpoint.send_to(to, 0, false, payload)
    }
}

/// Server half: receives requests on its endpoint and replies through the
/// handler's return value.
pub struct RpcServer {
    endpoint: Endpoint,
}

impl RpcServer {
    /// Create a server endpoint named `name` on `bus`.
    pub fn new(bus: &NetworkBus, name: &str) -> Self {
        RpcServer {
            endpoint: bus.endpoint(name),
        }
    }

    /// Receive one request (up to `timeout`) and answer it with `handler`.
    /// One-way messages (correlation 0) are handled without replying.
    /// Returns `false` on timeout.
    pub fn serve_one(
        &self,
        timeout: Duration,
        handler: impl FnOnce(&Envelope) -> Vec<u8>,
    ) -> NetResult<bool> {
        match self.endpoint.recv(timeout) {
            Ok(env) => {
                let response = handler(&env);
                if env.correlation != 0 {
                    match self
                        .endpoint
                        .send_to(&env.from, env.correlation, true, response)
                    {
                        // A reply that can't reach the caller (fail-fast
                        // partition, or the caller's endpoint restarted away)
                        // is a lost message, not a server fault — the caller
                        // times out and resynchronizes, the server keeps
                        // serving.
                        Err(NetError::Partitioned | NetError::UnknownEndpoint(_)) => {}
                        other => other?,
                    }
                }
                Ok(true)
            }
            Err(NetError::Timeout) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Serve until `stop` returns true, with a poll interval for the stop
    /// check.
    pub fn serve_until(
        &self,
        stop: impl Fn() -> bool,
        handler: impl Fn(&Envelope) -> Vec<u8>,
    ) -> NetResult<()> {
        while !stop() {
            self.serve_one(Duration::from_millis(20), &handler)?;
        }
        Ok(())
    }
}

/// Spawn a server loop on a thread; returns a shutdown guard.
pub fn spawn_server(
    bus: &NetworkBus,
    name: &str,
    handler: impl Fn(&Envelope) -> Vec<u8> + Send + 'static,
) -> ServerGuard {
    let server = RpcServer::new(bus, name);
    let stop = Arc::new(AtomicU64::new(0));
    let stop2 = Arc::clone(&stop);
    let handle = std::thread::spawn(move || {
        let _ = server.serve_until(|| stop2.load(Ordering::Acquire) != 0, handler);
    });
    ServerGuard {
        stop,
        handle: Some(handle),
    }
}

/// Stops the spawned server when dropped.
pub struct ServerGuard {
    stop: Arc<AtomicU64>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ServerGuard {
    /// Stop the server and join its thread.
    pub fn shutdown(mut self) {
        self.stop.store(1, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        self.stop.store(1, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_rpc() {
        let bus = NetworkBus::new(1);
        let _guard = spawn_server(&bus, "server", |env| {
            let mut out = b"echo:".to_vec();
            out.extend_from_slice(&env.payload);
            out
        });
        let client = RpcClient::new(&bus, "client");
        let reply = client
            .call("server", b"hello".to_vec(), Duration::from_secs(2))
            .unwrap();
        assert_eq!(reply, b"echo:hello");
        assert_eq!(client.counts(), (1, 0));
    }

    #[test]
    fn rpc_times_out_without_server() {
        let bus = NetworkBus::new(1);
        bus.endpoint("server"); // exists but nobody serves
        let client = RpcClient::new(&bus, "client");
        let r = client.call("server", b"x".to_vec(), Duration::from_millis(50));
        assert_eq!(r, Err(NetError::Timeout));
    }

    #[test]
    fn rpc_times_out_under_partition_then_recovers() {
        let bus = NetworkBus::new(1);
        let _guard = spawn_server(&bus, "server", |_| b"ok".to_vec());
        let client = RpcClient::new(&bus, "client");
        bus.faults().partition_pair("client", "server");
        assert_eq!(
            client.call("server", vec![], Duration::from_millis(60)),
            Err(NetError::Timeout)
        );
        bus.faults().heal_pair("client", "server");
        assert_eq!(
            client
                .call("server", vec![], Duration::from_secs(2))
                .unwrap(),
            b"ok"
        );
    }

    #[test]
    fn stale_replies_are_discarded() {
        let bus = NetworkBus::new(1);
        // A slow server: delays the first reply past the client timeout.
        bus.faults()
            .set_delay("server", "client", Duration::from_millis(80));
        let _guard = spawn_server(&bus, "server", |env| env.payload.clone());
        let client = RpcClient::new(&bus, "client");
        assert_eq!(
            client.call("server", b"first".to_vec(), Duration::from_millis(30)),
            Err(NetError::Timeout)
        );
        bus.faults().set_delay("server", "client", Duration::ZERO);
        // The second call must get the *second* reply even though the first,
        // late reply arrives in between.
        let r = client
            .call("server", b"second".to_vec(), Duration::from_secs(2))
            .unwrap();
        assert_eq!(r, b"second");
    }

    #[test]
    fn server_survives_unreachable_reply_path() {
        let bus = NetworkBus::new(1);
        bus.faults().set_fail_fast(true);
        let _guard = spawn_server(&bus, "server", |_| b"ok".to_vec());
        let client = RpcClient::new(&bus, "client");
        // Requests get through; replies are refused fail-fast. The server
        // loop must shrug that off rather than die.
        bus.faults().partition("server", "client");
        assert_eq!(
            client.call("server", vec![], Duration::from_millis(60)),
            Err(NetError::Timeout)
        );
        bus.faults().heal("server", "client");
        assert_eq!(
            client
                .call("server", vec![], Duration::from_secs(2))
                .unwrap(),
            b"ok"
        );
    }

    #[test]
    fn one_way_send_reaches_server() {
        let bus = NetworkBus::new(1);
        let (tx, rx) = crossbeam::channel::unbounded();
        let _guard = spawn_server(&bus, "server", move |env| {
            tx.send(env.payload.clone()).unwrap();
            vec![]
        });
        let client = RpcClient::new(&bus, "client");
        client.send_one_way("server", b"fire".to_vec()).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(2)).unwrap(), b"fire");
        assert_eq!(client.counts(), (0, 1));
    }
}
