//! The participant interface for transactional stores.
//!
//! Anything that wants its updates to happen atomically with a queue
//! operation — the queue store itself, an application database, a saga log —
//! implements [`ResourceManager`] and is enlisted in a [`crate::Txn`]. The
//! paper's reply processor "is just another resource manager that
//! participates in the transaction" (§2); this trait is that notion made
//! concrete.

use crate::error::TxnResult;
use crate::ids::TxnId;
use rrq_storage::kv::KvStore;
use std::sync::Arc;

/// A two-phase-commit participant.
///
/// `prepare` must make the transaction's effects durable-but-undecided; after
/// it returns `Ok`, the participant guarantees it can `commit` or `abort`
/// even across a crash (surfacing the transaction as in-doubt on recovery).
pub trait ResourceManager: Send + Sync {
    /// Stable, unique participant name (used for logging and dedup).
    fn name(&self) -> &str;

    /// Join `txn`. Called once, before any work under the transaction.
    fn begin(&self, txn: TxnId) -> TxnResult<()>;

    /// Phase 1: harden the transaction's effects as in-doubt.
    fn prepare(&self, txn: TxnId) -> TxnResult<()>;

    /// Phase 2 (or one-phase fast path): make the effects permanent.
    fn commit(&self, txn: TxnId) -> TxnResult<()>;

    /// Undo the transaction's effects.
    fn abort(&self, txn: TxnId) -> TxnResult<()>;
}

/// Adapter making a [`KvStore`] a [`ResourceManager`].
pub struct KvResource {
    name: String,
    store: Arc<KvStore>,
}

impl KvResource {
    /// Wrap a store under a participant name.
    pub fn new(name: impl Into<String>, store: Arc<KvStore>) -> Self {
        KvResource {
            name: name.into(),
            store,
        }
    }

    /// Access the underlying store.
    pub fn store(&self) -> &Arc<KvStore> {
        &self.store
    }
}

impl ResourceManager for KvResource {
    fn name(&self) -> &str {
        &self.name
    }

    fn begin(&self, txn: TxnId) -> TxnResult<()> {
        Ok(self.store.begin(txn.raw())?)
    }

    fn prepare(&self, txn: TxnId) -> TxnResult<()> {
        Ok(self.store.prepare(txn.raw())?)
    }

    fn commit(&self, txn: TxnId) -> TxnResult<()> {
        Ok(self.store.commit(txn.raw())?)
    }

    fn abort(&self, txn: TxnId) -> TxnResult<()> {
        Ok(self.store.abort(txn.raw())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrq_storage::disk::SimDisk;
    use rrq_storage::kv::KvOptions;

    fn store() -> Arc<KvStore> {
        let (s, _) = KvStore::open(
            Arc::new(SimDisk::new()),
            Arc::new(SimDisk::new()),
            KvOptions::default(),
        )
        .unwrap();
        s
    }

    #[test]
    fn kv_resource_delegates_lifecycle() {
        let s = store();
        let rm = KvResource::new("db", Arc::clone(&s));
        assert_eq!(rm.name(), "db");
        rm.begin(TxnId(1)).unwrap();
        s.put(1, b"k", b"v").unwrap();
        rm.prepare(TxnId(1)).unwrap();
        rm.commit(TxnId(1)).unwrap();
        assert_eq!(s.get(None, b"k").unwrap(), Some(b"v".to_vec()));
    }

    #[test]
    fn kv_resource_abort_path() {
        let s = store();
        let rm = KvResource::new("db", Arc::clone(&s));
        rm.begin(TxnId(2)).unwrap();
        s.put(2, b"k", b"v").unwrap();
        rm.abort(TxnId(2)).unwrap();
        assert_eq!(s.get(None, b"k").unwrap(), None);
    }
}
