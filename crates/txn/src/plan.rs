//! Epoch planner for deterministic planned execution (QueCC-style).
//!
//! Both Qadah papers in PAPERS.md (*A Queue-oriented Transaction Processing
//! Paradigm*, *Highly Available Queue-oriented Speculative Transaction
//! Processing*) make the same observation this repo's paper makes about
//! requests: transactions, too, can be queues. A **plan phase** takes a
//! batch of transactions (one epoch), gives each a priority (its arrival
//! index in the batch), and partitions the batch into per-key access queues
//! ordered by that priority. An **execute phase** then runs the queues
//! without any locks: a transaction is runnable the moment it heads every
//! queue it appears in, so two transactions with disjoint access sets never
//! wait on each other, and conflicting ones run in plan priority order —
//! the plan itself is the serialization order that 2PL would otherwise
//! discover one blocked lock request at a time.
//!
//! [`EpochPlan`] is the pure data structure: it knows nothing about
//! threads, stores, or queues-the-durable-kind. The executor
//! (`rrq_core::planned`) drives it under a mutex, and the declared access
//! sets come from the workload (`Txn::set_plan_scope` enforces them at
//! execute time). Misspeculation — a transaction touching a key the plan
//! never serialized it on — surfaces as `TxnError::OutsidePlan`; the
//! executor aborts the attempt and calls [`EpochPlan::replan`] with the
//! widened set, which re-enqueues the transaction at the *back* of its
//! queues (deterministic: retries run after every first-round transaction
//! that shares a key with them).
//!
//! Priority order is total and deterministic, so replaying the same batch
//! always yields the same per-key commit order — the property the
//! `exec_mode_equiv` lockstep oracle in `crates/sim` pins against the 2PL
//! baseline.

use crate::lock::LockKey;
use std::collections::{BTreeMap, VecDeque};

/// Execution state of one planned transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskState {
    /// Waiting to head all of its access queues.
    Pending,
    /// Handed to a worker by [`EpochPlan::next_ready`].
    Running,
    /// Completed, aborted, or superseded by a replanned attempt.
    Done,
}

/// One epoch's per-key access queues.
///
/// Tasks are identified by their batch index; the index doubles as the plan
/// priority (lower = earlier). A task with an empty access set conflicts
/// with nothing and is runnable immediately.
#[derive(Default)]
pub struct EpochPlan {
    /// key → indices of tasks that declared it, in priority order.
    queues: BTreeMap<LockKey, VecDeque<usize>>,
    /// Deduplicated declared access set per task.
    keys_of: Vec<Vec<LockKey>>,
    state: Vec<TaskState>,
    done: usize,
}

impl EpochPlan {
    /// Plan a batch: task `i` of `access_sets` gets priority `i`. Duplicate
    /// keys within one set are deduplicated (a task holds one slot per key).
    pub fn build(access_sets: &[Vec<LockKey>]) -> Self {
        let mut queues: BTreeMap<LockKey, VecDeque<usize>> = BTreeMap::new();
        let mut keys_of = Vec::with_capacity(access_sets.len());
        for (i, set) in access_sets.iter().enumerate() {
            let mut keys = set.clone();
            keys.sort();
            keys.dedup();
            for k in &keys {
                queues.entry(k.clone()).or_default().push_back(i);
            }
            keys_of.push(keys);
        }
        EpochPlan {
            queues,
            state: vec![TaskState::Pending; access_sets.len()],
            keys_of,
            done: 0,
        }
    }

    /// Number of tasks currently in the plan (grows on replan).
    pub fn len(&self) -> usize {
        self.state.len()
    }

    /// True when the plan holds no tasks at all.
    pub fn is_empty(&self) -> bool {
        self.state.is_empty()
    }

    /// The deduplicated access set task `i` was planned with.
    pub fn keys_of(&self, i: usize) -> &[LockKey] {
        &self.keys_of[i]
    }

    /// Hand out the highest-priority runnable task and mark it running, or
    /// `None` if nothing is runnable right now (some tasks may still be
    /// running or blocked behind them — check [`EpochPlan::is_done`]).
    pub fn next_ready(&mut self) -> Option<usize> {
        let ready = (0..self.state.len()).find(|&i| {
            self.state[i] == TaskState::Pending
                && self.keys_of[i]
                    .iter()
                    .all(|k| self.queues[k].front() == Some(&i))
        })?;
        self.state[ready] = TaskState::Running;
        Some(ready)
    }

    /// Retire task `i` (committed, aborted without retry, or vanished),
    /// unblocking its successors in every queue it headed.
    pub fn complete(&mut self, i: usize) {
        debug_assert_eq!(self.state[i], TaskState::Running, "complete of idle task");
        for k in &self.keys_of[i] {
            let q = self.queues.get_mut(k).expect("planned key has a queue");
            debug_assert_eq!(q.front(), Some(&i), "completing task must head its queues");
            q.pop_front();
        }
        self.state[i] = TaskState::Done;
        self.done += 1;
    }

    /// Misspeculation: retire attempt `i` and re-enqueue the transaction
    /// with `declared ∪ extra` at the back of each queue. Returns the new
    /// task index (the caller maps it back to the request being retried).
    pub fn replan(&mut self, i: usize, extra: &[LockKey]) -> usize {
        self.complete(i);
        let mut keys = self.keys_of[i].clone();
        keys.extend_from_slice(extra);
        keys.sort();
        keys.dedup();
        let idx = self.state.len();
        for k in &keys {
            self.queues.entry(k.clone()).or_default().push_back(idx);
        }
        self.keys_of.push(keys);
        self.state.push(TaskState::Pending);
        idx
    }

    /// Every task retired — the epoch can close.
    pub fn is_done(&self) -> bool {
        self.done == self.state.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(name: &str) -> LockKey {
        LockKey::new(7, name)
    }

    #[test]
    fn conflicting_tasks_run_in_priority_order() {
        let mut plan = EpochPlan::build(&[vec![k("a")], vec![k("a")], vec![k("a")]]);
        for expect in 0..3 {
            assert_eq!(plan.next_ready(), Some(expect));
            assert_eq!(plan.next_ready(), None, "same key: one at a time");
            plan.complete(expect);
        }
        assert!(plan.is_done());
    }

    #[test]
    fn disjoint_tasks_are_concurrently_runnable() {
        let mut plan = EpochPlan::build(&[vec![k("a")], vec![k("b")]]);
        assert_eq!(plan.next_ready(), Some(0));
        assert_eq!(plan.next_ready(), Some(1), "no shared key, no waiting");
        plan.complete(1);
        plan.complete(0);
        assert!(plan.is_done());
    }

    #[test]
    fn multi_key_task_waits_for_all_heads() {
        // t0{a}  t1{a,b}  t2{b}: t1 must wait for t0, t2 must wait for t1.
        let mut plan = EpochPlan::build(&[vec![k("a")], vec![k("a"), k("b")], vec![k("b")]]);
        assert_eq!(plan.next_ready(), Some(0));
        assert_eq!(plan.next_ready(), None);
        plan.complete(0);
        assert_eq!(plan.next_ready(), Some(1));
        assert_eq!(plan.next_ready(), None);
        plan.complete(1);
        assert_eq!(plan.next_ready(), Some(2));
        plan.complete(2);
        assert!(plan.is_done());
    }

    #[test]
    fn replan_requeues_at_back_with_widened_set() {
        let mut plan = EpochPlan::build(&[vec![k("a")], vec![k("a")]]);
        let t0 = plan.next_ready().unwrap();
        let retry = plan.replan(t0, &[k("b")]);
        assert_eq!(retry, 2);
        assert_eq!(plan.keys_of(retry), &[k("a"), k("b")]);
        // The first-round peer goes first; the retry runs after it.
        assert_eq!(plan.next_ready(), Some(1));
        plan.complete(1);
        assert_eq!(plan.next_ready(), Some(retry));
        plan.complete(retry);
        assert!(plan.is_done());
    }

    #[test]
    fn empty_access_set_is_always_runnable() {
        let mut plan = EpochPlan::build(&[vec![k("a")], vec![]]);
        assert_eq!(plan.next_ready(), Some(0));
        assert_eq!(plan.next_ready(), Some(1));
        plan.complete(0);
        plan.complete(1);
        assert!(plan.is_done());
    }

    #[test]
    fn duplicate_declared_keys_are_deduped() {
        let mut plan = EpochPlan::build(&[vec![k("a"), k("a")], vec![k("a")]]);
        assert_eq!(plan.keys_of(0), &[k("a")]);
        assert_eq!(plan.next_ready(), Some(0));
        plan.complete(0);
        assert_eq!(plan.next_ready(), Some(1));
        plan.complete(1);
        assert!(plan.is_done());
    }

    #[test]
    fn empty_plan_is_done_immediately() {
        let mut plan = EpochPlan::build(&[]);
        assert!(plan.is_empty());
        assert!(plan.is_done());
        assert_eq!(plan.next_ready(), None);
    }
}
