//! Waits-for graph and cycle detection.
//!
//! The lock manager records an edge `A → B` whenever transaction `A` blocks
//! on a lock that `B` holds. A cycle through the requester means deadlock;
//! the requester is chosen as the victim (it has done the least waiting) and
//! receives [`crate::TxnError::Deadlock`], which the server loop translates
//! into an abort — returning the in-flight request to its queue, exactly the
//! paper's §5 abort semantics.

use std::collections::{HashMap, HashSet};

/// Directed waits-for graph over transaction ids.
#[derive(Debug, Default)]
pub struct WaitsForGraph {
    edges: HashMap<u64, HashSet<u64>>,
}

impl WaitsForGraph {
    /// Create an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `waiter` waits for `holder`. Self-edges are ignored.
    pub fn add_edge(&mut self, waiter: u64, holder: u64) {
        if waiter != holder {
            self.edges.entry(waiter).or_default().insert(holder);
        }
    }

    /// Drop all edges out of `waiter` (it was granted, timed out, or died).
    pub fn clear_waiter(&mut self, waiter: u64) {
        self.edges.remove(&waiter);
    }

    /// Drop all edges into `txn` (it released its locks).
    pub fn clear_target(&mut self, txn: u64) {
        for targets in self.edges.values_mut() {
            targets.remove(&txn);
        }
        self.edges.retain(|_, t| !t.is_empty());
    }

    /// True when a directed cycle passes through `start`.
    pub fn has_cycle_through(&self, start: u64) -> bool {
        // DFS from start looking for a path back to start.
        let mut stack: Vec<u64> = self
            .edges
            .get(&start)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        let mut seen = HashSet::new();
        while let Some(node) = stack.pop() {
            if node == start {
                return true;
            }
            if !seen.insert(node) {
                continue;
            }
            if let Some(next) = self.edges.get(&node) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }

    /// Number of waiting transactions (diagnostics).
    pub fn waiter_count(&self) -> usize {
        self.edges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_party_cycle_detected() {
        let mut g = WaitsForGraph::new();
        g.add_edge(1, 2);
        assert!(!g.has_cycle_through(1));
        g.add_edge(2, 1);
        assert!(g.has_cycle_through(1));
        assert!(g.has_cycle_through(2));
    }

    #[test]
    fn three_party_cycle_detected() {
        let mut g = WaitsForGraph::new();
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        assert!(!g.has_cycle_through(3));
        g.add_edge(3, 1);
        assert!(g.has_cycle_through(1));
        assert!(g.has_cycle_through(2));
        assert!(g.has_cycle_through(3));
    }

    #[test]
    fn chain_is_not_a_cycle() {
        let mut g = WaitsForGraph::new();
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        for t in 1..=4 {
            assert!(!g.has_cycle_through(t));
        }
    }

    #[test]
    fn cycle_not_through_start_is_not_reported_for_start() {
        let mut g = WaitsForGraph::new();
        g.add_edge(2, 3);
        g.add_edge(3, 2);
        g.add_edge(1, 2);
        // 1 waits into a cycle but is not ON the cycle: 1 is not a victim.
        assert!(!g.has_cycle_through(1));
        assert!(g.has_cycle_through(2));
    }

    #[test]
    fn clearing_breaks_cycles() {
        let mut g = WaitsForGraph::new();
        g.add_edge(1, 2);
        g.add_edge(2, 1);
        g.clear_waiter(2);
        assert!(!g.has_cycle_through(1));
        g.add_edge(2, 1);
        assert!(g.has_cycle_through(1));
        g.clear_target(2);
        assert!(!g.has_cycle_through(1));
    }

    #[test]
    fn self_edges_ignored() {
        let mut g = WaitsForGraph::new();
        g.add_edge(1, 1);
        assert!(!g.has_cycle_through(1));
        assert_eq!(g.waiter_count(), 0);
    }
}
