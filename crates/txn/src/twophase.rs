//! The durable two-phase-commit coordinator log.
//!
//! Once every participant has prepared, the coordinator forces a decision
//! record here *before* telling anyone to commit. After a crash, in-doubt
//! participants are resolved by consulting [`CoordinatorLog::decisions`]:
//! a logged commit decision is replayed, anything else is aborted (presumed
//! abort — the paper's §11 discusses exactly this "forgetting" behaviour of
//! transaction managers, which motivates queues as the longer-lived record
//! of a request's disposition).

use crate::error::TxnResult;
use crate::ids::TxnId;
use rrq_storage::codec::{put, Reader};
use rrq_storage::disk::Disk;
use rrq_storage::wal::{RecordKind, Wal};
use std::collections::HashMap;
use std::sync::Arc;

/// WAL custom-record subtype for decisions.
const DECISION_KIND: RecordKind = RecordKind::Custom(0xC0);

/// Append-only log of commit/abort decisions.
pub struct CoordinatorLog {
    wal: Wal,
}

impl CoordinatorLog {
    /// Open over a device (shared with nothing else).
    pub fn new(disk: Arc<dyn Disk>) -> Self {
        CoordinatorLog {
            wal: Wal::new(disk),
        }
    }

    /// Durably record the outcome of `txn`. Must be called after all
    /// participants prepared and before any is told to commit.
    pub fn log_decision(&self, txn: TxnId, commit: bool) -> TxnResult<()> {
        let mut payload = Vec::with_capacity(1);
        put::bool(&mut payload, commit);
        self.wal.append(txn.raw(), DECISION_KIND, &payload)?;
        self.wal.sync()?;
        Ok(())
    }

    /// Read back every decision (later records win, though a transaction
    /// only ever gets one).
    pub fn decisions(&self) -> TxnResult<HashMap<u64, bool>> {
        let (records, _) = self.wal.scan(0)?;
        let mut out = HashMap::new();
        for rec in records {
            if rec.kind == DECISION_KIND {
                let mut r = Reader::new(&rec.payload);
                let commit = r.bool()?;
                out.insert(rec.txn, commit);
            }
        }
        Ok(out)
    }

    /// Was `txn` decided commit? `None` means no decision is on record
    /// (presume abort).
    pub fn decision_for(&self, txn: TxnId) -> TxnResult<Option<bool>> {
        Ok(self.decisions()?.get(&txn.raw()).copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrq_storage::disk::{CrashStyle, SimDisk};

    #[test]
    fn decisions_roundtrip() {
        let disk = SimDisk::new();
        let log = CoordinatorLog::new(Arc::new(disk.clone()));
        log.log_decision(TxnId(1), true).unwrap();
        log.log_decision(TxnId(2), false).unwrap();
        let d = log.decisions().unwrap();
        assert_eq!(d.get(&1), Some(&true));
        assert_eq!(d.get(&2), Some(&false));
        assert_eq!(log.decision_for(TxnId(3)).unwrap(), None);
    }

    #[test]
    fn decisions_survive_crash() {
        let disk = SimDisk::new();
        let log = CoordinatorLog::new(Arc::new(disk.clone()));
        log.log_decision(TxnId(9), true).unwrap();
        disk.crash(CrashStyle::DropVolatile);
        let log2 = CoordinatorLog::new(Arc::new(disk.clone()));
        assert_eq!(log2.decision_for(TxnId(9)).unwrap(), Some(true));
    }

    #[test]
    fn undetermined_after_torn_decision() {
        let disk = SimDisk::new();
        let log = CoordinatorLog::new(Arc::new(disk.clone()));
        log.log_decision(TxnId(1), true).unwrap();
        // A second decision that tears mid-write must not surface.
        log.wal.append(2, DECISION_KIND, &[1]).unwrap();
        disk.crash(CrashStyle::Torn { keep: 4 });
        let log2 = CoordinatorLog::new(Arc::new(disk.clone()));
        let d = log2.decisions().unwrap();
        assert_eq!(d.get(&1), Some(&true));
        assert_eq!(d.get(&2), None, "torn decision reads as no decision");
    }
}
