//! The transaction manager: lifecycle, enlistment, locking helpers, and
//! atomic commitment across one or more resource managers.
//!
//! The server loop of Fig 5 maps onto this API directly:
//!
//! ```text
//! start-transaction          → TxnManager::begin + Txn::enlist(queue store)
//! request = Dequeue(q-in)    → queue op under txn.id()
//! process request            → app-store ops under txn.id()
//! Enqueue(q-out, reply)      → queue op under txn.id()
//! commit-transaction         → Txn::commit  (1PC or logged 2PC)
//! ```
//!
//! Aborting at any point (crash, deadlock victim, handler failure) undoes
//! the dequeue, "thereby returning the request to the request queue" (§5).

use crate::error::{TxnError, TxnResult};
use crate::ids::{TxnId, TxnIdGen};
use crate::lock::{LockKey, LockManager, LockMode};
use crate::rm::ResourceManager;
use crate::twophase::CoordinatorLog;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// Aggregate transaction counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxnStats {
    /// Transactions begun.
    pub begun: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted.
    pub aborted: u64,
    /// Commits that used the two-phase protocol.
    pub two_phase_commits: u64,
}

struct Inner {
    ids: Arc<TxnIdGen>,
    locks: Arc<LockManager>,
    coord: Option<Arc<CoordinatorLog>>,
    /// Lock-wait timeout in milliseconds (atomic so it can be tuned live).
    lock_timeout_ms: std::sync::atomic::AtomicU64,
    stats: Mutex<TxnStats>,
}

impl Inner {
    fn lock_timeout(&self) -> Duration {
        Duration::from_millis(
            self.lock_timeout_ms
                .load(std::sync::atomic::Ordering::Acquire),
        )
    }
}

/// Shared, cheaply clonable transaction manager. One per node.
#[derive(Clone)]
pub struct TxnManager {
    inner: Arc<Inner>,
}

impl TxnManager {
    /// Build a manager.
    ///
    /// * `locks` — the node's lock manager.
    /// * `coord` — durable decision log; `None` disables logged 2PC (multi-RM
    ///   commits still run prepare/commit but a coordinator crash between the
    ///   phases leaves participants in-doubt until manually resolved).
    /// * `id_floor` — first transaction id to issue (pass a recovered
    ///   high-water mark after a restart).
    pub fn new(locks: Arc<LockManager>, coord: Option<CoordinatorLog>, id_floor: u64) -> Self {
        Self::with_shared(
            locks,
            coord.map(Arc::new),
            Arc::new(TxnIdGen::new(id_floor)),
        )
    }

    /// Build a manager around *shared* cluster infrastructure: several
    /// managers (one per repository partition) can point at the same
    /// coordinator log — so one decision record resolves every participant
    /// of a cross-partition transaction — and the same id generator, so
    /// transaction ids (which key lock tables and store tokens) stay unique
    /// across the whole cluster.
    pub fn with_shared(
        locks: Arc<LockManager>,
        coord: Option<Arc<CoordinatorLog>>,
        ids: Arc<TxnIdGen>,
    ) -> Self {
        TxnManager {
            inner: Arc::new(Inner {
                ids,
                locks,
                coord,
                lock_timeout_ms: std::sync::atomic::AtomicU64::new(5_000),
                stats: Mutex::new(TxnStats::default()),
            }),
        }
    }

    /// Manager with a fresh lock manager and no coordinator log — the common
    /// single-store setup.
    pub fn single_node() -> Self {
        TxnManager::new(Arc::new(LockManager::new()), None, 1)
    }

    /// Override the lock-wait timeout (default 5 s).
    pub fn set_lock_timeout(&self, timeout: Duration) {
        self.inner.lock_timeout_ms.store(
            timeout.as_millis() as u64,
            std::sync::atomic::Ordering::Release,
        );
    }

    /// Begin a new transaction.
    pub fn begin(&self) -> Txn {
        self.inner.stats.lock().begun += 1;
        Txn {
            id: self.inner.ids.next(),
            mgr: self.clone(),
            rms: Mutex::new(Vec::new()),
            plan: Mutex::new(None),
            finished: false,
        }
    }

    /// Allocate an id without opening a transaction — used as a parking slot
    /// for inherited locks between the stages of a multi-transaction request.
    pub fn reserve_id(&self) -> TxnId {
        self.inner.ids.next()
    }

    /// Begin a transaction under a caller-chosen id (used by recovery and by
    /// tests that need stable ids). The generator is bumped past it.
    pub fn begin_with_id(&self, id: TxnId) -> Txn {
        self.inner.stats.lock().begun += 1;
        Txn {
            id,
            mgr: self.clone(),
            rms: Mutex::new(Vec::new()),
            plan: Mutex::new(None),
            finished: false,
        }
    }

    /// The node's lock manager.
    pub fn locks(&self) -> &Arc<LockManager> {
        &self.inner.locks
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TxnStats {
        *self.inner.stats.lock()
    }

    /// Current id high-water mark (persist across restarts).
    pub fn id_high_water(&self) -> u64 {
        self.inner.ids.peek()
    }

    /// Resolve transactions a participant reported as in-doubt after
    /// recovery: commit those with a durable commit decision, abort the rest
    /// (presumed abort).
    pub fn resolve_in_doubt(
        &self,
        rm: &dyn ResourceManager,
        in_doubt: &[u64],
    ) -> TxnResult<(usize, usize)> {
        let decisions = match &self.inner.coord {
            Some(c) => c.decisions()?,
            None => Default::default(),
        };
        let mut committed = 0;
        let mut aborted = 0;
        for &t in in_doubt {
            if decisions.get(&t).copied().unwrap_or(false) {
                rm.commit(TxnId(t))?;
                committed += 1;
            } else {
                rm.abort(TxnId(t))?;
                aborted += 1;
            }
        }
        Ok((committed, aborted))
    }
}

/// Declared access scope of a planned-execution transaction.
///
/// When present, the epoch planner (`crate::plan`) has already serialized
/// this transaction against every conflicting one via per-key execution
/// queues, so `lock_exclusive`/`lock_shared` degrade to a membership check:
/// a declared key is admitted without touching the lock manager at all (the
/// lock-free fast path), an undeclared key is recorded as a violation and
/// refused — the executor aborts and replans with the widened set.
struct PlanScope {
    allowed: std::collections::HashSet<LockKey>,
    violations: Vec<LockKey>,
}

/// An open transaction. Consumed by [`Txn::commit`] / [`Txn::abort`];
/// dropping it without either aborts (so a panicking server thread releases
/// its locks and its dequeues are undone — the paper's crash behaviour).
pub struct Txn {
    id: TxnId,
    mgr: TxnManager,
    /// Enlisted participants. Behind a mutex so mid-transaction code holding
    /// only `&Txn` (e.g. a server handler touching a remote repository
    /// partition) can still enlist.
    rms: Mutex<Vec<Arc<dyn ResourceManager>>>,
    /// `Some` iff this transaction executes under an epoch plan.
    plan: Mutex<Option<PlanScope>>,
    finished: bool,
}

impl Txn {
    /// This transaction's id (pass as the token to enlisted stores).
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Enlist a participant. Idempotent per participant name.
    pub fn enlist(&self, rm: Arc<dyn ResourceManager>) -> TxnResult<()> {
        let mut rms = self.rms.lock();
        if rms.iter().any(|r| r.name() == rm.name()) {
            return Ok(());
        }
        rm.begin(self.id)?;
        rms.push(rm);
        Ok(())
    }

    /// Number of enlisted participants (a commit with more than one runs the
    /// logged two-phase protocol).
    pub fn enlisted(&self) -> usize {
        self.rms.lock().len()
    }

    /// Declare this transaction's access scope for planned execution. From
    /// now on `lock_exclusive`/`lock_shared` check the key against `keys`
    /// instead of acquiring 2PL locks — the epoch plan, not the lock
    /// manager, is what serializes conflicting transactions.
    pub fn set_plan_scope(&self, keys: impl IntoIterator<Item = LockKey>) {
        *self.plan.lock() = Some(PlanScope {
            allowed: keys.into_iter().collect(),
            violations: Vec::new(),
        });
    }

    /// Whether this transaction runs under a declared plan scope.
    pub fn has_plan_scope(&self) -> bool {
        self.plan.lock().is_some()
    }

    /// Keys this transaction touched without declaring (planned mode only).
    /// Non-empty after an [`TxnError::OutsidePlan`] abort; the executor
    /// replans with `declared ∪ violations`.
    pub fn plan_violations(&self) -> Vec<LockKey> {
        self.plan
            .lock()
            .as_ref()
            .map(|s| s.violations.clone())
            .unwrap_or_default()
    }

    /// Planned-mode admission check. `None` when no plan scope is set (take
    /// real locks); otherwise the declaration verdict for `key`.
    fn plan_check(&self, key: &LockKey) -> Option<TxnResult<()>> {
        let mut g = self.plan.lock();
        let scope = g.as_mut()?;
        Some(if scope.allowed.contains(key) {
            Ok(())
        } else {
            scope.violations.push(key.clone());
            rrq_obs::counter_inc("txn.plan.scope_violations");
            Err(TxnError::OutsidePlan(format!(
                "ns {} key {:?}",
                key.ns,
                String::from_utf8_lossy(&key.key)
            )))
        })
    }

    /// Acquire an exclusive lock, blocking up to the manager's timeout.
    /// Under a plan scope (planned execution) no lock is taken: the key is
    /// checked against the declared access set instead.
    pub fn lock_exclusive(&self, key: &LockKey) -> TxnResult<()> {
        if let Some(verdict) = self.plan_check(key) {
            return verdict;
        }
        self.mgr.inner.locks.lock(
            self.id.raw(),
            key,
            LockMode::Exclusive,
            self.mgr.inner.lock_timeout(),
        )
    }

    /// Acquire a shared lock, blocking up to the manager's timeout. Checks
    /// the plan scope instead when one is declared (see `lock_exclusive`).
    pub fn lock_shared(&self, key: &LockKey) -> TxnResult<()> {
        if let Some(verdict) = self.plan_check(key) {
            return verdict;
        }
        self.mgr.inner.locks.lock(
            self.id.raw(),
            key,
            LockMode::Shared,
            self.mgr.inner.lock_timeout(),
        )
    }

    /// Commit: one-phase for a single participant, logged two-phase for
    /// several. Locks are released on success.
    pub fn commit(mut self) -> TxnResult<()> {
        self.finished = true;
        let rms = std::mem::take(&mut *self.rms.lock());
        let result = commit_impl(&self.mgr, self.id, &rms);
        match result {
            Ok(()) => {
                self.mgr.inner.locks.unlock_all(self.id.raw());
                self.mgr.inner.stats.lock().committed += 1;
                Ok(())
            }
            Err(e) => {
                abort_impl(&self.mgr, self.id, &rms);
                self.mgr.inner.locks.unlock_all(self.id.raw());
                self.mgr.inner.stats.lock().aborted += 1;
                Err(e)
            }
        }
    }

    /// Commit, but *transfer* this transaction's locks to `heir` instead of
    /// releasing them — §6 lock inheritance for multi-transaction requests.
    pub fn commit_inheriting_locks(mut self, heir: TxnId) -> TxnResult<()> {
        self.finished = true;
        let rms = std::mem::take(&mut *self.rms.lock());
        // Transfer BEFORE the commit makes this transaction's writes (e.g.
        // the forwarded request element) visible: the next stage may dequeue
        // the request and adopt the heir's locks the instant commit lands.
        // Nothing else can touch the heir id until then, so on commit
        // failure the transfer is safely reversed.
        self.mgr
            .inner
            .locks
            .transfer_locks(self.id.raw(), heir.raw());
        match commit_impl(&self.mgr, self.id, &rms) {
            Ok(()) => {
                self.mgr.inner.stats.lock().committed += 1;
                Ok(())
            }
            Err(e) => {
                self.mgr
                    .inner
                    .locks
                    .transfer_locks(heir.raw(), self.id.raw());
                abort_impl(&self.mgr, self.id, &rms);
                self.mgr.inner.locks.unlock_all(self.id.raw());
                self.mgr.inner.stats.lock().aborted += 1;
                Err(e)
            }
        }
    }

    /// Abort: undo every participant, release locks.
    pub fn abort(mut self) -> TxnResult<()> {
        self.finished = true;
        let rms = std::mem::take(&mut *self.rms.lock());
        abort_impl(&self.mgr, self.id, &rms);
        self.mgr.inner.locks.unlock_all(self.id.raw());
        self.mgr.inner.stats.lock().aborted += 1;
        Ok(())
    }
}

impl Drop for Txn {
    fn drop(&mut self) {
        if !self.finished {
            let rms = std::mem::take(&mut *self.rms.lock());
            abort_impl(&self.mgr, self.id, &rms);
            self.mgr.inner.locks.unlock_all(self.id.raw());
            self.mgr.inner.stats.lock().aborted += 1;
        }
    }
}

fn commit_impl(mgr: &TxnManager, id: TxnId, rms: &[Arc<dyn ResourceManager>]) -> TxnResult<()> {
    match rms.len() {
        0 => Ok(()),
        1 => rms[0].commit(id),
        _ => {
            rrq_obs::counter_inc("txn.twophase.rounds");
            for rm in rms {
                rm.prepare(id)
                    .map_err(|e| TxnError::PrepareFailed(format!("{}: {e}", rm.name())))?;
            }
            if let Some(coord) = &mgr.inner.coord {
                coord.log_decision(id, true)?;
            }
            rrq_obs::counter_inc("txn.twophase.decisions");
            mgr.inner.stats.lock().two_phase_commits += 1;
            for rm in rms {
                rm.commit(id)?;
            }
            Ok(())
        }
    }
}

fn abort_impl(mgr: &TxnManager, id: TxnId, rms: &[Arc<dyn ResourceManager>]) {
    let _ = mgr; // coordinator: presumed abort, nothing to log
    for rm in rms {
        // Best-effort: a participant that already aborted (or never saw the
        // txn) must not stop the others from aborting.
        let _ = rm.abort(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rm::KvResource;
    use rrq_storage::disk::{CrashStyle, SimDisk};
    use rrq_storage::kv::{KvOptions, KvStore};

    fn kv_on(wal: &SimDisk, ckpt: &SimDisk) -> Arc<KvStore> {
        KvStore::open(
            Arc::new(wal.clone()),
            Arc::new(ckpt.clone()),
            KvOptions::default(),
        )
        .unwrap()
        .0
    }

    #[test]
    fn single_rm_commit_applies() {
        let mgr = TxnManager::single_node();
        let (wal, ckpt) = (SimDisk::new(), SimDisk::new());
        let store = kv_on(&wal, &ckpt);
        let rm: Arc<dyn ResourceManager> = Arc::new(KvResource::new("db", Arc::clone(&store)));

        let txn = mgr.begin();
        txn.enlist(Arc::clone(&rm)).unwrap();
        store.put(txn.id().raw(), b"k", b"v").unwrap();
        txn.commit().unwrap();
        assert_eq!(store.get(None, b"k").unwrap(), Some(b"v".to_vec()));
        assert_eq!(mgr.stats().committed, 1);
        assert_eq!(mgr.stats().two_phase_commits, 0);
    }

    #[test]
    fn abort_undoes_and_releases_locks() {
        let mgr = TxnManager::single_node();
        let (wal, ckpt) = (SimDisk::new(), SimDisk::new());
        let store = kv_on(&wal, &ckpt);
        let rm: Arc<dyn ResourceManager> = Arc::new(KvResource::new("db", Arc::clone(&store)));

        let txn = mgr.begin();
        txn.enlist(Arc::clone(&rm)).unwrap();
        let k = LockKey::new(0, "k");
        txn.lock_exclusive(&k).unwrap();
        store.put(txn.id().raw(), b"k", b"v").unwrap();
        let id = txn.id();
        txn.abort().unwrap();
        assert_eq!(store.get(None, b"k").unwrap(), None);
        assert_eq!(mgr.locks().held_count(id.raw()), 0);
    }

    #[test]
    fn drop_without_commit_aborts() {
        let mgr = TxnManager::single_node();
        let (wal, ckpt) = (SimDisk::new(), SimDisk::new());
        let store = kv_on(&wal, &ckpt);
        let rm: Arc<dyn ResourceManager> = Arc::new(KvResource::new("db", Arc::clone(&store)));
        {
            let txn = mgr.begin();
            txn.enlist(Arc::clone(&rm)).unwrap();
            store.put(txn.id().raw(), b"k", b"v").unwrap();
            // dropped here — simulating a crashed server thread
        }
        assert_eq!(store.get(None, b"k").unwrap(), None);
        assert_eq!(mgr.stats().aborted, 1);
    }

    #[test]
    fn two_rm_commit_is_atomic() {
        let coord_disk = SimDisk::new();
        let mgr = TxnManager::new(
            Arc::new(LockManager::new()),
            Some(CoordinatorLog::new(Arc::new(coord_disk.clone()))),
            1,
        );
        let (w1, c1) = (SimDisk::new(), SimDisk::new());
        let (w2, c2) = (SimDisk::new(), SimDisk::new());
        let s1 = kv_on(&w1, &c1);
        let s2 = kv_on(&w2, &c2);
        let r1: Arc<dyn ResourceManager> = Arc::new(KvResource::new("a", Arc::clone(&s1)));
        let r2: Arc<dyn ResourceManager> = Arc::new(KvResource::new("b", Arc::clone(&s2)));

        let txn = mgr.begin();
        txn.enlist(Arc::clone(&r1)).unwrap();
        txn.enlist(Arc::clone(&r2)).unwrap();
        s1.put(txn.id().raw(), b"x", b"1").unwrap();
        s2.put(txn.id().raw(), b"y", b"2").unwrap();
        txn.commit().unwrap();
        assert_eq!(s1.get(None, b"x").unwrap(), Some(b"1".to_vec()));
        assert_eq!(s2.get(None, b"y").unwrap(), Some(b"2".to_vec()));
        assert_eq!(mgr.stats().two_phase_commits, 1);
    }

    #[test]
    fn coordinator_crash_between_phases_resolves_by_decision() {
        let coord_disk = SimDisk::new();
        let (w1, c1) = (SimDisk::new(), SimDisk::new());
        let s1 = kv_on(&w1, &c1);

        // Manually run phase 1 + decision, then "crash" before phase 2.
        {
            let mgr = TxnManager::new(
                Arc::new(LockManager::new()),
                Some(CoordinatorLog::new(Arc::new(coord_disk.clone()))),
                1,
            );
            let r1: Arc<dyn ResourceManager> = Arc::new(KvResource::new("a", Arc::clone(&s1)));
            let txn = mgr.begin();
            txn.enlist(Arc::clone(&r1)).unwrap();
            s1.put(txn.id().raw(), b"x", b"1").unwrap();
            // phase 1 by hand:
            r1.prepare(txn.id()).unwrap();
            CoordinatorLog::new(Arc::new(coord_disk.clone()))
                .log_decision(txn.id(), true)
                .unwrap();
            std::mem::forget(txn); // suppress the drop-abort: we crashed
        }
        w1.crash(CrashStyle::DropVolatile);

        // Recovery: store reports in-doubt; coordinator decisions resolve it.
        let (s1b, report) = KvStore::open(
            Arc::new(w1.clone()),
            Arc::new(c1.clone()),
            KvOptions::default(),
        )
        .unwrap();
        assert_eq!(report.in_doubt.len(), 1);
        let mgr2 = TxnManager::new(
            Arc::new(LockManager::new()),
            Some(CoordinatorLog::new(Arc::new(coord_disk.clone()))),
            100,
        );
        let r1b = KvResource::new("a", Arc::clone(&s1b));
        let (committed, aborted) = mgr2.resolve_in_doubt(&r1b, &report.in_doubt).unwrap();
        assert_eq!((committed, aborted), (1, 0));
        assert_eq!(s1b.get(None, b"x").unwrap(), Some(b"1".to_vec()));
    }

    #[test]
    fn in_doubt_without_decision_presumed_abort() {
        let (w1, c1) = (SimDisk::new(), SimDisk::new());
        let s1 = kv_on(&w1, &c1);
        s1.begin(7).unwrap();
        s1.put(7, b"x", b"1").unwrap();
        s1.prepare(7).unwrap();
        w1.crash(CrashStyle::DropVolatile);
        let (s1b, report) = KvStore::open(
            Arc::new(w1.clone()),
            Arc::new(c1.clone()),
            KvOptions::default(),
        )
        .unwrap();
        let mgr = TxnManager::new(
            Arc::new(LockManager::new()),
            Some(CoordinatorLog::new(Arc::new(SimDisk::new()))),
            100,
        );
        let rm = KvResource::new("a", Arc::clone(&s1b));
        let (c, a) = mgr.resolve_in_doubt(&rm, &report.in_doubt).unwrap();
        assert_eq!((c, a), (0, 1));
        assert_eq!(s1b.get(None, b"x").unwrap(), None);
    }

    #[test]
    fn lock_inheritance_keeps_resource_locked_across_commit() {
        let mgr = TxnManager::single_node();
        let (wal, ckpt) = (SimDisk::new(), SimDisk::new());
        let store = kv_on(&wal, &ckpt);
        let rm: Arc<dyn ResourceManager> = Arc::new(KvResource::new("db", Arc::clone(&store)));

        let t1 = mgr.begin();
        t1.enlist(Arc::clone(&rm)).unwrap();
        let k = LockKey::new(0, "acct");
        t1.lock_exclusive(&k).unwrap();
        store.put(t1.id().raw(), b"acct", b"50").unwrap();

        let t2 = mgr.begin();
        let t2_id = t2.id();
        t1.commit_inheriting_locks(t2_id).unwrap();

        // A third txn still can't touch the account.
        assert!(mgr.locks().try_lock(999, &k, LockMode::Shared).is_err());
        // t2 holds it and finishes the request.
        assert!(mgr.locks().holds(t2_id.raw(), &k, LockMode::Exclusive));
        t2.commit().unwrap();
        assert!(mgr.locks().try_lock(999, &k, LockMode::Shared).is_ok());
    }

    #[test]
    fn enlist_is_idempotent_per_name() {
        let mgr = TxnManager::single_node();
        let (wal, ckpt) = (SimDisk::new(), SimDisk::new());
        let store = kv_on(&wal, &ckpt);
        let rm: Arc<dyn ResourceManager> = Arc::new(KvResource::new("db", Arc::clone(&store)));
        let txn = mgr.begin();
        txn.enlist(Arc::clone(&rm)).unwrap();
        txn.enlist(Arc::clone(&rm)).unwrap(); // second begin would error if not deduped
        txn.commit().unwrap();
    }

    #[test]
    fn plan_scope_admits_declared_and_refuses_undeclared() {
        let mgr = TxnManager::single_node();
        let txn = mgr.begin();
        let a = LockKey::new(1, "a");
        let b = LockKey::new(1, "b");
        txn.set_plan_scope([a.clone()]);
        assert!(txn.has_plan_scope());
        txn.lock_exclusive(&a).unwrap();
        // Lock-free: no 2PL lock was actually taken on the declared key.
        assert_eq!(mgr.locks().held_count(txn.id().raw()), 0);
        assert!(mgr.locks().try_lock(999, &a, LockMode::Exclusive).is_ok());
        mgr.locks().unlock_all(999);

        let err = txn.lock_shared(&b).unwrap_err();
        assert!(matches!(err, TxnError::OutsidePlan(_)));
        assert_eq!(txn.plan_violations(), vec![b]);
        txn.abort().unwrap();
    }

    #[test]
    fn begin_with_id_uses_given_id() {
        let mgr = TxnManager::single_node();
        let txn = mgr.begin_with_id(TxnId(424242));
        assert_eq!(txn.id(), TxnId(424242));
        txn.abort().unwrap();
    }
}
