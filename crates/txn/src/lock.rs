//! Strict two-phase-locking lock manager.
//!
//! Locks are held until the owning transaction commits or aborts
//! ([`LockManager::unlock_all`]), which is what makes transaction executions
//! serializable (§1). Two extensions serve the paper directly:
//!
//! * [`LockManager::transfer_locks`] implements §6's lock *inheritance*: the
//!   locks of one transaction in a multi-transaction request are handed to
//!   the next transaction in the sequence instead of being released, making
//!   whole-request executions serializable.
//! * Deadlocks are detected with a waits-for graph at block time; the
//!   requester is the victim, so a server can abort (returning its request to
//!   the queue per §5) and retry.
//!
//! The table is hash-striped into [`LockManager::shard_count`] shards, each
//! with its own mutex + condvar and its own slice of the per-txn held-sets,
//! so concurrent servers working on unrelated keys no longer serialize on one
//! global mutex (§2's contention argument, measured by E18). The waits-for
//! graph and the counters stay behind one small separate lock — deadlock
//! detection must see edges across every shard to find cross-shard cycles,
//! and victim selection at block time is unchanged. Lock order is strictly
//! shard → meta, and no path ever holds two shard guards at once. The
//! discipline is enforced twice: statically by `rrq-analyze` (classes
//! `txn-stripe` / `txn-meta` in `LOCKS.md`, checked inter-procedurally
//! across the workspace) and dynamically by the [`crate::lockorder`]
//! debug-build checker — every [`StripeGuard`]/[`MetaGuard`] carries a
//! [`Held`] token that panics on any out-of-order acquisition a test or
//! explorer sweep reaches.

use crate::deadlock::WaitsForGraph;
use crate::error::{TxnError, TxnResult};
use crate::lockorder::{GuardClass, Held};
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::collections::{HashMap, HashSet, VecDeque};
use std::ops::{Deref, DerefMut};
use std::time::{Duration, Instant};

/// Default stripe count for [`LockManager::new`]. Sixteen keeps the
/// birthday-collision rate for a handful of hot keys low without bloating
/// the per-manager footprint; `with_shards(1)` restores the pre-striping
/// single-mutex behaviour for baselines and differential tests.
pub const DEFAULT_LOCK_SHARDS: usize = 16;

/// Lock compatibility modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Shared (read) — compatible with other shared holders.
    Shared,
    /// Exclusive (write) — incompatible with everything else.
    Exclusive,
}

/// A lockable resource name: a namespace (table / queue id) plus a key.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LockKey {
    /// Namespace discriminator (e.g. one per queue or table).
    pub ns: u32,
    /// Key bytes within the namespace.
    pub key: Vec<u8>,
}

impl LockKey {
    /// Convenience constructor.
    pub fn new(ns: u32, key: impl Into<Vec<u8>>) -> Self {
        LockKey {
            ns,
            key: key.into(),
        }
    }
}

#[derive(Debug, Default)]
struct Entry {
    holders: HashMap<u64, LockMode>,
    /// Arrival order of blocked requesters, for diagnostics only — grants
    /// are compatibility-driven, not strictly FIFO (see §10's discussion of
    /// relaxed ordering).
    waiters: VecDeque<u64>,
}

/// Counters for benchmarking lock behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Locks granted without blocking.
    pub immediate_grants: u64,
    /// Locks granted after at least one wait.
    pub waited_grants: u64,
    /// Deadlocks detected (victim aborted).
    pub deadlocks: u64,
    /// Lock waits that timed out.
    pub timeouts: u64,
}

/// One stripe of the lock table: the entries whose keys hash here, plus the
/// slice of each transaction's held-set that lives on this stripe.
#[derive(Default)]
struct ShardState {
    table: HashMap<LockKey, Entry>,
    held: HashMap<u64, HashSet<LockKey>>,
}

struct Shard {
    state: Mutex<ShardState>,
    cv: Condvar,
}

/// A stripe guard: the shard mutex plus the debug-build order token. Derefs
/// to [`ShardState`]; condvar waits go through [`StripeGuard::inner_mut`].
struct StripeGuard<'a> {
    _order: Held,
    inner: MutexGuard<'a, ShardState>,
}

impl<'a> StripeGuard<'a> {
    /// The raw mutex guard, for parking on the stripe's own condvar.
    fn inner_mut(&mut self) -> &mut MutexGuard<'a, ShardState> {
        &mut self.inner
    }
}

impl Deref for StripeGuard<'_> {
    type Target = ShardState;
    fn deref(&self) -> &ShardState {
        &self.inner
    }
}

impl DerefMut for StripeGuard<'_> {
    fn deref_mut(&mut self) -> &mut ShardState {
        &mut self.inner
    }
}

/// The meta-lock guard, order-checked like [`StripeGuard`].
struct MetaGuard<'a> {
    _order: Held,
    inner: MutexGuard<'a, Meta>,
}

impl Deref for MetaGuard<'_> {
    type Target = Meta;
    fn deref(&self) -> &Meta {
        &self.inner
    }
}

impl DerefMut for MetaGuard<'_> {
    fn deref_mut(&mut self) -> &mut Meta {
        &mut self.inner
    }
}

impl Shard {
    /// Acquire this shard's mutex, counting contended acquisitions. The
    /// `try_lock` fast path costs one CAS; only the slow path touches the
    /// metrics (which are themselves no-ops unless a Session is installed).
    /// The order token is taken *before* the mutex so a would-deadlock
    /// acquisition panics in debug builds even when the schedule would have
    /// let it slip through.
    fn enter(&self) -> StripeGuard<'_> {
        let order = Held::acquire(GuardClass::Stripe);
        if let Some(g) = self.state.try_lock() {
            return StripeGuard {
                _order: order,
                inner: g,
            };
        }
        rrq_obs::counter_inc("txn.lock.shard.contended");
        let start = rrq_obs::now();
        let g = self.state.lock();
        rrq_obs::observe(
            "txn.lock.shard.acquire_wait_ticks",
            rrq_obs::now().saturating_sub(start),
        );
        StripeGuard {
            _order: order,
            inner: g,
        }
    }
}

/// Global state shared by every shard: the waits-for graph (deadlock cycles
/// may span shards, so edges must live in one graph) and the counters.
/// Always acquired *after* a shard guard, never before.
#[derive(Default)]
struct Meta {
    waits: WaitsForGraph,
    stats: LockStats,
}

/// The lock manager. One instance guards one node's resources; share it via
/// `Arc`.
pub struct LockManager {
    shards: Box<[Shard]>,
    meta: Mutex<Meta>,
}

impl Default for LockManager {
    fn default() -> Self {
        Self::with_shards(DEFAULT_LOCK_SHARDS)
    }
}

impl LockManager {
    /// Create an empty lock manager with the default stripe count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty lock manager striped `n` ways (`n >= 1`). One shard
    /// reproduces the pre-striping global-mutex behaviour exactly.
    pub fn with_shards(n: usize) -> Self {
        let n = n.max(1);
        let shards = (0..n)
            .map(|_| Shard {
                state: Mutex::new(ShardState::default()),
                cv: Condvar::new(),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        LockManager {
            shards,
            meta: Mutex::new(Meta::default()),
        }
    }

    /// Number of stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Stripe a key hashes to. Exposed so tests can construct cross-shard
    /// scenarios deterministically.
    pub fn shard_id(&self, key: &LockKey) -> usize {
        if self.shards.len() == 1 {
            return 0;
        }
        // FNV-1a over ns || key; stable across runs (unlike RandomState).
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.ns.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        for b in &key.key {
            h = (h ^ *b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % self.shards.len() as u64) as usize
    }

    fn shard(&self, key: &LockKey) -> &Shard {
        &self.shards[self.shard_id(key)]
    }

    /// Acquire the meta lock (waits-for graph + counters), order-checked:
    /// legal with a stripe guard or nothing held, never under another meta
    /// guard. This accessor is also the `txn-meta` acquisition pattern the
    /// static analyzer classifies (see `LOCKS.md`).
    fn meta(&self) -> MetaGuard<'_> {
        let order = Held::acquire(GuardClass::Meta);
        MetaGuard {
            _order: order,
            inner: self.meta.lock(),
        }
    }

    /// Acquire `key` in `mode` for `txn`, blocking up to `timeout`.
    ///
    /// Re-acquiring a held lock is a no-op; requesting `Exclusive` while
    /// holding `Shared` upgrades (waiting for other readers to drain).
    /// Returns [`TxnError::Deadlock`] when blocking would close a waits-for
    /// cycle, [`TxnError::LockTimeout`] when the deadline passes.
    pub fn lock(
        &self,
        txn: u64,
        key: &LockKey,
        mode: LockMode,
        timeout: Duration,
    ) -> TxnResult<()> {
        let deadline = Instant::now() + timeout;
        let shard = self.shard(key);
        let mut g = shard.enter();
        let mut waited = false;
        let mut enqueued = false;
        let mut wait_start: Option<u64> = None;
        loop {
            if !g.table.contains_key(key) {
                // Only clone the key bytes on first contact; wakeups re-run
                // this loop and must not re-allocate.
                g.table.insert(key.clone(), Entry::default());
            }
            let entry = g.table.get_mut(key).expect("entry ensured above");
            let held_mode = entry.holders.get(&txn).copied();
            let grantable = match held_mode {
                Some(LockMode::Exclusive) => true,
                Some(LockMode::Shared) if mode == LockMode::Shared => true,
                Some(LockMode::Shared) => entry.holders.len() == 1, // upgrade
                None => match mode {
                    LockMode::Shared => entry.holders.values().all(|m| *m == LockMode::Shared),
                    LockMode::Exclusive => entry.holders.is_empty(),
                },
            };
            if grantable {
                let new_mode = match (held_mode, mode) {
                    (Some(LockMode::Exclusive), _) | (_, LockMode::Exclusive) => {
                        LockMode::Exclusive
                    }
                    _ => LockMode::Shared,
                };
                entry.holders.insert(txn, new_mode);
                if enqueued {
                    entry.waiters.retain(|w| *w != txn);
                }
                g.held.entry(txn).or_default().insert(key.clone());
                {
                    let mut m = self.meta();
                    if waited {
                        m.waits.clear_waiter(txn);
                        m.stats.waited_grants += 1;
                    } else {
                        m.stats.immediate_grants += 1;
                    }
                }
                if waited {
                    rrq_obs::counter_inc("txn.lock.waited_grants");
                    if let Some(start) = wait_start {
                        rrq_obs::observe(
                            "txn.lock.wait_ticks",
                            rrq_obs::now().saturating_sub(start),
                        );
                    }
                } else {
                    rrq_obs::counter_inc("txn.lock.immediate_grants");
                }
                rrq_check::race::lock_acquired(key.ns, &key.key);
                return Ok(());
            }

            // Block: (re)record waits-for edges against current conflicters.
            let conflicters: Vec<u64> = entry
                .holders
                .keys()
                .copied()
                .filter(|h| *h != txn)
                .collect();
            if !enqueued {
                entry.waiters.push_back(txn);
                enqueued = true;
            }
            let deadlocked = {
                let mut m = self.meta();
                m.waits.clear_waiter(txn);
                for h in &conflicters {
                    m.waits.add_edge(txn, *h);
                }
                if m.waits.has_cycle_through(txn) {
                    m.waits.clear_waiter(txn);
                    m.stats.deadlocks += 1;
                    true
                } else {
                    false
                }
            };
            if deadlocked {
                if let Some(e) = g.table.get_mut(key) {
                    e.waiters.retain(|w| *w != txn);
                }
                rrq_obs::counter_inc("txn.lock.deadlock_victims");
                return Err(TxnError::Deadlock { victim: txn });
            }

            waited = true;
            if wait_start.is_none() {
                wait_start = Some(rrq_obs::now());
            }
            if Instant::now() >= deadline {
                return self.wait_timed_out(&mut g, txn, key);
            }
            let result = shard.cv.wait_until(g.inner_mut(), deadline);
            if result.timed_out() {
                return self.wait_timed_out(&mut g, txn, key);
            }
        }
    }

    /// Shared timeout cleanup: drop the waiter record from the shard and the
    /// waits-for graph, count the timeout. Called with the shard guard held.
    fn wait_timed_out(&self, g: &mut StripeGuard<'_>, txn: u64, key: &LockKey) -> TxnResult<()> {
        {
            let mut m = self.meta();
            m.waits.clear_waiter(txn);
            m.stats.timeouts += 1;
        }
        if let Some(e) = g.table.get_mut(key) {
            e.waiters.retain(|w| *w != txn);
        }
        rrq_obs::counter_inc("txn.lock.timeouts");
        Err(TxnError::LockTimeout)
    }

    /// Non-blocking acquire; `Err(LockTimeout)` when unavailable now.
    pub fn try_lock(&self, txn: u64, key: &LockKey, mode: LockMode) -> TxnResult<()> {
        self.lock(txn, key, mode, Duration::ZERO)
    }

    /// Release every lock held by `txn` and wake waiters.
    ///
    /// Shards are visited one at a time (never two guards at once); only
    /// shards that actually held something for `txn` get a wakeup, so with
    /// striping a commit no longer thunders every waiter in the process.
    pub fn unlock_all(&self, txn: u64) {
        for shard in self.shards.iter() {
            let mut g = shard.enter();
            let keys = match g.held.remove(&txn) {
                Some(k) if !k.is_empty() => k,
                _ => continue,
            };
            for k in keys {
                if let Some(e) = g.table.get_mut(&k) {
                    e.holders.remove(&txn);
                    if e.holders.is_empty() && e.waiters.is_empty() {
                        g.table.remove(&k);
                    }
                }
                rrq_check::race::lock_released(k.ns, &k.key);
            }
            shard.cv.notify_all();
        }
        let mut m = self.meta();
        m.waits.clear_waiter(txn);
        m.waits.clear_target(txn);
    }

    /// §6 lock inheritance: transfer every lock held by `from` to `to`
    /// (merging with `to`'s own holdings at the stronger mode). Within each
    /// shard the handoff is atomic, so a transferred resource is never
    /// observably free in between.
    pub fn transfer_locks(&self, from: u64, to: u64) {
        if from == to {
            return;
        }
        for shard in self.shards.iter() {
            let mut g = shard.enter();
            let keys = match g.held.remove(&from) {
                Some(k) if !k.is_empty() => k,
                _ => continue,
            };
            for k in &keys {
                if let Some(e) = g.table.get_mut(k) {
                    if let Some(mode) = e.holders.remove(&from) {
                        let merged = match (e.holders.get(&to), mode) {
                            (Some(LockMode::Exclusive), _) | (_, LockMode::Exclusive) => {
                                LockMode::Exclusive
                            }
                            _ => LockMode::Shared,
                        };
                        e.holders.insert(to, merged);
                    }
                }
            }
            // Happens-before: the inheriting transaction's thread (the
            // caller) adopts each lock without `from` ever releasing it.
            for k in &keys {
                rrq_check::race::lock_transferred(k.ns, &k.key);
            }
            g.held.entry(to).or_default().extend(keys);
            // Wake this shard's waiters so their block-time edge refresh
            // re-targets `to` (PR 1 lost-wakeup audit; transfer_wakeup.rs).
            shard.cv.notify_all();
        }
        self.meta().waits.clear_target(from);
    }

    /// Number of locks currently held by `txn`.
    pub fn held_count(&self, txn: u64) -> usize {
        let mut total = 0;
        for shard in self.shards.iter() {
            let g = shard.enter();
            total += g.held.get(&txn).map(|s| s.len()).unwrap_or(0);
        }
        total
    }

    /// True when `txn` holds `key` at least at `mode`.
    pub fn holds(&self, txn: u64, key: &LockKey, mode: LockMode) -> bool {
        let g = self.shard(key).enter();
        match g.table.get(key).and_then(|e| e.holders.get(&txn)) {
            Some(LockMode::Exclusive) => true,
            Some(LockMode::Shared) => mode == LockMode::Shared,
            None => false,
        }
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> LockStats {
        self.meta().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    const T: Duration = Duration::from_secs(5);

    fn key(k: &[u8]) -> LockKey {
        LockKey::new(0, k)
    }

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::new();
        lm.lock(1, &key(b"a"), LockMode::Shared, T).unwrap();
        lm.lock(2, &key(b"a"), LockMode::Shared, T).unwrap();
        assert!(lm.holds(1, &key(b"a"), LockMode::Shared));
        assert!(lm.holds(2, &key(b"a"), LockMode::Shared));
    }

    #[test]
    fn exclusive_excludes() {
        let lm = LockManager::new();
        lm.lock(1, &key(b"a"), LockMode::Exclusive, T).unwrap();
        assert_eq!(
            lm.try_lock(2, &key(b"a"), LockMode::Shared),
            Err(TxnError::LockTimeout)
        );
        assert_eq!(
            lm.try_lock(2, &key(b"a"), LockMode::Exclusive),
            Err(TxnError::LockTimeout)
        );
        lm.unlock_all(1);
        assert!(lm.try_lock(2, &key(b"a"), LockMode::Exclusive).is_ok());
    }

    #[test]
    fn reentrant_and_upgrade() {
        let lm = LockManager::new();
        lm.lock(1, &key(b"a"), LockMode::Shared, T).unwrap();
        lm.lock(1, &key(b"a"), LockMode::Shared, T).unwrap();
        // Sole reader upgrades immediately.
        lm.lock(1, &key(b"a"), LockMode::Exclusive, T).unwrap();
        assert!(lm.holds(1, &key(b"a"), LockMode::Exclusive));
        // X re-request is a no-op; S while holding X stays X.
        lm.lock(1, &key(b"a"), LockMode::Exclusive, T).unwrap();
        lm.lock(1, &key(b"a"), LockMode::Shared, T).unwrap();
        assert!(lm.holds(1, &key(b"a"), LockMode::Exclusive));
        assert_eq!(lm.held_count(1), 1);
    }

    #[test]
    fn blocked_writer_proceeds_after_release() {
        let lm = Arc::new(LockManager::new());
        lm.lock(1, &key(b"a"), LockMode::Exclusive, T).unwrap();
        let lm2 = Arc::clone(&lm);
        let h = thread::spawn(move || lm2.lock(2, &key(b"a"), LockMode::Exclusive, T));
        thread::sleep(Duration::from_millis(20));
        lm.unlock_all(1);
        h.join().unwrap().unwrap();
        assert!(lm.holds(2, &key(b"a"), LockMode::Exclusive));
        assert_eq!(lm.stats().waited_grants, 1);
    }

    #[test]
    fn deadlock_detected_and_victim_is_requester() {
        let lm = Arc::new(LockManager::new());
        lm.lock(1, &key(b"a"), LockMode::Exclusive, T).unwrap();
        lm.lock(2, &key(b"b"), LockMode::Exclusive, T).unwrap();
        // 1 blocks on b (held by 2).
        let lm1 = Arc::clone(&lm);
        let h = thread::spawn(move || {
            let r = lm1.lock(1, &key(b"b"), LockMode::Exclusive, T);
            // 1 eventually gets b after 2 is killed as the deadlock victim.
            r
        });
        thread::sleep(Duration::from_millis(30));
        // 2 blocks on a (held by 1) → cycle → 2 is the victim.
        let r = lm.lock(2, &key(b"a"), LockMode::Exclusive, T);
        assert_eq!(r, Err(TxnError::Deadlock { victim: 2 }));
        lm.unlock_all(2);
        h.join().unwrap().unwrap();
        assert_eq!(lm.stats().deadlocks, 1);
    }

    #[test]
    fn upgrade_deadlock_detected() {
        let lm = Arc::new(LockManager::new());
        lm.lock(1, &key(b"a"), LockMode::Shared, T).unwrap();
        lm.lock(2, &key(b"a"), LockMode::Shared, T).unwrap();
        let lm1 = Arc::clone(&lm);
        let h = thread::spawn(move || lm1.lock(1, &key(b"a"), LockMode::Exclusive, T));
        thread::sleep(Duration::from_millis(30));
        let r = lm.lock(2, &key(b"a"), LockMode::Exclusive, T);
        assert_eq!(r, Err(TxnError::Deadlock { victim: 2 }));
        lm.unlock_all(2);
        h.join().unwrap().unwrap();
    }

    #[test]
    fn timeout_expires() {
        let lm = LockManager::new();
        lm.lock(1, &key(b"a"), LockMode::Exclusive, T).unwrap();
        let r = lm.lock(2, &key(b"a"), LockMode::Shared, Duration::from_millis(30));
        assert_eq!(r, Err(TxnError::LockTimeout));
        assert_eq!(lm.stats().timeouts, 1);
    }

    #[test]
    fn transfer_locks_inherits_holdings() {
        let lm = LockManager::new();
        lm.lock(1, &key(b"a"), LockMode::Exclusive, T).unwrap();
        lm.lock(1, &key(b"b"), LockMode::Shared, T).unwrap();
        lm.transfer_locks(1, 2);
        assert_eq!(lm.held_count(1), 0);
        assert_eq!(lm.held_count(2), 2);
        assert!(lm.holds(2, &key(b"a"), LockMode::Exclusive));
        // The resource never became free in between.
        assert_eq!(
            lm.try_lock(3, &key(b"a"), LockMode::Shared),
            Err(TxnError::LockTimeout)
        );
        lm.unlock_all(2);
        assert!(lm.try_lock(3, &key(b"a"), LockMode::Shared).is_ok());
    }

    #[test]
    fn transfer_merges_modes() {
        let lm = LockManager::new();
        lm.lock(1, &key(b"a"), LockMode::Exclusive, T).unwrap();
        // 2 can't hold anything on a yet; give 2 a shared elsewhere.
        lm.lock(2, &key(b"b"), LockMode::Shared, T).unwrap();
        lm.transfer_locks(1, 2);
        assert!(lm.holds(2, &key(b"a"), LockMode::Exclusive));
        assert!(lm.holds(2, &key(b"b"), LockMode::Shared));
    }

    #[test]
    fn namespaces_are_disjoint() {
        let lm = LockManager::new();
        lm.lock(1, &LockKey::new(1, "k"), LockMode::Exclusive, T)
            .unwrap();
        assert!(lm
            .try_lock(2, &LockKey::new(2, "k"), LockMode::Exclusive)
            .is_ok());
    }

    #[test]
    fn unlock_all_without_locks_is_harmless() {
        let lm = LockManager::new();
        lm.unlock_all(42);
        assert_eq!(lm.held_count(42), 0);
    }

    #[test]
    fn shard_ids_are_stable_and_in_range() {
        let lm = LockManager::with_shards(8);
        assert_eq!(lm.shard_count(), 8);
        let mut seen = HashSet::new();
        for i in 0..64u8 {
            let k = LockKey::new(0, vec![i]);
            let s = lm.shard_id(&k);
            assert!(s < 8);
            assert_eq!(s, lm.shard_id(&k));
            seen.insert(s);
        }
        // 64 distinct keys must not all land on one stripe.
        assert!(seen.len() > 1);
        // shards=1 degenerates to a single stripe.
        let single = LockManager::with_shards(1);
        assert_eq!(single.shard_id(&LockKey::new(9, "zz")), 0);
    }

    #[test]
    fn many_threads_stress_single_key() {
        let lm = Arc::new(LockManager::new());
        let counter = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let lm = Arc::clone(&lm);
            let counter = Arc::clone(&counter);
            handles.push(thread::spawn(move || {
                for i in 0..50 {
                    let txn = t * 1000 + i;
                    lm.lock(txn, &key(b"hot"), LockMode::Exclusive, T).unwrap();
                    {
                        let mut c = counter.lock();
                        *c += 1;
                    }
                    lm.unlock_all(txn);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 400);
    }

    #[test]
    fn many_threads_stress_across_shards() {
        // Same stress as above but over many keys, so the striped fast path
        // (different shards, no meta contention beyond counters) is exercised.
        let lm = Arc::new(LockManager::with_shards(8));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let lm = Arc::clone(&lm);
            handles.push(thread::spawn(move || {
                for i in 0..100u64 {
                    let txn = t * 1000 + i;
                    let k = key(&[(i % 32) as u8]);
                    lm.lock(txn, &k, LockMode::Exclusive, T).unwrap();
                    assert!(lm.holds(txn, &k, LockMode::Exclusive));
                    lm.unlock_all(txn);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..8u64 {
            for i in 0..100u64 {
                assert_eq!(lm.held_count(t * 1000 + i), 0);
            }
        }
    }
}
