//! Runtime lock-order checker for the coordination locks in this crate.
//!
//! The static side of the story lives in `LOCKS.md` + `rrq-analyze`: the
//! declared partial order is `txn-stripe < txn-meta`, one stripe guard per
//! thread. This module is the *dynamic* mirror: every stripe/meta guard
//! carries a [`Held`] token that, in debug builds, pushes its class onto a
//! thread-local stack and `debug_assert!`s the stack stays strictly
//! increasing — so an execution that would deadlock under an adversarial
//! schedule panics deterministically in any test or explorer sweep that
//! merely *reaches* the bad acquisition, no unlucky interleaving required.
//!
//! In release builds [`Held`] is a zero-sized no-op; the tier-1 `cargo test`
//! run (dev profile) and explorer debug sweeps get the checks for free.

#[cfg(debug_assertions)]
use std::cell::RefCell;

/// The classes of this crate's coordination locks, ranked by the declared
/// acquisition order (lower rank first). Must agree with `LOCKS.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum GuardClass {
    /// One stripe of the lock table (`Shard::state`).
    Stripe = 1,
    /// The global waits-for graph + counters (`LockManager::meta`).
    Meta = 2,
}

#[cfg(debug_assertions)]
thread_local! {
    static HELD: RefCell<Vec<GuardClass>> = const { RefCell::new(Vec::new()) };
}

/// An order-checking token held alongside a lock guard. Acquire it *before*
/// the lock itself (so a would-deadlock acquisition panics even when the
/// schedule would have let it succeed); drop order relative to the guard is
/// irrelevant because release order never deadlocks.
#[derive(Debug)]
pub struct Held {
    #[cfg(debug_assertions)]
    class: GuardClass,
}

impl Held {
    /// Record the intent to acquire a guard of `class`, asserting every
    /// class already held by this thread ranks strictly below it.
    #[inline]
    pub fn acquire(class: GuardClass) -> Held {
        #[cfg(debug_assertions)]
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(&top) = held.last() {
                debug_assert!(
                    top < class,
                    "lock-order violation: acquiring {class:?} while holding {held:?} \
                     (declared order in LOCKS.md: Stripe < Meta, never two stripes)"
                );
            }
            held.push(class);
        });
        Held {
            #[cfg(debug_assertions)]
            class,
        }
    }
}

#[cfg(debug_assertions)]
impl Drop for Held {
    fn drop(&mut self) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            let top = held.pop();
            debug_assert_eq!(
                top,
                Some(self.class),
                "lock-order tokens released out of acquisition order"
            );
        });
    }
}

#[cfg(all(test, debug_assertions))]
mod tests {
    use super::*;

    #[test]
    fn stripe_then_meta_is_legal() {
        let s = Held::acquire(GuardClass::Stripe);
        let m = Held::acquire(GuardClass::Meta);
        drop(m);
        drop(s);
    }

    #[test]
    fn sequential_reacquisition_is_legal() {
        for _ in 0..3 {
            let _s = Held::acquire(GuardClass::Stripe);
        }
        let _m = Held::acquire(GuardClass::Meta);
    }

    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn meta_then_stripe_panics() {
        let _m = Held::acquire(GuardClass::Meta);
        let _s = Held::acquire(GuardClass::Stripe);
    }

    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn two_stripes_panic() {
        let _a = Held::acquire(GuardClass::Stripe);
        let _b = Held::acquire(GuardClass::Stripe);
    }
}
