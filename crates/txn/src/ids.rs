//! Transaction identifiers.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A globally unique transaction identifier.
///
/// The raw `u64` doubles as the transaction token passed to
/// [`rrq_storage::KvStore`], so one id drives every enlisted store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId(pub u64);

impl TxnId {
    /// The raw token value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn#{}", self.0)
    }
}

/// Monotonic id generator.
///
/// Ids start from a caller-chosen floor so that a restarted node can resume
/// above every id it may have logged before the crash (the manager persists
/// a high-water mark for this).
#[derive(Debug)]
pub struct TxnIdGen {
    next: AtomicU64,
}

impl TxnIdGen {
    /// Start issuing ids at `floor` (must be ≥ 1; 0 is the reserved
    /// "no transaction" token).
    pub fn new(floor: u64) -> Self {
        TxnIdGen {
            next: AtomicU64::new(floor.max(1)),
        }
    }

    /// Issue the next id.
    pub fn next(&self) -> TxnId {
        TxnId(self.next.fetch_add(1, Ordering::AcqRel))
    }

    /// The id that would be issued next (for persisting a high-water mark).
    pub fn peek(&self) -> u64 {
        self.next.load(Ordering::Acquire)
    }
}

impl Default for TxnIdGen {
    fn default() -> Self {
        TxnIdGen::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_monotonic_and_unique() {
        let g = TxnIdGen::default();
        let a = g.next();
        let b = g.next();
        assert!(b.raw() > a.raw());
        assert_ne!(a, b);
    }

    #[test]
    fn floor_is_respected_and_zero_reserved() {
        let g = TxnIdGen::new(0);
        assert_eq!(g.next().raw(), 1);
        let g = TxnIdGen::new(500);
        assert_eq!(g.next().raw(), 500);
        assert_eq!(g.peek(), 501);
    }

    #[test]
    fn display_format() {
        assert_eq!(TxnId(9).to_string(), "txn#9");
    }

    #[test]
    fn concurrent_generation_has_no_duplicates() {
        use std::collections::HashSet;
        use std::sync::Arc;
        let g = Arc::new(TxnIdGen::default());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let g = Arc::clone(&g);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| g.next().raw()).collect::<Vec<_>>()
            }));
        }
        let mut seen = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(seen.insert(id), "duplicate id {id}");
            }
        }
    }
}
