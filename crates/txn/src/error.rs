//! Transaction-layer errors.

use rrq_storage::StorageError;
use std::fmt;

/// Result alias for the transaction crate.
pub type TxnResult<T> = Result<T, TxnError>;

/// Errors surfaced by the transaction manager and lock manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnError {
    /// The requester was chosen as a deadlock victim and must abort.
    Deadlock {
        /// The victim transaction.
        victim: u64,
    },
    /// A lock wait exceeded its timeout.
    LockTimeout,
    /// The transaction is not in a state that allows the operation.
    InvalidState(String),
    /// A participant failed to prepare; the transaction was aborted.
    PrepareFailed(String),
    /// A storage error bubbled up from a participant or the coordinator log.
    Storage(StorageError),
    /// The transaction was already aborted (e.g. by a cancellation).
    Aborted,
    /// A planned-execution transaction touched a lock it never declared.
    /// The executor aborts and replans with the widened access set (the
    /// violating keys are recorded on the transaction's plan scope).
    OutsidePlan(String),
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::Deadlock { victim } => write!(f, "deadlock detected; victim txn {victim}"),
            TxnError::LockTimeout => write!(f, "lock wait timed out"),
            TxnError::InvalidState(msg) => write!(f, "invalid transaction state: {msg}"),
            TxnError::PrepareFailed(msg) => write!(f, "prepare failed: {msg}"),
            TxnError::Storage(e) => write!(f, "storage error: {e}"),
            TxnError::Aborted => write!(f, "transaction aborted"),
            TxnError::OutsidePlan(msg) => write!(f, "access outside declared plan scope: {msg}"),
        }
    }
}

impl std::error::Error for TxnError {}

impl From<StorageError> for TxnError {
    fn from(e: StorageError) -> Self {
        TxnError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: TxnError = StorageError::DeviceFailed.into();
        assert!(matches!(e, TxnError::Storage(_)));
        assert!(TxnError::Deadlock { victim: 3 }.to_string().contains('3'));
        assert!(TxnError::LockTimeout.to_string().contains("timed out"));
    }
}
