//! # rrq-txn
//!
//! The transaction substrate: identifiers, a strict two-phase-locking lock
//! manager with waits-for deadlock detection, the [`rm::ResourceManager`]
//! participant interface, a durable two-phase-commit coordinator log, and the
//! [`manager::TxnManager`] that ties them together.
//!
//! The paper (§1) assumes transactions with "atomicity, serializability and
//! durability" as given; this crate supplies them for every store in the
//! workspace. Queue operations in `rrq-qm` and application-database updates
//! in the servers enlist in the *same* transaction through
//! [`rm::ResourceManager`], which is precisely what makes the paper's
//! dequeue–process–enqueue–commit server loop atomic (§5, Fig 5).
//!
//! Two details the paper calls out are modelled faithfully:
//!
//! * §6: a request may span database systems that "do not use the same
//!   transaction protocol" — the manager supports one-phase commit for a
//!   single participant and logged two-phase commit for several.
//! * §6: lock inheritance across the chained transactions of a
//!   multi-transaction request ([`lock::LockManager::transfer_locks`]).

pub mod deadlock;
pub mod error;
pub mod ids;
pub mod lock;
pub mod lockorder;
pub mod manager;
pub mod plan;
pub mod rm;
pub mod twophase;

pub use error::{TxnError, TxnResult};
pub use ids::{TxnId, TxnIdGen};
pub use lock::{LockKey, LockManager, LockMode, DEFAULT_LOCK_SHARDS};
pub use manager::{Txn, TxnManager};
pub use plan::EpochPlan;
pub use rm::{KvResource, ResourceManager};
pub use twophase::CoordinatorLog;
