//! Property: for ANY interleaving of waits-for edge recordings, aborting a
//! deadlock victim the way `LockManager` does (clear its waiter edges, clear
//! every edge targeting it, release its holdings) leaves no cycle through
//! the victim and leaves the victim holding nothing.

use proptest::prelude::*;
use rrq_txn::deadlock::WaitsForGraph;
use std::collections::{HashMap, HashSet};

const TXNS: u64 = 6;

/// Shadow of `LockManager`'s `held` map: holder -> granted lock ids. An
/// edge `(w, h, lock)` models "w waits for lock, h holds lock".
fn abort(graph: &mut WaitsForGraph, holds: &mut HashMap<u64, HashSet<u32>>, victim: u64) {
    // What the Deadlock error path does...
    graph.clear_waiter(victim);
    // ...and what the subsequent unlock_all does.
    graph.clear_target(victim);
    holds.remove(&victim);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn victim_abort_breaks_its_cycles_and_frees_its_locks(
        ops in proptest::collection::vec((0u64..TXNS, 0u64..TXNS, 0u32..8), 1..40),
        victim in 0u64..TXNS,
    ) {
        let mut graph = WaitsForGraph::new();
        let mut holds: HashMap<u64, HashSet<u32>> = HashMap::new();
        for (waiter, holder, lock) in ops {
            if waiter == holder {
                continue; // a txn never waits on itself
            }
            holds.entry(holder).or_default().insert(lock);
            graph.add_edge(waiter, holder);
        }

        abort(&mut graph, &mut holds, victim);

        // The victim participates in no cycle, in either role.
        prop_assert!(!graph.has_cycle_through(victim));
        // The victim holds nothing.
        prop_assert!(!holds.contains_key(&victim));
        // Both edge directions touching the victim were cleared, so one
        // fresh outbound edge cannot close a cycle: any such cycle would
        // need a stale inbound edge that survived the abort.
        graph.add_edge(victim, (victim + 1) % TXNS);
        let recycled = graph.has_cycle_through(victim);
        graph.clear_waiter(victim);
        prop_assert!(
            !recycled,
            "a cycle through the victim right after one fresh edge means \
             stale inbound edges survived the abort"
        );
    }
}
