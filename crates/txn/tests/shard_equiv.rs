//! Striping must be invisible: a lock table split over 8 stripes has to
//! make exactly the decisions the single-mutex table makes.
//!
//! * The proptest replays random lock / unlock / transfer scripts against
//!   `with_shards(1)` and `with_shards(8)` and requires identical per-op
//!   outcomes, identical final holdings, and identical stats counters.
//! * The directed test drives a real two-thread deadlock whose two keys
//!   provably live on different stripes, checking that the waits-for graph
//!   (which stayed global by design) still closes the cycle.

use proptest::prelude::*;
use rrq_txn::{LockKey, LockManager, LockMode, TxnError};
use std::sync::{Arc, Barrier};
use std::time::Duration;

const TXNS: u64 = 4;
const KEYS: usize = 8;

#[derive(Debug, Clone)]
enum Op {
    /// `try_lock` — zero timeout keeps single-threaded replay deterministic.
    Lock {
        txn: u64,
        key: usize,
        exclusive: bool,
    },
    UnlockAll {
        txn: u64,
    },
    Transfer {
        from: u64,
        to: u64,
    },
}

fn key(i: usize) -> LockKey {
    // Two namespaces so stripe hashing mixes ns and key bytes.
    LockKey::new((i % 2) as u32, vec![i as u8])
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..TXNS, 0..KEYS, any::<bool>())
            .prop_map(|(txn, key, exclusive)| Op::Lock { txn, key, exclusive }),
        1 => (0..TXNS).prop_map(|txn| Op::UnlockAll { txn }),
        1 => (0..TXNS, 0..TXNS).prop_map(|(from, to)| Op::Transfer { from, to }),
    ]
}

/// Replay `ops` on a fresh manager with `shards` stripes; the returned
/// trace captures everything the caller is allowed to observe.
fn replay(ops: &[Op], shards: usize) -> Vec<String> {
    let lm = LockManager::with_shards(shards);
    let mut trace = Vec::new();
    for op in ops {
        match op {
            Op::Lock {
                txn,
                key: k,
                exclusive,
            } => {
                let mode = if *exclusive {
                    LockMode::Exclusive
                } else {
                    LockMode::Shared
                };
                trace.push(format!(
                    "lock {txn} {k} {mode:?}: {:?}",
                    lm.try_lock(*txn, &key(*k), mode)
                ));
            }
            Op::UnlockAll { txn } => {
                lm.unlock_all(*txn);
                trace.push(format!("unlock {txn}"));
            }
            Op::Transfer { from, to } => {
                lm.transfer_locks(*from, *to);
                trace.push(format!("transfer {from}->{to}"));
            }
        }
    }
    for txn in 0..TXNS {
        trace.push(format!("held[{txn}]={}", lm.held_count(txn)));
        for k in 0..KEYS {
            for mode in [LockMode::Shared, LockMode::Exclusive] {
                if lm.holds(txn, &key(k), mode) {
                    trace.push(format!("holds {txn} {k} {mode:?}"));
                }
            }
        }
    }
    trace.push(format!("stats {:?}", lm.stats()));
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Grant / upgrade / timeout decisions, final holdings, and counters
    /// are identical at 1 stripe and 8 stripes for any script.
    #[test]
    fn striped_table_is_observationally_equal_to_single_mutex(
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let baseline = replay(&ops, 1);
        let striped = replay(&ops, 8);
        prop_assert_eq!(baseline, striped);
    }
}

/// A real deadlock whose two resources live on different stripes: detection
/// must still fire, because the waits-for graph is global even though the
/// tables are striped.
#[test]
fn cross_shard_deadlock_is_still_detected() {
    let lm = Arc::new(LockManager::with_shards(8));

    // Find two keys on provably different stripes.
    let a = key(0);
    let mut b = key(1);
    for i in 1..KEYS {
        b = key(i);
        if lm.shard_id(&b) != lm.shard_id(&a) {
            break;
        }
    }
    assert_ne!(
        lm.shard_id(&a),
        lm.shard_id(&b),
        "need two distinct stripes"
    );

    let barrier = Arc::new(Barrier::new(2));
    let spawn = |me: u64, first: LockKey, second: LockKey| {
        let lm = Arc::clone(&lm);
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            lm.try_lock(me, &first, LockMode::Exclusive).unwrap();
            barrier.wait();
            let got = lm.lock(me, &second, LockMode::Exclusive, Duration::from_secs(5));
            lm.unlock_all(me);
            got
        })
    };
    let t1 = spawn(1, a.clone(), b.clone());
    let t2 = spawn(2, b, a);
    let r1 = t1.join().unwrap();
    let r2 = t2.join().unwrap();

    let deadlocks = [&r1, &r2]
        .iter()
        .filter(|r| matches!(r, Err(TxnError::Deadlock { .. })))
        .count();
    assert_eq!(
        deadlocks, 1,
        "exactly one side is the block-time victim: {r1:?} / {r2:?}"
    );
    // The survivor's wait was resolved by the victim's release, not by the
    // 5s timeout backstop.
    assert!(
        [&r1, &r2].iter().any(|r| r.is_ok()),
        "survivor must be granted after the victim aborts: {r1:?} / {r2:?}"
    );
    assert_eq!(lm.stats().deadlocks, 1);
    assert_eq!(lm.held_count(1) + lm.held_count(2), 0);
}
