//! Regression tests pinning `LockManager::transfer_locks` against lost
//! wakeups: a waiter blocked on a key held by `from` must survive the
//! transfer (re-deriving its waits-for edges against `to`) and acquire the
//! lock once `to` releases — and deadlock detection must keep working
//! against the inheriting transaction.

use rrq_txn::{LockKey, LockManager, LockMode, TxnError};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const FROM: u64 = 1;
const TO: u64 = 2;
const WAITER: u64 = 3;

#[test]
fn blocked_waiter_survives_transfer_and_acquires_after_release() {
    let lm = Arc::new(LockManager::new());
    let key = LockKey::new(9, "inherited");
    lm.lock(FROM, &key, LockMode::Exclusive, Duration::from_secs(1))
        .unwrap();

    let waiter = {
        let lm = Arc::clone(&lm);
        let key = key.clone();
        thread::spawn(move || lm.lock(WAITER, &key, LockMode::Exclusive, Duration::from_secs(10)))
    };
    // Let the waiter actually block (its waits-for edge targets FROM).
    thread::sleep(Duration::from_millis(100));
    assert!(lm.holds(FROM, &key, LockMode::Exclusive));

    // §6 inheritance: the lock moves FROM -> TO without ever being free.
    lm.transfer_locks(FROM, TO);
    assert!(lm.holds(TO, &key, LockMode::Exclusive));
    assert!(!lm.holds(WAITER, &key, LockMode::Shared), "still locked");

    // The waiter must not have been lost: once TO releases, it gets the
    // lock well within its timeout.
    lm.unlock_all(TO);
    waiter
        .join()
        .unwrap()
        .expect("waiter acquires after the inheritor releases");
    assert!(lm.holds(WAITER, &key, LockMode::Exclusive));
    lm.unlock_all(WAITER);
}

#[test]
fn deadlock_detection_sees_the_inheriting_transaction() {
    let lm = Arc::new(LockManager::new());
    let k1 = LockKey::new(9, "k1");
    let k2 = LockKey::new(9, "k2");
    lm.lock(FROM, &k1, LockMode::Exclusive, Duration::from_secs(1))
        .unwrap();
    lm.lock(WAITER, &k2, LockMode::Exclusive, Duration::from_secs(1))
        .unwrap();

    // WAITER blocks on k1 (held by FROM), holding k2.
    let waiter = {
        let lm = Arc::clone(&lm);
        let k1 = k1.clone();
        thread::spawn(move || lm.lock(WAITER, &k1, LockMode::Exclusive, Duration::from_secs(10)))
    };
    thread::sleep(Duration::from_millis(50));

    // Transfer wakes the waiter, which re-records its edge against TO.
    lm.transfer_locks(FROM, TO);
    thread::sleep(Duration::from_millis(100));

    // TO requesting k2 closes the cycle TO -> WAITER -> TO: the request
    // must die as a deadlock victim, not hang until timeout.
    let err = lm
        .lock(TO, &k2, LockMode::Exclusive, Duration::from_secs(5))
        .unwrap_err();
    assert!(
        matches!(err, TxnError::Deadlock { victim } if victim == TO),
        "expected deadlock victim {TO}, got {err:?}"
    );

    // Victim aborts: its (inherited) locks release and the waiter finishes.
    lm.unlock_all(TO);
    waiter.join().unwrap().expect("waiter acquires k1");
    assert_eq!(lm.held_count(TO), 0);
    lm.unlock_all(WAITER);
}
