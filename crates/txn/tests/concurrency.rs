//! Concurrency tests for the transaction layer: serializability of money
//! movements under 2PL, and deadlock-victim liveness.

use rrq_storage::disk::SimDisk;
use rrq_storage::kv::{KvOptions, KvStore};
use rrq_txn::{KvResource, LockKey, ResourceManager, TxnError, TxnManager};
use std::sync::Arc;
use std::time::Duration;

fn store() -> Arc<KvStore> {
    KvStore::open(
        Arc::new(SimDisk::new()),
        Arc::new(SimDisk::new()),
        KvOptions::default(),
    )
    .unwrap()
    .0
}

fn balance(store: &KvStore, key: &[u8]) -> i64 {
    store
        .get(None, key)
        .unwrap()
        .map(|raw| i64::from_le_bytes(raw.try_into().unwrap()))
        .unwrap_or(0)
}

/// N threads move money between M accounts with strict 2PL; the total is
/// invariant and no increment is lost — the serializability smoke test.
#[test]
fn concurrent_transfers_conserve_money() {
    let mgr = TxnManager::single_node();
    mgr.set_lock_timeout(Duration::from_secs(30));
    let s = store();
    let rm: Arc<dyn ResourceManager> = Arc::new(KvResource::new("bank", Arc::clone(&s)));

    const ACCOUNTS: usize = 4;
    const THREADS: usize = 6;
    const TRANSFERS: usize = 80;
    // Seed.
    s.begin(999_999).unwrap();
    for a in 0..ACCOUNTS {
        s.put(
            999_999,
            format!("a{a}").as_bytes(),
            &10_000i64.to_le_bytes(),
        )
        .unwrap();
    }
    s.commit(999_999).unwrap();

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let mgr = mgr.clone();
        let s = Arc::clone(&s);
        let rm = Arc::clone(&rm);
        handles.push(std::thread::spawn(move || {
            let mut done = 0;
            let mut i = 0usize;
            while done < TRANSFERS {
                i += 1;
                let from = (t + i) % ACCOUNTS;
                let to = (t + i + 1 + i % (ACCOUNTS - 1)) % ACCOUNTS;
                if from == to {
                    continue;
                }
                let txn = mgr.begin();
                txn.enlist(Arc::clone(&rm)).unwrap();
                // Deterministic lock order prevents deadlock here; the
                // deadlock test below covers the victim path.
                let (lo, hi) = (from.min(to), from.max(to));
                if txn
                    .lock_exclusive(&LockKey::new(1, format!("a{lo}")))
                    .is_err()
                    || txn
                        .lock_exclusive(&LockKey::new(1, format!("a{hi}")))
                        .is_err()
                {
                    txn.abort().unwrap();
                    continue;
                }
                let token = txn.id().raw();
                let fk = format!("a{from}");
                let tk = format!("a{to}");
                let fb = s
                    .get(Some(token), fk.as_bytes())
                    .unwrap()
                    .map(|r| i64::from_le_bytes(r.try_into().unwrap()))
                    .unwrap();
                let tb = s
                    .get(Some(token), tk.as_bytes())
                    .unwrap()
                    .map(|r| i64::from_le_bytes(r.try_into().unwrap()))
                    .unwrap();
                s.put(token, fk.as_bytes(), &(fb - 7).to_le_bytes())
                    .unwrap();
                s.put(token, tk.as_bytes(), &(tb + 7).to_le_bytes())
                    .unwrap();
                txn.commit().unwrap();
                done += 1;
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let total: i64 = (0..ACCOUNTS)
        .map(|a| balance(&s, format!("a{a}").as_bytes()))
        .sum();
    assert_eq!(total, 10_000 * ACCOUNTS as i64, "money conserved");
    assert_eq!(mgr.stats().committed, (THREADS * TRANSFERS) as u64);
}

/// Opposite-order lockers deadlock; the victim aborts cleanly, the survivor
/// commits, and the system keeps going.
#[test]
fn deadlock_victims_do_not_wedge_the_system() {
    let mgr = TxnManager::single_node();
    mgr.set_lock_timeout(Duration::from_secs(10));
    let s = store();
    let rm: Arc<dyn ResourceManager> = Arc::new(KvResource::new("db", Arc::clone(&s)));

    let mut handles = Vec::new();
    for t in 0..4 {
        let mgr = mgr.clone();
        let s = Arc::clone(&s);
        let rm = Arc::clone(&rm);
        handles.push(std::thread::spawn(move || {
            let mut commits = 0;
            for i in 0..40 {
                let txn = mgr.begin();
                txn.enlist(Arc::clone(&rm)).unwrap();
                // Half the threads lock x then y, half y then x.
                let (first, second) = if t % 2 == 0 { ("x", "y") } else { ("y", "x") };
                let ok = txn.lock_exclusive(&LockKey::new(2, first)).is_ok()
                    && txn.lock_exclusive(&LockKey::new(2, second)).is_ok();
                if !ok {
                    txn.abort().unwrap();
                    continue;
                }
                let token = txn.id().raw();
                s.put(token, b"counter", &format!("{t}:{i}").into_bytes())
                    .unwrap();
                txn.commit().unwrap();
                commits += 1;
            }
            commits
        }));
    }
    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total > 0, "some transactions must commit");
    let stats = mgr.locks().stats();
    assert!(
        stats.deadlocks > 0 || stats.timeouts > 0 || total == 160,
        "either conflicts occurred and were resolved, or everything serialized cleanly"
    );
    // The store is still usable.
    s.begin(123_456).unwrap();
    s.put(123_456, b"after", b"fine").unwrap();
    s.commit(123_456).unwrap();
    assert_eq!(s.get(None, b"after").unwrap(), Some(b"fine".to_vec()));
}

/// Lock timeouts surface as errors, not hangs, even under heavy contention.
#[test]
fn lock_timeout_is_bounded() {
    let mgr = TxnManager::single_node();
    mgr.set_lock_timeout(Duration::from_millis(50));
    let holder = mgr.begin();
    holder.lock_exclusive(&LockKey::new(3, "hot")).unwrap();

    let t0 = std::time::Instant::now();
    let waiter = mgr.begin();
    let r = waiter.lock_exclusive(&LockKey::new(3, "hot"));
    assert_eq!(r, Err(TxnError::LockTimeout));
    assert!(t0.elapsed() < Duration::from_secs(2));
    waiter.abort().unwrap();
    holder.abort().unwrap();
}
