//! Compensation-based late cancellation (§7).
//!
//! "With multi-transaction requests, the cancellation request fails once the
//! first transaction in the sequence has committed. Later cancellation can
//! still be arranged by supporting compensating transactions and sagas
//! [Garcia & Salem 87] … one cancels the request by compensating for the
//! committed transactions that executed on behalf of the request. This can
//! be done by executing the compensations as a serial multi-transaction
//! request."
//!
//! Each stage that commits real effects records its compensation in the
//! [`SagaLog`] *within the same transaction*, so the log is exactly the set
//! of committed stages. Cancellation enqueues the compensations in reverse
//! order as ordinary requests on a compensation queue.

use crate::error::CoreResult;
use crate::request::Request;
use crate::rid::Rid;
use rrq_qm::ops::{EnqueueOptions, QueueHandle};
use rrq_qm::repository::Repository;
use rrq_storage::codec::{put, Reader};
use rrq_storage::kv::KvStore;
use std::sync::Arc;

fn step_key(rid: &Rid, step: u32) -> Vec<u8> {
    format!("saga/{}/{step:08}", rid.to_attr()).into_bytes()
}

fn rid_prefix(rid: &Rid) -> Vec<u8> {
    format!("saga/{}/", rid.to_attr()).into_bytes()
}

/// One recorded compensation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SagaStep {
    /// Stage number (execution order).
    pub step: u32,
    /// Compensating operation name.
    pub comp_op: String,
    /// Compensating operation arguments.
    pub comp_body: Vec<u8>,
}

/// The durable per-request compensation log.
pub struct SagaLog {
    store: Arc<KvStore>,
}

impl SagaLog {
    /// Store the log in `store` (normally the repository's durable store, so
    /// records commit atomically with stage transactions).
    pub fn new(store: Arc<KvStore>) -> Self {
        SagaLog { store }
    }

    /// Record the compensation for stage `step` of request `rid`, inside the
    /// stage's own transaction `txn`.
    pub fn record(
        &self,
        txn: u64,
        rid: &Rid,
        step: u32,
        comp_op: &str,
        comp_body: &[u8],
    ) -> CoreResult<()> {
        let mut buf = Vec::new();
        put::string(&mut buf, comp_op);
        put::bytes(&mut buf, comp_body);
        self.store.put(txn, &step_key(rid, step), &buf)?;
        Ok(())
    }

    /// Committed steps of `rid`, in execution order.
    pub fn steps(&self, rid: &Rid) -> CoreResult<Vec<SagaStep>> {
        let rows = self.store.scan_prefix(None, &rid_prefix(rid))?;
        let prefix_len = rid_prefix(rid).len();
        let mut out = Vec::with_capacity(rows.len());
        for (k, v) in rows {
            let step: u32 = String::from_utf8_lossy(&k[prefix_len..])
                .parse()
                .unwrap_or(0);
            let mut r = Reader::new(&v);
            let comp_op = r.string().map_err(crate::error::CoreError::Storage)?;
            let comp_body = r.bytes().map_err(crate::error::CoreError::Storage)?;
            out.push(SagaStep {
                step,
                comp_op,
                comp_body,
            });
        }
        Ok(out)
    }

    /// Remove `rid`'s log inside `txn` (after successful completion or after
    /// compensation finishes).
    pub fn clear(&self, txn: u64, rid: &Rid) -> CoreResult<usize> {
        let rows = self.store.scan_prefix(Some(txn), &rid_prefix(rid))?;
        let n = rows.len();
        for (k, _) in rows {
            self.store.delete(txn, &k)?;
        }
        Ok(n)
    }

    /// Cancel the committed prefix of request `rid`: enqueue its
    /// compensations, most recent first, as a serial multi-transaction
    /// request on `comp_queue`. Returns the number of compensations issued.
    ///
    /// The compensation requests reuse the original rid's client with fresh
    /// serials derived from the step number, and direct replies to
    /// `reply_queue`.
    pub fn compensate(
        &self,
        repo: &Repository,
        rid: &Rid,
        comp_queue: &str,
        reply_queue: &str,
    ) -> CoreResult<usize> {
        let mut steps = self.steps(rid)?;
        steps.sort_by_key(|s| std::cmp::Reverse(s.step));
        let n = steps.len();
        if n == 0 {
            return Ok(0);
        }
        let h = QueueHandle {
            queue: comp_queue.to_string(),
            registrant: format!("saga/{}", rid.to_attr()),
        };
        repo.autocommit(|t| {
            for s in &steps {
                let comp_rid = Rid::new(
                    format!("{}~comp", rid.client),
                    rid.serial * 1000 + s.step as u64,
                );
                let req = Request::new(
                    comp_rid,
                    reply_queue,
                    s.comp_op.clone(),
                    s.comp_body.clone(),
                );
                use rrq_storage::codec::Encode;
                repo.qm().enqueue(
                    t.id().raw(),
                    &h,
                    &req.encode_to_vec(),
                    EnqueueOptions {
                        attrs: vec![("compensates".into(), rid.to_attr())],
                        ..Default::default()
                    },
                )?;
            }
            // Clearing the log in the same transaction makes cancellation
            // itself exactly-once.
            let cleared = self
                .clear(t.id().raw(), rid)
                .map_err(|e| rrq_qm::QmError::Invalid(e.to_string()))?;
            debug_assert_eq!(cleared, n);
            Ok(())
        })?;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Arc<Repository>, SagaLog) {
        let repo = Arc::new(Repository::create("saga").unwrap());
        repo.create_queue_defaults("comp").unwrap();
        let log = SagaLog::new(Arc::clone(repo.store()));
        (repo, log)
    }

    #[test]
    fn record_and_read_steps_in_order() {
        let (repo, log) = setup();
        let rid = Rid::new("c", 1);
        repo.store().begin(1).unwrap();
        log.record(1, &rid, 0, "credit", b"src:100").unwrap();
        log.record(1, &rid, 1, "debit", b"dst:100").unwrap();
        repo.store().commit(1).unwrap();
        let steps = log.steps(&rid).unwrap();
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[0].comp_op, "credit");
        assert_eq!(steps[1].comp_op, "debit");
    }

    #[test]
    fn aborted_stage_records_nothing() {
        let (repo, log) = setup();
        let rid = Rid::new("c", 2);
        repo.store().begin(1).unwrap();
        log.record(1, &rid, 0, "credit", b"x").unwrap();
        repo.store().abort(1).unwrap();
        assert!(log.steps(&rid).unwrap().is_empty());
    }

    #[test]
    fn compensate_enqueues_reverse_order_and_clears() {
        let (repo, log) = setup();
        let rid = Rid::new("c", 3);
        repo.store().begin(1).unwrap();
        log.record(1, &rid, 0, "undo-step-0", b"").unwrap();
        log.record(1, &rid, 1, "undo-step-1", b"").unwrap();
        log.record(1, &rid, 2, "undo-step-2", b"").unwrap();
        repo.store().commit(1).unwrap();

        let n = log.compensate(&repo, &rid, "comp", "reply.c").unwrap();
        assert_eq!(n, 3);
        assert_eq!(repo.qm().depth("comp").unwrap(), 3);
        assert!(log.steps(&rid).unwrap().is_empty(), "log cleared");

        // FIFO order of the compensation queue = reverse stage order.
        use rrq_qm::ops::DequeueOptions;
        use rrq_storage::codec::Decode;
        let (h, _) = repo.qm().register("comp", "x", false).unwrap();
        let mut ops = Vec::new();
        for _ in 0..3 {
            let e = repo
                .autocommit(|t| {
                    repo.qm()
                        .dequeue(t.id().raw(), &h, DequeueOptions::default())
                })
                .unwrap();
            let req = Request::decode_all(&e.payload).unwrap();
            ops.push(req.op);
        }
        assert_eq!(ops, vec!["undo-step-2", "undo-step-1", "undo-step-0"]);
    }

    #[test]
    fn compensate_with_empty_log_is_noop() {
        let (repo, log) = setup();
        let rid = Rid::new("c", 9);
        assert_eq!(log.compensate(&repo, &rid, "comp", "r").unwrap(), 0);
        assert_eq!(repo.qm().depth("comp").unwrap(), 0);
    }
}
