//! The clerk — the runtime library that translates Client Model operations
//! into queue operations (§5, Fig 5).
//!
//! The clerk is deliberately stateless across failures: everything needed to
//! resynchronize lives in the QM's persistent registration records (§4.3).
//! `Connect` re-registers with the request and reply queues; the returned
//! tags reconstruct the rids of the client's last `Send` and last `Receive`
//! and the checkpoint supplied with that `Receive` — exactly the `s-rid`,
//! `r-rid`, `ckpt` triple of Fig 2.

use crate::api::QmApi;
use crate::error::{CoreError, CoreResult};
use crate::request::{Reply, Request};
use crate::rid::Rid;
use crate::tagcodec::{decode_tag, encode_receive_tag, encode_send_tag, ClerkTag};
use parking_lot::Mutex;
use rrq_qm::element::Eid;
use rrq_qm::ops::{DequeueOptions, EnqueueOptions};
use rrq_qm::registration::LastOp;
use rrq_storage::codec::{Decode, Encode};
use std::sync::Arc;
use std::time::Duration;

/// How `Send` talks to the QM (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendMode {
    /// Acknowledged RPC: when `send` returns, the request is stably stored.
    Acked,
    /// One-way message: saves the acknowledgement; a lost request surfaces
    /// as a `receive` timeout followed by resynchronization.
    OneWay,
}

/// Clerk configuration.
#[derive(Debug, Clone)]
pub struct ClerkConfig {
    /// The client's unique, stable name.
    pub client_id: String,
    /// Queue the server(s) dequeue requests from.
    pub request_queue: String,
    /// This client's private reply queue (§5 multi-client extension).
    pub reply_queue: String,
    /// Transport discipline for `send`.
    pub send_mode: SendMode,
    /// How long `receive` blocks for a reply before reporting empty.
    pub receive_block: Duration,
}

impl ClerkConfig {
    /// Sensible defaults: acked sends, 5 s receive window, reply queue named
    /// after the client.
    pub fn new(client_id: impl Into<String>, request_queue: impl Into<String>) -> Self {
        let client_id = client_id.into();
        let reply_queue = format!("reply.{client_id}");
        ClerkConfig {
            client_id,
            request_queue: request_queue.into(),
            reply_queue,
            send_mode: SendMode::Acked,
            receive_block: Duration::from_secs(5),
        }
    }
}

/// What `Connect` reports back to the client (§3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectInfo {
    /// Rid of the last request the system received from this client.
    pub s_rid: Option<Rid>,
    /// Rid of the request corresponding to the last reply the client
    /// received.
    pub r_rid: Option<Rid>,
    /// The `ckpt` parameter of the client's last `Receive`.
    pub ckpt: Option<Vec<u8>>,
}

#[derive(Debug, Default)]
struct ClerkState {
    connected: bool,
    /// Rid of the most recent Send (restored by connect).
    last_send_rid: Option<Rid>,
    /// Eid of the most recent request element (for cancellation).
    last_request_eid: Option<Eid>,
    /// Eid of the most recently received reply element (for Rereceive).
    last_reply_eid: Option<Eid>,
    /// Logical tick of the last Fig 1 state transition (metrics only).
    last_transition_tick: u64,
}

/// Record how long the clerk dwelt in its current Fig 1 state, in logical
/// ticks, then restart the dwell clock. Called with the state lock held so
/// the dwell series is per-transition exact.
fn note_transition(st: &mut ClerkState) {
    let now = rrq_obs::now();
    rrq_obs::observe(
        "core.clerk.state_dwell_ticks",
        now.saturating_sub(st.last_transition_tick),
    );
    st.last_transition_tick = now;
}

/// The clerk. One per client process; thread-compatible but the Client Model
/// is sequential, so callers normally use it from one thread.
pub struct Clerk {
    api: Arc<dyn QmApi>,
    cfg: ClerkConfig,
    state: Mutex<ClerkState>,
}

impl Clerk {
    /// Build a clerk over any QM transport.
    pub fn new(api: Arc<dyn QmApi>, cfg: ClerkConfig) -> Self {
        Clerk {
            api,
            cfg,
            state: Mutex::new(ClerkState::default()),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ClerkConfig {
        &self.cfg
    }

    /// Report a network-failed operation to the protocol observer. Whether
    /// the operation committed at the QM is unknown to this client, so the
    /// checker must stop predicting the stable tags until the next resync.
    fn note_net_failure<T>(&self, op: &str, r: CoreResult<T>) -> CoreResult<T> {
        if let Err(CoreError::Net(_)) = &r {
            rrq_check::protocol::emit_client(
                &self.cfg.client_id,
                rrq_check::protocol::ClientEvent::OpFailed { op: op.into() },
            );
        }
        r
    }

    /// `Connect(client-id)`: register with both queues and reconstruct the
    /// resynchronization triple from the stable registration tags.
    pub fn connect(&self) -> CoreResult<ConnectInfo> {
        let req_reg = self.note_net_failure(
            "connect",
            self.api
                .register(&self.cfg.request_queue, &self.cfg.client_id, true),
        )?;
        let reply_reg = self.note_net_failure(
            "connect",
            self.api
                .register(&self.cfg.reply_queue, &self.cfg.client_id, true),
        )?;

        let mut info = ConnectInfo {
            s_rid: None,
            r_rid: None,
            ckpt: None,
        };
        let mut st = self.state.lock();
        if req_reg.last_op == LastOp::Enqueue {
            if let Some(tag) = &req_reg.tag {
                if let ClerkTag::Send { rid } = decode_tag(tag)? {
                    info.s_rid = Some(rid.clone());
                    st.last_send_rid = Some(rid);
                    st.last_request_eid = req_reg.eid;
                }
            }
        }
        if reply_reg.last_op == LastOp::Dequeue {
            if let Some(tag) = &reply_reg.tag {
                if let ClerkTag::Receive { rid, ckpt } = decode_tag(tag)? {
                    info.r_rid = Some(rid);
                    info.ckpt = Some(ckpt);
                    st.last_reply_eid = reply_reg.eid;
                }
            }
        }
        st.connected = true;
        rrq_obs::counter_inc("core.clerk.connects");
        if info.s_rid.is_some() || info.r_rid.is_some() {
            // The stable tags reconstructed a prior incarnation's state —
            // this connect is a Fig 2 resynchronization.
            rrq_obs::counter_inc("core.clerk.resyncs");
        }
        note_transition(&mut st);
        rrq_check::protocol::emit_client(
            &self.cfg.client_id,
            rrq_check::protocol::ClientEvent::Connect {
                s_rid: info.s_rid.as_ref().map(|r| r.to_attr()),
                r_rid: info.r_rid.as_ref().map(|r| r.to_attr()),
            },
        );
        Ok(info)
    }

    /// `Disconnect(client-id)`: deregister from both queues. A disconnected
    /// client that reconnects starts fresh — disconnect is the client's
    /// statement that it has no outstanding work (§3).
    pub fn disconnect(&self) -> CoreResult<()> {
        self.ensure_connected()?;
        self.note_net_failure(
            "disconnect",
            self.api
                .deregister(&self.cfg.request_queue, &self.cfg.client_id),
        )?;
        self.note_net_failure(
            "disconnect",
            self.api
                .deregister(&self.cfg.reply_queue, &self.cfg.client_id),
        )?;
        *self.state.lock() = ClerkState::default();
        rrq_check::protocol::emit_client(
            &self.cfg.client_id,
            rrq_check::protocol::ClientEvent::Disconnect,
        );
        Ok(())
    }

    /// `Send(r, s-rid)`: enqueue the request, tagging the operation with the
    /// rid. In [`SendMode::Acked`], when this returns the request and rid are
    /// stably stored.
    pub fn send(&self, op: &str, body: Vec<u8>, rid: Rid) -> CoreResult<()> {
        self.ensure_connected()?;
        let request = Request::new(rid.clone(), self.cfg.reply_queue.clone(), op, body);
        self.send_request(request)
    }

    /// Send a pre-built request record (pipelines, interactive requests).
    pub fn send_request(&self, request: Request) -> CoreResult<()> {
        self.ensure_connected()?;
        let rid = request.rid.clone();
        let payload = request.encode_to_vec();
        let opts = EnqueueOptions {
            priority: 0,
            attrs: vec![
                ("rid".into(), rid.to_attr()),
                ("reply_queue".into(), request.reply_queue.clone()),
            ],
            tag: Some(encode_send_tag(&rid)),
        };
        let mut st = self.state.lock();
        match self.cfg.send_mode {
            SendMode::Acked => {
                let eid = self.note_net_failure(
                    "send",
                    self.api
                        .enqueue(&self.cfg.request_queue, &self.cfg.client_id, &payload, opts),
                )?;
                st.last_request_eid = Some(eid);
            }
            SendMode::OneWay => {
                self.note_net_failure(
                    "send",
                    self.api.enqueue_unacked(
                        &self.cfg.request_queue,
                        &self.cfg.client_id,
                        &payload,
                        opts,
                    ),
                )?;
                st.last_request_eid = None; // unknown until resync
            }
        }
        rrq_check::protocol::emit_client(
            &self.cfg.client_id,
            rrq_check::protocol::ClientEvent::Send {
                rid: rid.to_attr(),
                acked: self.cfg.send_mode == SendMode::Acked,
            },
        );
        rrq_obs::counter_inc("core.clerk.sends");
        note_transition(&mut st);
        st.last_send_rid = Some(rid);
        Ok(())
    }

    /// `Receive(ckpt)`: dequeue the next reply, tagging the operation with
    /// the previous Send's rid and the caller's checkpoint.
    pub fn receive(&self, ckpt: &[u8]) -> CoreResult<Reply> {
        self.ensure_connected()?;
        let rid = self
            .state
            .lock()
            .last_send_rid
            .clone()
            .ok_or_else(|| CoreError::Protocol("receive before any send".into()))?;
        let elem = self.note_net_failure(
            "receive",
            self.api.dequeue(
                &self.cfg.reply_queue,
                &self.cfg.client_id,
                DequeueOptions {
                    tag: Some(encode_receive_tag(&rid, ckpt)),
                    block: Some(self.cfg.receive_block),
                    ..Default::default()
                },
            ),
        )?;
        let reply =
            Reply::decode_all(&elem.payload).map_err(|e| CoreError::Malformed(e.to_string()))?;
        {
            let mut st = self.state.lock();
            st.last_reply_eid = Some(elem.eid);
            rrq_obs::counter_inc("core.clerk.receives");
            note_transition(&mut st);
        }
        rrq_check::protocol::emit_client(
            &self.cfg.client_id,
            rrq_check::protocol::ClientEvent::Receive {
                rid: reply.rid.to_attr(),
            },
        );
        Ok(reply)
    }

    /// `Rereceive()`: return the reply from the client's last `Receive` —
    /// the element is retained by the QM even after its dequeue (§4.3).
    pub fn rereceive(&self) -> CoreResult<Reply> {
        self.ensure_connected()?;
        let eid = self.state.lock().last_reply_eid.ok_or(CoreError::NoReply)?;
        let elem = self.note_net_failure("rereceive", self.api.read(eid))?;
        let reply =
            Reply::decode_all(&elem.payload).map_err(|e| CoreError::Malformed(e.to_string()))?;
        rrq_obs::counter_inc("core.clerk.rereceives");
        rrq_check::protocol::emit_client(
            &self.cfg.client_id,
            rrq_check::protocol::ClientEvent::Rereceive {
                rid: reply.rid.to_attr(),
            },
        );
        Ok(reply)
    }

    /// `Transceive` (§5): Send then block for the Receive in one call.
    pub fn transceive(&self, op: &str, body: Vec<u8>, rid: Rid, ckpt: &[u8]) -> CoreResult<Reply> {
        self.send(op, body, rid)?;
        self.receive(ckpt)
    }

    /// `Cancel-last-request` (§7): kill the element of the last request.
    /// Returns `Ok(true)` when the request was (or will be) cancelled,
    /// `Ok(false)` when it is too late.
    pub fn cancel_last_request(&self) -> CoreResult<bool> {
        self.ensure_connected()?;
        let eid = self.state.lock().last_request_eid.ok_or_else(|| {
            CoreError::Protocol("no cancellable request (none sent, or sent one-way)".into())
        })?;
        self.api.kill(eid)
    }

    /// Eid of the last request element (for tests and sagas).
    pub fn last_request_eid(&self) -> Option<Eid> {
        self.state.lock().last_request_eid
    }

    fn ensure_connected(&self) -> CoreResult<()> {
        if self.state.lock().connected {
            Ok(())
        } else {
            Err(CoreError::NotConnected)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::LocalQm;
    use rrq_qm::repository::Repository;

    fn setup() -> (Arc<Repository>, Clerk) {
        let repo = Arc::new(Repository::create("clerk").unwrap());
        repo.create_queue_defaults("req").unwrap();
        repo.create_queue_defaults("reply.c1").unwrap();
        let api = Arc::new(LocalQm::new(Arc::clone(&repo)));
        let mut cfg = ClerkConfig::new("c1", "req");
        cfg.receive_block = Duration::from_millis(200);
        (repo, Clerk::new(api, cfg))
    }

    #[test]
    fn operations_require_connect() {
        let (_repo, clerk) = setup();
        assert!(matches!(
            clerk.send("op", vec![], Rid::new("c1", 1)),
            Err(CoreError::NotConnected)
        ));
        assert!(matches!(clerk.receive(b""), Err(CoreError::NotConnected)));
        assert!(matches!(clerk.rereceive(), Err(CoreError::NotConnected)));
    }

    #[test]
    fn fresh_connect_reports_nils() {
        let (_repo, clerk) = setup();
        let info = clerk.connect().unwrap();
        assert_eq!(info.s_rid, None);
        assert_eq!(info.r_rid, None);
        assert_eq!(info.ckpt, None);
    }

    #[test]
    fn send_is_stably_stored_and_connect_sees_it() {
        let (repo, clerk) = setup();
        clerk.connect().unwrap();
        clerk
            .send("noop", b"body".to_vec(), Rid::new("c1", 1))
            .unwrap();
        assert_eq!(repo.qm().depth("req").unwrap(), 1);

        // A second clerk instance (the restarted client process) reconnects
        // and learns the rid of the outstanding request.
        let api = Arc::new(LocalQm::new(Arc::clone(&repo)));
        let mut cfg = ClerkConfig::new("c1", "req");
        cfg.receive_block = Duration::from_millis(100);
        let clerk2 = Clerk::new(api, cfg);
        let info = clerk2.connect().unwrap();
        assert_eq!(info.s_rid, Some(Rid::new("c1", 1)));
        assert_eq!(info.r_rid, None);
    }

    #[test]
    fn receive_before_send_is_protocol_error() {
        let (_repo, clerk) = setup();
        clerk.connect().unwrap();
        assert!(matches!(clerk.receive(b""), Err(CoreError::Protocol(_))));
    }

    #[test]
    fn cancel_last_request_kills_queued_element() {
        let (repo, clerk) = setup();
        clerk.connect().unwrap();
        clerk.send("noop", vec![], Rid::new("c1", 1)).unwrap();
        assert!(clerk.cancel_last_request().unwrap());
        assert_eq!(repo.qm().depth("req").unwrap(), 0);
    }

    #[test]
    fn disconnect_then_reconnect_is_fresh() {
        let (_repo, clerk) = setup();
        clerk.connect().unwrap();
        clerk.send("noop", vec![], Rid::new("c1", 1)).unwrap();
        clerk.disconnect().unwrap();
        let info = clerk.connect().unwrap();
        assert_eq!(info.s_rid, None, "disconnect forgot the session");
    }
}
