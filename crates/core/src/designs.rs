//! The §2 design comparison: how should a client's
//! {send request, receive reply, process reply} sequence be transacted?
//!
//! The paper walks through three designs:
//!
//! 1. **One transaction** — everything, including reply processing, inside
//!    one transaction. Correct, but "processing the reply may be slow, which
//!    creates contention for resources (e.g., locks) that the server must
//!    hold until the transaction commits".
//! 2. **Two transactions** — only {send, receive} inside the transaction;
//!    reply processing outside (risking a lost reply on a crash between).
//! 3. **Three transactions + two recoverable queues** — the paper's design:
//!    submit, process, and reply-handling each commit separately; no lock is
//!    ever held across user think time, at the cost of queue overhead.
//!
//! These runners execute the same logical workload (debit an account,
//! prepare a reply, "process" it for a think-time) under each design and
//! report throughput — experiment E3 regenerates the paper's qualitative
//! claim: design 1 collapses under contention × think time, design 3 stays
//! flat and pays only a constant queueing overhead.

use crate::error::CoreResult;
use crate::request::Request;
use crate::rid::Rid;
use rrq_qm::ops::{DequeueOptions, EnqueueOptions, QueueHandle};
use rrq_qm::repository::Repository;
use rrq_qm::QmError;
use rrq_storage::codec::{Decode, Encode};
use rrq_txn::{LockKey, TxnError};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Lock namespace for the shared account table.
pub const ACCOUNT_NS: u32 = 42;

/// Workload parameters shared by the three designs.
#[derive(Debug, Clone)]
pub struct DesignWorkload {
    /// Number of bank accounts (smaller = more contention).
    pub accounts: usize,
    /// Concurrent clients.
    pub clients: usize,
    /// Requests per client.
    pub requests_per_client: usize,
    /// Simulated reply-processing (user think) time.
    pub think: Duration,
    /// RNG seed for account selection.
    pub seed: u64,
}

/// What a design run measured.
#[derive(Debug, Clone, Copy)]
pub struct DesignMetrics {
    /// Requests completed.
    pub completed: u64,
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// Requests per second.
    pub throughput: f64,
    /// Lock timeouts + deadlocks encountered (work was retried).
    pub lock_conflicts: u64,
}

fn account_key(i: usize) -> Vec<u8> {
    format!("acct/{i:06}").into_bytes()
}

/// Create `n` accounts with balance 1_000_000.
pub fn seed_accounts(repo: &Repository, n: usize) -> CoreResult<()> {
    let store = repo.store();
    store.begin(u64::MAX - 7)?;
    for i in 0..n {
        store.put(u64::MAX - 7, &account_key(i), &1_000_000i64.to_le_bytes())?;
    }
    store.commit(u64::MAX - 7)?;
    Ok(())
}

/// Sum of all account balances (conservation check).
pub fn total_balance(repo: &Repository, n: usize) -> CoreResult<i64> {
    let store = repo.store();
    let mut sum = 0i64;
    for i in 0..n {
        if let Some(raw) = store.get(None, &account_key(i))? {
            sum += i64::from_le_bytes(raw.try_into().unwrap_or([0; 8]));
        }
    }
    Ok(sum)
}

fn debit(repo: &Repository, txn: u64, account: usize, amount: i64) -> CoreResult<()> {
    let key = account_key(account);
    let bal = repo
        .store()
        .get(Some(txn), &key)?
        .map(|raw| i64::from_le_bytes(raw.try_into().unwrap_or([0; 8])))
        .unwrap_or(0);
    repo.store().put(txn, &key, &(bal - amount).to_le_bytes())?;
    Ok(())
}

/// A simple deterministic PRNG (splitmix64) to avoid coupling the run to
/// the `rand` crate's thread RNG.
struct Mix(u64);
impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Design 1: {update, build reply, process reply} in ONE transaction — the
/// account lock is held through the think time.
pub fn run_one_txn(repo: &Arc<Repository>, w: &DesignWorkload) -> CoreResult<DesignMetrics> {
    run_direct(repo, w, true)
}

/// Design 2: the transaction covers only the update; reply processing
/// happens after commit, with no locks held.
pub fn run_two_txn(repo: &Arc<Repository>, w: &DesignWorkload) -> CoreResult<DesignMetrics> {
    run_direct(repo, w, false)
}

fn run_direct(
    repo: &Arc<Repository>,
    w: &DesignWorkload,
    think_inside_txn: bool,
) -> CoreResult<DesignMetrics> {
    let conflicts = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let mut handles = Vec::new();
    for c in 0..w.clients {
        let repo = Arc::clone(repo);
        let w = w.clone();
        let conflicts = Arc::clone(&conflicts);
        handles.push(crate::threads::spawn_named(
            format!("rrq-d1c{c}"),
            move || -> CoreResult<u64> {
                let mut rng = Mix(w.seed ^ (c as u64) << 32);
                let mut done = 0u64;
                for _ in 0..w.requests_per_client {
                    let account = (rng.next() as usize) % w.accounts;
                    loop {
                        let txn = repo.begin()?;
                        let lk = LockKey::new(ACCOUNT_NS, account_key(account));
                        match txn.lock_exclusive(&lk) {
                            Ok(()) => {}
                            Err(TxnError::Deadlock { .. }) | Err(TxnError::LockTimeout) => {
                                conflicts.fetch_add(1, Ordering::AcqRel);
                                txn.abort()?;
                                continue;
                            }
                            Err(e) => return Err(e.into()),
                        }
                        debit(&repo, txn.id().raw(), account, 1)?;
                        if think_inside_txn && !w.think.is_zero() {
                            std::thread::sleep(w.think); // reply processed in-txn
                        }
                        txn.commit()?;
                        break;
                    }
                    if !think_inside_txn && !w.think.is_zero() {
                        std::thread::sleep(w.think); // reply processed post-commit
                    }
                    done += 1;
                }
                Ok(done)
            },
        ));
    }
    let mut completed = 0;
    for h in handles {
        completed += h.join().expect("client thread panicked")?;
    }
    let elapsed = start.elapsed();
    Ok(DesignMetrics {
        completed,
        elapsed,
        throughput: completed as f64 / elapsed.as_secs_f64().max(1e-9),
        lock_conflicts: conflicts.load(Ordering::Acquire),
    })
}

/// Design 3: the paper's queued architecture — clients enqueue requests,
/// a server pool processes them (one transaction each, no think time under
/// locks), clients dequeue replies and think outside any transaction.
pub fn run_queued(
    repo: &Arc<Repository>,
    w: &DesignWorkload,
    servers: usize,
) -> CoreResult<DesignMetrics> {
    // Queues for this run.
    let req_q = "design3.req";
    let _ = repo.create_queue_defaults(req_q);
    for c in 0..w.clients {
        let _ = repo.create_queue_defaults(&format!("design3.reply.{c}"));
    }

    // Server pool.
    let stop = Arc::new(AtomicBool::new(false));
    let conflicts = Arc::new(AtomicU64::new(0));
    let mut server_handles = Vec::new();
    for s in 0..servers {
        let repo = Arc::clone(repo);
        let stop = Arc::clone(&stop);
        let conflicts = Arc::clone(&conflicts);
        server_handles.push(crate::threads::spawn_named(
            format!("rrq-d3s{s}"),
            move || -> CoreResult<()> {
                let (h, _) = repo.qm().register(req_q, &format!("d3s{s}"), false)?;
                while !stop.load(Ordering::Acquire) {
                    let txn = repo.begin()?;
                    let elem = match repo.qm().dequeue(
                        txn.id().raw(),
                        &h,
                        DequeueOptions {
                            block: Some(Duration::from_millis(50)),
                            ..Default::default()
                        },
                    ) {
                        Ok(e) => e,
                        Err(QmError::Empty(_)) => {
                            txn.abort()?;
                            continue;
                        }
                        Err(e) => {
                            let _ = txn.abort();
                            return Err(e.into());
                        }
                    };
                    let req = Request::decode_all(&elem.payload)
                        .map_err(crate::error::CoreError::Storage)?;
                    let account: usize = String::from_utf8_lossy(&req.body).parse().unwrap_or(0);
                    let lk = LockKey::new(ACCOUNT_NS, account_key(account));
                    match txn.lock_exclusive(&lk) {
                        Ok(()) => {}
                        Err(TxnError::Deadlock { .. }) | Err(TxnError::LockTimeout) => {
                            conflicts.fetch_add(1, Ordering::AcqRel);
                            txn.abort()?; // request returns to the queue
                            continue;
                        }
                        Err(e) => return Err(e.into()),
                    }
                    debit(&repo, txn.id().raw(), account, 1)?;
                    let reply = crate::request::Reply::ok(req.rid.clone(), b"done".to_vec());
                    let rh = QueueHandle {
                        queue: req.reply_queue.clone(),
                        registrant: format!("d3s{s}"),
                    };
                    repo.qm().enqueue(
                        txn.id().raw(),
                        &rh,
                        &reply.encode_to_vec(),
                        EnqueueOptions::default(),
                    )?;
                    txn.commit()?;
                }
                Ok(())
            },
        ));
    }

    // Clients.
    let start = Instant::now();
    let mut client_handles = Vec::new();
    for c in 0..w.clients {
        let repo = Arc::clone(repo);
        let w = w.clone();
        client_handles.push(crate::threads::spawn_named(
            format!("rrq-d3c{c}"),
            move || -> CoreResult<u64> {
                let reply_q = format!("design3.reply.{c}");
                let (req_h, _) = repo.qm().register(req_q, &format!("d3c{c}"), false)?;
                let (rep_h, _) = repo.qm().register(&reply_q, &format!("d3c{c}"), false)?;
                let mut rng = Mix(w.seed ^ (c as u64) << 32);
                let mut done = 0u64;
                for i in 0..w.requests_per_client {
                    let account = (rng.next() as usize) % w.accounts;
                    let rid = Rid::new(format!("d3c{c}"), i as u64 + 1);
                    let req = Request::new(
                        rid,
                        reply_q.clone(),
                        "debit",
                        account.to_string().into_bytes(),
                    );
                    // Txn 1: submit.
                    repo.autocommit(|t| {
                        repo.qm().enqueue(
                            t.id().raw(),
                            &req_h,
                            &req.encode_to_vec(),
                            EnqueueOptions::default(),
                        )
                    })?;
                    // Txn 3: receive the reply…
                    repo.autocommit(|t| {
                        repo.qm().dequeue(
                            t.id().raw(),
                            &rep_h,
                            DequeueOptions {
                                block: Some(Duration::from_secs(30)),
                                ..Default::default()
                            },
                        )
                    })?;
                    // …and process it with no transaction open.
                    if !w.think.is_zero() {
                        std::thread::sleep(w.think);
                    }
                    done += 1;
                }
                Ok(done)
            },
        ));
    }

    let mut completed = 0;
    for h in client_handles {
        completed += h.join().expect("client thread panicked")?;
    }
    let elapsed = start.elapsed();
    stop.store(true, Ordering::Release);
    for h in server_handles {
        h.join().expect("server thread panicked")?;
    }
    Ok(DesignMetrics {
        completed,
        elapsed,
        throughput: completed as f64 / elapsed.as_secs_f64().max(1e-9),
        lock_conflicts: conflicts.load(Ordering::Acquire),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(think_ms: u64) -> DesignWorkload {
        DesignWorkload {
            accounts: 2, // hot
            clients: 4,
            requests_per_client: 10,
            think: Duration::from_millis(think_ms),
            seed: 7,
        }
    }

    #[test]
    fn all_designs_complete_and_conserve_money() {
        for (name, runner) in [
            (
                "one",
                run_one_txn as fn(&Arc<Repository>, &DesignWorkload) -> CoreResult<DesignMetrics>,
            ),
            ("two", run_two_txn),
        ] {
            let repo = Arc::new(Repository::create(format!("design-{name}")).unwrap());
            let w = workload(0);
            seed_accounts(&repo, w.accounts).unwrap();
            let m = runner(&repo, &w).unwrap();
            assert_eq!(m.completed, 40, "{name}");
            let expect = 1_000_000 * w.accounts as i64 - 40;
            assert_eq!(total_balance(&repo, w.accounts).unwrap(), expect, "{name}");
        }
        let repo = Arc::new(Repository::create("design-q").unwrap());
        let w = workload(0);
        seed_accounts(&repo, w.accounts).unwrap();
        let m = run_queued(&repo, &w, 2).unwrap();
        assert_eq!(m.completed, 40);
        let expect = 1_000_000 * w.accounts as i64 - 40;
        assert_eq!(total_balance(&repo, w.accounts).unwrap(), expect);
    }

    #[test]
    fn think_time_under_locks_hurts_design_one_most() {
        // Qualitative shape check (the real sweep is bench E3): with hot
        // accounts and think time, design 1 must be measurably slower than
        // design 2 (locks released before thinking).
        let w = DesignWorkload {
            accounts: 1,
            clients: 4,
            requests_per_client: 5,
            think: Duration::from_millis(10),
            seed: 1,
        };
        let repo1 = Arc::new(Repository::create("d1").unwrap());
        seed_accounts(&repo1, 1).unwrap();
        let m1 = run_one_txn(&repo1, &w).unwrap();
        let repo2 = Arc::new(Repository::create("d2").unwrap());
        seed_accounts(&repo2, 1).unwrap();
        let m2 = run_two_txn(&repo2, &w).unwrap();
        assert!(
            m1.elapsed > m2.elapsed,
            "one-txn {:?} should exceed two-txn {:?}",
            m1.elapsed,
            m2.elapsed
        );
    }
}
