//! Request scheduling (§10).
//!
//! "Requests may be scheduled for the server by priority, request contents
//! (highest dollar amount first), submission time, etc. The server itself is
//! subject to scheduling policy, which determines when it should run and how
//! many instances (threads) it should run. The request scheduler is a major
//! component of most TP monitors, and usually requires a QM with
//! content-based retrieval capability."
//!
//! Two pieces here:
//!
//! * [`SchedulingPolicy`] + [`scheduled_dequeue`] — pick the next request by
//!   priority, submission time, or a content attribute (the "highest dollar
//!   amount first" example), using the QM's content-based retrieval.
//! * [`PoolController`] — elastic server instances driven by queue depth.

use crate::error::CoreResult;
use crate::server::{Handler, Server, ServerConfig};
use rrq_qm::element::Element;
use rrq_qm::ops::{DequeueOptions, QueueHandle, QueueManager};
use rrq_qm::repository::Repository;
use rrq_qm::{Predicate, QmError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// How the next request is chosen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedulingPolicy {
    /// Queue order (priority bands, FIFO within) — the QM default.
    QueueOrder,
    /// Highest numeric value of a content attribute first (§10's "highest
    /// dollar amount first").
    HighestAttr(String),
    /// Oldest element first regardless of priority band.
    OldestFirst,
}

/// Dequeue the next element per `policy`, within transaction `txn`.
///
/// Content policies scan the committed queue to choose a target, then
/// dequeue it by a content predicate; a concurrent consumer may win the
/// race, in which case the choice is retried (bounded).
pub fn scheduled_dequeue(
    qm: &QueueManager,
    txn: u64,
    handle: &QueueHandle,
    policy: &SchedulingPolicy,
) -> Result<Element, QmError> {
    match policy {
        SchedulingPolicy::QueueOrder => qm.dequeue(txn, handle, DequeueOptions::default()),
        SchedulingPolicy::HighestAttr(attr) => {
            for _ in 0..16 {
                let candidates = qm.query(&handle.queue, &Predicate::True)?;
                let best = candidates
                    .iter()
                    .filter_map(|e| {
                        e.attr(attr)
                            .and_then(|v| v.parse::<i64>().ok())
                            .map(|v| (v, e))
                    })
                    .max_by_key(|(v, _)| *v);
                let Some((value, _)) = best else {
                    return Err(QmError::Empty(handle.queue.clone()));
                };
                // Dequeue any element carrying the winning value (ties are
                // broken by queue order).
                match qm.dequeue(
                    txn,
                    handle,
                    DequeueOptions {
                        predicate: Some(Predicate::AttrGe(attr.clone(), value)),
                        ..Default::default()
                    },
                ) {
                    Ok(e) => return Ok(e),
                    Err(QmError::Empty(_)) => continue, // lost the race
                    Err(e) => return Err(e),
                }
            }
            Err(QmError::Empty(handle.queue.clone()))
        }
        SchedulingPolicy::OldestFirst => {
            for _ in 0..16 {
                let candidates = qm.query(&handle.queue, &Predicate::True)?;
                let Some(oldest) = candidates.iter().min_by_key(|e| e.seq) else {
                    return Err(QmError::Empty(handle.queue.clone()));
                };
                let rid = oldest.attr("rid").map(str::to_string);
                let pred = match rid {
                    Some(r) => Predicate::AttrEq("rid".into(), r),
                    None => Predicate::True,
                };
                match qm.dequeue(
                    txn,
                    handle,
                    DequeueOptions {
                        predicate: Some(pred),
                        ..Default::default()
                    },
                ) {
                    Ok(e) => return Ok(e),
                    Err(QmError::Empty(_)) => continue,
                    Err(e) => return Err(e),
                }
            }
            Err(QmError::Empty(handle.queue.clone()))
        }
    }
}

/// Elastic server pool: grows while the queue backlog exceeds
/// `scale_up_depth`, shrinks to `min` when the queue is empty.
pub struct PoolController {
    repo: Arc<Repository>,
    queue: String,
    handler: Handler,
    min: usize,
    max: usize,
    scale_up_depth: usize,
    instances: Vec<(Arc<AtomicBool>, JoinHandle<()>)>,
    spawned_total: usize,
}

impl PoolController {
    /// Build a controller (no servers started yet; call
    /// [`PoolController::tick`]).
    pub fn new(
        repo: Arc<Repository>,
        queue: impl Into<String>,
        handler: Handler,
        min: usize,
        max: usize,
        scale_up_depth: usize,
    ) -> Self {
        PoolController {
            repo,
            queue: queue.into(),
            handler,
            min,
            max: max.max(min),
            scale_up_depth: scale_up_depth.max(1),
            instances: Vec::new(),
            spawned_total: 0,
        }
    }

    /// Current number of running instances.
    pub fn instances(&self) -> usize {
        self.instances.len()
    }

    /// Total instances ever spawned (diagnostics).
    pub fn spawned_total(&self) -> usize {
        self.spawned_total
    }

    /// Observe the backlog and scale. Returns the instance count after the
    /// adjustment.
    pub fn tick(&mut self) -> CoreResult<usize> {
        let depth = self.repo.qm().depth(&self.queue)?;
        let want = if depth >= self.scale_up_depth {
            (self.instances.len() + 1).min(self.max)
        } else if depth == 0 {
            self.min
        } else {
            self.instances.len().clamp(self.min, self.max)
        };
        while self.instances.len() < want.max(self.min) {
            let cfg = ServerConfig::new(
                format!("pool-{}-{}", self.queue, self.spawned_total),
                self.queue.clone(),
            );
            let server = Server::new(Arc::clone(&self.repo), cfg, Arc::clone(&self.handler))?;
            let stop = Arc::new(AtomicBool::new(false));
            let handle = server.spawn(Arc::clone(&stop));
            self.instances.push((stop, handle));
            self.spawned_total += 1;
        }
        while self.instances.len() > want {
            if let Some((stop, handle)) = self.instances.pop() {
                stop.store(true, Ordering::Release);
                let _ = handle.join();
            }
        }
        Ok(self.instances.len())
    }

    /// Stop every instance.
    pub fn shutdown(&mut self) {
        for (stop, _) in &self.instances {
            stop.store(true, Ordering::Release);
        }
        for (_, handle) in self.instances.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for PoolController {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrq_qm::ops::EnqueueOptions;
    use std::time::{Duration, Instant};

    fn enqueue_with_amount(repo: &Repository, h: &QueueHandle, amount: i64, rid: &str) {
        repo.autocommit(|t| {
            repo.qm().enqueue(
                t.id().raw(),
                h,
                rid.as_bytes(),
                EnqueueOptions {
                    attrs: vec![
                        ("amount".into(), amount.to_string()),
                        ("rid".into(), rid.into()),
                    ],
                    ..Default::default()
                },
            )
        })
        .unwrap();
    }

    #[test]
    fn highest_attr_policy_picks_biggest_dollar_amount() {
        let repo = Repository::create("sched1").unwrap();
        repo.create_queue_defaults("q").unwrap();
        let (h, _) = repo.qm().register("q", "s", false).unwrap();
        enqueue_with_amount(&repo, &h, 100, "small");
        enqueue_with_amount(&repo, &h, 90_000, "big");
        enqueue_with_amount(&repo, &h, 5_000, "mid");

        let policy = SchedulingPolicy::HighestAttr("amount".into());
        let order: Vec<Vec<u8>> = (0..3)
            .map(|_| {
                repo.autocommit(|t| scheduled_dequeue(repo.qm(), t.id().raw(), &h, &policy))
                    .unwrap()
                    .payload
            })
            .collect();
        assert_eq!(
            order,
            vec![b"big".to_vec(), b"mid".to_vec(), b"small".to_vec()]
        );
    }

    #[test]
    fn oldest_first_ignores_priority_bands() {
        let repo = Repository::create("sched2").unwrap();
        repo.create_queue_defaults("q").unwrap();
        let (h, _) = repo.qm().register("q", "s", false).unwrap();
        // Low-priority element first, then a high-priority one.
        repo.autocommit(|t| {
            repo.qm().enqueue(
                t.id().raw(),
                &h,
                b"old-low",
                EnqueueOptions {
                    priority: 0,
                    attrs: vec![("rid".into(), "a".into())],
                    ..Default::default()
                },
            )
        })
        .unwrap();
        repo.autocommit(|t| {
            repo.qm().enqueue(
                t.id().raw(),
                &h,
                b"new-high",
                EnqueueOptions {
                    priority: 9,
                    attrs: vec![("rid".into(), "b".into())],
                    ..Default::default()
                },
            )
        })
        .unwrap();
        // Queue order would take "new-high"; OldestFirst takes "old-low".
        let e = repo
            .autocommit(|t| {
                scheduled_dequeue(repo.qm(), t.id().raw(), &h, &SchedulingPolicy::OldestFirst)
            })
            .unwrap();
        assert_eq!(e.payload, b"old-low");
    }

    #[test]
    fn empty_queue_reports_empty_for_all_policies() {
        let repo = Repository::create("sched3").unwrap();
        repo.create_queue_defaults("q").unwrap();
        let (h, _) = repo.qm().register("q", "s", false).unwrap();
        for policy in [
            SchedulingPolicy::QueueOrder,
            SchedulingPolicy::HighestAttr("amount".into()),
            SchedulingPolicy::OldestFirst,
        ] {
            let r = repo.autocommit(|t| scheduled_dequeue(repo.qm(), t.id().raw(), &h, &policy));
            assert!(matches!(r, Err(QmError::Empty(_))), "{policy:?}");
        }
    }

    #[test]
    fn pool_controller_scales_with_backlog() {
        let repo = Arc::new(Repository::create("sched4").unwrap());
        repo.create_queue_defaults("q").unwrap();
        repo.create_queue_defaults("reply.c").unwrap();
        let handler: Handler = Arc::new(|_ctx, req| {
            std::thread::sleep(Duration::from_millis(3));
            Ok(crate::server::HandlerOutcome::Reply(req.body.clone()))
        });
        let mut pool = PoolController::new(Arc::clone(&repo), "q", handler, 1, 4, 5);
        assert_eq!(pool.tick().unwrap(), 1, "min instances on idle");

        // Build a backlog; ticks scale up to max.
        let (h, _) = repo.qm().register("q", "c", false).unwrap();
        for i in 0..60u64 {
            let req = crate::request::Request::new(
                crate::rid::Rid::new("c", i + 1),
                "reply.c",
                "op",
                vec![],
            );
            use rrq_storage::codec::Encode;
            repo.autocommit(|t| {
                repo.qm().enqueue(
                    t.id().raw(),
                    &h,
                    &req.encode_to_vec(),
                    EnqueueOptions::default(),
                )
            })
            .unwrap();
        }
        let mut n = 0;
        for _ in 0..4 {
            n = pool.tick().unwrap();
        }
        assert!(n >= 3, "scaled up under backlog, got {n}");

        // Drain; ticks scale back down to min.
        let deadline = Instant::now() + Duration::from_secs(30);
        while repo.qm().depth("q").unwrap() > 0 {
            assert!(Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(20));
        }
        std::thread::sleep(Duration::from_millis(50));
        let n = pool.tick().unwrap();
        assert_eq!(n, 1, "scaled back to min when idle");
        pool.shutdown();
    }
}
