//! Encoding of the clerk's operation tags.
//!
//! §5 maps the Client Model onto tags: `Send` tags its Enqueue with the rid;
//! `Receive` tags its Dequeue with "ckpt and the rid of the previous Send".
//! The QM stores the tag opaquely; this module defines the clerk's private
//! encoding so connect-time resynchronization can read it back.

use crate::error::{CoreError, CoreResult};
use crate::rid::Rid;
use rrq_storage::codec::{put, Decode, Encode, Reader};

/// Tag placed on the `Send` enqueue: just the rid.
pub fn encode_send_tag(rid: &Rid) -> Vec<u8> {
    let mut buf = vec![b'S'];
    rid.encode(&mut buf);
    buf
}

/// Tag placed on the `Receive` dequeue: the rid of the previous Send plus
/// the client's checkpoint bytes.
pub fn encode_receive_tag(rid: &Rid, ckpt: &[u8]) -> Vec<u8> {
    let mut buf = vec![b'R'];
    rid.encode(&mut buf);
    put::bytes(&mut buf, ckpt);
    buf
}

/// A decoded clerk tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClerkTag {
    /// From a Send (enqueue) operation.
    Send {
        /// The request id sent.
        rid: Rid,
    },
    /// From a Receive (dequeue) operation.
    Receive {
        /// The rid of the request whose reply was received.
        rid: Rid,
        /// The checkpoint the client supplied with the Receive.
        ckpt: Vec<u8>,
    },
}

/// Decode a clerk tag (either kind).
pub fn decode_tag(raw: &[u8]) -> CoreResult<ClerkTag> {
    if raw.is_empty() {
        return Err(CoreError::Malformed("empty clerk tag".into()));
    }
    let mut r = Reader::new(&raw[1..]);
    match raw[0] {
        b'S' => {
            let rid = Rid::decode(&mut r).map_err(|e| CoreError::Malformed(e.to_string()))?;
            Ok(ClerkTag::Send { rid })
        }
        b'R' => {
            let rid = Rid::decode(&mut r).map_err(|e| CoreError::Malformed(e.to_string()))?;
            let ckpt = r.bytes().map_err(|e| CoreError::Malformed(e.to_string()))?;
            Ok(ClerkTag::Receive { rid, ckpt })
        }
        b => Err(CoreError::Malformed(format!("unknown tag kind {b:#x}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_tag_roundtrip() {
        let rid = Rid::new("c1", 9);
        let tag = encode_send_tag(&rid);
        assert_eq!(decode_tag(&tag).unwrap(), ClerkTag::Send { rid });
    }

    #[test]
    fn receive_tag_roundtrip() {
        let rid = Rid::new("c1", 9);
        let tag = encode_receive_tag(&rid, b"ticket=42");
        assert_eq!(
            decode_tag(&tag).unwrap(),
            ClerkTag::Receive {
                rid,
                ckpt: b"ticket=42".to_vec()
            }
        );
    }

    #[test]
    fn garbage_rejected() {
        assert!(decode_tag(&[]).is_err());
        assert!(decode_tag(b"Xjunk").is_err());
        assert!(decode_tag(b"S").is_err());
    }
}
