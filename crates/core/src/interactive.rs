//! Pseudo-conversational interactive requests (§8.1–8.2, Fig 7).
//!
//! The interactive request is mapped onto a serial multi-transaction
//! request: "each intermediate output is a reply, and each intermediate
//! input is a request for the next transaction in the sequence". The client
//! cycles between *Req-Sent* and *Intermediate-I/O* (Fig 7); because each
//! boundary is a committed transaction, "each time the client receives an
//! intermediate output, it knows that its previous input … was reliably
//! captured, and will not need to be re-sent in the event of a failure".

use crate::api::QmApi;
use crate::error::{CoreError, CoreResult};
use crate::request::{Reply, ReplyStatus, Request};
use crate::rid::Rid;
use rrq_qm::ops::{DequeueOptions, EnqueueOptions};
use rrq_storage::codec::{put, Decode, Encode, Reader};
use std::sync::Arc;
use std::time::Duration;

/// Encode an intermediate-output reply body: where the next input goes, the
/// prompt shown to the user, and the conversation state the client must echo
/// (the IMS "scratch pad" riding in the message, §9).
pub fn encode_intermediate(next_queue: &str, prompt: &[u8], state: &[u8]) -> Vec<u8> {
    let mut buf = Vec::new();
    put::string(&mut buf, next_queue);
    put::bytes(&mut buf, prompt);
    put::bytes(&mut buf, state);
    buf
}

/// Decode an intermediate-output reply body.
pub fn decode_intermediate(raw: &[u8]) -> CoreResult<(String, Vec<u8>, Vec<u8>)> {
    let m = |e: rrq_storage::StorageError| CoreError::Malformed(e.to_string());
    let mut r = Reader::new(raw);
    let next_queue = r.string().map_err(m)?;
    let prompt = r.bytes().map_err(m)?;
    let state = r.bytes().map_err(m)?;
    Ok((next_queue, prompt, state))
}

/// Summary of one interactive exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConversationOutcome {
    /// The final reply.
    pub reply: Reply,
    /// Number of intermediate rounds (output+input pairs).
    pub rounds: usize,
    /// Prompts seen, in order.
    pub prompts: Vec<Vec<u8>>,
}

/// Client driver for pseudo-conversational requests.
pub struct InteractiveClient {
    api: Arc<dyn QmApi>,
    client_id: String,
    reply_queue: String,
    receive_block: Duration,
}

impl InteractiveClient {
    /// Build a driver. `reply_queue` must exist on the QM.
    pub fn new(
        api: Arc<dyn QmApi>,
        client_id: impl Into<String>,
        reply_queue: impl Into<String>,
    ) -> Self {
        InteractiveClient {
            api,
            client_id: client_id.into(),
            reply_queue: reply_queue.into(),
            receive_block: Duration::from_secs(10),
        }
    }

    /// Change the per-round receive window.
    pub fn set_receive_block(&mut self, d: Duration) {
        self.receive_block = d;
    }

    /// Run an interactive request to completion: send the initial request to
    /// `entry_queue`, then answer each intermediate output with
    /// `input_fn(prompt)` until the final reply arrives.
    pub fn run(
        &self,
        entry_queue: &str,
        rid: Rid,
        op: &str,
        initial_body: Vec<u8>,
        mut input_fn: impl FnMut(&[u8]) -> Vec<u8>,
    ) -> CoreResult<ConversationOutcome> {
        self.api
            .register(&self.reply_queue, &self.client_id, true)?;
        self.api.register(entry_queue, &self.client_id, true)?;
        let req = Request::new(rid.clone(), self.reply_queue.clone(), op, initial_body);
        self.send_to(entry_queue, &req)?;

        let mut rounds = 0usize;
        let mut prompts = Vec::new();
        loop {
            let elem = self.api.dequeue(
                &self.reply_queue,
                &self.client_id,
                DequeueOptions {
                    block: Some(self.receive_block),
                    ..Default::default()
                },
            )?;
            let reply = Reply::decode_all(&elem.payload)
                .map_err(|e| CoreError::Malformed(e.to_string()))?;
            if reply.rid != rid {
                return Err(CoreError::Protocol(format!(
                    "request-reply mismatch: expected {rid}, got {}",
                    reply.rid
                )));
            }
            match reply.status {
                ReplyStatus::Intermediate => {
                    let (next_queue, prompt, state) = decode_intermediate(&reply.body)?;
                    // Receiving this output proves the previous input was
                    // reliably captured (it committed with the stage txn).
                    let input = input_fn(&prompt);
                    prompts.push(prompt);
                    rounds += 1;
                    self.api.register(&next_queue, &self.client_id, true)?;
                    let mut cont =
                        Request::new(rid.clone(), self.reply_queue.clone(), "continue", input);
                    cont.state = state;
                    self.send_to(&next_queue, &cont)?;
                }
                _ => {
                    return Ok(ConversationOutcome {
                        reply,
                        rounds,
                        prompts,
                    })
                }
            }
        }
    }

    fn send_to(&self, queue: &str, req: &Request) -> CoreResult<()> {
        let opts = EnqueueOptions {
            priority: 0,
            attrs: vec![
                ("rid".into(), req.rid.to_attr()),
                ("reply_queue".into(), req.reply_queue.clone()),
            ],
            tag: Some(crate::tagcodec::encode_send_tag(&req.rid)),
        };
        self.api
            .enqueue(queue, &self.client_id, &req.encode_to_vec(), opts)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intermediate_codec_roundtrip() {
        let raw = encode_intermediate("stage-2", b"Enter PIN:", b"acct=7");
        let (q, p, s) = decode_intermediate(&raw).unwrap();
        assert_eq!(q, "stage-2");
        assert_eq!(p, b"Enter PIN:");
        assert_eq!(s, b"acct=7");
    }

    #[test]
    fn intermediate_codec_rejects_garbage() {
        assert!(decode_intermediate(b"\xFF\xFF\xFF\xFF").is_err());
    }
}
