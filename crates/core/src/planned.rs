//! Planned (epoch-batched, deterministic) request execution — the
//! `ExecMode::Planned` alternative to the §5 dequeue loop.
//!
//! The locked baseline lets every server race on the shared request queue
//! and arbitrates with 2PL: the element try-lock picks dequeue winners and
//! the account locks serialize conflicting handlers. Under high contention
//! both degenerate — servers queue on the same element locks and the lock
//! manager's stripes become the hot spot. Planned execution (after QueCC,
//! PAPERS.md) moves the arbitration off the hot path entirely:
//!
//! 1. **Plan.** A coordinator snapshots a batch of committed ready elements
//!    (the *epoch*), peeks each request's payload, and asks an [`AccessFn`]
//!    which lock keys the handler will touch. The batch becomes an
//!    [`EpochPlan`]: per-key FIFO queues in arrival-priority order.
//! 2. **Execute.** Workers pull any task whose index heads *all* of its key
//!    queues and run it **lock-free**: [`rrq_qm::ops::QueueManager::dequeue_planned`]
//!    skips the element try-lock (the plan already assigned the element to
//!    exactly one transaction) and the transaction's plan scope degrades
//!    `lock_exclusive`/`lock_shared` to membership checks. Results are
//!    handed down each key queue speculatively: a commit is visible to the
//!    next task on the key immediately, while durability and the
//!    ready-index/notification mirror are deferred to the epoch close.
//! 3. **Commit.** The epoch close forces the home partition's WAL once for
//!    the whole batch ([`rrq_storage::kv::KvStore::force_wal`]) and then
//!    applies the buffered mirrors ([`rrq_qm::ops::QueueManager::apply_epoch`]),
//!    at which point clerk wakeups fire — a client can only ever observe a
//!    durable reply.
//!
//! **Misspeculation.** A handler that touches an undeclared key gets
//! [`rrq_txn::TxnError::OutsidePlan`], aborts, and the executor *replans*
//! it: the task re-enters the epoch at the back of its (widened) key queues.
//! Any other in-epoch abort (handler `Abort`, cancel poison) counts as a
//! misspeculation too; the element is redisposed by the normal abort path
//! and reappears in a later epoch. Speculative reads of an aborted
//! transaction's writes are impossible by construction: a task's commit
//! *precedes* `complete`, so a successor on the key only ever starts after
//! its predecessor resolved.
//!
//! **Crash windows.** Plan window: nothing committed, the batch is
//! re-formed after recovery. Execute window: commits are in the WAL but
//! unforced — a crash drops them and the requests are reprocessed
//! (exactly-once holds: dequeue + effects + reply are one transaction).
//! Commit window (post-force, pre-apply): effects are durable; recovery
//! rebuilds the ready index from storage, so the mirror is never lost. The
//! [`EpochHook`] lets tests abandon an epoch at each window boundary to pin
//! these down.
//!
//! **Known caveat**: a `KillElement` racing the execute phase may poison a
//! planned transaction after the plan assigned it the element;
//! `dequeue_planned` checks the kill tombstone once at take time, so a kill
//! landing later surfaces as a commit-time poison → misspeculation, exactly
//! like the locked path's poisoned commit.

use crate::error::{CoreError, CoreResult};
use crate::request::{Reply, Request};
use crate::server::{Handler, HandlerError, HandlerOutcome, ServerCtx};
use parking_lot::{Condvar, Mutex};
use rrq_qm::ops::{EnqueueOptions, QueueHandle};
use rrq_qm::repository::{ExecMode, Repository};
use rrq_qm::QmError;
use rrq_storage::codec::{Decode, Encode};
use rrq_txn::{EpochPlan, LockKey, Txn, TxnError};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Derives the lock keys a request's handler will touch, from the request
/// alone — the planner's access-set oracle. `None` marks the request
/// *unplannable*: the executor runs it solo (after the lock-free tasks, with
/// real locks) instead of guessing a scope that would misspeculate.
pub type AccessFn = Arc<dyn Fn(&Request) -> Option<Vec<LockKey>> + Send + Sync>;

/// Epoch lifecycle points where the crash hook is consulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochWindow {
    /// Batch formed and planned; nothing executed yet.
    Plan,
    /// Every task resolved; commits appended to the WAL but not forced.
    Execute,
    /// WAL forced; ready-index/notification mirrors not yet applied.
    Commit,
}

/// Test hook consulted at each [`EpochWindow`] boundary with the epoch
/// number. Returning `true` abandons the epoch mid-flight — the caller is
/// expected to crash the repository (the abandoned state is exactly what a
/// crash at that window leaves behind).
pub type EpochHook = Arc<dyn Fn(u64, EpochWindow) -> bool + Send + Sync>;

/// Planned-pool configuration.
#[derive(Debug, Clone)]
pub struct PlannedConfig {
    /// Name used for queue registration and protocol-event attribution.
    pub pool_name: String,
    /// Input queue.
    pub request_queue: String,
    /// Execute-phase worker threads (1 ⇒ the coordinator runs tasks inline,
    /// strictly in plan priority order — the deterministic mode the
    /// equivalence tests pin).
    pub workers: usize,
    /// Largest batch one epoch may take.
    pub batch_max: usize,
    /// Idle poll window between epochs when the queue is empty.
    pub block: Duration,
}

impl PlannedConfig {
    /// Defaults: 1 worker, 128-element epochs, 200 ms idle poll.
    pub fn new(pool_name: impl Into<String>, request_queue: impl Into<String>) -> Self {
        PlannedConfig {
            pool_name: pool_name.into(),
            request_queue: request_queue.into(),
            workers: 1,
            batch_max: 128,
            block: Duration::from_millis(200),
        }
    }
}

/// Counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlannedStats {
    /// Epochs closed (force + apply completed).
    pub epochs: u64,
    /// Requests committed.
    pub committed: u64,
    /// Rejected (Failed reply) requests.
    pub rejected: u64,
    /// In-epoch aborts of any kind.
    pub misspeculations: u64,
    /// Tasks re-entered into their epoch with a widened scope.
    pub replans: u64,
    /// Unplannable requests executed solo with real locks.
    pub solo: u64,
}

/// One epoch task: the element assignment plus everything the plan phase
/// learned about it.
#[derive(Clone)]
struct Task {
    ekey: Vec<u8>,
    /// `None`: payload did not decode — the task commits the dequeue with no
    /// reply, mirroring [`crate::server::Server`]'s malformed-request drop.
    request: Option<Request>,
    /// Declared scope (sorted, deduped). Empty for solo tasks.
    access: Vec<LockKey>,
}

/// What one task execution asks the plan to do next.
enum TaskOutcome {
    /// Resolved (committed, skipped, or deferred to a later epoch).
    Done,
    /// Misspeculated on scope: re-enter with these extra keys.
    Replan(Vec<LockKey>),
}

/// Execute-phase state shared between the coordinator and the workers.
#[derive(Default)]
struct Shared {
    plan: EpochPlan,
    tasks: Vec<Task>,
    /// Workers currently running a task.
    running: usize,
    /// An epoch's execute phase is open.
    active: bool,
    shutdown: bool,
}

/// The planned executor: one coordinator forming epochs over a request
/// queue, plus an optional worker pool for the execute phase.
pub struct PlannedPool {
    repo: Arc<Repository>,
    handler: Handler,
    access: AccessFn,
    cfg: PlannedConfig,
    handle: QueueHandle,
    home: usize,
    stats: Mutex<PlannedStats>,
    shared: Mutex<Shared>,
    cv: Condvar,
    epoch: AtomicU64,
    workers_alive: AtomicUsize,
    hook: Mutex<Option<EpochHook>>,
}

impl PlannedPool {
    /// Build a pool; registers with the request queue immediately. The
    /// repository must have been opened with [`ExecMode::Planned`] — on a
    /// locked repository the deferral machinery would fight the dispensing
    /// servers for the same elements.
    pub fn new(
        repo: Arc<Repository>,
        cfg: PlannedConfig,
        handler: Handler,
        access: AccessFn,
    ) -> CoreResult<Arc<Self>> {
        if repo.exec_mode() != ExecMode::Planned {
            return Err(CoreError::Protocol(
                "PlannedPool requires a repository opened with ExecMode::Planned".into(),
            ));
        }
        let home = repo.partition_of(&cfg.request_queue);
        let (handle, _) = repo
            .qm_at(home)
            .register(&cfg.request_queue, &cfg.pool_name, false)?;
        Ok(Arc::new(PlannedPool {
            repo,
            handler,
            access,
            cfg,
            handle,
            home,
            stats: Mutex::new(PlannedStats::default()),
            shared: Mutex::new(Shared::default()),
            cv: Condvar::new(),
            epoch: AtomicU64::new(0),
            workers_alive: AtomicUsize::new(0),
            hook: Mutex::new(None),
        }))
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PlannedStats {
        *self.stats.lock()
    }

    /// Install the crash-window hook (tests only).
    pub fn set_epoch_hook(&self, hook: EpochHook) {
        *self.hook.lock() = Some(hook);
    }

    fn hook_fires(&self, epoch: u64, window: EpochWindow) -> bool {
        let hook = self.hook.lock().clone();
        hook.map(|h| h(epoch, window)).unwrap_or(false)
    }

    /// Form, execute, and close one epoch. Returns the number of tasks
    /// resolved (0 when the queue had nothing ready, or when the epoch was
    /// abandoned by the hook before its close).
    pub fn run_epoch(&self) -> CoreResult<usize> {
        let qm = self.repo.qm_at(self.home);
        let batch = qm.ready_batch(&self.cfg.request_queue, self.cfg.batch_max)?;
        if batch.is_empty() {
            return Ok(0);
        }
        let epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        rrq_obs::counter_inc("txn.plan.epochs");
        rrq_obs::observe("txn.plan.batch_size", batch.len() as u64);

        // Plan phase: peek payloads, derive access sets.
        let mut planned = Vec::new();
        let mut solo = Vec::new();
        for (ekey, eid) in batch {
            // An entry may race with a committed dequeue from an earlier
            // incarnation of this pool; a vanished element just drops out.
            let request = match qm.read(eid) {
                Ok(elem) => Request::decode_all(&elem.payload).ok(),
                Err(_) => continue,
            };
            match request.as_ref().and_then(|r| (self.access)(r)) {
                Some(mut keys) => {
                    keys.sort();
                    keys.dedup();
                    planned.push(Task {
                        ekey,
                        request,
                        access: keys,
                    });
                }
                None => solo.push(Task {
                    ekey,
                    request,
                    access: Vec::new(),
                }),
            }
        }
        if self.hook_fires(epoch, EpochWindow::Plan) {
            return Ok(0);
        }

        // Execute phase: lock-free planned tasks first (workers or inline),
        // then the unplannable tail solo — real locks must never overlap
        // with transactions whose locking is a membership check.
        let n_planned = self.execute_planned(planned)?;
        let mut n_solo = 0;
        for t in &solo {
            self.stats.lock().solo += 1;
            let _ = self.exec_task(t, false, 0);
            n_solo += 1;
        }
        let exec_done = rrq_obs::now();
        if self.hook_fires(epoch, EpochWindow::Execute) {
            return Ok(0);
        }

        // Commit phase: durable first, visible second.
        self.repo
            .store_at(self.home)
            .force_wal()
            .map_err(QmError::Storage)?;
        if self.hook_fires(epoch, EpochWindow::Commit) {
            return Ok(0);
        }
        qm.apply_epoch();
        rrq_obs::observe(
            "core.epoch.commit_wait_ticks",
            rrq_obs::now().saturating_sub(exec_done),
        );
        self.stats.lock().epochs += 1;
        Ok(n_planned + n_solo)
    }

    /// Run the planned tasks of one epoch to completion; returns how many
    /// task slots resolved (replans count again).
    fn execute_planned(&self, tasks: Vec<Task>) -> CoreResult<usize> {
        if tasks.is_empty() {
            return Ok(0);
        }
        let plan = EpochPlan::build(&tasks.iter().map(|t| t.access.clone()).collect::<Vec<_>>());
        let mut g = self.shared.lock();
        g.plan = plan;
        g.tasks = tasks;
        g.active = true;
        if self.workers_alive.load(Ordering::Acquire) == 0 {
            // Inline: strictly plan priority order, one task at a time.
            let mut resolved = 0;
            while let Some(i) = g.plan.next_ready() {
                let task = g.tasks[i].clone();
                drop(g);
                let outcome = self.exec_task(&task, true, 0);
                g = self.shared.lock();
                resolved += 1;
                self.settle(&mut g, i, &task, outcome);
            }
            g.active = false;
            return Ok(resolved);
        }
        // Worker pool: hand the plan over and wait for quiescence.
        self.cv.notify_all();
        while !(g.plan.is_done() && g.running == 0) {
            self.cv.wait(&mut g);
        }
        g.active = false;
        Ok(g.plan.len())
    }

    /// Apply one task's outcome to the shared plan (lock held by caller).
    fn settle(&self, g: &mut Shared, i: usize, task: &Task, outcome: TaskOutcome) {
        match outcome {
            TaskOutcome::Done => g.plan.complete(i),
            TaskOutcome::Replan(extra) => {
                let ni = g.plan.replan(i, &extra);
                let mut widened = task.clone();
                widened.access.extend(extra);
                widened.access.sort();
                widened.access.dedup();
                debug_assert_eq!(ni, g.tasks.len());
                g.tasks.push(widened);
                rrq_obs::counter_inc("txn.plan.replans");
                self.stats.lock().replans += 1;
            }
        }
    }

    /// The execute-phase worker loop (spawned by [`PlannedPool::spawn`]).
    /// Exits only on the coordinator-set shutdown flag — never on the raw
    /// stop flag, which may land mid-epoch while the coordinator still waits
    /// for this worker's tasks.
    fn worker_loop(&self, idx: usize) {
        loop {
            let (i, task) = {
                let mut g = self.shared.lock();
                loop {
                    if g.shutdown {
                        return;
                    }
                    if g.active {
                        if let Some(i) = g.plan.next_ready() {
                            g.running += 1;
                            break (i, g.tasks[i].clone());
                        }
                    }
                    // Parked until a completion frees a queue head, the
                    // coordinator opens an epoch, or shutdown.
                    self.cv.wait(&mut g);
                }
            };
            let outcome = self.exec_task(&task, true, idx);
            let mut g = self.shared.lock();
            g.running -= 1;
            self.settle(&mut g, i, &task, outcome);
            self.cv.notify_all();
        }
    }

    /// Protocol-event source name for one executing thread. Per-thread (not
    /// per-pool) so the conformance oracle sees a well-formed per-server
    /// event sequence.
    fn event_source(&self, worker: usize) -> String {
        format!("{}-w{worker}", self.cfg.pool_name)
    }

    /// Run one task in its own transaction. `planned` selects the lock-free
    /// path (scope + deferred mirror); solo tasks take real locks but still
    /// defer durability to the epoch close.
    fn exec_task(&self, task: &Task, planned: bool, worker: usize) -> TaskOutcome {
        let source = self.event_source(worker);
        let qm = self.repo.qm_at(self.home);
        let txn = match self.repo.begin_on_part(self.home) {
            Ok(t) => t,
            Err(_) => {
                rrq_obs::counter_inc("core.planned.task_errors");
                return TaskOutcome::Done;
            }
        };
        let tid = txn.id().raw();
        qm.mark_planned(tid);
        if planned {
            txn.set_plan_scope(task.access.iter().cloned());
            // The plan's per-key queues are logical locks: publish the same
            // happens-before edges the lock manager would, so the race
            // detector sees plan-ordered accesses as ordered.
            for k in &task.access {
                rrq_check::race::lock_acquired(k.ns, &k.key);
            }
        }
        let outcome = self.exec_task_body(txn, task, planned, &source);
        if planned {
            for k in &task.access {
                rrq_check::race::lock_released(k.ns, &k.key);
            }
        }
        outcome
    }

    fn exec_task_body(&self, txn: Txn, task: &Task, planned: bool, source: &str) -> TaskOutcome {
        let qm = self.repo.qm_at(self.home);
        let tid = txn.id().raw();
        match qm.dequeue_planned(tid, &self.handle, &task.ekey) {
            // The payload was already decoded at plan time; the element
            // itself is not needed again.
            Ok(Some(_)) => {}
            Ok(None) => {
                // Gone: consumed by an earlier epoch, redisposed by an
                // abort, or tombstoned by a kill. Drop the task.
                let _ = txn.abort();
                return TaskOutcome::Done;
            }
            Err(_) => {
                let _ = txn.abort();
                rrq_obs::counter_inc("core.planned.task_errors");
                return TaskOutcome::Done;
            }
        }
        let Some(request) = &task.request else {
            // Undecodable payload: commit the dequeue with no reply.
            rrq_check::protocol::emit_server(
                source,
                rrq_check::protocol::ServerEvent::DropMalformed,
            );
            return self.commit_task(txn, source, false);
        };
        rrq_check::protocol::emit_server(
            source,
            rrq_check::protocol::ServerEvent::Dequeue {
                rid: request.rid.to_attr(),
            },
        );
        let outcome = {
            let ctx = ServerCtx {
                txn: &txn,
                repo: &self.repo,
                home: self.home,
            };
            (self.handler)(&ctx, request)
        };
        match outcome {
            Ok(HandlerOutcome::Reply(body)) => {
                if self
                    .enqueue_reply(&txn, request, Reply::ok(request.rid.clone(), body), source)
                    .is_err()
                {
                    return self.abort_task(txn, planned, source);
                }
                self.commit_task(txn, source, true)
            }
            Ok(HandlerOutcome::IntermediateReply {
                body,
                next_queue,
                state,
            }) => {
                let reply = Reply {
                    rid: request.rid.clone(),
                    status: crate::request::ReplyStatus::Intermediate,
                    body: crate::interactive::encode_intermediate(&next_queue, &body, &state),
                };
                if self.enqueue_reply(&txn, request, reply, source).is_err() {
                    return self.abort_task(txn, planned, source);
                }
                self.commit_task(txn, source, false)
            }
            Ok(HandlerOutcome::Forward { queue, request })
            | Ok(HandlerOutcome::ForwardInheriting { queue, request }) => {
                // Planned transactions hold no transferable locks, so the
                // inheriting variant degrades to a plain forward — the next
                // stage re-acquires (same downgrade the partitioned locked
                // path takes, DESIGN.md S25).
                if self.forward(&txn, &queue, &request, source).is_err() {
                    return self.abort_task(txn, planned, source);
                }
                self.commit_task(txn, source, false)
            }
            Err(HandlerError::Reject(msg)) => {
                if self
                    .enqueue_reply(
                        &txn,
                        request,
                        Reply::failed(request.rid.clone(), msg.into_bytes()),
                        source,
                    )
                    .is_err()
                {
                    return self.abort_task(txn, planned, source);
                }
                self.stats.lock().rejected += 1;
                self.commit_task(txn, source, true)
            }
            Err(HandlerError::Abort(_)) => self.abort_task(txn, planned, source),
        }
    }

    /// Abort and decide between replan (scope misspeculation) and deferral
    /// (any other in-epoch abort).
    fn abort_task(&self, txn: Txn, planned: bool, source: &str) -> TaskOutcome {
        let violations = txn.plan_violations();
        let _ = txn.abort();
        rrq_check::protocol::emit_server(source, rrq_check::protocol::ServerEvent::Abort);
        rrq_obs::counter_inc("txn.plan.misspeculations");
        self.stats.lock().misspeculations += 1;
        if planned && !violations.is_empty() {
            TaskOutcome::Replan(violations)
        } else {
            TaskOutcome::Done
        }
    }

    /// Commit, translating the poisoned-commit outcomes the way
    /// [`crate::server::Server`] does. `count_reply` marks transactions
    /// carrying a final reply, counted toward `core.server.replies_committed`
    /// only when the commit actually lands (metrics law D).
    fn commit_task(&self, txn: Txn, source: &str, count_reply: bool) -> TaskOutcome {
        match txn.commit() {
            Ok(()) => {
                rrq_check::protocol::emit_server(source, rrq_check::protocol::ServerEvent::Commit);
                self.stats.lock().committed += 1;
                if count_reply {
                    rrq_obs::counter_inc("core.server.replies_committed");
                }
                TaskOutcome::Done
            }
            Err(TxnError::InvalidState(_)) | Err(TxnError::PrepareFailed(_)) => {
                // Poisoned by a cancel: the manager already aborted.
                rrq_check::protocol::emit_server(source, rrq_check::protocol::ServerEvent::Abort);
                rrq_obs::counter_inc("txn.plan.misspeculations");
                self.stats.lock().misspeculations += 1;
                TaskOutcome::Done
            }
            Err(_) => {
                rrq_check::protocol::emit_server(source, rrq_check::protocol::ServerEvent::Abort);
                rrq_obs::counter_inc("core.planned.task_errors");
                TaskOutcome::Done
            }
        }
    }

    /// Enqueue a reply into the queue named by the request; `Err` means the
    /// caller must abort the transaction.
    fn enqueue_reply(
        &self,
        txn: &Txn,
        request: &Request,
        reply: Reply,
        source: &str,
    ) -> Result<(), QmError> {
        let h = QueueHandle {
            queue: request.reply_queue.clone(),
            registrant: self.cfg.pool_name.clone(),
        };
        let payload = reply.encode_to_vec();
        let opts = EnqueueOptions {
            attrs: vec![("rid".into(), reply.rid.to_attr())],
            ..Default::default()
        };
        match qm_enlisted(&self.repo, txn, self.home, &request.reply_queue)
            .and_then(|qm| qm.enqueue(txn.id().raw(), &h, &payload, opts))
        {
            Ok(_) | Err(QmError::NoSuchQueue(_)) => {
                rrq_check::protocol::emit_server(
                    source,
                    rrq_check::protocol::ServerEvent::Reply {
                        rid: reply.rid.to_attr(),
                    },
                );
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Forward the request to the next stage's queue; `Err` means the caller
    /// must abort the transaction.
    fn forward(
        &self,
        txn: &Txn,
        queue: &str,
        request: &Request,
        source: &str,
    ) -> Result<(), QmError> {
        let h = QueueHandle {
            queue: queue.to_string(),
            registrant: self.cfg.pool_name.clone(),
        };
        let payload = request.encode_to_vec();
        let opts = EnqueueOptions {
            attrs: vec![
                ("rid".into(), request.rid.to_attr()),
                ("reply_queue".into(), request.reply_queue.clone()),
            ],
            ..Default::default()
        };
        match qm_enlisted(&self.repo, txn, self.home, queue)
            .and_then(|qm| qm.enqueue(txn.id().raw(), &h, &payload, opts))
        {
            Ok(_) => {
                rrq_check::protocol::emit_server(
                    source,
                    rrq_check::protocol::ServerEvent::Forward {
                        rid: request.rid.to_attr(),
                    },
                );
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Run the epoch loop until `stop` is set, plus `workers` execute-phase
    /// worker threads when `workers > 1` (with one worker the coordinator
    /// executes tasks inline, strictly in plan priority order).
    pub fn spawn(self: &Arc<Self>, stop: Arc<AtomicBool>) -> Vec<JoinHandle<()>> {
        let mut handles = Vec::new();
        if self.cfg.workers > 1 {
            for i in 0..self.cfg.workers {
                let me = Arc::clone(self);
                self.workers_alive.fetch_add(1, Ordering::AcqRel);
                handles.push(crate::threads::spawn_named(
                    format!("rrq-planned-{}-w{}", self.cfg.pool_name, i + 1),
                    move || {
                        me.worker_loop(i + 1);
                        me.workers_alive.fetch_sub(1, Ordering::AcqRel);
                    },
                ));
            }
        }
        let me = Arc::clone(self);
        let st = Arc::clone(&stop);
        handles.insert(
            0,
            crate::threads::spawn_named(format!("rrq-planned-{}", self.cfg.pool_name), move || {
                while !st.load(Ordering::Acquire) {
                    match me.run_epoch() {
                        Ok(0) => std::thread::sleep(me.cfg.block.min(Duration::from_millis(2))),
                        Ok(_) => {}
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                }
                // Unpark the workers so they see the stop flag.
                let mut g = me.shared.lock();
                g.shutdown = true;
                me.cv.notify_all();
            }),
        );
        handles
    }
}

/// Enlist the partition owning `queue` and return its queue manager (the
/// home manager under the single-partition constraint `open_with` enforces
/// for planned mode, but written through the routing door anyway).
fn qm_enlisted<'r>(
    repo: &'r Arc<Repository>,
    txn: &Txn,
    home: usize,
    queue: &str,
) -> Result<&'r Arc<rrq_qm::ops::QueueManager>, QmError> {
    repo.enlist_queue(txn, home, queue)
}
