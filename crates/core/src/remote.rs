//! The clerk↔QM wire protocol over the simulated network.
//!
//! §5: "If the QM is remote from the client, then we assume that the clerk
//! invokes QM operations using remote procedure call." [`QmRpcServer`]
//! exposes a [`Repository`] on a bus endpoint; [`RemoteQm`] implements
//! [`QmApi`] by encoding each operation into a request envelope.
//!
//! Two transport choices from the paper are modelled:
//!
//! * `enqueue` is an acknowledged RPC — "when Send returns, the client knows
//!   that the request was stably stored";
//! * `enqueue_unacked` is a one-way message — the §5 optimization that
//!   "saves a message from the QM to the client in the common case that the
//!   reply arrives within the client's timeout period". A lost unacked
//!   enqueue is discovered by the client's Receive timing out, followed by
//!   connect-time resynchronization.
//!
//! Blocking dequeues are client-driven: the server answers "empty"
//! immediately and the remote client polls until its deadline, so one slow
//! client never stalls the QM's RPC loop.

use crate::api::QmApi;
use crate::error::{CoreError, CoreResult};
use rrq_net::rpc::{spawn_server, RpcClient, ServerGuard};
use rrq_net::NetworkBus;
use rrq_qm::element::{Eid, Element};
use rrq_qm::ops::{DequeueOptions, EnqueueOptions, QueueHandle};
use rrq_qm::registration::Registration;
use rrq_qm::repository::Repository;
use rrq_qm::QmError;
use rrq_storage::codec::{put, Decode, Encode, Reader};
use std::sync::Arc;
use std::time::{Duration, Instant};

const OP_REGISTER: u8 = 1;
const OP_DEREGISTER: u8 = 2;
const OP_ENQUEUE: u8 = 3;
const OP_DEQUEUE: u8 = 4;
const OP_READ: u8 = 5;
const OP_KILL: u8 = 6;
const OP_DEPTH: u8 = 7;

const ST_OK: u8 = 0;
const ST_ERR: u8 = 1;
const ST_EMPTY: u8 = 2;

fn encode_enqueue_opts(buf: &mut Vec<u8>, opts: &EnqueueOptions) {
    put::u8(buf, opts.priority);
    put::u32(buf, opts.attrs.len() as u32);
    for (n, v) in &opts.attrs {
        put::string(buf, n);
        put::string(buf, v);
    }
    opts.tag.encode(buf);
}

fn decode_enqueue_opts(r: &mut Reader<'_>) -> CoreResult<EnqueueOptions> {
    let m = |e: rrq_storage::StorageError| CoreError::Malformed(e.to_string());
    let priority = r.u8().map_err(m)?;
    let n = r.u32().map_err(m)? as usize;
    let mut attrs = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        attrs.push((r.string().map_err(m)?, r.string().map_err(m)?));
    }
    let tag = Option::<Vec<u8>>::decode(r).map_err(m)?;
    Ok(EnqueueOptions {
        priority,
        attrs,
        tag,
    })
}

/// Serve a repository's queue operations on `endpoint_name`.
pub struct QmRpcServer;

impl QmRpcServer {
    /// Spawn the serving thread; the guard stops it on drop. Serves every
    /// partition of the repository (operations route internally).
    pub fn spawn(bus: &NetworkBus, endpoint_name: &str, repo: Arc<Repository>) -> ServerGuard {
        Self::spawn_scoped(bus, endpoint_name, repo, None)
    }

    /// Spawn a server for *one* repository partition: operations on queues
    /// the partition doesn't own are refused, and eid probes only consult
    /// the one partition. With one endpoint per partition, a network
    /// partition between a clerk and endpoint *i* severs exactly the queues
    /// partition *i* owns — the directional fault the explorer injects.
    pub fn spawn_partition(
        bus: &NetworkBus,
        endpoint_name: &str,
        repo: Arc<Repository>,
        part: usize,
    ) -> ServerGuard {
        Self::spawn_scoped(bus, endpoint_name, repo, Some(part))
    }

    fn spawn_scoped(
        bus: &NetworkBus,
        endpoint_name: &str,
        repo: Arc<Repository>,
        scope: Option<usize>,
    ) -> ServerGuard {
        spawn_server(bus, endpoint_name, move |env| {
            handle(&repo, scope, &env.payload).unwrap_or_else(|e| {
                let mut out = vec![ST_ERR];
                put::string(&mut out, &e.to_string());
                out
            })
        })
    }
}

/// Refuse operations a partition-scoped endpoint doesn't own.
fn check_scope(repo: &Repository, scope: Option<usize>, queue: &str) -> CoreResult<()> {
    if let Some(p) = scope {
        let owner = repo.partition_of(queue);
        if owner != p {
            return Err(CoreError::Protocol(format!(
                "queue {queue} owned by partition {owner}, not {p}"
            )));
        }
    }
    Ok(())
}

fn ok_payload(body: impl FnOnce(&mut Vec<u8>)) -> Vec<u8> {
    let mut out = vec![ST_OK];
    body(&mut out);
    out
}

fn handle(repo: &Repository, scope: Option<usize>, raw: &[u8]) -> CoreResult<Vec<u8>> {
    if raw.is_empty() {
        return Err(CoreError::Malformed("empty rpc payload".into()));
    }
    let m = |e: rrq_storage::StorageError| CoreError::Malformed(e.to_string());
    let mut r = Reader::new(&raw[1..]);
    match raw[0] {
        OP_REGISTER => {
            let queue = r.string().map_err(m)?;
            let registrant = r.string().map_err(m)?;
            let stable = r.bool().map_err(m)?;
            check_scope(repo, scope, &queue)?;
            let (_, reg) = repo.qm_for(&queue).register(&queue, &registrant, stable)?;
            Ok(ok_payload(|out| reg.encode(out)))
        }
        OP_DEREGISTER => {
            let queue = r.string().map_err(m)?;
            let registrant = r.string().map_err(m)?;
            check_scope(repo, scope, &queue)?;
            repo.qm_for(&queue)
                .deregister(&QueueHandle { queue, registrant })?;
            Ok(ok_payload(|_| {}))
        }
        OP_ENQUEUE => {
            let queue = r.string().map_err(m)?;
            let registrant = r.string().map_err(m)?;
            let payload = r.bytes().map_err(m)?;
            let opts = decode_enqueue_opts(&mut r)?;
            check_scope(repo, scope, &queue)?;
            let h = QueueHandle { queue, registrant };
            let eid = repo.autocommit_on(&h.queue, |t| {
                repo.qm_for(&h.queue)
                    .enqueue(t.id().raw(), &h, &payload, opts)
            })?;
            Ok(ok_payload(|out| put::u64(out, eid.raw())))
        }
        OP_DEQUEUE => {
            let queue = r.string().map_err(m)?;
            let registrant = r.string().map_err(m)?;
            let tag = Option::<Vec<u8>>::decode(&mut r).map_err(m)?;
            let error_queue = match r.u8().map_err(m)? {
                0 => None,
                _ => Some(r.string().map_err(m)?),
            };
            check_scope(repo, scope, &queue)?;
            let h = QueueHandle { queue, registrant };
            let res = repo.autocommit_on(&h.queue, |t| {
                repo.qm_for(&h.queue).dequeue(
                    t.id().raw(),
                    &h,
                    DequeueOptions {
                        tag,
                        predicate: None,
                        block: None, // remote blocking is client-side polling
                        error_queue,
                    },
                )
            });
            match res {
                Ok(elem) => Ok(ok_payload(|out| elem.encode(out))),
                Err(QmError::Empty(_)) => Ok(vec![ST_EMPTY]),
                Err(e) => Err(e.into()),
            }
        }
        OP_READ => {
            let eid = Eid(r.u64().map_err(m)?);
            let parts: Vec<usize> = match scope {
                Some(p) => vec![p],
                None => (0..repo.partitions()).collect(),
            };
            let mut last = QmError::NoSuchElement(eid.raw());
            for p in parts {
                match repo.qm_at(p).read(eid) {
                    Ok(elem) => return Ok(ok_payload(|out| elem.encode(out))),
                    Err(e) => last = e,
                }
            }
            Err(last.into())
        }
        OP_KILL => {
            let eid = Eid(r.u64().map_err(m)?);
            let parts: Vec<usize> = match scope {
                Some(p) => vec![p],
                None => (0..repo.partitions()).collect(),
            };
            let mut killed = false;
            for p in parts {
                if repo.qm_at(p).kill_element(eid)? {
                    killed = true;
                    break;
                }
            }
            Ok(ok_payload(|out| put::bool(out, killed)))
        }
        OP_DEPTH => {
            let queue = r.string().map_err(m)?;
            check_scope(repo, scope, &queue)?;
            let d = repo.qm_for(&queue).depth(&queue)?;
            Ok(ok_payload(|out| put::u64(out, d as u64)))
        }
        op => Err(CoreError::Malformed(format!("unknown opcode {op}"))),
    }
}

/// [`QmApi`] over the network.
pub struct RemoteQm {
    client: RpcClient,
    server: String,
    rpc_timeout: Duration,
    poll_interval: Duration,
}

impl RemoteQm {
    /// Build a remote handle speaking from `client_endpoint` to
    /// `server_endpoint`.
    pub fn new(bus: &NetworkBus, client_endpoint: &str, server_endpoint: &str) -> Self {
        RemoteQm {
            client: RpcClient::new(bus, client_endpoint),
            server: server_endpoint.to_string(),
            rpc_timeout: Duration::from_secs(2),
            poll_interval: Duration::from_millis(20),
        }
    }

    /// Change the per-RPC timeout.
    pub fn set_rpc_timeout(&mut self, t: Duration) {
        self.rpc_timeout = t;
    }

    /// (rpc calls, one-way sends) counters — message-cost accounting for the
    /// §5 Send-mode experiment.
    pub fn message_counts(&self) -> (u64, u64) {
        self.client.counts()
    }

    fn call(&self, payload: Vec<u8>) -> CoreResult<Vec<u8>> {
        let resp = self.client.call(&self.server, payload, self.rpc_timeout)?;
        parse_response(resp)
    }
}

fn parse_response(resp: Vec<u8>) -> CoreResult<Vec<u8>> {
    let m = |e: rrq_storage::StorageError| CoreError::Malformed(e.to_string());
    match resp.first() {
        Some(&ST_OK) => Ok(resp[1..].to_vec()),
        Some(&ST_EMPTY) => Err(CoreError::Qm(QmError::Empty("remote".into()))),
        Some(&ST_ERR) => {
            let mut r = Reader::new(&resp[1..]);
            Err(CoreError::Protocol(r.string().map_err(m)?))
        }
        _ => Err(CoreError::Malformed("empty rpc response".into())),
    }
}

impl QmApi for RemoteQm {
    fn register(&self, queue: &str, registrant: &str, stable: bool) -> CoreResult<Registration> {
        let mut buf = vec![OP_REGISTER];
        put::string(&mut buf, queue);
        put::string(&mut buf, registrant);
        put::bool(&mut buf, stable);
        let resp = self.call(buf)?;
        Registration::decode_all(&resp).map_err(|e| CoreError::Malformed(e.to_string()))
    }

    fn deregister(&self, queue: &str, registrant: &str) -> CoreResult<()> {
        let mut buf = vec![OP_DEREGISTER];
        put::string(&mut buf, queue);
        put::string(&mut buf, registrant);
        self.call(buf).map(|_| ())
    }

    fn enqueue(
        &self,
        queue: &str,
        registrant: &str,
        payload: &[u8],
        opts: EnqueueOptions,
    ) -> CoreResult<Eid> {
        let mut buf = vec![OP_ENQUEUE];
        put::string(&mut buf, queue);
        put::string(&mut buf, registrant);
        put::bytes(&mut buf, payload);
        encode_enqueue_opts(&mut buf, &opts);
        let resp = self.call(buf)?;
        let mut r = Reader::new(&resp);
        Ok(Eid(r
            .u64()
            .map_err(|e| CoreError::Malformed(e.to_string()))?))
    }

    fn enqueue_unacked(
        &self,
        queue: &str,
        registrant: &str,
        payload: &[u8],
        opts: EnqueueOptions,
    ) -> CoreResult<()> {
        let mut buf = vec![OP_ENQUEUE];
        put::string(&mut buf, queue);
        put::string(&mut buf, registrant);
        put::bytes(&mut buf, payload);
        encode_enqueue_opts(&mut buf, &opts);
        // One-way: no correlation id, no reply expected. The server will
        // compute a response and discard it.
        Ok(self.client.send_one_way(&self.server, buf)?)
    }

    fn dequeue(&self, queue: &str, registrant: &str, opts: DequeueOptions) -> CoreResult<Element> {
        let deadline = opts.block.map(|b| Instant::now() + b);
        loop {
            let mut buf = vec![OP_DEQUEUE];
            put::string(&mut buf, queue);
            put::string(&mut buf, registrant);
            opts.tag.encode(&mut buf);
            match &opts.error_queue {
                None => put::u8(&mut buf, 0),
                Some(q) => {
                    put::u8(&mut buf, 1);
                    put::string(&mut buf, q);
                }
            }
            match self.call(buf) {
                Ok(resp) => {
                    return Element::decode_all(&resp)
                        .map_err(|e| CoreError::Malformed(e.to_string()))
                }
                Err(CoreError::Qm(QmError::Empty(_))) => match deadline {
                    Some(dl) if Instant::now() < dl => {
                        std::thread::sleep(self.poll_interval);
                    }
                    _ => return Err(CoreError::Qm(QmError::Empty(queue.to_string()))),
                },
                Err(e) => return Err(e),
            }
        }
    }

    fn read(&self, eid: Eid) -> CoreResult<Element> {
        let mut buf = vec![OP_READ];
        put::u64(&mut buf, eid.raw());
        let resp = self.call(buf)?;
        Element::decode_all(&resp).map_err(|e| CoreError::Malformed(e.to_string()))
    }

    fn kill(&self, eid: Eid) -> CoreResult<bool> {
        let mut buf = vec![OP_KILL];
        put::u64(&mut buf, eid.raw());
        let resp = self.call(buf)?;
        let mut r = Reader::new(&resp);
        r.bool().map_err(|e| CoreError::Malformed(e.to_string()))
    }

    fn depth(&self, queue: &str) -> CoreResult<usize> {
        let mut buf = vec![OP_DEPTH];
        put::string(&mut buf, queue);
        let resp = self.call(buf)?;
        let mut r = Reader::new(&resp);
        Ok(r.u64().map_err(|e| CoreError::Malformed(e.to_string()))? as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (NetworkBus, Arc<Repository>, ServerGuard, RemoteQm) {
        let bus = NetworkBus::new(7);
        let repo = Arc::new(Repository::create("remote").unwrap());
        repo.create_queue_defaults("q").unwrap();
        let guard = QmRpcServer::spawn(&bus, "qm", Arc::clone(&repo));
        let remote = RemoteQm::new(&bus, "client", "qm");
        (bus, repo, guard, remote)
    }

    #[test]
    fn remote_roundtrip() {
        let (_bus, _repo, _guard, remote) = setup();
        remote.register("q", "c", true).unwrap();
        let eid = remote
            .enqueue("q", "c", b"over-the-wire", EnqueueOptions::default())
            .unwrap();
        assert_eq!(remote.depth("q").unwrap(), 1);
        assert_eq!(remote.read(eid).unwrap().payload, b"over-the-wire");
        let e = remote.dequeue("q", "c", DequeueOptions::default()).unwrap();
        assert_eq!(e.eid, eid);
        remote.deregister("q", "c").unwrap();
    }

    #[test]
    fn remote_empty_dequeue_reports_empty() {
        let (_bus, _repo, _guard, remote) = setup();
        remote.register("q", "c", false).unwrap();
        assert!(matches!(
            remote.dequeue("q", "c", DequeueOptions::default()),
            Err(CoreError::Qm(QmError::Empty(_)))
        ));
    }

    #[test]
    fn remote_blocking_dequeue_polls_until_available() {
        let (_bus, repo, _guard, remote) = setup();
        remote.register("q", "c", false).unwrap();
        let repo2 = Arc::clone(&repo);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(60));
            let (h, _) = repo2.qm().register("q", "late", false).unwrap();
            repo2
                .autocommit(|t| {
                    repo2
                        .qm()
                        .enqueue(t.id().raw(), &h, b"late", EnqueueOptions::default())
                })
                .unwrap();
        });
        let e = remote
            .dequeue(
                "q",
                "c",
                DequeueOptions {
                    block: Some(Duration::from_secs(5)),
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(e.payload, b"late");
        t.join().unwrap();
    }

    #[test]
    fn remote_unacked_enqueue_is_fire_and_forget() {
        let (_bus, repo, _guard, remote) = setup();
        remote.register("q", "c", false).unwrap();
        remote
            .enqueue_unacked("q", "c", b"silent", EnqueueOptions::default())
            .unwrap();
        // Give the server loop a moment.
        let deadline = Instant::now() + Duration::from_secs(2);
        while repo.qm().depth("q").unwrap() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(repo.qm().depth("q").unwrap(), 1);
        let (calls, one_ways) = remote.message_counts();
        assert_eq!((calls, one_ways), (1, 1)); // the register RPC + the one-way enqueue
    }

    #[test]
    fn remote_errors_propagate() {
        let (_bus, _repo, _guard, remote) = setup();
        let r = remote.register("missing-queue", "c", false);
        assert!(matches!(r, Err(CoreError::Protocol(_))));
    }

    #[test]
    fn partition_makes_calls_time_out() {
        let (bus, _repo, _guard, mut remote) = setup();
        remote.set_rpc_timeout(Duration::from_millis(50));
        bus.faults().partition_pair("client", "qm");
        assert!(matches!(
            remote.register("q", "c", false),
            Err(CoreError::Net(rrq_net::NetError::Timeout))
        ));
        bus.faults().heal_pair("client", "qm");
        remote.set_rpc_timeout(Duration::from_secs(2));
        assert!(remote.register("q", "c", false).is_ok());
    }
}
