//! The fault-tolerant client program (§3, Figs 1–2).
//!
//! The client is "a fault-tolerant sequential program": it keeps *no*
//! durable state of its own. At recovery time it reconstructs where it left
//! off from the rids the system returns at `Connect`, then decides — exactly
//! per Fig 2 — whether to receive an outstanding reply, whether to reprocess
//! (rereceive) the last reply, or to proceed with new work.
//!
//! Reply processing is delegated to a [`ReplyProcessor`], which is "just
//! another resource manager" from the protocol's point of view (§2): it
//! supplies the checkpoint that rides in the Receive tag and answers the
//! §3 question "did I already process this reply?" using its device state.

use crate::clerk::{Clerk, ConnectInfo};
use crate::error::{CoreError, CoreResult};
use crate::request::Reply;
use crate::rid::Rid;

/// How the client consumes replies. Implementations range from idempotent
/// displays to non-idempotent testable devices (ticket printers, §3).
pub trait ReplyProcessor {
    /// Produce the checkpoint bytes recorded with the upcoming Receive —
    /// e.g. the printer's next ticket number read *before* receiving.
    fn checkpoint(&mut self) -> Vec<u8>;

    /// Consume a reply. May be non-idempotent.
    fn process(&mut self, rid: &Rid, reply: &Reply);

    /// §3 resynchronization question: given the checkpoint recorded with the
    /// last Receive, was its reply already processed? (Testable devices
    /// compare the device state with the checkpoint.)
    fn already_processed(&mut self, rid: &Rid, ckpt: Option<&[u8]>) -> bool;
}

/// What the Fig 2 resynchronization decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResyncAction {
    /// No outstanding request: proceed to new work.
    Fresh,
    /// A request is outstanding whose reply was never received: Receive it
    /// (and process it).
    ReceivedOutstanding {
        /// Rid of the outstanding request.
        rid: Rid,
        /// The reply that was received during resync.
        reply: Reply,
    },
    /// The last reply was received before the failure and the processor
    /// confirmed it was already processed: nothing to redo.
    AlreadyProcessed {
        /// Rid of the last completed request.
        rid: Rid,
    },
    /// The last reply was received but (possibly) never processed: it was
    /// re-obtained with Rereceive and processed (again) — at-least-once.
    Reprocessed {
        /// Rid of the reprocessed request.
        rid: Rid,
        /// The rereceived reply.
        reply: Reply,
    },
}

/// The Fig 2 client program, one request at a time.
pub struct ClientRuntime {
    clerk: Clerk,
    next_serial: u64,
    client_id: String,
}

impl ClientRuntime {
    /// Wrap a clerk. Call [`ClientRuntime::resume`] before submitting work.
    pub fn new(clerk: Clerk) -> Self {
        let client_id = clerk.config().client_id.clone();
        ClientRuntime {
            clerk,
            next_serial: 1,
            client_id,
        }
    }

    /// The wrapped clerk.
    pub fn clerk(&self) -> &Clerk {
        &self.clerk
    }

    /// Connect and run the Fig 2 lines 2–11 resynchronization against the
    /// reply processor. Returns what was done. After this, the runtime is
    /// ready for [`ClientRuntime::submit`].
    pub fn resume(&mut self, processor: &mut dyn ReplyProcessor) -> CoreResult<ResyncAction> {
        let info: ConnectInfo = self.clerk.connect()?;
        if let Some(s) = &info.s_rid {
            self.next_serial = s.serial + 1;
        }
        match (&info.s_rid, &info.r_rid) {
            (None, _) => Ok(ResyncAction::Fresh),
            (Some(s_rid), r_rid) if r_rid.as_ref() != Some(s_rid) => {
                let _ = r_rid;
                // Sent but reply not received: Receive it now.
                let ckpt = processor.checkpoint();
                let reply = self.clerk.receive(&ckpt)?;
                if reply.rid != *s_rid {
                    return Err(CoreError::Protocol(format!(
                        "request-reply mismatch: expected {}, got {}",
                        s_rid, reply.rid
                    )));
                }
                processor.process(s_rid, &reply);
                Ok(ResyncAction::ReceivedOutstanding {
                    rid: s_rid.clone(),
                    reply,
                })
            }
            (Some(s_rid), _) => {
                // Reply was received; was it processed?
                if processor.already_processed(s_rid, info.ckpt.as_deref()) {
                    Ok(ResyncAction::AlreadyProcessed { rid: s_rid.clone() })
                } else {
                    let reply = self.clerk.rereceive()?;
                    processor.process(s_rid, &reply);
                    Ok(ResyncAction::Reprocessed {
                        rid: s_rid.clone(),
                        reply,
                    })
                }
            }
        }
    }

    /// Submit one request and process its reply: the Fig 2 main loop body.
    pub fn submit(
        &mut self,
        op: &str,
        body: Vec<u8>,
        processor: &mut dyn ReplyProcessor,
    ) -> CoreResult<(Rid, Reply)> {
        let rid = Rid::new(self.client_id.clone(), self.next_serial);
        self.next_serial += 1;
        self.clerk.send(op, body, rid.clone())?;
        let ckpt = processor.checkpoint();
        let reply = self.clerk.receive(&ckpt)?;
        if reply.rid != rid {
            return Err(CoreError::Protocol(format!(
                "request-reply mismatch: expected {rid}, got {}",
                reply.rid
            )));
        }
        processor.process(&rid, &reply);
        Ok((rid, reply))
    }

    /// Disconnect when the client has no more work (§3).
    pub fn disconnect(&self) -> CoreResult<()> {
        self.clerk.disconnect()
    }

    /// The serial the next request will use.
    pub fn next_serial(&self) -> u64 {
        self.next_serial
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Display;
    use crate::request::ReplyStatus;
    use crate::rid::Rid;

    #[test]
    fn resync_action_equality() {
        let a = ResyncAction::Fresh;
        assert_eq!(a, ResyncAction::Fresh);
        let r = ResyncAction::AlreadyProcessed {
            rid: Rid::new("c", 1),
        };
        assert_ne!(a, r);
    }

    #[test]
    fn display_processor_detects_duplicates() {
        let mut d = Display::new();
        let rid = Rid::new("c", 1);
        let reply = Reply {
            rid: rid.clone(),
            status: ReplyStatus::Ok,
            body: b"x".to_vec(),
        };
        assert!(!d.already_processed(&rid, None));
        d.process(&rid, &reply);
        assert!(d.already_processed(&rid, None));
        d.process(&rid, &reply);
        assert_eq!(d.duplicates_ignored(), 1);
        assert_eq!(d.shown().len(), 1);
    }
}
