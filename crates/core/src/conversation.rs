//! Single-transaction interactive requests with logged intermediate I/O
//! (§8.3).
//!
//! The alternative to pseudo-conversational transactions: "have the request
//! execute as one transaction, which solicits all the intermediate inputs by
//! exchanging ordinary messages with the client". The request stays
//! cancellable until the last input and request executions stay
//! serializable — but an abort loses intermediate I/O unless the client logs
//! it:
//!
//! "The client logs all intermediate I/O … If the interactive transaction
//! aborts, the server starts another transaction for the request … During
//! this replay, as long as the client receives intermediate output that is
//! identical to the request's previous incarnation, it can re-use the
//! intermediate input that it logged … once the client receives intermediate
//! output that differs … it must discard the remaining logged intermediate
//! input and must … solicit intermediate input from scratch."
//!
//! The solicitation channel is an ordinary RPC ([`rrq_net`]) from the server
//! to the client's conversation endpoint — *not* a queue.

use crate::error::{CoreError, CoreResult};
use crate::server::HandlerError;
use parking_lot::Mutex;
use rrq_net::rpc::{spawn_server, RpcClient, ServerGuard};
use rrq_net::NetworkBus;
use rrq_storage::codec::{put, Reader};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Server-side handle for soliciting intermediate input inside the
/// transaction.
pub trait Conversation {
    /// Show `output` to the client and block for its input.
    fn solicit(&mut self, output: &[u8]) -> Result<Vec<u8>, HandlerError>;
}

/// Wire format of a solicitation: `rid`, per-incarnation sequence number,
/// output bytes.
pub fn encode_solicit(rid: &str, seq: u32, output: &[u8]) -> Vec<u8> {
    let mut buf = Vec::new();
    put::string(&mut buf, rid);
    put::u32(&mut buf, seq);
    put::bytes(&mut buf, output);
    buf
}

/// Decode a solicitation.
pub fn decode_solicit(raw: &[u8]) -> CoreResult<(String, u32, Vec<u8>)> {
    let m = |e: rrq_storage::StorageError| CoreError::Malformed(e.to_string());
    let mut r = Reader::new(raw);
    Ok((
        r.string().map_err(m)?,
        r.u32().map_err(m)?,
        r.bytes().map_err(m)?,
    ))
}

/// Server-side conversation over RPC: each `solicit` is one call to the
/// client's conversation endpoint.
pub struct RpcConversation {
    client: RpcClient,
    target: String,
    rid: String,
    seq: u32,
    timeout: Duration,
}

impl RpcConversation {
    /// Build a conversation for one request incarnation. `client` is the
    /// server's private RPC endpoint; `target` the client's conversation
    /// endpoint; `rid` labels the log on the client side.
    pub fn new(client: RpcClient, target: impl Into<String>, rid: impl Into<String>) -> Self {
        RpcConversation {
            client,
            target: target.into(),
            rid: rid.into(),
            seq: 0,
            timeout: Duration::from_secs(2),
        }
    }

    /// Rounds solicited so far in this incarnation.
    pub fn rounds(&self) -> u32 {
        self.seq
    }
}

impl Conversation for RpcConversation {
    fn solicit(&mut self, output: &[u8]) -> Result<Vec<u8>, HandlerError> {
        let payload = encode_solicit(&self.rid, self.seq, output);
        self.seq += 1;
        self.client
            .call(&self.target, payload, self.timeout)
            // A client that can't answer (crash, partition) aborts the
            // server transaction; the request returns to its queue.
            .map_err(|e| HandlerError::Abort(format!("intermediate input unavailable: {e}")))
    }
}

/// Statistics from the client's conversation endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoLogStats {
    /// Inputs answered from the log (replays after server aborts).
    pub replayed: u64,
    /// Inputs solicited fresh from the user.
    pub fresh: u64,
    /// Log suffixes discarded because the replayed output diverged.
    pub divergences: u64,
}

/// One logged round: (intermediate output, intermediate input).
pub type IoEntry = (Vec<u8>, Vec<u8>);

/// The scripted/interactive user answering solicitations.
pub type UserFn = Arc<dyn Fn(&[u8]) -> Vec<u8> + Send + Sync>;

struct IoLogInner {
    /// rid → logged rounds.
    log: HashMap<String, Vec<IoEntry>>,
    stats: IoLogStats,
}

/// The client-side intermediate-I/O log with replay.
pub struct IoLog {
    inner: Mutex<IoLogInner>,
}

impl Default for IoLog {
    fn default() -> Self {
        Self::new()
    }
}

impl IoLog {
    /// Empty log.
    pub fn new() -> Self {
        IoLog {
            inner: Mutex::new(IoLogInner {
                log: HashMap::new(),
                stats: IoLogStats::default(),
            }),
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> IoLogStats {
        self.inner.lock().stats
    }

    /// Answer a solicitation: replay from the log when the output matches
    /// the previous incarnation, otherwise consult `user` and record.
    pub fn answer(
        &self,
        rid: &str,
        seq: u32,
        output: &[u8],
        user: &(dyn Fn(&[u8]) -> Vec<u8> + Sync),
    ) -> Vec<u8> {
        let mut g = self.inner.lock();
        let entries = g.log.entry(rid.to_string()).or_default();
        let i = seq as usize;
        if i < entries.len() {
            if entries[i].0 == output {
                let input = entries[i].1.clone();
                g.stats.replayed += 1;
                return input;
            }
            // Divergent incarnation: discard the remaining logged input.
            entries.truncate(i);
            g.stats.divergences += 1;
        }
        let input = user(output);
        g.log
            .get_mut(rid)
            .expect("entry created above")
            .push((output.to_vec(), input.clone()));
        g.stats.fresh += 1;
        input
    }

    /// Drop a request's log after its final reply is processed.
    pub fn forget(&self, rid: &str) {
        self.inner.lock().log.remove(rid);
    }
}

/// Spawn the client's conversation endpoint: answers solicitations with the
/// log + `user` function. Returns the guard that stops it.
pub fn spawn_conversation_endpoint(
    bus: &NetworkBus,
    endpoint: &str,
    log: Arc<IoLog>,
    user: UserFn,
) -> ServerGuard {
    spawn_server(bus, endpoint, move |env| {
        match decode_solicit(&env.payload) {
            Ok((rid, seq, output)) => log.answer(&rid, seq, &output, &*user),
            Err(_) => Vec::new(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solicit_codec_roundtrip() {
        let raw = encode_solicit("c/1", 3, b"amount?");
        let (rid, seq, out) = decode_solicit(&raw).unwrap();
        assert_eq!(
            (rid.as_str(), seq, out.as_slice()),
            ("c/1", 3, b"amount?".as_slice())
        );
    }

    #[test]
    fn iolog_replays_matching_prefix() {
        let log = IoLog::new();
        let user = |out: &[u8]| {
            let mut v = b"ans:".to_vec();
            v.extend_from_slice(out);
            v
        };
        // First incarnation: two fresh inputs.
        assert_eq!(log.answer("r", 0, b"q1", &user), b"ans:q1");
        assert_eq!(log.answer("r", 1, b"q2", &user), b"ans:q2");
        // Second incarnation (after a server abort): identical outputs →
        // replay, no user involvement.
        let poison = |_: &[u8]| -> Vec<u8> { panic!("user must not be asked on replay") };
        assert_eq!(log.answer("r", 0, b"q1", &poison), b"ans:q1");
        assert_eq!(log.answer("r", 1, b"q2", &poison), b"ans:q2");
        let s = log.stats();
        assert_eq!((s.fresh, s.replayed, s.divergences), (2, 2, 0));
    }

    #[test]
    fn iolog_discards_suffix_on_divergence() {
        let log = IoLog::new();
        let user = |out: &[u8]| out.to_vec();
        log.answer("r", 0, b"q1", &user);
        log.answer("r", 1, b"q2", &user);
        log.answer("r", 2, b"q3", &user);
        // Replay diverges at seq 1.
        assert_eq!(log.answer("r", 0, b"q1", &user), b"q1"); // replayed
        assert_eq!(log.answer("r", 1, b"DIFFERENT", &user), b"DIFFERENT"); // fresh
                                                                           // seq 2 must NOT replay the stale "q3" input even if the output
                                                                           // happens to match again.
        let s0 = log.stats();
        assert_eq!(s0.divergences, 1);
        assert_eq!(log.answer("r", 2, b"q3", &user), b"q3");
        let s = log.stats();
        assert_eq!(s.replayed, 1, "only seq 0 replayed after divergence");
    }

    #[test]
    fn iolog_forget_clears_request() {
        let log = IoLog::new();
        let user = |out: &[u8]| out.to_vec();
        log.answer("r", 0, b"q", &user);
        log.forget("r");
        // Fresh again.
        log.answer("r", 0, b"q", &user);
        assert_eq!(log.stats().fresh, 2);
        assert_eq!(log.stats().replayed, 0);
    }

    #[test]
    fn iolog_separate_rids_independent() {
        let log = IoLog::new();
        let user = |out: &[u8]| out.to_vec();
        log.answer("a", 0, b"q", &user);
        log.answer("b", 0, b"q", &user);
        assert_eq!(log.stats().fresh, 2);
    }
}
