//! The §6 application lock table.
//!
//! When the underlying database systems "won't hold locks across
//! transactions, the application can mimic database system locking by
//! creating a persistent database of locks, setting the appropriate locks
//! for each database object it accesses, and releasing all of these
//! 'application locks' just before the final transaction of the
//! multi-transaction request commits."
//!
//! The table lives in the ordinary recoverable store, so lock acquisition
//! and release commit atomically with the stage transactions that perform
//! them. The paper predicts — and experiment E6 measures — that "the
//! performance of this approach will be limited, due to the high overhead of
//! setting locks".

use crate::error::CoreResult;
use crate::rid::Rid;
use rrq_storage::kv::KvStore;
use std::sync::Arc;

/// Key of a lock record: `al/o/<resource>` → owner rid.
fn owner_key(resource: &str) -> Vec<u8> {
    format!("al/o/{resource}").into_bytes()
}

/// Reverse index: `al/r/<rid>/<resource>` → empty.
fn by_owner_key(rid: &Rid, resource: &str) -> Vec<u8> {
    format!("al/r/{}/{resource}", rid.to_attr()).into_bytes()
}

fn by_owner_prefix(rid: &Rid) -> Vec<u8> {
    format!("al/r/{}/", rid.to_attr()).into_bytes()
}

/// A persistent application-level lock table.
pub struct AppLockTable {
    store: Arc<KvStore>,
}

impl AppLockTable {
    /// Use `store` (normally the repository's durable store) for the table.
    pub fn new(store: Arc<KvStore>) -> Self {
        AppLockTable { store }
    }

    /// Try to lock `resource` for request `rid` inside transaction `txn`.
    /// Returns `false` when another request holds it (the caller should
    /// abort its stage transaction and let the request retry).
    pub fn acquire(&self, txn: u64, resource: &str, rid: &Rid) -> CoreResult<bool> {
        let key = owner_key(resource);
        match self.store.get(Some(txn), &key)? {
            Some(owner) if owner != rid.to_attr().into_bytes() => Ok(false),
            Some(_) => Ok(true), // re-entrant for the same request
            None => {
                self.store.put(txn, &key, rid.to_attr().as_bytes())?;
                self.store.put(txn, &by_owner_key(rid, resource), b"")?;
                Ok(true)
            }
        }
    }

    /// Current owner of `resource` (committed view).
    pub fn owner(&self, resource: &str) -> CoreResult<Option<Rid>> {
        Ok(self
            .store
            .get(None, &owner_key(resource))?
            .and_then(|raw| String::from_utf8(raw).ok())
            .and_then(|s| Rid::from_attr(&s)))
    }

    /// Release every lock held by `rid` inside `txn` — called "just before
    /// the final transaction … commits".
    pub fn release_all(&self, txn: u64, rid: &Rid) -> CoreResult<usize> {
        let rows = self.store.scan_prefix(Some(txn), &by_owner_prefix(rid))?;
        let prefix_len = by_owner_prefix(rid).len();
        let mut n = 0;
        for (k, _) in rows {
            let resource = String::from_utf8_lossy(&k[prefix_len..]).to_string();
            self.store.delete(txn, &owner_key(&resource))?;
            self.store.delete(txn, &k)?;
            n += 1;
        }
        Ok(n)
    }

    /// Number of locks currently held by `rid` (committed view).
    pub fn held_by(&self, rid: &Rid) -> CoreResult<usize> {
        Ok(self.store.scan_prefix(None, &by_owner_prefix(rid))?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrq_storage::disk::SimDisk;
    use rrq_storage::kv::KvOptions;

    fn store() -> Arc<KvStore> {
        KvStore::open(
            Arc::new(SimDisk::new()),
            Arc::new(SimDisk::new()),
            KvOptions::default(),
        )
        .unwrap()
        .0
    }

    #[test]
    fn acquire_conflict_and_release() {
        let s = store();
        let t = AppLockTable::new(Arc::clone(&s));
        let r1 = Rid::new("c", 1);
        let r2 = Rid::new("c", 2);

        s.begin(1).unwrap();
        assert!(t.acquire(1, "acct-7", &r1).unwrap());
        assert!(t.acquire(1, "acct-7", &r1).unwrap(), "re-entrant");
        s.commit(1).unwrap();
        assert_eq!(t.owner("acct-7").unwrap(), Some(r1.clone()));

        s.begin(2).unwrap();
        assert!(!t.acquire(2, "acct-7", &r2).unwrap(), "held by r1");
        s.abort(2).unwrap();

        s.begin(3).unwrap();
        assert_eq!(t.release_all(3, &r1).unwrap(), 1);
        s.commit(3).unwrap();
        assert_eq!(t.owner("acct-7").unwrap(), None);

        s.begin(4).unwrap();
        assert!(t.acquire(4, "acct-7", &r2).unwrap());
        s.commit(4).unwrap();
        assert_eq!(t.held_by(&r2).unwrap(), 1);
    }

    #[test]
    fn aborted_acquire_leaves_no_lock() {
        let s = store();
        let t = AppLockTable::new(Arc::clone(&s));
        let r1 = Rid::new("c", 1);
        s.begin(1).unwrap();
        assert!(t.acquire(1, "x", &r1).unwrap());
        s.abort(1).unwrap();
        assert_eq!(t.owner("x").unwrap(), None);
        assert_eq!(t.held_by(&r1).unwrap(), 0);
    }

    #[test]
    fn locks_survive_across_transactions_until_released() {
        // The whole point: unlike lock-manager locks, these persist between
        // the stages of a multi-transaction request.
        let s = store();
        let t = AppLockTable::new(Arc::clone(&s));
        let r1 = Rid::new("c", 1);
        s.begin(1).unwrap();
        t.acquire(1, "a", &r1).unwrap();
        t.acquire(1, "b", &r1).unwrap();
        s.commit(1).unwrap();
        // A different transaction (stage 2 of the same request) still owns.
        s.begin(2).unwrap();
        assert!(t.acquire(2, "a", &r1).unwrap());
        assert_eq!(t.release_all(2, &r1).unwrap(), 2);
        s.commit(2).unwrap();
        assert_eq!(t.held_by(&r1).unwrap(), 0);
    }
}
