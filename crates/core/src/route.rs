//! Clerk-side routing across repository partitions.
//!
//! A shared-nothing cluster exposes one [`QmApi`] endpoint per partition
//! (see [`crate::remote::QmRpcServer::spawn_partition`]). [`RoutedQm`]
//! recombines them into a single [`QmApi`]: queue-addressed operations go
//! straight to the owner computed by [`rrq_qm::route::partition_of`] — one
//! hop, no fan-out — and eid-addressed operations ([`QmApi::read`],
//! [`QmApi::kill`]) probe partitions in order, which is safe because
//! per-partition epoch bands make eids cluster-unique.
//!
//! The clerk itself never changes: it already speaks [`QmApi`], so handing
//! it a `RoutedQm` is all it takes to run against a partitioned cluster.
//! A network partition between the clerk and one endpoint therefore severs
//! exactly the queues that endpoint owns, leaving traffic to every other
//! partition untouched — the failure isolation shared-nothing promises.

use crate::api::QmApi;
use crate::error::CoreResult;
use rrq_qm::element::{Eid, Element};
use rrq_qm::ops::{DequeueOptions, EnqueueOptions};
use rrq_qm::registration::Registration;
use rrq_qm::route::partition_of;
use rrq_qm::QmError;
use std::sync::Arc;

/// One [`QmApi`] over many per-partition endpoints.
pub struct RoutedQm {
    parts: Vec<Arc<dyn QmApi>>,
}

impl RoutedQm {
    /// Combine per-partition endpoints; `parts[i]` must serve the queues
    /// partition `i` owns (same partition count as the repository).
    pub fn new(parts: Vec<Arc<dyn QmApi>>) -> Self {
        assert!(!parts.is_empty(), "at least one partition endpoint");
        RoutedQm { parts }
    }

    fn api_for(&self, queue: &str) -> &Arc<dyn QmApi> {
        rrq_obs::counter_inc("route.lookups");
        &self.parts[partition_of(queue, self.parts.len())]
    }
}

impl QmApi for RoutedQm {
    fn register(&self, queue: &str, registrant: &str, stable: bool) -> CoreResult<Registration> {
        self.api_for(queue).register(queue, registrant, stable)
    }

    fn deregister(&self, queue: &str, registrant: &str) -> CoreResult<()> {
        self.api_for(queue).deregister(queue, registrant)
    }

    fn enqueue(
        &self,
        queue: &str,
        registrant: &str,
        payload: &[u8],
        opts: EnqueueOptions,
    ) -> CoreResult<Eid> {
        self.api_for(queue)
            .enqueue(queue, registrant, payload, opts)
    }

    fn enqueue_unacked(
        &self,
        queue: &str,
        registrant: &str,
        payload: &[u8],
        opts: EnqueueOptions,
    ) -> CoreResult<()> {
        self.api_for(queue)
            .enqueue_unacked(queue, registrant, payload, opts)
    }

    fn dequeue(&self, queue: &str, registrant: &str, opts: DequeueOptions) -> CoreResult<Element> {
        self.api_for(queue).dequeue(queue, registrant, opts)
    }

    fn read(&self, eid: Eid) -> CoreResult<Element> {
        // Probe owners in order; a partitioned/crashed endpoint's error is
        // kept only if no later partition knows the element.
        let mut last = None;
        for api in &self.parts {
            match api.read(eid) {
                Ok(e) => return Ok(e),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| QmError::NoSuchElement(eid.raw()).into()))
    }

    fn kill(&self, eid: Eid) -> CoreResult<bool> {
        let mut last = None;
        for api in &self.parts {
            match api.kill(eid) {
                Ok(true) => return Ok(true),
                Ok(false) => {}
                Err(e) => last = Some(e),
            }
        }
        match last {
            Some(e) => Err(e),
            None => Ok(false),
        }
    }

    fn depth(&self, queue: &str) -> CoreResult<usize> {
        self.api_for(queue).depth(queue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::LocalQm;
    use rrq_qm::repository::{RepoDisks, RepoOptions, Repository};

    #[test]
    fn routed_local_endpoints_roundtrip() {
        let (repo, _) = Repository::open_with(
            "routed",
            RepoDisks::new(),
            RepoOptions {
                repo_partitions: 4,
                ..RepoOptions::default()
            },
        )
        .unwrap();
        let repo = Arc::new(repo);
        // One LocalQm per partition is overkill (LocalQm already routes),
        // but it exercises the RoutedQm paths with real partition counts.
        let parts: Vec<Arc<dyn QmApi>> = (0..4)
            .map(|_| Arc::new(LocalQm::new(Arc::clone(&repo))) as Arc<dyn QmApi>)
            .collect();
        let routed = RoutedQm::new(parts);
        for i in 0..8 {
            let q = format!("rq{i}");
            repo.create_queue_defaults(&q).unwrap();
            routed.register(&q, "c", false).unwrap();
            let eid = routed
                .enqueue(&q, "c", q.as_bytes(), EnqueueOptions::default())
                .unwrap();
            assert_eq!(routed.depth(&q).unwrap(), 1);
            assert_eq!(routed.read(eid).unwrap().payload, q.as_bytes());
            let e = routed.dequeue(&q, "c", DequeueOptions::default()).unwrap();
            assert_eq!(e.eid, eid);
        }
    }

    #[test]
    fn routed_kill_probes_partitions() {
        let (repo, _) = Repository::open_with(
            "routed2",
            RepoDisks::new(),
            RepoOptions {
                repo_partitions: 4,
                ..RepoOptions::default()
            },
        )
        .unwrap();
        let repo = Arc::new(repo);
        let parts: Vec<Arc<dyn QmApi>> = (0..4)
            .map(|_| Arc::new(LocalQm::new(Arc::clone(&repo))) as Arc<dyn QmApi>)
            .collect();
        let routed = RoutedQm::new(parts);
        // Find a queue on a non-zero partition so the probe must walk.
        let q = (0..64)
            .map(|i| format!("kq{i}"))
            .find(|q| repo.partition_of(q) != 0)
            .unwrap();
        repo.create_queue_defaults(&q).unwrap();
        routed.register(&q, "c", false).unwrap();
        let eid = routed
            .enqueue(&q, "c", b"bye", EnqueueOptions::default())
            .unwrap();
        assert!(routed.kill(eid).unwrap());
        assert_eq!(routed.depth(&q).unwrap(), 0);
    }
}
