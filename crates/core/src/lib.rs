//! # rrq-core
//!
//! The paper's contribution: fault-tolerant request/reply processing built on
//! recoverable queues ("Implementing Recoverable Requests Using Queues",
//! Bernstein, Hsu & Mann, SIGMOD 1990).
//!
//! The crate implements every protocol in the paper:
//!
//! * **The Client Model** (§3, Figs 1–2): [`clerk::Clerk`] exposes
//!   `Connect` / `Disconnect` / `Send` / `Receive` / `Rereceive` (plus the §5
//!   `Transceive` merge and §7 `Cancel-last-request`), and
//!   [`client::ClientRuntime`] is the fault-tolerant sequential client
//!   program with its connect-time resynchronization. Together they provide
//!   the paper's three guarantees — *request/reply matching*, *exactly-once
//!   request processing*, and *at-least-once reply processing* — verified by
//!   the `rrq-sim` oracles under crash and partition schedules.
//! * **The System Model** (§5, Figs 4–5): [`server::Server`] runs the
//!   dequeue → process → enqueue-reply → commit loop; multiple servers share
//!   one request queue for load sharing (§1).
//! * **Multi-transaction requests** (§6, Fig 6): [`pipeline`] chains stage
//!   servers over intermediate queues, carrying request state in the
//!   elements; request-level serializability is available via §6 lock
//!   inheritance or via the [`app_lock`] persistent application-lock table.
//! * **Cancellation** (§7): in-flight kill via the QM's `KillElement`
//!   ([`clerk::Clerk::cancel_last_request`]) and post-commit compensation via
//!   [`saga`].
//! * **Interactive requests** (§8, Fig 7): the pseudo-conversational mapping
//!   ([`interactive`]) and the single-transaction conversation with logged,
//!   replayable intermediate I/O ([`conversation`]).
//! * **Testable devices and reply processing** (§3): [`device`] has the
//!   ticket-printer with readable state that makes reply processing
//!   exactly-once, and duplicate-detecting displays for the idempotent case.
//! * **Clerk↔QM transport** (§2, §5): the clerk runs against any
//!   [`api::QmApi`] — in-process ([`api::LocalQm`]) or across the simulated
//!   network ([`remote::RemoteQm`] / [`remote::QmRpcServer`]), where `Send`
//!   may use acknowledged RPC or the §5 one-way-message optimization.

pub mod api;
pub mod app_lock;
pub mod clerk;
pub mod client;
pub mod conversation;
pub mod designs;
pub mod device;
pub mod error;
pub mod interactive;
pub mod pipeline;
pub mod planned;
pub mod remote;
pub mod request;
pub mod rid;
pub mod route;
pub mod saga;
pub mod scheduler;
pub mod server;
pub mod tagcodec;
pub mod threads;

pub use api::{LocalQm, QmApi};
pub use clerk::{Clerk, ClerkConfig, ConnectInfo, SendMode};
pub use client::{ClientRuntime, ResyncAction};
pub use error::{CoreError, CoreResult};
pub use planned::{AccessFn, EpochWindow, PlannedConfig, PlannedPool};
pub use request::{Reply, ReplyStatus, Request};
pub use rid::Rid;
pub use route::RoutedQm;
pub use server::{HandlerError, HandlerOutcome, Server, ServerConfig};
