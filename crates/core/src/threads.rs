//! Concurrent threads within one client — the §5 extension.
//!
//! "Another extension is to allow concurrency within a client. This amounts
//! to identifying a client by both a client-id and a 'thread'-id. The system
//! now maintains an array of [req-tag, reply-tag] pairs for the client, one
//! for each thread-id. The entire array is returned by a Connect operation."
//!
//! Each thread is a full Client-Model participant: its registrant name is
//! `client#thread`, it has a private reply queue, and its resynchronization
//! state is independent — one thread crashing and resyncing does not disturb
//! the others.

use crate::api::QmApi;
use crate::clerk::{Clerk, ClerkConfig, ConnectInfo, SendMode};
use crate::error::{CoreError, CoreResult};
use std::sync::Arc;
use std::time::Duration;

/// Spawn a named worker thread.
///
/// This is the single sanctioned spawn point of the workspace (enforced by
/// the `no-raw-spawn` lint in `rrq-check`): routing every worker through
/// one helper gives threads debugger-visible names and one place to hang
/// future instrumentation.
pub fn spawn_named<T: Send + 'static>(
    name: impl Into<String>,
    f: impl FnOnce() -> T + Send + 'static,
) -> std::thread::JoinHandle<T> {
    let name = name.into();
    std::thread::Builder::new()
        .name(name.clone())
        .spawn(f)
        .unwrap_or_else(|e| panic!("cannot spawn thread `{name}`: {e}"))
}

/// A clerk array for one multi-threaded client.
pub struct ThreadedClerk {
    clerks: Vec<Clerk>,
    client_id: String,
}

impl ThreadedClerk {
    /// Build `threads` clerks over one QM transport. Thread `t` registers as
    /// `client#t` and replies arrive on `reply.client.t`.
    pub fn new(
        api: Arc<dyn QmApi>,
        client_id: impl Into<String>,
        request_queue: impl Into<String>,
        threads: usize,
    ) -> Self {
        let client_id = client_id.into();
        let request_queue = request_queue.into();
        let clerks = (0..threads.max(1))
            .map(|t| {
                let cfg = ClerkConfig {
                    client_id: format!("{client_id}#{t}"),
                    request_queue: request_queue.clone(),
                    reply_queue: format!("reply.{client_id}.{t}"),
                    send_mode: SendMode::Acked,
                    receive_block: Duration::from_secs(10),
                };
                Clerk::new(Arc::clone(&api), cfg)
            })
            .collect();
        ThreadedClerk { clerks, client_id }
    }

    /// The client id (without the thread suffix).
    pub fn client_id(&self) -> &str {
        &self.client_id
    }

    /// Number of threads.
    pub fn threads(&self) -> usize {
        self.clerks.len()
    }

    /// Connect every thread; returns the per-thread array of
    /// resynchronization triples — the §5 "entire array … returned by a
    /// Connect operation".
    pub fn connect_all(&self) -> CoreResult<Vec<ConnectInfo>> {
        self.clerks.iter().map(|c| c.connect()).collect()
    }

    /// Disconnect every thread.
    pub fn disconnect_all(&self) -> CoreResult<()> {
        for c in &self.clerks {
            c.disconnect()?;
        }
        Ok(())
    }

    /// The clerk of one thread.
    pub fn thread(&self, t: usize) -> CoreResult<&Clerk> {
        self.clerks
            .get(t)
            .ok_or_else(|| CoreError::Protocol(format!("no thread {t}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::LocalQm;
    use crate::rid::Rid;
    use crate::server::spawn_pool;
    use rrq_qm::repository::Repository;
    use std::sync::atomic::Ordering;

    fn setup(threads: usize) -> (Arc<Repository>, ThreadedClerk) {
        let repo = Arc::new(Repository::create("threaded").unwrap());
        repo.create_queue_defaults("req").unwrap();
        for t in 0..threads {
            repo.create_queue_defaults(&format!("reply.multi.{t}"))
                .unwrap();
        }
        let api = Arc::new(LocalQm::new(Arc::clone(&repo)));
        let tc = ThreadedClerk::new(api, "multi", "req", threads);
        (repo, tc)
    }

    #[test]
    fn threads_have_independent_sessions() {
        let (repo, tc) = setup(3);
        let (_s, handles, stop) = spawn_pool(
            &repo,
            "req",
            2,
            Arc::new(|_ctx, req: &crate::request::Request| {
                Ok(crate::server::HandlerOutcome::Reply(req.body.clone()))
            }),
        )
        .unwrap();

        let infos = tc.connect_all().unwrap();
        assert_eq!(infos.len(), 3);
        assert!(infos.iter().all(|i| i.s_rid.is_none()));

        // Thread 0 completes a request; thread 1 sends and "crashes".
        let c0 = tc.thread(0).unwrap();
        c0.send("echo", b"t0".to_vec(), Rid::new("multi#0", 1))
            .unwrap();
        let r0 = c0.receive(b"").unwrap();
        assert_eq!(r0.body, b"t0");

        let c1 = tc.thread(1).unwrap();
        c1.send("echo", b"t1".to_vec(), Rid::new("multi#1", 1))
            .unwrap();
        // (crash: no receive)

        // A fresh incarnation of the whole client: the per-thread array shows
        // thread 0 complete, thread 1 outstanding, thread 2 untouched.
        let api = Arc::new(LocalQm::new(Arc::clone(&repo)));
        let tc2 = ThreadedClerk::new(api, "multi", "req", 3);
        let infos2 = tc2.connect_all().unwrap();
        assert_eq!(infos2[0].s_rid, Some(Rid::new("multi#0", 1)));
        assert_eq!(infos2[0].r_rid, Some(Rid::new("multi#0", 1)));
        assert_eq!(infos2[1].s_rid, Some(Rid::new("multi#1", 1)));
        assert_eq!(infos2[1].r_rid, None, "thread 1 has an outstanding request");
        assert_eq!(infos2[2].s_rid, None);

        // Thread 1's new incarnation picks up its reply.
        let c1b = tc2.thread(1).unwrap();
        let r1 = c1b.receive(b"").unwrap();
        assert_eq!(r1.rid, Rid::new("multi#1", 1));
        assert_eq!(r1.body, b"t1");

        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn thread_index_bounds_checked() {
        let (_repo, tc) = setup(2);
        assert!(tc.thread(0).is_ok());
        assert!(tc.thread(5).is_err());
        assert_eq!(tc.threads(), 2);
        assert_eq!(tc.client_id(), "multi");
    }
}
