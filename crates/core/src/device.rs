//! Output devices for reply processing (§3).
//!
//! Two cases from the paper:
//!
//! * [`Display`] — reply processing is idempotent "if the client is
//!   communicating with a display, and the user supplies a unique id for
//!   each request … the user can detect and ignore duplicate replies".
//!   At-least-once processing is acceptable; duplicates are counted.
//! * [`TicketPrinter`] — reply processing is **not** idempotent ("printing a
//!   ticket or dispensing cash"), but the device is *testable* [Pausch 88]:
//!   "the client can read the state of the device, such as the next ticket
//!   to be printed". The client reads the ticket counter before Receive,
//!   stores it in the ckpt, and after a failure compares the device state
//!   with the ckpt returned by Connect — if they differ, the reply was
//!   already processed. This upgrades at-least-once to exactly-once.

use crate::client::ReplyProcessor;
use crate::request::Reply;
use crate::rid::Rid;
use std::collections::HashSet;

/// An idempotent display with user-level duplicate detection.
#[derive(Debug, Default)]
pub struct Display {
    shown: Vec<(Rid, Vec<u8>)>,
    seen: HashSet<Rid>,
    duplicates: u64,
}

impl Display {
    /// A blank display.
    pub fn new() -> Self {
        Self::default()
    }

    /// Everything shown, in order (duplicates excluded).
    pub fn shown(&self) -> &[(Rid, Vec<u8>)] {
        &self.shown
    }

    /// Duplicate replies the "user" detected and ignored.
    pub fn duplicates_ignored(&self) -> u64 {
        self.duplicates
    }
}

impl ReplyProcessor for Display {
    fn checkpoint(&mut self) -> Vec<u8> {
        Vec::new() // a display needs no checkpoint
    }

    fn process(&mut self, rid: &Rid, reply: &Reply) {
        if self.seen.contains(rid) {
            self.duplicates += 1; // user sees the id and ignores the repeat
            return;
        }
        self.seen.insert(rid.clone());
        self.shown.push((rid.clone(), reply.body.clone()));
    }

    fn already_processed(&mut self, rid: &Rid, _ckpt: Option<&[u8]>) -> bool {
        // The display itself remembers (models the user recognizing the id).
        self.seen.contains(rid)
    }
}

/// A non-idempotent, testable ticket printer.
///
/// The physical device survives client-process crashes, so tests keep the
/// printer alive while restarting the [`crate::client::ClientRuntime`]
/// around it.
#[derive(Debug, Default)]
pub struct TicketPrinter {
    next_ticket: u64,
    printed: Vec<(u64, Rid, Vec<u8>)>,
}

impl TicketPrinter {
    /// A printer with ticket 0 loaded.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read the device state: the next ticket number (§3's testable device).
    pub fn state(&self) -> u64 {
        self.next_ticket
    }

    /// Every ticket ever printed: `(ticket_no, rid, body)`.
    pub fn printed(&self) -> &[(u64, Rid, Vec<u8>)] {
        &self.printed
    }

    /// True if any rid was printed more than once — the failure mode the
    /// testable-device protocol exists to prevent.
    pub fn has_duplicate_prints(&self) -> bool {
        let mut seen = HashSet::new();
        self.printed
            .iter()
            .any(|(_, rid, _)| !seen.insert(rid.clone()))
    }
}

impl ReplyProcessor for TicketPrinter {
    fn checkpoint(&mut self) -> Vec<u8> {
        // "The client reads the state (e.g., the ticket number) before
        // receiving the reply, and uses that state as part of the ckpt."
        self.next_ticket.to_le_bytes().to_vec()
    }

    fn process(&mut self, rid: &Rid, reply: &Reply) {
        // Printing is the non-idempotent action.
        self.printed
            .push((self.next_ticket, rid.clone(), reply.body.clone()));
        self.next_ticket += 1;
    }

    fn already_processed(&mut self, _rid: &Rid, ckpt: Option<&[u8]>) -> bool {
        // Compare the device state with the ckpt recorded at the Receive:
        // if the printer advanced past it, the ticket was printed.
        let Some(ckpt) = ckpt else {
            return false;
        };
        let Ok(bytes) = <[u8; 8]>::try_from(ckpt) else {
            return false;
        };
        let at_receive = u64::from_le_bytes(bytes);
        self.next_ticket > at_receive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ReplyStatus;

    fn reply(rid: &Rid) -> Reply {
        Reply {
            rid: rid.clone(),
            status: ReplyStatus::Ok,
            body: b"ticket!".to_vec(),
        }
    }

    #[test]
    fn printer_state_advances_on_print() {
        let mut p = TicketPrinter::new();
        assert_eq!(p.state(), 0);
        let rid = Rid::new("c", 1);
        p.process(&rid, &reply(&rid));
        assert_eq!(p.state(), 1);
        assert_eq!(p.printed().len(), 1);
    }

    #[test]
    fn testable_device_answers_already_processed() {
        let mut p = TicketPrinter::new();
        let rid = Rid::new("c", 1);
        // Checkpoint taken before Receive.
        let ckpt = p.checkpoint();
        // Crash before processing: device state equals ckpt → not processed.
        assert!(!p.already_processed(&rid, Some(&ckpt)));
        // Process, then crash: device advanced past ckpt → processed.
        p.process(&rid, &reply(&rid));
        assert!(p.already_processed(&rid, Some(&ckpt)));
    }

    #[test]
    fn missing_or_bad_ckpt_means_not_processed() {
        let mut p = TicketPrinter::new();
        let rid = Rid::new("c", 1);
        assert!(!p.already_processed(&rid, None));
        assert!(!p.already_processed(&rid, Some(b"junk")));
    }

    #[test]
    fn duplicate_detection_helper() {
        let mut p = TicketPrinter::new();
        let rid = Rid::new("c", 1);
        p.process(&rid, &reply(&rid));
        assert!(!p.has_duplicate_prints());
        p.process(&rid, &reply(&rid));
        assert!(p.has_duplicate_prints());
    }
}
