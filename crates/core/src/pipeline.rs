//! Multi-transaction requests (§6, Fig 6).
//!
//! "There is a sequence of server processes, which executes the sequence of
//! transactions for the request … Each server registers with a different
//! pair of queues." A stage's handler receives the request (with the state
//! the previous stage stored *in the request* — §6: local program variables
//! cannot be relied upon) and either continues the chain or completes it
//! with a reply.
//!
//! Request-level serializability is off by default (the paper: "the
//! execution of requests is not serializable; only the execution of the
//! component transactions is"). Two §6 remedies are provided:
//!
//! * [`Serializability::InheritLocks`] — each stage transaction's locks are
//!   inherited by the next stage's transaction, so the whole request holds
//!   its locks end-to-end;
//! * an application lock table ([`crate::app_lock`]) for systems that cannot
//!   hold lock-manager locks across transactions.

use crate::error::CoreResult;
use crate::request::Request;
use crate::server::{Handler, HandlerError, HandlerOutcome, Server, ServerConfig, ServerCtx};
use rrq_qm::repository::Repository;
use std::sync::Arc;

/// What a stage decided.
#[derive(Debug, Clone)]
pub enum StageResult {
    /// Continue to the next stage, carrying `state` in the request.
    Next(Vec<u8>),
    /// The request is complete; reply with this body.
    Done(Vec<u8>),
}

/// A stage function: `(ctx, request, stage_index) → result`.
pub type StageFn =
    Arc<dyn Fn(&ServerCtx<'_>, &Request, usize) -> Result<StageResult, HandlerError> + Send + Sync>;

/// Request-level serializability discipline (§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Serializability {
    /// Component transactions only (the default; requests may interleave).
    None,
    /// Lock inheritance: locks transfer stage-to-stage and release only when
    /// the final transaction commits.
    InheritLocks,
}

/// Builds the chain of stage servers for one multi-transaction request type.
pub struct Pipeline {
    /// Input queue of each stage, in order.
    pub queues: Vec<String>,
    /// The per-stage logic.
    pub stage_fn: StageFn,
    /// Serializability mode.
    pub mode: Serializability,
}

impl Pipeline {
    /// Construct the stage servers. `queues[i]` feeds stage `i`; stage `i`
    /// forwards to `queues[i+1]`; the last stage must return
    /// [`StageResult::Done`].
    pub fn build_servers(&self, repo: &Arc<Repository>) -> CoreResult<Vec<Arc<Server>>> {
        self.build_servers_pool(repo, 1)
    }

    /// Like [`Pipeline::build_servers`] but with `per_stage` servers sharing
    /// each stage queue.
    ///
    /// With [`Serializability::InheritLocks`], more than one server per
    /// stage is strongly advised: a single-threaded stage can livelock on
    /// head-of-line inversion — the FIFO head needs a lock still *parked* by
    /// a request queued behind it, and a lone server retries the head
    /// forever. A second server adopts the later request's parked locks
    /// (releasing them even if it then aborts), restoring progress. This is
    /// the §6 lock-contention hazard made concrete.
    pub fn build_servers_pool(
        &self,
        repo: &Arc<Repository>,
        per_stage: usize,
    ) -> CoreResult<Vec<Arc<Server>>> {
        let mut servers = Vec::with_capacity(self.queues.len() * per_stage.max(1));
        for k in 0..per_stage.max(1) {
            for (i, q) in self.queues.iter().enumerate() {
                servers.push(self.build_stage_server(repo, i, q, k)?);
            }
        }
        Ok(servers)
    }

    fn build_stage_server(
        &self,
        repo: &Arc<Repository>,
        i: usize,
        q: &str,
        replica: usize,
    ) -> CoreResult<Arc<Server>> {
        {
            let next_queue = self.queues.get(i + 1).cloned();
            let stage_fn = Arc::clone(&self.stage_fn);
            let mode = self.mode;
            let is_last = next_queue.is_none();
            let handler: Handler = Arc::new(move |ctx, req| match stage_fn(ctx, req, i)? {
                StageResult::Done(body) => Ok(HandlerOutcome::Reply(body)),
                StageResult::Next(state) => {
                    let Some(nq) = &next_queue else {
                        return Err(HandlerError::Reject(format!(
                            "stage {i} is final but tried to continue"
                        )));
                    };
                    let mut fwd = req.clone();
                    fwd.state = state;
                    fwd.inherit_txn = None;
                    let _ = is_last;
                    match mode {
                        Serializability::None => Ok(HandlerOutcome::Forward {
                            queue: nq.clone(),
                            request: fwd,
                        }),
                        Serializability::InheritLocks => Ok(HandlerOutcome::ForwardInheriting {
                            queue: nq.clone(),
                            request: fwd,
                        }),
                    }
                }
            });
            let cfg = ServerConfig::new(format!("stage-{i}.{replica}"), q);
            Server::new(Arc::clone(repo), cfg, handler)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{LocalQm, QmApi};
    use crate::request::{Reply, ReplyStatus};
    use crate::rid::Rid;
    use rrq_qm::ops::{DequeueOptions, EnqueueOptions};
    use rrq_storage::codec::{Decode, Encode};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    /// Drive a 3-stage pipeline end to end: each stage appends its index to
    /// the state; the final stage replies with the accumulated state.
    #[test]
    fn three_stage_pipeline_completes() {
        let repo = Arc::new(Repository::create("pipe").unwrap());
        for q in ["s0", "s1", "s2", "reply.c"] {
            repo.create_queue_defaults(q).unwrap();
        }
        let stage_fn: StageFn = Arc::new(|_ctx, req, i| {
            let mut state = req.state.clone();
            state.push(b'0' + i as u8);
            if i == 2 {
                Ok(StageResult::Done(state))
            } else {
                Ok(StageResult::Next(state))
            }
        });
        let pipeline = Pipeline {
            queues: vec!["s0".into(), "s1".into(), "s2".into()],
            stage_fn,
            mode: Serializability::None,
        };
        let servers = pipeline.build_servers(&repo).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let handles: Vec<_> = servers.iter().map(|s| s.spawn(Arc::clone(&stop))).collect();

        let api = LocalQm::new(Arc::clone(&repo));
        api.register("s0", "c", false).unwrap();
        api.register("reply.c", "c", false).unwrap();
        let req = Request::new(Rid::new("c", 1), "reply.c", "chain", vec![]);
        api.enqueue("s0", "c", &req.encode_to_vec(), EnqueueOptions::default())
            .unwrap();

        let elem = api
            .dequeue(
                "reply.c",
                "c",
                DequeueOptions {
                    block: Some(Duration::from_secs(10)),
                    ..Default::default()
                },
            )
            .unwrap();
        let reply = Reply::decode_all(&elem.payload).unwrap();
        assert_eq!(reply.status, ReplyStatus::Ok);
        assert_eq!(reply.body, b"012");
        assert_eq!(reply.rid, Rid::new("c", 1));

        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
    }

    /// With lock inheritance, a resource locked by stage 0 stays locked
    /// until the final stage commits.
    #[test]
    fn lock_inheritance_holds_across_stages() {
        use rrq_txn::{LockKey, LockMode};
        let repo = Arc::new(Repository::create("pipe-locks").unwrap());
        for q in ["t0", "t1", "reply.c"] {
            repo.create_queue_defaults(q).unwrap();
        }
        // Stage 0 locks the account; stage 1 sleeps then completes. Between
        // the two commits a third party must NOT be able to take the lock.
        const ACCT_NS: u32 = 99;
        let stage_fn: StageFn = Arc::new(move |ctx, _req, i| {
            if i == 0 {
                ctx.txn
                    .lock_exclusive(&LockKey::new(ACCT_NS, "acct-1"))
                    .map_err(|e| HandlerError::Abort(e.to_string()))?;
                Ok(StageResult::Next(b"locked".to_vec()))
            } else {
                std::thread::sleep(Duration::from_millis(150));
                Ok(StageResult::Done(b"done".to_vec()))
            }
        });
        let pipeline = Pipeline {
            queues: vec!["t0".into(), "t1".into()],
            stage_fn,
            mode: Serializability::InheritLocks,
        };
        let servers = pipeline.build_servers(&repo).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let handles: Vec<_> = servers.iter().map(|s| s.spawn(Arc::clone(&stop))).collect();

        let api = LocalQm::new(Arc::clone(&repo));
        api.register("t0", "c", false).unwrap();
        api.register("reply.c", "c", false).unwrap();
        let req = Request::new(Rid::new("c", 1), "reply.c", "locked-chain", vec![]);
        api.enqueue("t0", "c", &req.encode_to_vec(), EnqueueOptions::default())
            .unwrap();

        // Poll: while the request is between stages, the lock must be held.
        std::thread::sleep(Duration::from_millis(60));
        let intruder = 123_456_789u64;
        let locked_midway = repo
            .tm()
            .locks()
            .try_lock(intruder, &LockKey::new(ACCT_NS, "acct-1"), LockMode::Shared)
            .is_err();
        repo.tm().locks().unlock_all(intruder);

        let elem = api
            .dequeue(
                "reply.c",
                "c",
                DequeueOptions {
                    block: Some(Duration::from_secs(10)),
                    ..Default::default()
                },
            )
            .unwrap();
        let reply = Reply::decode_all(&elem.payload).unwrap();
        assert_eq!(reply.body, b"done");
        assert!(
            locked_midway,
            "account lock must be held across the stage boundary"
        );
        // After the final commit the lock is freed. The reply becomes
        // visible a moment before the committing thread releases its locks
        // (normal strict 2PL: release follows commit), so poll briefly.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        loop {
            match repo.tm().locks().try_lock(
                intruder,
                &LockKey::new(ACCT_NS, "acct-1"),
                LockMode::Shared,
            ) {
                Ok(()) => break,
                Err(_) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => panic!("lock never released after final commit: {e}"),
            }
        }

        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
    }
}
