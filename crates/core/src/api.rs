//! The clerk's view of a queue manager.
//!
//! §2: "the client accesses queues outside of a transaction, while the
//! server accesses queues within transactions. In this sense, the queue is a
//! gateway between the non-transaction world of front-ends and the
//! transactional world of back-ends."
//!
//! [`QmApi`] is that gateway: each operation is atomic on the QM node (a
//! system transaction there) but the caller holds no transaction. The clerk
//! is written against this trait, so it runs identically against an
//! in-process repository ([`LocalQm`]) or a remote one over the simulated
//! network ([`crate::remote::RemoteQm`]).

use crate::error::CoreResult;
use rrq_qm::element::{Eid, Element};
use rrq_qm::ops::{DequeueOptions, EnqueueOptions, QueueHandle};
use rrq_qm::registration::Registration;
use rrq_qm::repository::Repository;
use rrq_qm::QmError;
use std::sync::Arc;

/// Non-transactional queue access for front-end processes.
pub trait QmApi: Send + Sync {
    /// `Register` (§4.3): idempotent; returns the stable last-operation
    /// record for recovering registrants.
    fn register(&self, queue: &str, registrant: &str, stable: bool) -> CoreResult<Registration>;

    /// `Deregister` (§4.3).
    fn deregister(&self, queue: &str, registrant: &str) -> CoreResult<()>;

    /// Atomic enqueue; when this returns, the element is stably stored
    /// ("When Send returns, the client knows that the request was stably
    /// stored", §5).
    fn enqueue(
        &self,
        queue: &str,
        registrant: &str,
        payload: &[u8],
        opts: EnqueueOptions,
    ) -> CoreResult<Eid>;

    /// Best-effort enqueue with no acknowledgement (§5's one-way-message
    /// Send optimization). Local implementations may simply acknowledge.
    fn enqueue_unacked(
        &self,
        queue: &str,
        registrant: &str,
        payload: &[u8],
        opts: EnqueueOptions,
    ) -> CoreResult<()>;

    /// Atomic dequeue (optionally blocking via `opts.block`).
    fn dequeue(&self, queue: &str, registrant: &str, opts: DequeueOptions) -> CoreResult<Element>;

    /// `Read` (§4.2): fetch by eid without modification; works for retained
    /// (already dequeued) elements too.
    fn read(&self, eid: Eid) -> CoreResult<Element>;

    /// `KillElement` (§7).
    fn kill(&self, eid: Eid) -> CoreResult<bool>;

    /// Live depth of a queue (diagnostics, batching decisions).
    fn depth(&self, queue: &str) -> CoreResult<usize>;
}

/// In-process implementation over a [`Repository`].
pub struct LocalQm {
    repo: Arc<Repository>,
}

impl LocalQm {
    /// Wrap a repository.
    pub fn new(repo: Arc<Repository>) -> Self {
        LocalQm { repo }
    }

    /// The underlying repository.
    pub fn repo(&self) -> &Arc<Repository> {
        &self.repo
    }

    fn handle(queue: &str, registrant: &str) -> QueueHandle {
        QueueHandle {
            queue: queue.to_string(),
            registrant: registrant.to_string(),
        }
    }
}

impl QmApi for LocalQm {
    fn register(&self, queue: &str, registrant: &str, stable: bool) -> CoreResult<Registration> {
        let (_, reg) = self
            .repo
            .qm_for(queue)
            .register(queue, registrant, stable)?;
        Ok(reg)
    }

    fn deregister(&self, queue: &str, registrant: &str) -> CoreResult<()> {
        Ok(self
            .repo
            .qm_for(queue)
            .deregister(&Self::handle(queue, registrant))?)
    }

    fn enqueue(
        &self,
        queue: &str,
        registrant: &str,
        payload: &[u8],
        opts: EnqueueOptions,
    ) -> CoreResult<Eid> {
        let h = Self::handle(queue, registrant);
        Ok(self.repo.autocommit_on(queue, |t| {
            self.repo
                .qm_for(queue)
                .enqueue(t.id().raw(), &h, payload, opts)
        })?)
    }

    fn enqueue_unacked(
        &self,
        queue: &str,
        registrant: &str,
        payload: &[u8],
        opts: EnqueueOptions,
    ) -> CoreResult<()> {
        self.enqueue(queue, registrant, payload, opts).map(|_| ())
    }

    fn dequeue(&self, queue: &str, registrant: &str, opts: DequeueOptions) -> CoreResult<Element> {
        let h = Self::handle(queue, registrant);
        Ok(self.repo.autocommit_on(queue, |t| {
            self.repo.qm_for(queue).dequeue(t.id().raw(), &h, opts)
        })?)
    }

    fn read(&self, eid: Eid) -> CoreResult<Element> {
        // Eids are cluster-unique (per-partition epoch bands), so probe
        // partitions in order; at most one can know the element.
        let mut last = QmError::NoSuchElement(eid.raw());
        for p in 0..self.repo.partitions() {
            match self.repo.qm_at(p).read(eid) {
                Ok(e) => return Ok(e),
                Err(QmError::NoSuchElement(_)) if p + 1 < self.repo.partitions() => continue,
                Err(e) => last = e,
            }
        }
        Err(last.into())
    }

    fn kill(&self, eid: Eid) -> CoreResult<bool> {
        for p in 0..self.repo.partitions() {
            if self.repo.qm_at(p).kill_element(eid)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    fn depth(&self, queue: &str) -> CoreResult<usize> {
        Ok(self.repo.qm_for(queue).depth(queue)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrq_qm::QmError;

    #[test]
    fn local_qm_roundtrip() {
        let repo = Arc::new(Repository::create("api").unwrap());
        repo.create_queue_defaults("q").unwrap();
        let api = LocalQm::new(Arc::clone(&repo));
        api.register("q", "c", true).unwrap();
        let eid = api
            .enqueue("q", "c", b"x", EnqueueOptions::default())
            .unwrap();
        assert_eq!(api.depth("q").unwrap(), 1);
        assert_eq!(api.read(eid).unwrap().payload, b"x");
        let e = api.dequeue("q", "c", DequeueOptions::default()).unwrap();
        assert_eq!(e.eid, eid);
        assert_eq!(api.depth("q").unwrap(), 0);
        // Retained read still works after dequeue.
        assert_eq!(api.read(eid).unwrap().payload, b"x");
        api.deregister("q", "c").unwrap();
    }

    #[test]
    fn local_qm_kill() {
        let repo = Arc::new(Repository::create("api2").unwrap());
        repo.create_queue_defaults("q").unwrap();
        let api = LocalQm::new(repo);
        api.register("q", "c", false).unwrap();
        let eid = api
            .enqueue("q", "c", b"x", EnqueueOptions::default())
            .unwrap();
        assert!(api.kill(eid).unwrap());
        assert!(matches!(
            api.dequeue("q", "c", DequeueOptions::default()),
            Err(crate::error::CoreError::Qm(QmError::Empty(_)))
        ));
    }
}
