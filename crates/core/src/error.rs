//! Core-layer errors.

use rrq_net::NetError;
use rrq_qm::QmError;
use rrq_storage::StorageError;
use rrq_txn::TxnError;
use std::fmt;

/// Result alias for the core crate.
pub type CoreResult<T> = Result<T, CoreError>;

/// Errors surfaced by the request-processing layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The clerk is not connected (call `connect` first).
    NotConnected,
    /// Protocol misuse: e.g. `Send` while a request is outstanding — the
    /// Client Model offers requests one-at-a-time (§3).
    Protocol(String),
    /// A reply (or request) failed to decode.
    Malformed(String),
    /// There is nothing to rereceive.
    NoReply,
    /// Cancellation failed because the request already progressed too far.
    TooLateToCancel,
    /// Queue-manager failure.
    Qm(QmError),
    /// Network failure (remote clerk↔QM only).
    Net(NetError),
    /// Transaction failure.
    Txn(TxnError),
    /// Storage failure.
    Storage(StorageError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NotConnected => write!(f, "client is not connected"),
            CoreError::Protocol(m) => write!(f, "protocol violation: {m}"),
            CoreError::Malformed(m) => write!(f, "malformed message: {m}"),
            CoreError::NoReply => write!(f, "no reply available to rereceive"),
            CoreError::TooLateToCancel => write!(f, "request already processed; cannot cancel"),
            CoreError::Qm(e) => write!(f, "queue manager: {e}"),
            CoreError::Net(e) => write!(f, "network: {e}"),
            CoreError::Txn(e) => write!(f, "transaction: {e}"),
            CoreError::Storage(e) => write!(f, "storage: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<QmError> for CoreError {
    fn from(e: QmError) -> Self {
        CoreError::Qm(e)
    }
}

impl From<NetError> for CoreError {
    fn from(e: NetError) -> Self {
        CoreError::Net(e)
    }
}

impl From<TxnError> for CoreError {
    fn from(e: TxnError) -> Self {
        CoreError::Txn(e)
    }
}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        CoreError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let e: CoreError = QmError::Empty("q".into()).into();
        assert!(matches!(e, CoreError::Qm(_)));
        let e: CoreError = NetError::Timeout.into();
        assert!(matches!(e, CoreError::Net(_)));
        let e: CoreError = TxnError::LockTimeout.into();
        assert!(matches!(e, CoreError::Txn(_)));
        assert!(CoreError::NotConnected
            .to_string()
            .contains("not connected"));
    }
}
