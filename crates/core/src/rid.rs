//! Request identifiers.
//!
//! "The client attaches a request-id (rid) to each request" (§3). A rid is
//! client-scoped: the client name plus a serial the client chooses. The
//! serial discipline (monotonic per client) is what lets connect-time
//! resynchronization compare "the rid of the last request [the system]
//! received" with "the rid of the request that corresponds to the last reply
//! it sent".

use rrq_storage::codec::{put, Decode, Encode, Reader};
use rrq_storage::StorageResult;
use std::fmt;

/// A request id: `client` ⊕ `serial`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rid {
    /// Issuing client's name.
    pub client: String,
    /// Client-chosen serial (monotonic per client in the standard model).
    pub serial: u64,
}

impl Rid {
    /// Construct a rid.
    pub fn new(client: impl Into<String>, serial: u64) -> Self {
        Rid {
            client: client.into(),
            serial,
        }
    }

    /// The canonical string form `client/serial` (used as the `rid`
    /// element attribute).
    pub fn to_attr(&self) -> String {
        format!("{}/{}", self.client, self.serial)
    }

    /// Parse the canonical form.
    pub fn from_attr(s: &str) -> Option<Rid> {
        let (client, serial) = s.rsplit_once('/')?;
        Some(Rid {
            client: client.to_string(),
            serial: serial.parse().ok()?,
        })
    }
}

impl fmt::Display for Rid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.client, self.serial)
    }
}

impl Encode for Rid {
    fn encode(&self, buf: &mut Vec<u8>) {
        put::string(buf, &self.client);
        put::u64(buf, self.serial);
    }
}

impl Decode for Rid {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        Ok(Rid {
            client: r.string()?,
            serial: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_roundtrip() {
        let r = Rid::new("client-1", 42);
        assert_eq!(r.to_attr(), "client-1/42");
        assert_eq!(Rid::from_attr("client-1/42"), Some(r));
    }

    #[test]
    fn attr_with_slashes_in_client() {
        let r = Rid::new("node/a/client", 7);
        assert_eq!(Rid::from_attr(&r.to_attr()), Some(r));
    }

    #[test]
    fn bad_attrs_rejected() {
        assert_eq!(Rid::from_attr("no-slash"), None);
        assert_eq!(Rid::from_attr("x/notanumber"), None);
    }

    #[test]
    fn codec_roundtrip() {
        let r = Rid::new("c", u64::MAX);
        assert_eq!(Rid::decode_all(&r.encode_to_vec()).unwrap(), r);
    }

    #[test]
    fn display() {
        assert_eq!(Rid::new("c", 3).to_string(), "c/3");
    }
}
