//! The server of the System Model (§5, Figs 4–5): for each request, within
//! one transaction — dequeue it, process it, enqueue the reply, commit.
//!
//! Failure behaviour follows the paper exactly:
//!
//! * a handler that returns [`HandlerError::Abort`] (or a crash/deadlock)
//!   aborts the transaction, returning the request to its queue for
//!   reprocessing;
//! * after the queue's retry limit, the element moves to the error queue —
//!   "to avoid cyclic restart of the request … the server should use the
//!   error queue facility" — where [`Server::failed_reply_reaper`] turns it
//!   into a `Failed` reply, the §3 "promise that it will not attempt to
//!   execute the request any more";
//! * a handler that returns [`HandlerError::Reject`] commits a `Failed`
//!   reply immediately (the request *was* processed exactly once: the
//!   processing concluded "don't do it").

use crate::error::{CoreError, CoreResult};
use crate::request::{Reply, Request};
use crate::rid::Rid;
use parking_lot::Mutex;
use rrq_qm::ops::{DequeueOptions, EnqueueOptions, QueueHandle};
use rrq_qm::repository::Repository;
use rrq_qm::QmError;
use rrq_storage::codec::{Decode, Encode};
use rrq_txn::{ResourceManager, Txn, TxnError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Handler failure classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandlerError {
    /// Transient failure: abort the transaction; the request returns to the
    /// queue and will be retried (until the retry limit).
    Abort(String),
    /// Permanent failure: commit a `Failed` reply; the request will never be
    /// attempted again.
    Reject(String),
}

/// What a handler produced.
#[derive(Debug, Clone)]
pub enum HandlerOutcome {
    /// Final reply for the client.
    Reply(Vec<u8>),
    /// Intermediate output of an interactive request (§8.2): a reply with
    /// `Intermediate` status; the conversation continues on `next_queue`.
    IntermediateReply {
        /// Bytes shown to the client.
        body: Vec<u8>,
        /// Queue for the client's next input.
        next_queue: String,
        /// Conversation state echoed back by the client (§9's IMS "scratch
        /// pad" rides in the element instead of program variables).
        state: Vec<u8>,
    },
    /// Forward the (rewritten) request to the next stage of a
    /// multi-transaction request (§6) — no reply yet.
    Forward {
        /// Next stage's input queue.
        queue: String,
        /// The rewritten request (state carried in `request.state`).
        request: Request,
    },
    /// Forward and *inherit locks*: the transaction's locks transfer to a
    /// parking id embedded in the forwarded request, and the next stage
    /// adopts them (§6 request-level serializability).
    ForwardInheriting {
        /// Next stage's input queue.
        queue: String,
        /// The rewritten request.
        request: Request,
    },
}

/// Processing context handed to handlers.
pub struct ServerCtx<'a> {
    /// The open transaction (locks, id).
    pub txn: &'a Txn,
    /// The node's repository (application state lives in [`Self::store`]).
    pub repo: &'a Arc<Repository>,
    /// The repository partition owning the request queue — the transaction's
    /// home. Application state written through [`Self::store`] stays
    /// co-located with the queue that drives it.
    pub home: usize,
}

impl ServerCtx<'_> {
    /// The home partition's durable store: where this request's application
    /// state lives (with one partition this is exactly `repo.store()`).
    pub fn store(&self) -> &Arc<rrq_storage::kv::KvStore> {
        self.repo.store_at(self.home)
    }

    /// Enlist `queue`'s owning partition in the current transaction and
    /// return its queue manager — the handler-facing door to cross-partition
    /// work (a no-op returning the home queue manager when `queue` is
    /// co-located).
    pub fn enlist_queue(&self, queue: &str) -> CoreResult<&Arc<rrq_qm::ops::QueueManager>> {
        Ok(self.repo.enlist_queue(self.txn, self.home, queue)?)
    }
}

/// The handler signature: pure request → outcome, using `ctx` for state.
pub type Handler =
    Arc<dyn Fn(&ServerCtx<'_>, &Request) -> Result<HandlerOutcome, HandlerError> + Send + Sync>;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Name used for queue registration.
    pub server_name: String,
    /// Input queue.
    pub request_queue: String,
    /// Dequeue blocking window per loop iteration.
    pub block: Duration,
}

impl ServerConfig {
    /// Defaults: 200 ms poll window.
    pub fn new(server_name: impl Into<String>, request_queue: impl Into<String>) -> Self {
        ServerConfig {
            server_name: server_name.into(),
            request_queue: request_queue.into(),
            block: Duration::from_millis(200),
        }
    }
}

/// What one `run_once` iteration did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Served {
    /// A request was processed and committed.
    Committed,
    /// The handler asked for an abort (request returned to the queue).
    Aborted,
    /// The transaction lost a deadlock or was poisoned by a cancel.
    Rolled,
    /// Nothing to do.
    Idle,
}

/// Counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Requests committed.
    pub committed: u64,
    /// Handler-requested aborts.
    pub aborted: u64,
    /// Rejected (Failed reply) requests.
    pub rejected: u64,
    /// Deadlock/cancel rollbacks.
    pub rolled: u64,
}

/// A server process (one dequeue loop).
pub struct Server {
    repo: Arc<Repository>,
    app_rms: Vec<Arc<dyn ResourceManager>>,
    handler: Handler,
    cfg: ServerConfig,
    handle: QueueHandle,
    /// Partition owning `cfg.request_queue`; every request transaction is
    /// homed here.
    home: usize,
    stats: Mutex<ServerStats>,
}

impl Server {
    /// Build a server; registers with the request queue immediately.
    pub fn new(
        repo: Arc<Repository>,
        cfg: ServerConfig,
        handler: Handler,
    ) -> CoreResult<Arc<Self>> {
        Self::with_resources(repo, cfg, handler, Vec::new())
    }

    /// Build a server that additionally enlists application resource
    /// managers in every request transaction.
    pub fn with_resources(
        repo: Arc<Repository>,
        cfg: ServerConfig,
        handler: Handler,
        app_rms: Vec<Arc<dyn ResourceManager>>,
    ) -> CoreResult<Arc<Self>> {
        let home = repo.partition_of(&cfg.request_queue);
        let (handle, _) = repo
            .qm_at(home)
            .register(&cfg.request_queue, &cfg.server_name, false)?;
        Ok(Arc::new(Server {
            repo,
            app_rms,
            handler,
            cfg,
            handle,
            home,
            stats: Mutex::new(ServerStats::default()),
        }))
    }

    /// A reaper for `error_queue`: turns dead requests into `Failed` replies
    /// so the client's Receive eventually completes (§3's unsuccessful-
    /// attempt reply).
    pub fn failed_reply_reaper(
        repo: Arc<Repository>,
        server_name: &str,
        error_queue: &str,
    ) -> CoreResult<Arc<Self>> {
        let handler: Handler = Arc::new(|_ctx, req| {
            Ok(HandlerOutcome::Reply(
                format!("request {} gave up after repeated failures", req.rid).into_bytes(),
            ))
        });
        // The reaper wraps the reply as Failed via a marker op below.
        let cfg = ServerConfig::new(server_name, error_queue);
        // The error queue is normally created lazily by the first retry-limit
        // move; the reaper may boot earlier, so create it here (no cascading
        // retries on error queues).
        let mut meta = rrq_qm::meta::QueueMeta::with_defaults(error_queue);
        meta.retry_limit = 0;
        let home = repo.partition_of(error_queue);
        match repo.qm_at(home).create_queue(meta) {
            Ok(()) | Err(QmError::QueueExists(_)) => {}
            Err(e) => return Err(e.into()),
        }
        let (handle, _) = repo
            .qm_at(home)
            .register(&cfg.request_queue, &cfg.server_name, false)?;
        Ok(Arc::new(Server {
            repo,
            app_rms: Vec::new(),
            handler,
            cfg: ServerConfig {
                // A sentinel so run_once marks replies Failed.
                server_name: format!("!failed!{}", cfg.server_name),
                ..cfg
            },
            handle,
            home,
            stats: Mutex::new(ServerStats::default()),
        }))
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServerStats {
        *self.stats.lock()
    }

    /// The repository this server runs on.
    pub fn repo(&self) -> &Arc<Repository> {
        &self.repo
    }

    fn reply_failed_sentinel(&self) -> bool {
        self.cfg.server_name.starts_with("!failed!")
    }

    /// One iteration of the Fig 5 loop.
    pub fn run_once(&self) -> CoreResult<Served> {
        rrq_obs::counter_inc("core.server.loop_iterations");
        let txn = self.repo.begin_on_part(self.home)?;
        for rm in &self.app_rms {
            txn.enlist(Arc::clone(rm))?;
        }
        let elem = match self.repo.qm_at(self.home).dequeue(
            txn.id().raw(),
            &self.handle,
            DequeueOptions {
                block: Some(self.cfg.block),
                ..Default::default()
            },
        ) {
            Ok(e) => e,
            Err(QmError::Empty(_)) => {
                txn.abort()?;
                return Ok(Served::Idle);
            }
            Err(QmError::Txn(TxnError::Deadlock { .. })) => {
                txn.abort()?;
                self.stats.lock().rolled += 1;
                return Ok(Served::Rolled);
            }
            Err(e) => {
                let _ = txn.abort();
                return Err(e.into());
            }
        };

        let request = match Request::decode_all(&elem.payload) {
            Ok(r) => r,
            Err(e) => {
                // Undecodable request: reject it permanently by committing
                // the dequeue without a reply (nothing to match it to).
                rrq_check::protocol::emit_server(
                    &self.cfg.server_name,
                    rrq_check::protocol::ServerEvent::DropMalformed,
                );
                txn.commit()?;
                rrq_check::protocol::emit_server(
                    &self.cfg.server_name,
                    rrq_check::protocol::ServerEvent::Commit,
                );
                return Err(CoreError::Malformed(format!(
                    "dropped undecodable request: {e}"
                )));
            }
        };
        rrq_check::protocol::emit_server(
            &self.cfg.server_name,
            rrq_check::protocol::ServerEvent::Dequeue {
                rid: request.rid.to_attr(),
            },
        );

        // Any error below unwinds the server transaction, so the observable
        // protocol transition is an abort.
        let served = self.serve_request(txn, &request, &elem);
        if served.is_err() {
            rrq_check::protocol::emit_server(
                &self.cfg.server_name,
                rrq_check::protocol::ServerEvent::Abort,
            );
        }
        served
    }

    /// The Fig 5 body after a decodable request was dequeued.
    fn serve_request(
        &self,
        txn: Txn,
        request: &Request,
        elem: &rrq_qm::element::Element,
    ) -> CoreResult<Served> {
        // §6 lock inheritance: adopt locks parked by the previous stage.
        if let Some(parked) = request.inherit_txn {
            self.repo
                .tm_at(self.home)
                .locks()
                .transfer_locks(parked, txn.id().raw());
        }

        let ctx = ServerCtx {
            txn: &txn,
            repo: &self.repo,
            home: self.home,
        };
        let outcome = if self.reply_failed_sentinel() {
            // Error-queue reaper: always produce a Failed reply.
            Err(HandlerError::Reject(format!(
                "request {} exhausted its retries (abort count {})",
                request.rid, elem.abort_count
            )))
        } else {
            (self.handler)(&ctx, request)
        };

        match outcome {
            Ok(HandlerOutcome::Reply(body)) => {
                self.enqueue_reply(&txn, request, Reply::ok(request.rid.clone(), body))?;
                let served = self.commit(txn);
                if matches!(served, Ok(Served::Committed)) {
                    rrq_obs::counter_inc("core.server.replies_committed");
                }
                served
            }
            Ok(HandlerOutcome::IntermediateReply {
                body,
                next_queue,
                state,
            }) => {
                let reply = Reply {
                    rid: request.rid.clone(),
                    status: crate::request::ReplyStatus::Intermediate,
                    body: crate::interactive::encode_intermediate(&next_queue, &body, &state),
                };
                self.enqueue_reply(&txn, request, reply)?;
                self.commit(txn)
            }
            Ok(HandlerOutcome::Forward { queue, request }) => {
                self.forward(&txn, &queue, &request)?;
                self.commit(txn)
            }
            Ok(HandlerOutcome::ForwardInheriting { queue, mut request }) => {
                // Lock inheritance cannot span partitions: the parked locks
                // live in this partition's lock manager, where the next
                // stage (homed on the target queue's partition) would never
                // find them — they would leak forever. Downgrade to a plain
                // forward; the next stage re-acquires its locks (DESIGN.md
                // S25).
                if self.repo.partition_of(&queue) != self.home {
                    rrq_obs::counter_inc("route.forward_inherit.downgraded");
                    self.forward(&txn, &queue, &request)?;
                    return self.commit(txn);
                }
                let parked = self.repo.tm_at(self.home).reserve_id();
                request.inherit_txn = Some(parked.raw());
                self.forward(&txn, &queue, &request)?;
                match txn.commit_inheriting_locks(parked) {
                    Ok(()) => {
                        rrq_check::protocol::emit_server(
                            &self.cfg.server_name,
                            rrq_check::protocol::ServerEvent::Commit,
                        );
                        self.stats.lock().committed += 1;
                        Ok(Served::Committed)
                    }
                    Err(e) => {
                        rrq_check::protocol::emit_server(
                            &self.cfg.server_name,
                            rrq_check::protocol::ServerEvent::Abort,
                        );
                        self.stats.lock().rolled += 1;
                        let _ = e;
                        Ok(Served::Rolled)
                    }
                }
            }
            Err(HandlerError::Reject(msg)) => {
                self.enqueue_reply(
                    &txn,
                    request,
                    Reply::failed(request.rid.clone(), msg.into_bytes()),
                )?;
                self.stats.lock().rejected += 1;
                let served = self.commit(txn);
                if matches!(served, Ok(Served::Committed)) {
                    rrq_obs::counter_inc("core.server.replies_committed");
                }
                served
            }
            Err(HandlerError::Abort(_)) => {
                txn.abort()?;
                rrq_check::protocol::emit_server(
                    &self.cfg.server_name,
                    rrq_check::protocol::ServerEvent::Abort,
                );
                self.stats.lock().aborted += 1;
                rrq_obs::counter_inc("core.server.handler_aborts");
                Ok(Served::Aborted)
            }
        }
    }

    fn enqueue_reply(&self, txn: &Txn, request: &Request, reply: Reply) -> CoreResult<()> {
        // The server enqueues into the client's reply queue named in the
        // request (§5 multi-client extension). The reply queue must exist;
        // requests naming unknown queues get their reply dropped (the client
        // would never see it anyway).
        let h = QueueHandle {
            queue: request.reply_queue.clone(),
            registrant: self.cfg.server_name.clone(),
        };
        let payload = reply.encode_to_vec();
        let opts = EnqueueOptions {
            attrs: vec![("rid".into(), reply.rid.to_attr())],
            ..Default::default()
        };
        let qm = self
            .repo
            .enlist_queue(txn, self.home, &request.reply_queue)?;
        match qm.enqueue(txn.id().raw(), &h, &payload, opts) {
            Ok(_) | Err(QmError::NoSuchQueue(_)) => {
                rrq_check::protocol::emit_server(
                    &self.cfg.server_name,
                    rrq_check::protocol::ServerEvent::Reply {
                        rid: reply.rid.to_attr(),
                    },
                );
                Ok(())
            }
            Err(e) => Err(e.into()),
        }
    }

    fn forward(&self, txn: &Txn, queue: &str, request: &Request) -> CoreResult<()> {
        let h = QueueHandle {
            queue: queue.to_string(),
            registrant: self.cfg.server_name.clone(),
        };
        let payload = request.encode_to_vec();
        let opts = EnqueueOptions {
            attrs: vec![
                ("rid".into(), request.rid.to_attr()),
                ("reply_queue".into(), request.reply_queue.clone()),
            ],
            ..Default::default()
        };
        let qm = self.repo.enlist_queue(txn, self.home, queue)?;
        qm.enqueue(txn.id().raw(), &h, &payload, opts)?;
        rrq_check::protocol::emit_server(
            &self.cfg.server_name,
            rrq_check::protocol::ServerEvent::Forward {
                rid: request.rid.to_attr(),
            },
        );
        Ok(())
    }

    fn commit(&self, txn: Txn) -> CoreResult<Served> {
        let xpart = self.repo.partitions() > 1 && txn.enlisted() > 1;
        match txn.commit() {
            Ok(()) => {
                if xpart {
                    rrq_obs::counter_inc("txn.xpart.commits");
                }
                rrq_check::protocol::emit_server(
                    &self.cfg.server_name,
                    rrq_check::protocol::ServerEvent::Commit,
                );
                self.stats.lock().committed += 1;
                Ok(Served::Committed)
            }
            Err(TxnError::InvalidState(_)) | Err(TxnError::PrepareFailed(_)) => {
                // Poisoned by a cancel, or a participant failed to prepare:
                // the manager already aborted everything.
                if xpart {
                    rrq_obs::counter_inc("txn.xpart.aborts");
                }
                rrq_check::protocol::emit_server(
                    &self.cfg.server_name,
                    rrq_check::protocol::ServerEvent::Abort,
                );
                self.stats.lock().rolled += 1;
                Ok(Served::Rolled)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Run the loop on a thread until `stop` is set.
    pub fn spawn(self: &Arc<Self>, stop: Arc<AtomicBool>) -> JoinHandle<()> {
        let me = Arc::clone(self);
        let name = format!("rrq-server-{}", self.cfg.server_name);
        crate::threads::spawn_named(name, move || {
            while !stop.load(Ordering::Acquire) {
                match me.run_once() {
                    Ok(_) => {}
                    Err(CoreError::Malformed(_)) => {} // dropped bad request
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            }
        })
    }
}

/// A running pool: the servers, their join handles, and the shared stop flag.
pub type Pool = (Vec<Arc<Server>>, Vec<JoinHandle<()>>, Arc<AtomicBool>);

/// Spawn `n` servers sharing one queue (§1 load sharing).
pub fn spawn_pool(
    repo: &Arc<Repository>,
    queue: &str,
    n: usize,
    handler: Handler,
) -> CoreResult<Pool> {
    let stop = Arc::new(AtomicBool::new(false));
    let mut servers = Vec::with_capacity(n);
    let mut handles = Vec::with_capacity(n);
    for i in 0..n {
        let cfg = ServerConfig::new(format!("server-{i}"), queue);
        let s = Server::new(Arc::clone(repo), cfg, Arc::clone(&handler))?;
        handles.push(s.spawn(Arc::clone(&stop)));
        servers.push(s);
    }
    Ok((servers, handles, stop))
}

/// Extract the rid attribute from a queue element (diagnostics).
pub fn element_rid(elem: &rrq_qm::element::Element) -> Option<Rid> {
    elem.attr("rid").and_then(Rid::from_attr)
}
