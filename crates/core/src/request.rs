//! Request and reply records — "a request is a data structure (e.g., a
//! record) that describes some work that the system should perform" (§2).

use crate::rid::Rid;
use rrq_storage::codec::{put, Decode, Encode, Reader};
use rrq_storage::{StorageError, StorageResult};

/// A request as carried in a queue element payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The client-assigned request id.
    pub rid: Rid,
    /// Reply queue name — passed with the request so the server "knows where
    /// to Enqueue the reply" (§5 multi-client extension).
    pub reply_queue: String,
    /// Operation name the server dispatches on.
    pub op: String,
    /// Operation arguments, opaque to the transport.
    pub body: Vec<u8>,
    /// Pipeline state carried across the transactions of a
    /// multi-transaction request (§6: state "must [be stored] either in a
    /// database or in the next request").
    pub state: Vec<u8>,
    /// When set, the stage transaction processing this request begins under
    /// this pre-allocated id — §6 lock inheritance plumbing.
    pub inherit_txn: Option<u64>,
}

impl Request {
    /// A fresh single-transaction request.
    pub fn new(
        rid: Rid,
        reply_queue: impl Into<String>,
        op: impl Into<String>,
        body: Vec<u8>,
    ) -> Self {
        Request {
            rid,
            reply_queue: reply_queue.into(),
            op: op.into(),
            body,
            state: Vec::new(),
            inherit_txn: None,
        }
    }
}

impl Encode for Request {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.rid.encode(buf);
        put::string(buf, &self.reply_queue);
        put::string(buf, &self.op);
        put::bytes(buf, &self.body);
        put::bytes(buf, &self.state);
        match self.inherit_txn {
            None => put::u8(buf, 0),
            Some(t) => {
                put::u8(buf, 1);
                put::u64(buf, t);
            }
        }
    }
}

impl Decode for Request {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        let rid = Rid::decode(r)?;
        let reply_queue = r.string()?;
        let op = r.string()?;
        let body = r.bytes()?;
        let state = r.bytes()?;
        let inherit_txn = match r.u8()? {
            0 => None,
            1 => Some(r.u64()?),
            b => return Err(StorageError::Decode(format!("bad option tag {b}"))),
        };
        Ok(Request {
            rid,
            reply_queue,
            op,
            body,
            state,
            inherit_txn,
        })
    }
}

/// Outcome class of a reply.
///
/// §3: "The system may process the request by unsuccessfully attempting to
/// execute the request, and then returning a reply that indicates that fact;
/// the reply is a promise that it will not attempt to execute the request
/// any more."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyStatus {
    /// The request executed and committed.
    Ok,
    /// The system gave up on the request (rejected by the handler, or its
    /// element exhausted the retry limit); it will not be attempted again.
    Failed,
    /// Intermediate output of an interactive request (§8) — not the final
    /// reply.
    Intermediate,
}

impl ReplyStatus {
    fn to_byte(self) -> u8 {
        match self {
            ReplyStatus::Ok => 0,
            ReplyStatus::Failed => 1,
            ReplyStatus::Intermediate => 2,
        }
    }

    fn from_byte(b: u8) -> StorageResult<Self> {
        match b {
            0 => Ok(ReplyStatus::Ok),
            1 => Ok(ReplyStatus::Failed),
            2 => Ok(ReplyStatus::Intermediate),
            b => Err(StorageError::Decode(format!("bad reply status {b}"))),
        }
    }
}

/// A reply as carried in a queue element payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// Rid of the request this answers — request/reply matching is checked
    /// against this.
    pub rid: Rid,
    /// Outcome class.
    pub status: ReplyStatus,
    /// Result payload.
    pub body: Vec<u8>,
}

impl Reply {
    /// A successful reply.
    pub fn ok(rid: Rid, body: Vec<u8>) -> Self {
        Reply {
            rid,
            status: ReplyStatus::Ok,
            body,
        }
    }

    /// A gave-up reply.
    pub fn failed(rid: Rid, body: Vec<u8>) -> Self {
        Reply {
            rid,
            status: ReplyStatus::Failed,
            body,
        }
    }
}

impl Encode for Reply {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.rid.encode(buf);
        put::u8(buf, self.status.to_byte());
        put::bytes(buf, &self.body);
    }
}

impl Decode for Reply {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        Ok(Reply {
            rid: Rid::decode(r)?,
            status: ReplyStatus::from_byte(r.u8()?)?,
            body: r.bytes()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let mut req = Request::new(Rid::new("c", 1), "c.reply", "transfer", b"100".to_vec());
        req.state = b"stage-2".to_vec();
        req.inherit_txn = Some(77);
        let d = Request::decode_all(&req.encode_to_vec()).unwrap();
        assert_eq!(d, req);
    }

    #[test]
    fn reply_roundtrip() {
        for r in [
            Reply::ok(Rid::new("c", 1), b"done".to_vec()),
            Reply::failed(Rid::new("c", 2), b"no funds".to_vec()),
            Reply {
                rid: Rid::new("c", 3),
                status: ReplyStatus::Intermediate,
                body: b"enter PIN".to_vec(),
            },
        ] {
            let d = Reply::decode_all(&r.encode_to_vec()).unwrap();
            assert_eq!(d, r);
        }
    }

    #[test]
    fn bad_status_rejected() {
        let r = Reply::ok(Rid::new("c", 1), vec![]);
        let mut buf = r.encode_to_vec();
        // status byte sits after rid: client("c")=4+1 bytes + serial 8 = 13.
        buf[13] = 9;
        assert!(Reply::decode_all(&buf).is_err());
    }
}
