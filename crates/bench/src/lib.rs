//! Shared scaffolding for the benchmarks and the experiment harness.

use rrq_qm::repository::Repository;
use std::sync::Arc;

/// A fresh repository with `queues` created.
pub fn repo_with(name: &str, queues: &[&str]) -> Arc<Repository> {
    let repo = Arc::new(Repository::create(name).expect("create repository"));
    for q in queues {
        repo.create_queue_defaults(q).expect("create queue");
    }
    repo
}

/// Format a rate as a fixed-width table cell.
pub fn fmt_rate(v: f64) -> String {
    if v >= 10_000.0 {
        format!("{:>9.0}", v)
    } else if v >= 100.0 {
        format!("{:>9.1}", v)
    } else {
        format!("{:>9.2}", v)
    }
}

/// Print a markdown-style table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}
